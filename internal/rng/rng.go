// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component in this repository (graph generation, gossip
// target selection, workload generation, collusion placement) draws from an
// rng.Source seeded explicitly, so that every experiment in EXPERIMENTS.md is
// exactly reproducible. Sources are splittable: a parent source can derive an
// arbitrary number of statistically independent child streams, one per node,
// so that per-node randomness does not depend on scheduling order.
package rng

import "math/bits"

// Source is a deterministic pseudo-random stream. It implements the subset of
// math/rand's API that the simulator needs, plus Split for deriving
// independent child streams. The generator is SplitMix64 feeding a
// xoshiro256** core: fast, passes BigCrush, and trivially seedable.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed. Two sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s := &Source{s0: next(), s1: next(), s2: next(), s3: next()}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return s
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Split derives a child stream whose future output is independent of the
// parent's. The parent advances by one draw.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// SplitN derives n independent child streams.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.PermInto(make([]int, 0, n), n)
}

// PermInto appends a uniform random permutation of [0, n) to dst and returns
// the extended slice. It consumes exactly the same draws as Perm, so the two
// are interchangeable without perturbing a seeded stream, and it allocates
// nothing when dst has capacity for n more elements.
func (s *Source) PermInto(dst []int, n int) []int {
	base := len(dst)
	for i := 0; i < n; i++ {
		j := s.Intn(i + 1)
		dst = append(dst, 0)
		p := dst[base:]
		p[i] = p[j]
		p[j] = i
	}
	return dst
}

// Shuffle permutes xs uniformly in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform indices from [0, n) in selection order.
// If k >= n it returns a permutation of all n indices.
func (s *Source) Sample(n, k int) []int {
	if k <= 0 {
		return nil
	}
	c := k
	if c > n {
		c = n
	}
	return s.SampleInto(make([]int, 0, c), n, k)
}

// sampleScanMax is the largest k for which SampleInto's duplicate detection
// uses a linear scan over the selection so far; beyond it the O(k²) scan
// loses to a map (callers like collusion placement sample k proportional to
// N, not a per-node fan-out).
const sampleScanMax = 64

// SampleInto appends k distinct uniform indices from [0, n), in selection
// order, to dst and returns the extended slice (all n indices, permuted, when
// k >= n). It consumes exactly the same draws as Sample — the two are
// interchangeable mid-stream — and for small k (gossip fan-outs: a handful,
// tens for the largest hubs) it allocates nothing when dst has enough
// capacity, which is what lets the gossip engines resample targets every step
// without touching the heap: duplicate detection is a linear scan over the
// entries appended so far. Large k falls back to map-based detection —
// membership checks draw nothing, so the switch cannot perturb the stream.
func (s *Source) SampleInto(dst []int, n, k int) []int {
	if k >= n {
		return s.PermInto(dst, n)
	}
	if k <= 0 {
		return dst
	}
	// Floyd's algorithm: k distinct values without building [0,n).
	base := len(dst)
	if k > sampleScanMax {
		chosen := make(map[int]struct{}, k)
		for j := n - k; j < n; j++ {
			t := s.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			dst = append(dst, t)
		}
		return dst
	}
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		for _, prev := range dst[base:] {
			if prev == t {
				t = j
				break
			}
		}
		dst = append(dst, t)
	}
	return dst
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * sqrt(-2*ln(q)/q)
		}
	}
}

// Beta returns a Beta(a,b) variate via Jöhnk's / gamma-ratio method. It is
// used by the trust estimator to draw peer decency levels.
func (s *Source) Beta(a, b float64) float64 {
	x := s.gamma(a)
	y := s.gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma draws a Gamma(shape,1) variate (Marsaglia–Tsang for shape>=1,
// boosting for shape<1).
func (s *Source) gamma(shape float64) float64 {
	if shape < 1 {
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.gamma(shape+1) * pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * sqrt(d))
	for {
		x := s.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && ln(u) < 0.5*x*x+d*(1-v+ln(v)) {
			return d * v
		}
	}
}
