package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestZeroSeedNotStuck(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestSplitNCount(t *testing.T) {
	kids := New(9).SplitN(17)
	if len(kids) != 17 {
		t.Fatalf("SplitN(17) returned %d sources", len(kids))
	}
	for i, k := range kids {
		if k == nil {
			t.Fatalf("child %d is nil", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(6)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 2 + int(seed%100)
		k := 1 + int((seed/7)%uint64(n))
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullAndEmpty(t *testing.T) {
	s := New(21)
	if got := s.Sample(5, 0); got != nil {
		t.Fatalf("Sample(5,0) = %v, want nil", got)
	}
	full := s.Sample(4, 9)
	if len(full) != 4 {
		t.Fatalf("Sample(4,9) returned %d values", len(full))
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(23)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	s := New(29)
	const n = 50000
	a, b := 2.0, 5.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Beta(a, b)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	want := a / (a + b)
	if mean := sum / n; math.Abs(mean-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean = %v, want ~%v", mean, want)
	}
}

func TestBetaSmallShapes(t *testing.T) {
	s := New(31)
	for i := 0; i < 1000; i++ {
		v := s.Beta(0.5, 0.5)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Beta(0.5,0.5) produced %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func TestSampleIntoMatchesSample(t *testing.T) {
	// SampleInto must be a drop-in for Sample: identical output AND
	// identical stream consumption, so engines can adopt the caller-buffer
	// variant without perturbing seeded runs.
	for seed := uint64(0); seed < 30; seed++ {
		for _, nk := range [][2]int{{10, 3}, {7, 7}, {5, 9}, {100, 1}, {64, 20}, {3, 0}} {
			n, k := nk[0], nk[1]
			a, b := New(seed), New(seed)
			want := a.Sample(n, k)
			buf := make([]int, 0, 128)
			got := b.SampleInto(buf, n, k)
			if len(got) != len(want) {
				t.Fatalf("seed %d n=%d k=%d: len %d vs %d", seed, n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n=%d k=%d: [%d] = %d vs %d", seed, n, k, i, got[i], want[i])
				}
			}
			// Post-state check: both streams must have advanced equally.
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d n=%d k=%d: streams diverged after call", seed, n, k)
			}
		}
	}
}

func TestSampleIntoAppends(t *testing.T) {
	s := New(5)
	dst := []int{-1, -2}
	out := s.SampleInto(dst, 10, 3)
	if len(out) != 5 || out[0] != -1 || out[1] != -2 {
		t.Fatalf("SampleInto clobbered prefix: %v", out)
	}
	seen := map[int]bool{}
	for _, v := range out[2:] {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample suffix %v", out[2:])
		}
		seen[v] = true
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, n := range []int{0, 1, 2, 13, 50} {
			a, b := New(seed), New(seed)
			want := a.Perm(n)
			got := b.PermInto(make([]int, 0, n), n)
			if len(got) != len(want) {
				t.Fatalf("seed %d n=%d: len %d vs %d", seed, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n=%d: [%d] = %d vs %d", seed, n, i, got[i], want[i])
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d n=%d: streams diverged", seed, n)
			}
		}
	}
}

func TestSampleIntoZeroAlloc(t *testing.T) {
	s := New(11)
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		buf = s.SampleInto(buf[:0], 50, 8)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocated %v times per run", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		buf = s.PermInto(buf[:0], 40)
	})
	if allocs != 0 {
		t.Fatalf("PermInto allocated %v times per run", allocs)
	}
}
