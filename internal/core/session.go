package core

import (
	"fmt"
	"math"

	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// SessionConfig parameterises a long-running reputation session: the paper's
// Figure 1 sequence, where gossip rounds repeat as behaviour evolves, a node
// re-pushes its direct feedback to neighbours only when it changed by more
// than Δ since the previous round, and feedback from long-silent peers is
// dropped.
type SessionConfig struct {
	// Params configures each round's aggregation (variant 4).
	Params Params
	// Delta is the paper's ∆: feedback is re-pushed (and re-counted in the
	// setup cost) only when |t_ij(now) − t_ij(last pushed)| > Delta.
	Delta float64
	// DropAfterRounds expires a peer's feedback after it has been silent
	// (absent) this many consecutive rounds; 0 disables expiry.
	DropAfterRounds int
}

func (c SessionConfig) validate(g *graph.Graph) error {
	if g == nil || g.N() == 0 {
		return fmt.Errorf("core: session on empty graph")
	}
	if c.Delta < 0 {
		return fmt.Errorf("core: negative delta %v", c.Delta)
	}
	if c.DropAfterRounds < 0 {
		return fmt.Errorf("core: negative drop-after %d", c.DropAfterRounds)
	}
	return nil
}

// RoundReport summarises one session round.
type RoundReport struct {
	// Round is the 1-based round number.
	Round int
	// FeedbackPushed counts trust entries whose change exceeded Δ and were
	// re-pushed; FeedbackSuppressed counts entries the Δ filter saved.
	FeedbackPushed, FeedbackSuppressed int
	// Dropped counts feedback entries expired due to silence.
	Dropped int
	// Steps and Converged report the round's gossip run.
	Steps     int
	Converged bool
}

// Session runs repeated variant-4 aggregations over an evolving trust
// matrix. It is a single-process orchestration of the distributed protocol:
// the Δ-gated feedback accounting and silence expiry happen exactly where
// they would at each node, and the aggregation itself is the same gossip the
// one-shot API runs.
type Session struct {
	g   *graph.Graph
	cfg SessionConfig

	current *trust.Matrix // live direct-interaction trust
	pushed  *trust.Matrix // last values actually pushed to neighbours

	absent map[int]int // consecutive silent rounds per node

	round int
	rep   [][]float64 // last aggregated reputations
}

// NewSession starts a session with an initial trust matrix (may be empty).
func NewSession(g *graph.Graph, initial *trust.Matrix, cfg SessionConfig) (*Session, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	if initial == nil {
		initial = trust.NewMatrix(g.N())
	}
	if initial.N() != g.N() {
		return nil, fmt.Errorf("core: session matrix size %d vs graph %d", initial.N(), g.N())
	}
	return &Session{
		g:       g,
		cfg:     cfg,
		current: initial.Clone(),
		pushed:  trust.NewMatrix(g.N()),
		absent:  make(map[int]int),
	}, nil
}

// UpdateTrust records a new direct-interaction trust value (the estimation
// layer feeds this between rounds).
func (s *Session) UpdateTrust(i, j int, v float64) error {
	return s.current.Set(i, j, v)
}

// MarkSilent notes that node i was absent this round; after
// DropAfterRounds consecutive absences, feedback *about* and *from* i is
// dropped (the paper: "if node will not hear from a node for a long time ...
// it will drop its feedback").
func (s *Session) MarkSilent(i int) {
	s.absent[i]++
}

// MarkActive clears node i's silence counter.
func (s *Session) MarkActive(i int) {
	delete(s.absent, i)
}

// Round returns the number of completed rounds.
func (s *Session) Round() int { return s.round }

// Reputations returns the last round's aggregated reputation matrix
// (nil before the first round). Reputations[i][j] is node i's view of j.
func (s *Session) Reputations() [][]float64 { return s.rep }

// RunRound executes one aggregation round and returns its report.
func (s *Session) RunRound() (*RoundReport, error) {
	s.round++
	rpt := &RoundReport{Round: s.round}

	// Expiry: drop feedback rows/columns of peers silent too long.
	if s.cfg.DropAfterRounds > 0 {
		for node, rounds := range s.absent {
			if rounds < s.cfg.DropAfterRounds {
				continue
			}
			for j := range s.current.Row(node) {
				s.current.Delete(node, j)
				s.pushed.Delete(node, j)
				rpt.Dropped++
			}
			for i := 0; i < s.current.N(); i++ {
				if s.current.Has(i, node) {
					s.current.Delete(i, node)
					s.pushed.Delete(i, node)
					rpt.Dropped++
				}
			}
		}
	}

	// Δ-gated feedback push accounting (paper Algorithm 2's "participating
	// first time" / "changed by more than ∆" rule).
	n := s.current.N()
	for i := 0; i < n; i++ {
		for j, v := range s.current.Row(i) {
			old, wasPushed := s.pushed.Get(i, j)
			if !wasPushed || math.Abs(v-old) > s.cfg.Delta {
				rpt.FeedbackPushed++
				if err := s.pushed.Set(i, j, v); err != nil {
					return nil, err
				}
			} else {
				rpt.FeedbackSuppressed++
			}
		}
	}

	// Aggregate with the values peers have actually pushed: estimates lag
	// behaviour by at most Δ, exactly as in the distributed protocol.
	res, err := GCLRAll(s.g, s.pushed, s.cfg.Params)
	if err != nil {
		return nil, err
	}
	s.rep = res.Reputation
	rpt.Steps = res.Steps
	rpt.Converged = res.Converged
	return rpt, nil
}
