package core

import (
	"math"
	"testing"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// warmTol is the agreement tolerance for campaigns that converge to the same
// fixed point along different trajectories (sparse vs dense, warm vs cold):
// each is within the ξ envelope of the exact column mean, so their mutual
// distance is bounded by the same class. Matches the service's epsTol.
const warmTol = 1e-2

// sparseParams returns params with restricted-overlay campaigns enabled at
// the service's default threshold.
func sparseParams(eps float64, seed uint64) Params {
	p := params(eps, seed)
	p.SparseRaterFrac = 0.25
	return p
}

// TestSparseMatchesReference: every sparse campaign's estimate agrees with
// the exact column mean within the tolerance, and rater counts small enough
// for the overlay actually take the sparse path (their per-step cost is the
// rater count, which TotalSteps alone can't show — the message tallies can).
func TestSparseMatchesReference(t *testing.T) {
	const n = 80
	g, _ := denseWorkload(t, n, 0.2, 11)
	tm := trust.NewMatrix(n)
	src := rng.New(12)
	// A few raters per subject — well under the 0.25·n threshold.
	for j := 0; j < n; j++ {
		k := 1 + src.Intn(6)
		for x := 0; x < k; x++ {
			i := src.Intn(n)
			if i == j {
				continue
			}
			if err := tm.Set(i, j, src.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	subjects := make([]int, n)
	for j := range subjects {
		subjects[j] = j
	}
	res, err := GlobalSubjects(g, tm, subjects, sparseParams(1e-6, 13))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("sparse run did not converge")
	}
	for k, j := range res.Subjects {
		want := GlobalRef(tm, j)
		for i := 0; i < n; i++ {
			if math.Abs(res.Columns[k][i]-want) > warmTol {
				t.Fatalf("subject %d node %d: sparse estimate %v, exact mean %v", j, i, res.Columns[k][i], want)
			}
		}
	}
	// The sparse run must be dramatically cheaper than the dense one: dense
	// campaigns push O(N) messages per step, overlay campaigns O(k).
	dense, err := GlobalSubjects(g, tm, subjects, params(1e-6, 13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages.Gossip*10 > dense.Messages.Gossip {
		t.Fatalf("sparse run pushed %d messages, dense %d — expected ≥10× reduction",
			res.Messages.Gossip, dense.Messages.Gossip)
	}
}

// TestSparsePartitionInvariant: with sparse campaigns on, any partition of
// the subject space at any worker count still reproduces the single-shot run
// bit for bit — the overlay and its randomness derive from (seed, column)
// alone.
func TestSparsePartitionInvariant(t *testing.T) {
	const n = 60
	g, _ := denseWorkload(t, n, 0.3, 21)
	tm := subjectsWorkload(t, n, 22)
	p := sparseParams(1e-6, 23)

	subjects := make([]int, n)
	for j := range subjects {
		subjects[j] = j
	}
	ref, err := GlobalSubjects(g, tm, subjects, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{4, 17} {
		for _, workers := range []int{0, 3, -1} {
			ps := p
			ps.Workers = workers
			for sh := 0; sh < shards; sh++ {
				var part []int
				for j := sh; j < n; j += shards {
					part = append(part, j)
				}
				res, err := GlobalSubjects(g, tm, part, ps)
				if err != nil {
					t.Fatal(err)
				}
				for k, j := range res.Subjects {
					for i := 0; i < n; i++ {
						if res.Columns[k][i] != ref.Columns[j][i] {
							t.Fatalf("S=%d workers=%d subject %d node %d: %v != %v",
								shards, workers, j, i, res.Columns[k][i], ref.Columns[j][i])
						}
					}
				}
			}
		}
	}
}

// warmWorkload builds a workload, runs a cold epoch with KeepStates, applies
// a small perturbation, and returns everything a warm-restart test needs.
func warmWorkload(t *testing.T, n int, seed uint64, sparse bool) (w graphAndTrust, states []*gossip.CampaignState, subjects []int, p Params) {
	t.Helper()
	gr, _ := denseWorkload(t, n, 0.3, seed)
	tm := subjectsWorkload(t, n, seed+1)
	if sparse {
		p = sparseParams(1e-6, seed+2)
	} else {
		p = params(1e-6, seed+2)
	}
	p.KeepStates = true
	subjects = make([]int, n)
	for j := range subjects {
		subjects[j] = j
	}
	res, err := GlobalSubjects(gr, tm, subjects, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarts != 0 || res.ColdStarts != res.Computed {
		t.Fatalf("first epoch claims %d warm starts", res.WarmStarts)
	}
	return graphAndTrust{gr, tm}, res.States, subjects, p
}

type graphAndTrust struct {
	g  *graph.Graph
	tm *trust.Matrix
}

// TestWarmMatchesColdWithinTolerance is the tentpole equivalence criterion:
// after perturbing a small fraction of ratings, a warm-started recompute
// agrees with a cold recompute of the same matrix within the reference
// tolerance — while running a fraction of the steps.
func TestWarmMatchesColdWithinTolerance(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		const n = 60
		w, states, subjects, p := warmWorkload(t, n, 31, sparse)

		// Perturb ~5% of the subjects: changed values for existing raters
		// plus one new rater each.
		src := rng.New(35)
		for x := 0; x < 3; x++ {
			j := src.Intn(n)
			ids, _ := w.tm.RatersOfInto(j, nil, nil)
			if len(ids) > 0 {
				if err := w.tm.Set(ids[0], j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.tm.Set((j+1)%n, j, src.Float64()); err != nil {
				t.Fatal(err)
			}
		}

		cold, err := GlobalSubjects(w.g, w.tm, subjects, p)
		if err != nil {
			t.Fatal(err)
		}
		pw := p
		pw.Warm = func(j int) *gossip.CampaignState { return states[j] }
		warm, err := GlobalSubjects(w.g, w.tm, subjects, pw)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatalf("sparse=%v: warm run did not converge", sparse)
		}
		if warm.WarmStarts == 0 {
			t.Fatalf("sparse=%v: no campaign warm-started", sparse)
		}
		for k, j := range subjects {
			want := GlobalRef(w.tm, j)
			for i := 0; i < n; i++ {
				if math.Abs(warm.Columns[k][i]-want) > warmTol {
					t.Fatalf("sparse=%v subject %d node %d: warm %v, exact mean %v", sparse, j, i, warm.Columns[k][i], want)
				}
				if math.Abs(warm.Columns[k][i]-cold.Columns[k][i]) > warmTol {
					t.Fatalf("sparse=%v subject %d node %d: warm %v vs cold %v", sparse, j, i, warm.Columns[k][i], cold.Columns[k][i])
				}
			}
		}
		if warm.TotalSteps*2 > cold.TotalSteps {
			t.Fatalf("sparse=%v: warm run took %d total steps, cold %d — warm starts bought nothing",
				sparse, warm.TotalSteps, cold.TotalSteps)
		}
	}
}

// TestWarmFallsBackCold: recorded state that no longer fits — a rater
// removed, or the campaign switching between sparse and dense mode — must
// restart cold (counted as such), never corrupt the result.
func TestWarmFallsBackCold(t *testing.T) {
	const n = 40
	g, _ := denseWorkload(t, n, 0.3, 41)
	tm := trust.NewMatrix(n)
	for _, e := range [][3]int{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}} {
		if err := tm.Set(e[0], e[1], 0.6); err != nil {
			t.Fatal(err)
		}
	}
	p := sparseParams(1e-6, 42)
	p.KeepStates = true
	res, err := GlobalSubjects(g, tm, []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	st := res.States[0]
	if st == nil || !st.Sparse {
		t.Fatalf("expected a sparse recorded state, got %+v", st)
	}

	// Case 1: rater set changed incompatibly (rater 2 "removed" — simulate
	// with a fresh matrix lacking it). Sparse states require the exact same
	// rater set.
	tm2 := trust.NewMatrix(n)
	for _, r := range []int{1, 3} {
		if err := tm2.Set(r, 0, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	pw := p
	pw.Warm = func(int) *gossip.CampaignState { return st }
	got, err := GlobalSubjects(g, tm2, []int{0}, pw)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmStarts != 0 || got.ColdStarts != 1 {
		t.Fatalf("changed rater set: warm=%d cold=%d, want 0/1", got.WarmStarts, got.ColdStarts)
	}
	if want := GlobalRef(tm2, 0); math.Abs(got.Columns[0][0]-want) > warmTol {
		t.Fatalf("fallback result %v, want %v", got.Columns[0][0], want)
	}

	// Case 2: mode change — enough new raters to push the subject over the
	// sparse threshold; the sparse state must not seed a dense campaign.
	tm3 := trust.NewMatrix(n)
	for i := 1; i <= n/2; i++ {
		if err := tm3.Set(i, 0, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	got, err = GlobalSubjects(g, tm3, []int{0}, pw)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmStarts != 0 || got.ColdStarts != 1 {
		t.Fatalf("mode change: warm=%d cold=%d, want 0/1", got.WarmStarts, got.ColdStarts)
	}
	if want := GlobalRef(tm3, 0); math.Abs(got.Columns[0][0]-want) > warmTol {
		t.Fatalf("mode-change result %v, want %v", got.Columns[0][0], want)
	}
}

// TestDenseWarmAcceptsNewRaters: a dense recorded state stays usable when
// raters are ADDED (their mass injects on top); only removal forces cold.
func TestDenseWarmAcceptsNewRaters(t *testing.T) {
	const n = 50
	g, _ := denseWorkload(t, n, 0.3, 51)
	tm := subjectsWorkload(t, n, 52)
	p := params(1e-6, 53) // dense: sparse off
	p.KeepStates = true
	subjects := []int{3, 8, 15}
	res, err := GlobalSubjects(g, tm, subjects, p)
	if err != nil {
		t.Fatal(err)
	}
	states := map[int]*gossip.CampaignState{}
	for k, j := range subjects {
		states[j] = res.States[k]
	}

	// Add a brand-new rater to each subject.
	for _, j := range subjects {
		if err := tm.Set((j+2)%n, j, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	pw := p
	pw.Warm = func(j int) *gossip.CampaignState { return states[j] }
	warm, err := GlobalSubjects(g, tm, subjects, pw)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarts != len(subjects) {
		t.Fatalf("warm starts = %d, want %d (new raters must merge, not force cold)", warm.WarmStarts, len(subjects))
	}
	for k, j := range subjects {
		want := GlobalRef(tm, j)
		if math.Abs(warm.Columns[k][0]-want) > warmTol {
			t.Fatalf("subject %d: warm-with-new-rater %v, exact mean %v", j, warm.Columns[k][0], want)
		}
	}
}

// TestSingleRaterFastPath: a one-rater subject's fixed point is closed-form;
// the campaign must cost zero gossip steps yet still count as computed.
func TestSingleRaterFastPath(t *testing.T) {
	const n = 30
	g, _ := denseWorkload(t, n, 0.3, 61)
	tm := trust.NewMatrix(n)
	if err := tm.Set(4, 9, 0.73); err != nil {
		t.Fatal(err)
	}
	res, err := GlobalSubjects(g, tm, []int{9}, sparseParams(1e-6, 62))
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 1 || !res.Converged {
		t.Fatalf("fast path: computed=%d converged=%v", res.Computed, res.Converged)
	}
	if res.StepsBySubject[0] != 0 || res.Messages.Gossip != 0 {
		t.Fatalf("fast path ran gossip: steps=%d msgs=%d", res.StepsBySubject[0], res.Messages.Gossip)
	}
	for i := 0; i < n; i++ {
		if res.Columns[0][i] != 0.73 {
			t.Fatalf("node %d estimate %v, want the exact rating", i, res.Columns[0][i])
		}
	}
}
