package core

import (
	"math"
	"testing"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// denseWorkload builds a PA graph and a trust matrix where every ordered pair
// transacted with the given density; overlay neighbours always have.
func denseWorkload(t *testing.T, n int, density float64, seed uint64) (*graph.Graph, *trust.Matrix) {
	t.Helper()
	g := graph.MustPA(n, 2, seed)
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N:               n,
		Density:         density,
		NeighborDensity: 1,
		Adjacent:        g.HasEdge,
		Seed:            seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, w.Matrix
}

func params(eps float64, seed uint64) Params {
	return Params{Epsilon: eps, Seed: seed}
}

func TestParamsValidation(t *testing.T) {
	g := graph.Ring(5)
	tm := trust.NewMatrix(5)
	if _, err := GlobalSingle(nil, tm, 0, params(1e-4, 1)); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := GlobalSingle(g, trust.NewMatrix(4), 0, params(1e-4, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := GlobalSingle(g, nil, 0, params(1e-4, 1)); err == nil {
		t.Fatal("nil matrix accepted")
	}
	bad := params(1e-4, 1)
	bad.Root = 7
	if _, err := GCLRSingle(g, tm, 0, bad); err == nil {
		t.Fatal("bad root accepted")
	}
	badW := params(1e-4, 1)
	badW.Weights = trust.WeightParams{A: 0.2, B: 1}
	if _, err := GCLRSingle(g, tm, 0, badW); err == nil {
		t.Fatal("bad weights accepted")
	}
}

func TestGlobalSingleConvergesToRaterMean(t *testing.T) {
	g, tm := denseWorkload(t, 150, 0.2, 10)
	j := 7
	res, err := GlobalSingle(g, tm, j, params(1e-8, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("algorithm 1 did not converge")
	}
	want := GlobalRef(tm, j)
	for i, got := range res.PerNode {
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("node %d: R_j = %v, want %v", i, got, want)
		}
	}
}

func TestGlobalSingleNoRaters(t *testing.T) {
	g := graph.MustPA(50, 2, 12)
	tm := trust.NewMatrix(50)
	res, err := GlobalSingle(g, tm, 3, params(1e-6, 13))
	if err != nil {
		t.Fatal(err)
	}
	// With zero mass everywhere the estimates must be all zero (never
	// negative, never the sentinel).
	for i, got := range res.PerNode {
		if got != 0 {
			t.Fatalf("node %d: estimate %v for unrated subject", i, got)
		}
	}
}

func TestGlobalSingleDefaultsApplied(t *testing.T) {
	g, tm := denseWorkload(t, 60, 0.3, 14)
	res, err := GlobalSingle(g, tm, 0, Params{Seed: 15}) // zero Epsilon/Weights
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("defaults run did not converge")
	}
}

func TestGCLRSingleMatchesReference(t *testing.T) {
	g, tm := denseWorkload(t, 120, 0.25, 20)
	j := 5
	p := params(1e-9, 21)
	res, err := GCLRSingle(g, tm, j, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("algorithm 2 did not converge")
	}
	for i, got := range res.PerNode {
		want := GCLRRef(g, tm, i, j, p)
		if math.Abs(got-want) > 5e-3 {
			t.Fatalf("node %d: Rep = %v, want %v", i, got, want)
		}
	}
}

func TestGCLRSingleCountsRaters(t *testing.T) {
	g, tm := denseWorkload(t, 100, 0.3, 30)
	j := 9
	_, raters := tm.RatersOf(j)
	res, err := GCLRSingle(g, tm, j, params(1e-9, 31))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(raters))
	for i, c := range res.Counts {
		if math.Abs(c-want) > 0.02*want+0.05 {
			t.Fatalf("node %d: count %v, want %v", i, c, want)
		}
	}
}

func TestGCLRSingleReputationInUnitInterval(t *testing.T) {
	g, tm := denseWorkload(t, 80, 0.3, 40)
	for _, j := range []int{0, 17, 42} {
		res, err := GCLRSingle(g, tm, j, params(1e-7, 41))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.PerNode {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("Rep[%d][%d] = %v out of [0,1]", i, j, v)
			}
		}
	}
}

func TestGCLRDiffersFromGlobalWhenWeightsMatter(t *testing.T) {
	// Observer 0 trusts neighbour fully; that neighbour's opinion of the
	// subject diverges from the crowd. GCLR at node 0 must move toward the
	// trusted neighbour's opinion relative to the global value.
	n := 60
	g := graph.MustPA(n, 2, 50)
	tm := trust.NewMatrix(n)
	subject := n - 1
	nbr := g.Neighbors(0)[0]
	if err := tm.Set(0, nbr, 1.0); err != nil {
		t.Fatal(err)
	}
	_ = tm.Set(nbr, subject, 1.0)
	src := rng.New(51)
	for i := 1; i < n-1; i++ {
		if i == nbr {
			continue
		}
		_ = tm.Set(i, subject, 0.1+0.05*src.Float64())
	}
	p := params(1e-9, 52)
	gclr, err := GCLRSingle(g, tm, subject, p)
	if err != nil {
		t.Fatal(err)
	}
	global, err := GlobalSingle(g, tm, subject, p)
	if err != nil {
		t.Fatal(err)
	}
	if gclr.PerNode[0] <= global.PerNode[0] {
		t.Fatalf("GCLR at observer (%v) did not exceed global (%v) despite trusted positive feedback",
			gclr.PerNode[0], global.PerNode[0])
	}
	// A node with no direct trust in anyone must essentially agree with
	// the global estimate.
	var plain int = -1
	for i := 0; i < n; i++ {
		if len(tm.Row(i)) == 0 {
			plain = i
			break
		}
	}
	if plain >= 0 {
		if d := math.Abs(gclr.PerNode[plain] - global.PerNode[plain]); d > 5e-3 {
			t.Fatalf("unopinionated node %d: GCLR %v vs global %v", plain, gclr.PerNode[plain], global.PerNode[plain])
		}
	}
}

func TestGlobalAllMatchesSingle(t *testing.T) {
	g, tm := denseWorkload(t, 50, 0.3, 60)
	p := params(1e-9, 61)
	all, err := GlobalAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Converged {
		t.Fatal("variant 3 did not converge")
	}
	for _, j := range []int{0, 13, 49} {
		want := GlobalRef(tm, j)
		for i := 0; i < 50; i++ {
			if math.Abs(all.Reputation[i][j]-want) > 2e-3 {
				t.Fatalf("all[%d][%d] = %v, want %v", i, j, all.Reputation[i][j], want)
			}
		}
	}
}

func TestGCLRAllMatchesReference(t *testing.T) {
	g, tm := denseWorkload(t, 40, 0.35, 70)
	p := params(1e-9, 71)
	all, err := GCLRAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Converged {
		t.Fatal("variant 4 did not converge")
	}
	ref := GCLRRefAll(g, tm, p)
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if ref[i][j] == 0 {
				continue
			}
			if math.Abs(all.Reputation[i][j]-ref[i][j]) > 1e-2 {
				t.Fatalf("GCLRAll[%d][%d] = %v, ref %v", i, j, all.Reputation[i][j], ref[i][j])
			}
		}
	}
}

func TestGCLRAllFromReportsHonestEqualsGCLRAll(t *testing.T) {
	g, tm := denseWorkload(t, 30, 0.4, 80)
	p := params(1e-8, 81)
	a, err := GCLRAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GCLRAllFromReports(g, tm, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if math.Abs(a.Reputation[i][j]-b.Reputation[i][j]) > 1e-12 {
				t.Fatalf("honest reports diverge at (%d,%d)", i, j)
			}
		}
	}
}

func TestGCLRAllFromReportsSizeCheck(t *testing.T) {
	g, tm := denseWorkload(t, 20, 0.4, 90)
	if _, err := GCLRAllFromReports(g, tm, trust.NewMatrix(19), params(1e-6, 91)); err == nil {
		t.Fatal("mismatched reported matrix accepted")
	}
	if _, err := GCLRAllFromReports(g, tm, nil, params(1e-6, 91)); err == nil {
		t.Fatal("nil reported matrix accepted")
	}
}

func TestLiarsShiftGlobalButNotDirectTrust(t *testing.T) {
	// Reported matrix inflates subject 0 at some non-rater nodes; gossiped
	// estimates must rise relative to honest gossip.
	g, tm := denseWorkload(t, 40, 0.3, 95)
	reported := tm.Clone()
	for i := 1; i < 10; i++ {
		_ = reported.Set(i, 0, 1.0)
	}
	p := params(1e-8, 96)
	honest, err := GCLRAllFromReports(g, tm, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	lied, err := GCLRAllFromReports(g, tm, reported, p)
	if err != nil {
		t.Fatal(err)
	}
	obs := 20
	if lied.Reputation[obs][0] <= honest.Reputation[obs][0] {
		t.Fatalf("inflated reports did not raise estimate: %v vs %v",
			lied.Reputation[obs][0], honest.Reputation[obs][0])
	}
}

func TestProtocolOverride(t *testing.T) {
	g, tm := denseWorkload(t, 80, 0.25, 100)
	p := params(1e-6, 101)
	p.Protocol = gossip.NormalPush
	res, err := GlobalSingle(g, tm, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("normal push variant did not converge")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g, tm := denseWorkload(t, 70, 0.3, 110)
	p := params(1e-7, 111)
	a, err := GCLRSingle(g, tm, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GCLRSingle(g, tm, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	for i := range a.PerNode {
		if a.PerNode[i] != b.PerNode[i] {
			t.Fatalf("estimate %d differs across identical runs", i)
		}
	}
}

func TestMessagesChargedForFeedbackPhase(t *testing.T) {
	g, tm := denseWorkload(t, 50, 0.3, 120)
	gRes, err := GlobalSingle(g, tm, 1, params(1e-6, 121))
	if err != nil {
		t.Fatal(err)
	}
	cRes, err := GCLRSingle(g, tm, 1, params(1e-6, 121))
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 pays an extra feedback push per directed edge.
	if cRes.Messages.Setup < gRes.Messages.Setup+2*g.M() {
		t.Fatalf("GCLR setup %d, global setup %d, M %d",
			cRes.Messages.Setup, gRes.Messages.Setup, g.M())
	}
}
