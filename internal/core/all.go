package core

import (
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// GlobalAll runs the paper's third variant: Algorithm 1 for every subject
// simultaneously. Each node pushes its whole feedback vector y_i (with the
// subject id attached to every pair, here the slot index) and the matching
// gossip-weight vector g_i. Convergence uses the vector rule (7):
// Σ_j |r_ij(n) − r_ij(n−1)| ≤ N·ξ.
//
// The paper notes the time complexity matches the single-subject algorithm
// while communication grows with the vector size; call
// (*gossip.VectorEngine).CountVectorMessages via the Messages tally — here
// the returned Messages already charges N units per vector push.
func GlobalAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	for i := 0; i < n; i++ {
		for j, v := range t.Row(i) {
			y0[i][j] = v
			g0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	res := e.Run()
	return &AllResult{
		Reputation: res.Estimates,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}, nil
}

// GCLRAll runs the paper's fourth variant: Algorithm 2 for every subject
// simultaneously. Nodes push their full trust vectors t_i in the feedback
// phase, the trio vectors (y, g, count) gossip as in variant 3, and each node
// applies eq. (6) per subject at the end.
func GCLRAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range t.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	// Feedback phase: each node pushes its trust vector to each neighbour.
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, t, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

// GCLRAllFromReports is GCLRAll where the values pushed into the gossip phase
// come from a separate "reported" matrix while the neighbour-feedback phase
// and the confidence weights use the honest direct-interaction matrix. This
// is exactly the collusion threat model of §5.2: colluders can lie in what
// they gossip (third mechanism) but direct experience and neighbour feedback
// are unaffected.
func GCLRAllFromReports(g *graph.Graph, honest, reported *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, honest); err != nil {
		return nil, err
	}
	if reported == nil || reported.N() != honest.N() {
		return nil, errSize(reported, honest)
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range reported.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, honest, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

func zeros(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}
