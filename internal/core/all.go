package core

import (
	"fmt"
	"runtime"
	"sync"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// ColumnSource is the trust input a subject-subset aggregation folds from:
// the live master matrix (the monolithic path) or a frozen per-shard
// trust.Columns (the sharded service's fold path).
type ColumnSource interface {
	// N is the node-id bound.
	N() int
	// RatersOfInto appends subject j's raters and their trust values, in
	// ascending rater order.
	RatersOfInto(j int, ids []int, vals []float64) ([]int, []float64)
}

var (
	_ ColumnSource = (*trust.Matrix)(nil)
	_ ColumnSource = (*trust.Columns)(nil)
)

// GlobalSubjects runs the paper's Algorithm 1 for an arbitrary subject
// subset: one independent push-sum campaign per subject, each on the
// flat-memory VectorEngine restricted to that subject's column (reusing its
// active-subject index and fused accumulate+scan kernels), each drawing
// from its own randomness stream split off p.Seed by global subject id
// (SplitMix64 substream derivation — see subjectSeed).
//
// Because the campaigns share nothing, a subject's result column depends
// only on (p.Seed, the graph, its trust column) — never on which other
// subjects are computed alongside it, how the subject space is sharded, in
// which order shards fold, or how many workers run. That invariance is what
// lets the sharded service recompute any dirty subset of subjects and still
// match a full recompute bit for bit; GlobalAll is exactly the S=1 /
// all-subjects case.
//
// Subjects nobody has rated cost no gossip at all: their campaigns carry no
// weight mass, so the result column is exactly zero and no engine runs.
//
// p.Workers parallelises across subjects (0/1 sequential, negative =
// GOMAXPROCS); each worker reuses one engine via Reset, so the steady-state
// allocation per subject is just its result column.
func GlobalSubjects(g *graph.Graph, t ColumnSource, subjects []int, p Params) (*SubjectsResult, error) {
	p = p.withDefaults()
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	n := g.N()
	if t == nil || t.N() != n {
		return nil, fmt.Errorf("core: trust source size does not match graph size %d", n)
	}
	if err := p.Weights.Validate(); err != nil {
		return nil, err
	}
	if p.Root < 0 || p.Root >= n {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", p.Root, n)
	}
	seen := make(map[int]bool, len(subjects))
	for _, j := range subjects {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("core: subject %d out of range [0,%d)", j, n)
		}
		if seen[j] {
			return nil, fmt.Errorf("core: duplicate subject %d", j)
		}
		seen[j] = true
	}

	res := &SubjectsResult{
		Subjects:  append([]int(nil), subjects...),
		Columns:   make([][]float64, len(subjects)),
		Raters:    make([]int, len(subjects)),
		Converged: true,
	}
	type outcome struct {
		steps     int
		converged bool
		msgs      gossip.Messages
		ran       bool
		err       error
	}
	outs := make([]outcome, len(subjects))

	worker := func(lo, hi int) {
		var eng *gossip.VectorEngine
		y0 := make([]float64, n)
		g0 := make([]float64, n)
		var ids []int
		var vals []float64
		for s := lo; s < hi; s++ {
			j := res.Subjects[s]
			ids, vals = t.RatersOfInto(j, ids[:0], vals[:0])
			col := make([]float64, n)
			res.Columns[s] = col
			res.Raters[s] = len(ids)
			if len(ids) == 0 {
				outs[s] = outcome{converged: true}
				continue
			}
			clear(y0)
			clear(g0)
			for k, i := range ids {
				y0[i] = vals[k]
				g0[i] = 1
			}
			var err error
			if eng == nil {
				// The slot→subject label is fixed at first construction;
				// only the seed and masses matter to the dynamics, so the
				// same engine replays every later subject via Reset,
				// bit-identically to a fresh construction.
				cfg := p.gossipConfig(g)
				cfg.Seed = subjectSeed(p.Seed, j)
				cfg.Workers = 0 // parallelism lives across subjects
				eng, err = gossip.NewVectorEngineSubjects(cfg, []int{j}, y0, g0)
			} else {
				err = eng.Reset(subjectSeed(p.Seed, j), y0, g0)
			}
			if err != nil {
				outs[s] = outcome{err: err}
				continue
			}
			steps, conv := eng.RunInto(col, 0)
			outs[s] = outcome{steps: steps, converged: conv, msgs: eng.Messages(), ran: true}
		}
	}

	workers := p.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(subjects) < 2 {
		worker(0, len(subjects))
	} else {
		if workers > len(subjects) {
			workers = len(subjects)
		}
		chunk := (len(subjects) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(subjects))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				worker(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Aggregate in subject order so the tallies are deterministic for any
	// worker count. The campaigns share one degree exchange, charged once.
	for s := range outs {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
		if outs[s].steps > res.Steps {
			res.Steps = outs[s].steps
		}
		res.Converged = res.Converged && outs[s].converged
		if outs[s].ran {
			res.Computed++
			res.Messages.Gossip += outs[s].msgs.Gossip
			res.Messages.Announce += outs[s].msgs.Announce
			res.Messages.Lost += outs[s].msgs.Lost
			res.Messages.ActiveNodeSteps += outs[s].msgs.ActiveNodeSteps
			res.Messages.Setup += outs[s].msgs.Setup
		}
	}
	res.Messages.Setup += 2 * g.M()
	return res, nil
}

// subjectSeed derives subject j's campaign seed from the run seed: position
// j of a SplitMix64 sequence — the same substream derivation rng.Source
// seeding is built on — evaluated positionally in O(1), so a shard fold
// pays only for the subjects it actually computes (never an O(N) draw
// sweep). The additive offset keeps campaign seeds disjoint from the state
// words rng.New derives from the same base. The seed is a pure function of
// (run seed, global subject id): any partition of the subject space at any
// worker count replays the same stream for the same subject.
func subjectSeed(base uint64, j int) uint64 {
	z := base + 0xd1342543de82ef95 + (uint64(j)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GlobalAll runs the paper's third variant: Algorithm 1 for every subject.
// Since PR 4 it is the all-subjects case of GlobalSubjects — N independent
// per-subject push-sum campaigns, one split randomness stream each —
// rather than one vector gossip with a shared routing stream. The paper
// observes that the per-subject streams are independent ("the time
// complexity matches the single-subject algorithm"); running them as
// genuinely separate campaigns makes the result decomposable by subject,
// which the sharded epoch pipeline relies on, at the cost of per-campaign
// routing draws instead of one shared routing. Each campaign converges
// under the scalar rule |r(n) − r(n−1)| ≤ ξ, the m=1 form of rule (7).
//
// Messages tallies the campaigns' pushes (one subject slot per push, so a
// push costs one unit) plus a single shared degree exchange.
func GlobalAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	subjects := make([]int, n)
	for j := range subjects {
		subjects[j] = j
	}
	sub, err := GlobalSubjects(g, t, subjects, p)
	if err != nil {
		return nil, err
	}
	out := &AllResult{
		Reputation: zeros(n),
		Steps:      sub.Steps,
		Converged:  sub.Converged,
		Messages:   sub.Messages,
	}
	for j := 0; j < n; j++ {
		col := sub.Columns[j]
		for i := 0; i < n; i++ {
			out.Reputation[i][j] = col[i]
		}
	}
	return out, nil
}

// GCLRAll runs the paper's fourth variant: Algorithm 2 for every subject
// simultaneously. Nodes push their full trust vectors t_i in the feedback
// phase, the trio vectors (y, g, count) gossip as in variant 3, and each node
// applies eq. (6) per subject at the end.
func GCLRAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range t.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	// Feedback phase: each node pushes its trust vector to each neighbour.
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, t, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

// GCLRAllFromReports is GCLRAll where the values pushed into the gossip phase
// come from a separate "reported" matrix while the neighbour-feedback phase
// and the confidence weights use the honest direct-interaction matrix. This
// is exactly the collusion threat model of §5.2: colluders can lie in what
// they gossip (third mechanism) but direct experience and neighbour feedback
// are unaffected.
func GCLRAllFromReports(g *graph.Graph, honest, reported *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, honest); err != nil {
		return nil, err
	}
	if reported == nil || reported.N() != honest.N() {
		return nil, errSize(reported, honest)
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range reported.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, honest, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

func zeros(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}
