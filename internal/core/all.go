package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// ColumnSource is the trust input a subject-subset aggregation folds from:
// the live master matrix (the monolithic path) or a frozen per-shard
// trust.Columns (the sharded service's fold path).
type ColumnSource interface {
	// N is the node-id bound.
	N() int
	// RatersOfInto appends subject j's raters and their trust values, in
	// ascending rater order.
	RatersOfInto(j int, ids []int, vals []float64) ([]int, []float64)
}

var (
	_ ColumnSource = (*trust.Matrix)(nil)
	_ ColumnSource = (*trust.Columns)(nil)
)

// GlobalSubjects runs the paper's Algorithm 1 for an arbitrary subject
// subset: one independent push-sum campaign per subject, each drawing from
// its own randomness stream split off p.Seed by global subject id
// (SplitMix64 substream derivation — see subjectSeed).
//
// Because the campaigns share nothing, a subject's result column depends
// only on (p.Seed, the graph, its trust column, and for warm starts its
// recorded state) — never on which other subjects are computed alongside
// it, how the subject space is sharded, in which order shards fold, or how
// many workers run. That invariance is what lets the sharded service
// recompute any dirty subset of subjects and still match a full recompute
// bit for bit; GlobalAll is exactly the S=1 / all-subjects case.
//
// Each campaign picks the cheapest sound execution:
//
//   - no raters: the column is exactly zero, no engine runs;
//   - one rater (sparse mode on): the fixed point is the rater's value — the
//     column is filled directly, zero gossip steps;
//   - at most p.SparseRaterFrac·N raters: push-sum over the k-node rater
//     overlay (overlayGraph), so cost scales with the raters, not N;
//   - otherwise: push-sum over the full graph on the flat-memory
//     VectorEngine restricted to the subject's column.
//
// When p.Warm supplies a usable previous state, the campaign restarts from
// it with the trust-column delta injected as mass corrections — a
// near-fixed-point start that converges in a handful of steps — and falls
// back to a cold start when the state no longer fits (rater removed,
// campaign mode changed). A campaign whose trust column is bit-identical to
// what a converged state recorded skips the engine entirely: the recorded
// fixed point is republished at zero steps and zero messages. Warm results
// agree with cold ones within the ξ tolerance but not bit for bit.
//
// p.Workers parallelises across subjects (0/1 sequential, negative =
// GOMAXPROCS): workers pull campaigns longest-estimated-first from a shared
// queue (scheduleOrder) and reuse their engines via Reset, so the
// steady-state allocation per subject is just its result column.
func GlobalSubjects(g *graph.Graph, t ColumnSource, subjects []int, p Params) (*SubjectsResult, error) {
	p = p.withDefaults()
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	n := g.N()
	if t == nil || t.N() != n {
		return nil, fmt.Errorf("core: trust source size does not match graph size %d", n)
	}
	if err := p.Weights.Validate(); err != nil {
		return nil, err
	}
	if p.Root < 0 || p.Root >= n {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", p.Root, n)
	}
	seen := make(map[int]bool, len(subjects))
	for _, j := range subjects {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("core: subject %d out of range [0,%d)", j, n)
		}
		if seen[j] {
			return nil, fmt.Errorf("core: duplicate subject %d", j)
		}
		seen[j] = true
	}

	res := &SubjectsResult{
		Subjects:       append([]int(nil), subjects...),
		Columns:        make([][]float64, len(subjects)),
		Raters:         make([]int, len(subjects)),
		StepsBySubject: make([]int, len(subjects)),
		Converged:      true,
	}
	if p.KeepStates {
		res.States = make([]*gossip.CampaignState, len(subjects))
	}
	sparseMax := 0
	if p.SparseRaterFrac > 0 {
		sparseMax = int(p.SparseRaterFrac * float64(n))
		if sparseMax < 1 {
			sparseMax = 1
		}
	}

	type outcome struct {
		steps     int
		converged bool
		msgs      gossip.Messages
		ran       bool
		warm      bool
		err       error
	}
	outs := make([]outcome, len(subjects))

	// Per-worker reusable state: one dense engine (built over the real
	// graph on first dense campaign), one sparse engine per overlay size,
	// and the seed scratch blocks.
	type workerState struct {
		dense   *gossip.VectorEngine
		scratch *seedScratch
		sparse  map[int]*gossip.VectorEngine
		sy, sg  []float64 // sparse seeds, sliced to the overlay size
		est     []float64 // sparse estimate column
		ids     []int
		vals    []float64
	}

	runSparse := func(s, j int, ids []int, vals []float64, ws *gossip.CampaignState, w *workerState, col []float64) {
		k := len(ids)
		if k == 1 {
			// A single rater's campaign has a closed-form fixed point: every
			// node's estimate is the rater's value. Zero steps, still a
			// computed (cold) campaign for the incrementality accounting.
			for i := range col {
				col[i] = vals[0]
			}
			outs[s] = outcome{converged: true, ran: true}
			return
		}
		warm := ws != nil && ws.Sparse &&
			len(ws.Y) == k && len(ws.G) == k && len(ws.PrevVals) == k &&
			sameIDs(ws.Raters, ids)
		if warm && ws.Converged && sameVals(ws.PrevVals, vals) {
			// Unchanged campaign: the recorded state already holds the fixed
			// point, so republish its column — zero steps, zero messages, and
			// the state carries forward untouched for the next epoch.
			stateColumn(ws, col)
			outs[s] = outcome{converged: true, ran: true, warm: true}
			if res.States != nil {
				res.States[s] = ws
			}
			return
		}
		sy, sg := w.sy[:k], w.sg[:k]
		if warm {
			copy(sy, ws.Y)
			copy(sg, ws.G)
			for pos, v := range vals {
				sy[pos] += v - ws.PrevVals[pos]
			}
		} else {
			for pos, v := range vals {
				sy[pos] = v
				sg[pos] = 1
			}
		}
		seed := subjectSeed(p.Seed, j)
		eng := w.sparse[k]
		var err error
		if eng == nil {
			cfg := p.gossipConfig(overlayGraph(k))
			cfg.Seed = seed
			cfg.Workers = 0
			eng, err = gossip.NewVectorEngineSubjects(cfg, []int{0}, sy, sg)
			if err == nil {
				w.sparse[k] = eng
			}
		} else {
			err = eng.Reset(seed, sy, sg)
		}
		if err != nil {
			outs[s] = outcome{err: err}
			return
		}
		if warm {
			eng.SetMinSteps(warmMinSteps)
		} else {
			eng.SetMinSteps(0)
		}
		est := w.est[:k]
		steps, conv := eng.RunInto(est, 0)
		// Every overlay node's estimate is within the ξ band; node 0's
		// stands for the whole network, like the root's does on a dense run.
		for i := range col {
			col[i] = est[0]
		}
		outs[s] = outcome{steps: steps, converged: conv, msgs: eng.Messages(), ran: true, warm: warm}
		if res.States != nil {
			res.States[s] = captureState(eng, true, ids, vals, steps, k, conv)
		}
	}

	runDense := func(s, j int, ids []int, vals []float64, ws *gossip.CampaignState, w *workerState, col []float64) {
		usable := ws != nil && !ws.Sparse &&
			len(ws.Y) == n && len(ws.G) == n &&
			len(ws.PrevVals) == len(ws.Raters)
		if usable && ws.Converged && sameIDs(ws.Raters, ids) && sameVals(ws.PrevVals, vals) {
			// Unchanged campaign: republish the recorded fixed point directly
			// (see the sparse twin above).
			stateColumn(ws, col)
			outs[s] = outcome{converged: true, ran: true, warm: true}
			if res.States != nil {
				res.States[s] = ws
			}
			return
		}
		warm := usable && w.scratch.seedWarm(ws, ids, vals)
		if !warm {
			w.scratch.seedCold(ids, vals)
		}
		seed := subjectSeed(p.Seed, j)
		var err error
		if w.dense == nil {
			// The slot→subject label is fixed at first construction; only
			// the seed and masses matter to the dynamics, so the same engine
			// replays every later subject via Reset, bit-identically to a
			// fresh construction.
			cfg := p.gossipConfig(g)
			cfg.Seed = seed
			cfg.Workers = 0 // parallelism lives across subjects
			w.dense, err = gossip.NewVectorEngineSubjects(cfg, []int{j}, w.scratch.y, w.scratch.g)
		} else {
			err = w.dense.Reset(seed, w.scratch.y, w.scratch.g)
		}
		if err != nil {
			outs[s] = outcome{err: err}
			return
		}
		if warm {
			w.dense.SetMinSteps(warmMinSteps)
		} else {
			w.dense.SetMinSteps(0)
		}
		steps, conv := w.dense.RunInto(col, 0)
		outs[s] = outcome{steps: steps, converged: conv, msgs: w.dense.Messages(), ran: true, warm: warm}
		if res.States != nil {
			res.States[s] = captureState(w.dense, false, ids, vals, steps, n, conv)
		}
	}

	runSubject := func(s int, w *workerState) {
		j := res.Subjects[s]
		w.ids, w.vals = t.RatersOfInto(j, w.ids[:0], w.vals[:0])
		ids, vals := w.ids, w.vals
		col := make([]float64, n)
		res.Columns[s] = col
		res.Raters[s] = len(ids)
		if len(ids) == 0 {
			outs[s] = outcome{converged: true}
			return
		}
		var ws *gossip.CampaignState
		if p.Warm != nil {
			ws = p.Warm(j)
		}
		if k := len(ids); sparseMax > 0 && k <= sparseMax {
			runSparse(s, j, ids, vals, ws, w, col)
		} else {
			runDense(s, j, ids, vals, ws, w, col)
		}
	}

	workers := p.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(subjects) {
		workers = len(subjects)
	}
	if workers < 1 {
		workers = 1
	}
	order := scheduleOrder(t, res.Subjects, p, n, sparseMax, workers)
	var cursor atomic.Int64
	runWorker := func() {
		w := &workerState{
			scratch: newSeedScratch(n),
			sparse:  make(map[int]*gossip.VectorEngine),
			sy:      make([]float64, sparseMax),
			sg:      make([]float64, sparseMax),
			est:     make([]float64, sparseMax),
		}
		for {
			x := int(cursor.Add(1)) - 1
			if x >= len(order) {
				return
			}
			runSubject(order[x], w)
		}
	}
	if workers == 1 {
		runWorker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runWorker()
			}()
		}
		wg.Wait()
	}

	// Aggregate in subject order so the tallies are deterministic for any
	// worker count. The campaigns share one degree exchange, charged once.
	for s := range outs {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
		if outs[s].steps > res.Steps {
			res.Steps = outs[s].steps
		}
		res.Converged = res.Converged && outs[s].converged
		if outs[s].ran {
			res.Computed++
			res.TotalSteps += outs[s].steps
			res.StepsBySubject[s] = outs[s].steps
			if outs[s].warm {
				res.WarmStarts++
			} else {
				res.ColdStarts++
			}
			res.Messages.Gossip += outs[s].msgs.Gossip
			res.Messages.Announce += outs[s].msgs.Announce
			res.Messages.Lost += outs[s].msgs.Lost
			res.Messages.ActiveNodeSteps += outs[s].msgs.ActiveNodeSteps
			res.Messages.Setup += outs[s].msgs.Setup
		} else {
			res.StepsBySubject[s] = -1
		}
	}
	res.Messages.Setup += 2 * g.M()
	return res, nil
}

// subjectSeed derives subject j's campaign seed from the run seed: position
// j of a SplitMix64 sequence — the same substream derivation rng.Source
// seeding is built on — evaluated positionally in O(1), so a shard fold
// pays only for the subjects it actually computes (never an O(N) draw
// sweep). The additive offset keeps campaign seeds disjoint from the state
// words rng.New derives from the same base. The seed is a pure function of
// (run seed, global subject id): any partition of the subject space at any
// worker count replays the same stream for the same subject.
func subjectSeed(base uint64, j int) uint64 {
	z := base + 0xd1342543de82ef95 + (uint64(j)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GlobalAll runs the paper's third variant: Algorithm 1 for every subject.
// Since PR 4 it is the all-subjects case of GlobalSubjects — N independent
// per-subject push-sum campaigns, one split randomness stream each —
// rather than one vector gossip with a shared routing stream. The paper
// observes that the per-subject streams are independent ("the time
// complexity matches the single-subject algorithm"); running them as
// genuinely separate campaigns makes the result decomposable by subject,
// which the sharded epoch pipeline relies on, at the cost of per-campaign
// routing draws instead of one shared routing. Each campaign converges
// under the scalar rule |r(n) − r(n−1)| ≤ ξ, the m=1 form of rule (7).
//
// Messages tallies the campaigns' pushes (one subject slot per push, so a
// push costs one unit) plus a single shared degree exchange.
func GlobalAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	subjects := make([]int, n)
	for j := range subjects {
		subjects[j] = j
	}
	sub, err := GlobalSubjects(g, t, subjects, p)
	if err != nil {
		return nil, err
	}
	out := &AllResult{
		Reputation: zeros(n),
		Steps:      sub.Steps,
		Converged:  sub.Converged,
		Messages:   sub.Messages,
	}
	for j := 0; j < n; j++ {
		col := sub.Columns[j]
		for i := 0; i < n; i++ {
			out.Reputation[i][j] = col[i]
		}
	}
	return out, nil
}

// GCLRAll runs the paper's fourth variant: Algorithm 2 for every subject
// simultaneously. Nodes push their full trust vectors t_i in the feedback
// phase, the trio vectors (y, g, count) gossip as in variant 3, and each node
// applies eq. (6) per subject at the end.
func GCLRAll(g *graph.Graph, t *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range t.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	// Feedback phase: each node pushes its trust vector to each neighbour.
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, t, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

// GCLRAllFromReports is GCLRAll where the values pushed into the gossip phase
// come from a separate "reported" matrix while the neighbour-feedback phase
// and the confidence weights use the honest direct-interaction matrix. This
// is exactly the collusion threat model of §5.2: colluders can lie in what
// they gossip (third mechanism) but direct experience and neighbour feedback
// are unaffected.
func GCLRAllFromReports(g *graph.Graph, honest, reported *trust.Matrix, p Params) (*AllResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, honest); err != nil {
		return nil, err
	}
	if reported == nil || reported.N() != honest.N() {
		return nil, errSize(reported, honest)
	}
	n := g.N()
	y0 := zeros(n)
	g0 := zeros(n)
	c0 := zeros(n)
	for j := 0; j < n; j++ {
		g0[p.Root][j] = 1
	}
	for i := 0; i < n; i++ {
		for j, v := range reported.Row(i) {
			y0[i][j] = v
			c0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	e.CountVectorMessages()
	e.ChargeSetup(2 * g.M() * n)
	res := e.Run()

	out := &AllResult{
		Reputation: zeros(n),
		Counts:     res.Counts,
		Steps:      res.Steps,
		Converged:  res.Converged,
		Messages:   res.Messages,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Reputation[i][j] = combineGCLR(g, honest, i, j, p, res.Estimates[i][j], res.Counts[i][j])
		}
	}
	return out, nil
}

func zeros(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}
