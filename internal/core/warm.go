package core

import (
	"math"
	"sort"
	"sync"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
)

// warmMinSteps is the convergence floor for warm-started campaigns. A warm
// restart injects the feedback delta at the changed raters, and a node's own
// ratio is invariant under pushing — without a floor the injected node could
// announce convergence on step one, before its delta has mixed anywhere. A
// few forced rounds give the delta wave time to spread; the revocable
// convergence protocol handles the rest.
const warmMinSteps = 4

// overlayCache shares the synthetic rater overlays across all campaigns and
// workers, keyed by rater count: the overlay depends only on k, and graph
// reads are safe for concurrent use.
var overlayCache sync.Map // int -> *graph.Graph

// overlayGraph returns the k-node circulant overlay a sparse campaign runs
// on: node i connects to i±1, i±2, i±4, … (powers of two below k), giving
// degree ~2·log₂k and O(log k) diameter, so push-sum over it converges in
// O(log k · log(1/ξ))-class step counts regardless of how large the real
// network is. The overlay is a pure function of k — every shard, worker and
// replica derives the identical graph, which keeps campaign results
// partition-invariant.
func overlayGraph(k int) *graph.Graph {
	if v, ok := overlayCache.Load(k); ok {
		return v.(*graph.Graph)
	}
	g := graph.New(k)
	for d := 1; d < k; d *= 2 {
		for i := 0; i < k; i++ {
			u, v := i, (i+d)%k
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				panic(err) // guarded against self-loops and duplicates above
			}
		}
	}
	actual, _ := overlayCache.LoadOrStore(k, g)
	return actual.(*graph.Graph)
}

// seedScratch is a worker's reusable (y0, g0) seed block for dense
// campaigns. Instead of zeroing all N slots before every campaign, it tracks
// which slots the previous seed dirtied and scrubs exactly those — so
// seeding a k-rater campaign costs O(k), not O(N). A warm seed overwrites
// the whole block and marks it fully dirty.
type seedScratch struct {
	y, g    []float64
	touched []int
	full    bool
}

func newSeedScratch(n int) *seedScratch {
	return &seedScratch{y: make([]float64, n), g: make([]float64, n)}
}

// scrub zeroes the slots the previous seed dirtied.
func (s *seedScratch) scrub() {
	if s.full {
		clear(s.y)
		clear(s.g)
		s.full = false
	} else {
		for _, i := range s.touched {
			s.y[i] = 0
			s.g[i] = 0
		}
	}
	s.touched = s.touched[:0]
}

// seedCold scatters a from-scratch campaign seed: value mass at each rater,
// unit weight, zeros elsewhere.
func (s *seedScratch) seedCold(ids []int, vals []float64) {
	s.scrub()
	for k, i := range ids {
		s.y[i] = vals[k]
		s.g[i] = 1
	}
	s.touched = append(s.touched, ids...)
}

// seedWarm loads a dense recorded state and injects the trust-column delta:
// existing raters contribute their value change, new raters add fresh value
// and weight mass. Mass totals then equal exactly what a cold seed of the
// new column would carry, so the restarted campaign shares its fixed point.
// It reports false — without touching the scratch — when the state is not
// mergeable (a recorded rater no longer rates the subject: removed weight
// mass cannot be clawed back out of a mixed-in state).
func (s *seedScratch) seedWarm(ws *gossip.CampaignState, ids []int, vals []float64) bool {
	if !subsetOf(ws.Raters, ids) {
		return false
	}
	copy(s.y, ws.Y)
	copy(s.g, ws.G)
	o := 0
	for k, i := range ids {
		if o < len(ws.Raters) && ws.Raters[o] == i {
			s.y[i] += vals[k] - ws.PrevVals[o]
			o++
		} else {
			s.y[i] += vals[k]
			s.g[i] += 1
		}
	}
	s.touched = s.touched[:0]
	s.full = true
	return true
}

// subsetOf reports whether every element of sub appears in sup; both must be
// strictly ascending.
func subsetOf(sub, sup []int) bool {
	o := 0
	for _, v := range sup {
		if o < len(sub) && sub[o] == v {
			o++
		}
	}
	return o == len(sub)
}

// sameIDs reports whether a and b hold identical id sequences.
func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// sameVals reports whether a and b hold bit-identical value sequences. An
// unchanged campaign — same raters, same values — needs no recompute at all:
// its fixed point is the one the recorded state already reached.
func sameVals(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// stateColumn reproduces a campaign's result column straight from its
// persisted state, bit-identically to what the recording run published: the
// engine's estimate is y/g where the weight slot is non-empty and zero where
// it is, and a sparse campaign's column is overlay node 0's estimate
// broadcast to every node.
func stateColumn(ws *gossip.CampaignState, col []float64) {
	if ws.Sparse {
		est := 0.0
		if ws.G[0] > 0 {
			est = ws.Y[0] / ws.G[0]
		}
		for i := range col {
			col[i] = est
		}
		return
	}
	for i := range col {
		if ws.G[i] > 0 {
			col[i] = ws.Y[i] / ws.G[i]
		} else {
			col[i] = 0
		}
	}
}

// captureState snapshots a finished campaign's masses and the column it
// folded, for persisting as next epoch's warm seed.
func captureState(eng *gossip.VectorEngine, sparse bool, ids []int, vals []float64, steps, size int, conv bool) *gossip.CampaignState {
	st := &gossip.CampaignState{
		Sparse:    sparse,
		Raters:    append([]int(nil), ids...),
		PrevVals:  append([]float64(nil), vals...),
		Y:         make([]float64, size),
		G:         make([]float64, size),
		Steps:     steps,
		Converged: conv,
	}
	eng.ExportState(st.Y, st.G, 0)
	return st
}

// scheduleOrder returns the order workers pull campaigns in:
// longest-estimated-first, so the one straggler that dominates an epoch's
// critical path starts immediately instead of last. The estimate multiplies
// the campaign's per-step cost (overlay size for sparse campaigns, N for
// dense ones) by an expected step count — a handful of steps when a usable
// warm state is on record, the log²-shaped budget otherwise. Results are
// identical for any order; only the wall-clock changes.
func scheduleOrder(t ColumnSource, subjects []int, p Params, n, sparseMax, workers int) []int {
	order := make([]int, len(subjects))
	for i := range order {
		order[i] = i
	}
	if workers <= 1 || len(subjects) < 2 {
		return order
	}
	cs, ok := t.(interface{ ColumnSum(int) (float64, int) })
	if !ok {
		return order
	}
	cost := make([]float64, len(subjects))
	for i, j := range subjects {
		_, k := cs.ColumnSum(j)
		if k == 0 {
			continue
		}
		size := n
		sparse := sparseMax > 0 && k <= sparseMax
		if sparse {
			size = k
		}
		if size == 1 {
			cost[i] = 1
			continue
		}
		l := math.Log2(float64(size) + 1)
		est := l*l + 1
		if p.Warm != nil {
			if ws := p.Warm(j); ws != nil && ws.Sparse == sparse && len(ws.Raters) == k {
				est = warmMinSteps + 2
			}
		}
		cost[i] = est * float64(size)
	}
	sort.Slice(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] > cost[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
