package core

import (
	"fmt"

	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// errSize builds the mismatch error shared by the report-based entry points.
func errSize(reported, honest *trust.Matrix) error {
	return fmt.Errorf("core: reported matrix size %d does not match honest matrix size %d",
		sizeOf(reported), sizeOf(honest))
}

// GlobalRef computes, without gossip, the exact fixed point Algorithm 1
// converges to for subject j: the mean direct trust over j's raters. Any
// trust.Reader qualifies — the live matrix, a frozen shard column set, or
// the service's stitched view.
func GlobalRef(t trust.Reader, j int) float64 {
	sum, cnt := t.ColumnSum(j)
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// GCLRRef computes, without gossip, the exact fixed point Algorithm 2
// converges to at observer node i for subject j (eq. (6) with the rater-count
// denominator of the algorithm box). The weighted set is every node i has
// interacted with, matching combineGCLR.
func GCLRRef(g *graph.Graph, t trust.Reader, i, j int, p Params) float64 {
	_ = g
	p = p.withDefaults()
	return trust.WeightedColumn(t, i, j, t.InteractedWith(i), p.Weights, true)
}

// GCLRRefAll evaluates GCLRRef for every (observer, subject) pair; the
// centralised oracle the gossip results and the collusion experiments are
// compared against.
func GCLRRefAll(g *graph.Graph, t *trust.Matrix, p Params) [][]float64 {
	n := t.N()
	out := zeros(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i][j] = GCLRRef(g, t, i, j, p)
		}
	}
	return out
}
