package core

import (
	"testing"

	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// subjectsWorkload builds a moderately sparse rating workload: ~40% of the
// (rater, subject) pairs hold a value, a few subjects have no raters at all.
func subjectsWorkload(t *testing.T, n int, seed uint64) *trust.Matrix {
	t.Helper()
	src := rng.New(seed)
	tm := trust.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || j%13 == 7 { // subjects ≡7 mod 13 stay unrated
				continue
			}
			if src.Bool(0.4) {
				if err := tm.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tm
}

// TestGlobalSubjectsPartitionInvariant is the core half of the sharding
// acceptance criterion: computing the subject space in ANY partition (S ∈
// {1, 4, 17} modulo shards), at any worker count, reproduces GlobalAll's
// values bit for bit — per-subject randomness split by subject id makes a
// subject's campaign independent of everything around it.
func TestGlobalSubjectsPartitionInvariant(t *testing.T) {
	const n = 60
	g, tm := denseWorkload(t, n, 0.3, 91)
	_ = tm
	tm = subjectsWorkload(t, n, 92)
	p := params(1e-6, 93)

	all, err := GlobalAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 17} {
		for _, workers := range []int{0, 3, -1} {
			ps := p
			ps.Workers = workers
			got := make([][]float64, n) // got[j] = column j
			for sh := 0; sh < shards; sh++ {
				var subjects []int
				for j := sh; j < n; j += shards {
					subjects = append(subjects, j)
				}
				res, err := GlobalSubjects(g, tm, subjects, ps)
				if err != nil {
					t.Fatal(err)
				}
				for k, j := range res.Subjects {
					got[j] = res.Columns[k]
				}
			}
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					if got[j][i] != all.Reputation[i][j] {
						t.Fatalf("S=%d workers=%d subject %d node %d: sharded %v != GlobalAll %v",
							shards, workers, j, i, got[j][i], all.Reputation[i][j])
					}
				}
			}
		}
	}
}

// TestGlobalSubjectsFromFrozenColumns: folding from a frozen trust.Columns
// slice produces exactly what folding from the live matrix does — the
// service freezes shard columns before folding.
func TestGlobalSubjectsFromFrozenColumns(t *testing.T) {
	const n = 40
	g, _ := denseWorkload(t, n, 0.3, 51)
	tm := subjectsWorkload(t, n, 52)
	p := params(1e-6, 53)
	subjects := []int{1, 5, 7, 12, 33, 39}

	cols, err := trust.ColumnsOf(tm, subjects)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GlobalSubjects(g, tm, subjects, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GlobalSubjects(g, cols, subjects, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range subjects {
		for i := 0; i < n; i++ {
			if a.Columns[k][i] != b.Columns[k][i] {
				t.Fatalf("subject %d node %d: matrix %v != columns %v", subjects[k], i, a.Columns[k][i], b.Columns[k][i])
			}
		}
	}
	if a.Computed != b.Computed || a.Steps != b.Steps || a.Converged != b.Converged {
		t.Fatalf("metadata drifted: %+v vs %+v", a, b)
	}
}

// TestGlobalSubjectsSkipsUnratedSubjects: subjects nobody rated produce a
// zero column and run no campaign.
func TestGlobalSubjectsSkipsUnrated(t *testing.T) {
	const n = 30
	g, _ := denseWorkload(t, n, 0.3, 61)
	tm := trust.NewMatrix(n)
	if err := tm.Set(2, 9, 0.7); err != nil {
		t.Fatal(err)
	}
	res, err := GlobalSubjects(g, tm, []int{7, 9, 20}, params(1e-6, 62))
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 1 {
		t.Fatalf("Computed = %d, want 1 (only subject 9 is rated)", res.Computed)
	}
	for _, k := range []int{0, 2} { // subjects 7 and 20
		for i := 0; i < n; i++ {
			if res.Columns[k][i] != 0 {
				t.Fatalf("unrated subject %d has non-zero estimate at node %d", res.Subjects[k], i)
			}
		}
	}
	if res.Raters[1] != 1 {
		t.Fatalf("Raters for subject 9 = %d, want 1", res.Raters[1])
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
}

// TestGlobalSubjectsValidates rejects malformed subject sets.
func TestGlobalSubjectsValidates(t *testing.T) {
	g, tm := denseWorkload(t, 20, 0.3, 71)
	p := params(1e-6, 72)
	if _, err := GlobalSubjects(g, tm, []int{3, 3}, p); err == nil {
		t.Error("duplicate subject accepted")
	}
	if _, err := GlobalSubjects(g, tm, []int{-1}, p); err == nil {
		t.Error("negative subject accepted")
	}
	if _, err := GlobalSubjects(g, tm, []int{20}, p); err == nil {
		t.Error("out-of-range subject accepted")
	}
	if res, err := GlobalSubjects(g, tm, nil, p); err != nil || len(res.Columns) != 0 {
		t.Errorf("empty subject set should be a trivial success, got (%v, %v)", res, err)
	}
}
