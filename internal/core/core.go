// Package core implements the paper's primary contribution: Differential
// Gossip Trust, the four reputation-aggregation algorithm variants of §4.1.2
// built on the differential push-sum engine.
//
//   - Algorithm 1 (GlobalSingle): global reputation of one subject node —
//     every rater starts with gossip weight 1, so all nodes converge to the
//     mean direct-interaction trust of the subject over its raters.
//   - Algorithm 2 (GCLRSingle): globally calibrated local reputation of one
//     subject — neighbours' direct feedback is folded in with confidence
//     weights w = a^(b·t) (eq. 2), the gossip computes the network-wide sum
//     and rater count (weight 1 at a single root), and each node combines
//     them by eq. (6).
//   - Variant 3 (GlobalAll): Algorithm 1 for all subjects simultaneously,
//     gossiping whole vectors with the L1 convergence rule (7).
//   - Variant 4 (GCLRAll): Algorithm 2 for all subjects simultaneously.
//
// All four share Params and are deterministic given Params.Seed.
package core

import (
	"fmt"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// Params configures a Differential Gossip Trust run.
type Params struct {
	// Epsilon is the gossip error tolerance ξ.
	Epsilon float64
	// Weights are the confidence-weight parameters (a_i, b_ij), used by the
	// GCLR variants. Zero value is replaced by trust.DefaultWeightParams.
	Weights trust.WeightParams
	// Protocol selects the push rule; default differential push.
	Protocol gossip.Protocol
	// FixedK is the fan-out for gossip.FixedPush.
	FixedK int
	// LossProb injects churn/packet loss into every push.
	LossProb float64
	// MaxSteps caps gossip steps (0 = engine default).
	MaxSteps int
	// Seed drives all randomness.
	Seed uint64
	// Root is the node carrying the unit gossip weight in the sum-mode
	// variants (Algorithm 2's "g_1 = 1"). Defaults to node 0.
	Root int
	// Workers parallelises the vector variants' per-step work; results are
	// bit-identical for any value. 0/1 sequential, negative = GOMAXPROCS.
	Workers int
	// SparseRaterFrac enables restricted-overlay campaigns in
	// GlobalSubjects: a subject whose rater count k is at most
	// SparseRaterFrac·N runs its push-sum over a synthetic k-node overlay of
	// its raters instead of the full graph, so campaign cost scales with the
	// raters, not N. The fixed point is unchanged (the mass-weighted mean is
	// topology-independent); the per-node micro-estimates differ within the
	// same ξ tolerance. 0 or negative keeps every campaign on the full graph
	// — the default, which the paper-experiment paths rely on for
	// bit-stability.
	SparseRaterFrac float64
	// Warm, when set, supplies the previous epoch's converged campaign
	// state for a subject (nil = none). GlobalSubjects seeds matching
	// campaigns from it — injecting the trust-column delta as mass
	// corrections — and falls back to a cold start when the state does not
	// fit (rater removed, campaign mode changed, wrong shape). Warm-started
	// results stay within the configured ξ of the cold fixed point but are
	// not bit-identical to a cold run, so replicas that pin bit-equality
	// must not set it.
	Warm func(subject int) *gossip.CampaignState
	// KeepStates records each computed campaign's final state in
	// SubjectsResult.States, for the caller to persist and feed back as
	// Warm next epoch.
	KeepStates bool
}

func (p Params) withDefaults() Params {
	if p.Weights == (trust.WeightParams{}) {
		p.Weights = trust.DefaultWeightParams
	}
	if p.Epsilon == 0 {
		p.Epsilon = 1e-4
	}
	return p
}

func (p Params) gossipConfig(g *graph.Graph) gossip.Config {
	return gossip.Config{
		Graph:    g,
		Protocol: p.Protocol,
		FixedK:   p.FixedK,
		Epsilon:  p.Epsilon,
		LossProb: p.LossProb,
		MaxSteps: p.MaxSteps,
		Seed:     p.Seed,
		Workers:  p.Workers,
	}
}

func (p Params) validate(g *graph.Graph, t *trust.Matrix) error {
	if g == nil || g.N() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	if t == nil || t.N() != g.N() {
		return fmt.Errorf("core: trust matrix size %d does not match graph size %d", sizeOf(t), g.N())
	}
	if err := p.Weights.Validate(); err != nil {
		return err
	}
	if p.Root < 0 || p.Root >= g.N() {
		return fmt.Errorf("core: root %d out of range [0,%d)", p.Root, g.N())
	}
	return nil
}

func sizeOf(t *trust.Matrix) int {
	if t == nil {
		return -1
	}
	return t.N()
}

// Estimate is one node's view of one subject after aggregation.
type Estimate struct {
	// Reputation is the aggregated trust value.
	Reputation float64
	// RaterCount is the estimated number of direct raters (GCLR variants
	// only; 0 otherwise).
	RaterCount float64
}

// SingleResult is the outcome of a single-subject aggregation.
type SingleResult struct {
	// Subject is the node whose reputation was aggregated.
	Subject int
	// PerNode[i] is node i's estimate of the subject's reputation.
	PerNode []float64
	// Counts[i] is node i's rater-count estimate (Algorithm 2 only).
	Counts []float64
	// Steps, Converged and Messages report the underlying gossip run.
	Steps     int
	Converged bool
	Messages  gossip.Messages
}

// SubjectsResult is the outcome of a subject-subset aggregation
// (GlobalSubjects): per-subject result columns plus aggregate run metadata.
type SubjectsResult struct {
	// Subjects echoes the requested subjects, in request order.
	Subjects []int
	// Columns[s][i] is node i's estimate for Subjects[s] (all zeros for a
	// subject nobody rated).
	Columns [][]float64
	// Raters[s] is the number of direct raters of Subjects[s].
	Raters []int
	// Computed counts the campaigns that actually ran — subjects with at
	// least one rater; the rest cost no gossip. The service's fold counter
	// sums this across epochs to prove dirty-shard incrementality.
	Computed int
	// Steps is the slowest campaign's step count; Converged is true only if
	// every campaign converged within its budget.
	Steps     int
	Converged bool
	// TotalSteps sums every campaign's step count — the epoch-compute cost
	// meter the warm-start benchmarks compare (Steps is the max, not the
	// sum). StepsBySubject[s] is campaign s's own count, −1 for subjects
	// that ran no campaign.
	TotalSteps     int
	StepsBySubject []int
	// WarmStarts and ColdStarts split Computed by how each campaign was
	// seeded: from a previous epoch's recorded state (warm) or from the
	// trust column alone (cold).
	WarmStarts, ColdStarts int
	// States[s] is campaign s's final recorded state when Params.KeepStates
	// is set (nil for subjects that ran no campaign or whose state is not
	// worth keeping).
	States []*gossip.CampaignState
	// Messages sums the campaigns' tallies plus one shared degree exchange.
	Messages gossip.Messages
}

// AllResult is the outcome of a simultaneous all-subjects aggregation.
type AllResult struct {
	// Reputation[i][j] is node i's estimate for subject j.
	Reputation [][]float64
	// Counts[i][j] is node i's rater-count estimate for subject j (GCLR
	// variant only).
	Counts    [][]float64
	Steps     int
	Converged bool
	Messages  gossip.Messages
}
