package core

import (
	"math"
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

func sessionFixture(t *testing.T) (*graph.Graph, *trust.Matrix) {
	t.Helper()
	g := graph.MustPA(60, 2, 200)
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N: 60, Density: 0.2, NeighborDensity: 1, Adjacent: g.HasEdge, Seed: 201,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, w.Matrix
}

func TestSessionValidation(t *testing.T) {
	g, tm := sessionFixture(t)
	if _, err := NewSession(nil, tm, SessionConfig{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewSession(g, trust.NewMatrix(10), SessionConfig{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewSession(g, tm, SessionConfig{Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := NewSession(g, tm, SessionConfig{DropAfterRounds: -1}); err == nil {
		t.Fatal("negative drop-after accepted")
	}
	s, err := NewSession(g, nil, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Reputations() != nil {
		t.Fatal("reputations non-nil before first round")
	}
}

func TestSessionFirstRoundPushesEverything(t *testing.T) {
	g, tm := sessionFixture(t)
	s, err := NewSession(g, tm, SessionConfig{
		Params: Params{Epsilon: 1e-4, Seed: 202},
		Delta:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.Round != 1 || s.Round() != 1 {
		t.Fatalf("round bookkeeping wrong: %+v", rpt)
	}
	if rpt.FeedbackPushed != tm.NumEntries() {
		t.Fatalf("first round pushed %d of %d entries", rpt.FeedbackPushed, tm.NumEntries())
	}
	if rpt.FeedbackSuppressed != 0 {
		t.Fatalf("first round suppressed %d", rpt.FeedbackSuppressed)
	}
	if !rpt.Converged || rpt.Steps == 0 {
		t.Fatalf("round gossip: %+v", rpt)
	}
	if s.Reputations() == nil {
		t.Fatal("no reputations after round")
	}
}

func TestSessionDeltaSuppressesUnchangedFeedback(t *testing.T) {
	g, tm := sessionFixture(t)
	s, err := NewSession(g, tm, SessionConfig{
		Params: Params{Epsilon: 1e-4, Seed: 203},
		Delta:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	// No trust changes: round 2 must push nothing.
	rpt, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FeedbackPushed != 0 {
		t.Fatalf("unchanged round pushed %d entries", rpt.FeedbackPushed)
	}
	if rpt.FeedbackSuppressed != tm.NumEntries() {
		t.Fatalf("suppressed %d of %d", rpt.FeedbackSuppressed, tm.NumEntries())
	}
	// A large change at one pair must be re-pushed; a tiny one must not.
	big := 1.0
	if v := tm.Value(0, 1); v > 0.5 {
		big = 0.0
	}
	if err := s.UpdateTrust(0, 1, big); err != nil {
		t.Fatal(err)
	}
	rpt, err = s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FeedbackPushed != 1 {
		t.Fatalf("round 3 pushed %d, want exactly the changed entry", rpt.FeedbackPushed)
	}
}

func TestSessionReputationTracksChange(t *testing.T) {
	// A peer's behaviour collapses; after the next round its reputation
	// must fall.
	g, tm := sessionFixture(t)
	subject := 5
	s, err := NewSession(g, tm, SessionConfig{
		Params: Params{Epsilon: 1e-5, Seed: 204},
		Delta:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	before := s.Reputations()[0][subject]
	for i := 0; i < 60; i++ {
		if i != subject && tm.Has(i, subject) {
			if err := s.UpdateTrust(i, subject, 0.01); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	after := s.Reputations()[0][subject]
	if after >= before {
		t.Fatalf("reputation did not fall after defection: %v -> %v", before, after)
	}
	if after > 0.2 {
		t.Fatalf("reputation %v still high after universal defection", after)
	}
}

func TestSessionSilenceExpiry(t *testing.T) {
	g, tm := sessionFixture(t)
	ghost := 7
	s, err := NewSession(g, tm, SessionConfig{
		Params:          Params{Epsilon: 1e-4, Seed: 205},
		Delta:           0.05,
		DropAfterRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	s.MarkSilent(ghost)
	if rpt, err := s.RunRound(); err != nil || rpt.Dropped != 0 {
		t.Fatalf("dropped too early: %+v, %v", rpt, err)
	}
	s.MarkSilent(ghost)
	rpt, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.Dropped == 0 {
		t.Fatal("silent peer's feedback not dropped")
	}
	// All feedback from and about the ghost is gone.
	if len(s.current.Row(ghost)) != 0 {
		t.Fatal("ghost's outgoing feedback survives")
	}
	for i := 0; i < 60; i++ {
		if s.current.Has(i, ghost) {
			t.Fatalf("feedback about ghost survives at %d", i)
		}
	}
	// MarkActive clears the counter.
	s.MarkActive(ghost)
	if s.absent[ghost] != 0 {
		t.Fatal("MarkActive did not clear silence")
	}
}

func TestSessionLagBoundedByDelta(t *testing.T) {
	// With Δ-gating, the aggregated estimate uses values at most Δ stale:
	// a change smaller than Δ is invisible, a larger one shows up.
	g, _ := sessionFixture(t)
	tm := trust.NewMatrix(60)
	for i := 1; i < 60; i++ {
		if err := tm.Set(i, 0, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSession(g, tm, SessionConfig{
		Params: Params{Epsilon: 1e-6, Seed: 206},
		Delta:  0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	r1 := s.Reputations()[1][0]
	// Shift everyone by < Δ: no re-push, reputation unchanged.
	for i := 1; i < 60; i++ {
		if err := s.UpdateTrust(i, 0, 0.55); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	r2 := s.Reputations()[1][0]
	if math.Abs(r2-r1) > 1e-9 {
		t.Fatalf("sub-Δ change visible: %v -> %v", r1, r2)
	}
	// Shift beyond Δ: must show, matching the eq. (6) oracle on the new
	// values (the weighted denominator includes interacted nodes that
	// never rated the subject, so the value sits below the raw 0.8).
	updated := trust.NewMatrix(60)
	for i := 1; i < 60; i++ {
		if err := s.UpdateTrust(i, 0, 0.8); err != nil {
			t.Fatal(err)
		}
		if err := updated.Set(i, 0, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.RunRound(); err != nil {
		t.Fatal(err)
	}
	r3 := s.Reputations()[1][0]
	want := GCLRRef(g, updated, 1, 0, s.cfg.Params)
	if math.Abs(r3-want) > 5e-3 {
		t.Fatalf("super-Δ change not reflected: %v, oracle %v", r3, want)
	}
	if r3 <= r2+0.1 {
		t.Fatalf("reputation barely moved: %v -> %v", r2, r3)
	}
}
