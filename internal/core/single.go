package core

import (
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// GlobalSingle runs the paper's Algorithm 1: global reputation aggregation
// for the single subject node j. Every node i holding direct-interaction
// trust t_ij starts with gossip pair (t_ij, 1); everyone else with (0, 0).
// Differential push-sum then drives every node's ratio to
//
//	R_j = Σ_i t_ij / #raters(j),
//
// the subject's mean direct trust over its raters.
func GlobalSingle(g *graph.Graph, t *trust.Matrix, j int, p Params) (*SingleResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := make([]float64, n)
	g0 := make([]float64, n)
	for i := 0; i < n; i++ {
		if v, ok := t.Get(i, j); ok {
			y0[i] = v
			g0[i] = 1
		}
	}
	e, err := gossip.NewEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	res := e.Run()
	return &SingleResult{
		Subject:   j,
		PerNode:   res.Estimates,
		Steps:     res.Steps,
		Converged: res.Converged,
		Messages:  res.Messages,
	}, nil
}

// GCLRSingle runs the paper's Algorithm 2: globally calibrated local
// reputation of the single subject j. The protocol has three phases:
//
//  1. Feedback push: every node sends its direct feedback about j to all
//     neighbours (charged to Messages.Setup), so each node i can compute
//     ŷ_ij = Σ_{k ∈ NS_i} (w_ik − 1) · t_kj with w_ik = a^(b·t_ik).
//  2. Sum gossip: the trio (y, g, count) starts as (t_ij, 0, 1) at raters and
//     (0, 0, 0) elsewhere, except the root (paper: node 1) whose g is 1.
//     The ratios converge to Σ_i t_ij and the rater count N_d.
//  3. Combination, eq. (6): each node outputs
//     Rep_ij = (ŷ_ij + y/g) / (Σ_k (w_ik − 1) + count/g).
func GCLRSingle(g *graph.Graph, t *trust.Matrix, j int, p Params) (*SingleResult, error) {
	p = p.withDefaults()
	if err := p.validate(g, t); err != nil {
		return nil, err
	}
	n := g.N()
	y0 := make([]float64, n)
	g0 := make([]float64, n)
	c0 := make([]float64, n)
	g0[p.Root] = 1
	for i := 0; i < n; i++ {
		if v, ok := t.Get(i, j); ok {
			y0[i] = v
			c0[i] = 1
		}
	}
	e, err := gossip.NewEngine(p.gossipConfig(g), y0, g0)
	if err != nil {
		return nil, err
	}
	if err := e.EnableCountGossip(c0); err != nil {
		return nil, err
	}
	// Phase 1 cost: every node pushes its feedback about j to each
	// neighbour (one message per directed edge).
	e.ChargeSetup(2 * g.M())
	res := e.Run()

	out := &SingleResult{
		Subject:   j,
		PerNode:   make([]float64, n),
		Counts:    res.Counts,
		Steps:     res.Steps,
		Converged: res.Converged,
		Messages:  res.Messages,
	}
	for i := 0; i < n; i++ {
		out.PerNode[i] = combineGCLR(g, t, i, j, p, res.Estimates[i], res.Counts[i])
	}
	return out, nil
}

// combineGCLR applies eq. (6) at node i: fold the feedback of every node i
// has interacted with (weighted by confidence minus the baseline weight 1)
// into the gossiped sum and rater count. The paper defines the neighbour set
// NS_i by interaction, not overlay adjacency, so the weighted set is the
// trust row of i; iteration is in sorted order to keep float summation
// deterministic.
func combineGCLR(g *graph.Graph, t *trust.Matrix, i, j int, p Params, sumEst, countEst float64) float64 {
	_ = g // overlay structure does not constrain the weighted set
	yhat := 0.0
	wsum := 0.0
	for _, k := range t.InteractedWith(i) {
		w := p.Weights.Weight(t.Value(i, k))
		yhat += (w - 1) * t.Value(k, j)
		wsum += w - 1
	}
	den := wsum + countEst
	if den <= 0 {
		return 0
	}
	return (yhat + sumEst) / den
}
