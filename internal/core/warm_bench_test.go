package core

import (
	"fmt"
	"testing"
)

// BenchmarkSeedScratch pins the satellite fix for the O(N) zero-fill on
// campaign reset: seeding a k-rater campaign into an N-slot scratch must
// cost O(k) — the dirty-extent scrub touches only the slots the previous
// seed dirtied, so the per-campaign cost tracks the active rater set, not
// the network size. Before the fix every campaign paid two N-length clears;
// the k=4 and k=512 rows then benched identically.
func BenchmarkSeedScratch(b *testing.B) {
	const n = 4096
	for _, k := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			s := newSeedScratch(n)
			ids := make([]int, k)
			vals := make([]float64, k)
			for x := range ids {
				ids[x] = x * (n / k)
				vals[x] = 0.5
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.seedCold(ids, vals)
			}
		})
	}
}
