package p2p

import (
	"sync"

	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// message is the union of overlay message kinds. Exactly one pointer field is
// set.
type message struct {
	query    *queryMsg
	hit      *hitMsg
	request  *requestMsg
	response *responseMsg
}

// queryMsg floods the overlay looking for a resource.
type queryMsg struct {
	id       int64 // unique query id for duplicate suppression
	origin   int
	resource int
	ttl      int
}

// hitMsg travels straight back to the origin (overlay networks answer
// out-of-band over the underlay).
type hitMsg struct {
	queryID int64
	holder  int
}

// requestMsg asks the holder to transfer the resource.
type requestMsg struct {
	queryID   int64
	requester int
	resource  int
}

// responseMsg delivers the resource with a service quality in [0,1];
// quality 0 means the holder refused.
type responseMsg struct {
	queryID  int64
	holder   int
	resource int
	quality  float64
}

// Peer is one participant. Behavioural state is guarded by mu because the
// peer's goroutine, the router and the Network's snapshot methods all touch
// it.
type Peer struct {
	id            int
	decency       float64 // ground-truth service quality this peer delivers
	free          bool    // free rider flag
	strangerPrior float64 // reputation granted to unknown peers

	mu         sync.Mutex
	resources  map[int]bool
	estimators map[int]*trust.Estimator // direct trust per counterparty
	globalRep  []float64                // last aggregated reputation vector
	seenQuery  map[int64]bool           // duplicate suppression for floods
	hits       map[int64][]int          // responders per outstanding query
	want       map[int64]int            // resource wanted per outstanding query

	src   *rng.Source
	inbox chan message
	done  chan struct{}
}

// newPeer constructs a peer with its own random stream and mailbox.
func newPeer(id int, decency float64, free bool, src *rng.Source) *Peer {
	return &Peer{
		id:         id,
		decency:    decency,
		free:       free,
		resources:  make(map[int]bool),
		estimators: make(map[int]*trust.Estimator),
		seenQuery:  make(map[int64]bool),
		hits:       make(map[int64][]int),
		want:       make(map[int64]int),
		src:        src,
		inbox:      make(chan message, 4096),
		done:       make(chan struct{}),
	}
}

// ID returns the peer id.
func (p *Peer) ID() int { return p.id }

// Decency returns the peer's ground-truth service quality.
func (p *Peer) Decency() float64 { return p.decency }

// IsFreeRider reports whether the peer was assigned the free-riding role.
func (p *Peer) IsFreeRider() bool { return p.free }

// HasResource reports whether the peer currently holds the resource.
func (p *Peer) HasResource(r int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resources[r]
}

// NumResources returns the peer's current catalogue size.
func (p *Peer) NumResources() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.resources)
}

// TrustIn returns the peer's direct trust estimate for peer j and whether any
// transaction backs it.
func (p *Peer) TrustIn(j int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	est, ok := p.estimators[j]
	if !ok || est.Count() == 0 {
		return 0, false
	}
	return est.Value(), true
}

// reputationOf combines direct experience with the aggregated global vector:
// direct experience wins when present (the paper's first mechanism),
// otherwise the gossip-aggregated value is used. With neither, the
// configured stranger prior applies: 0 keeps the peer "unknown" (the paper's
// whitewash-proof default), anything higher grants strangers that standing.
func (p *Peer) reputationOf(j int) (rep float64, known bool) {
	if est, ok := p.estimators[j]; ok && est.Count() > 0 {
		return est.Value(), true
	}
	if j < len(p.globalRep) && p.globalRep[j] > 0 {
		return p.globalRep[j], true
	}
	if p.strangerPrior > 0 {
		return p.strangerPrior, true
	}
	return 0, false
}

// recordTransaction folds a delivered quality into the estimator for j.
func (p *Peer) recordTransaction(j int, quality float64) {
	est, ok := p.estimators[j]
	if !ok {
		est, _ = trust.NewEstimator(trust.EstimatorConfig{Prior: 0, Discount: 0.98})
		p.estimators[j] = est
	}
	// quality is clamped by construction; Record only errors on NaN or
	// out-of-range input, which would be a simulator bug.
	if err := est.Record(quality); err != nil {
		panic("p2p: invalid transaction quality: " + err.Error())
	}
}

// serviceQuality decides how well this peer serves the requester, given the
// requester's reputation: the reputation-gated allocation of §3. Free riders
// defect regardless of who asks.
func (p *Peer) serviceQuality(requester int, cfg *Config) float64 {
	if p.free {
		// Free riders serve at their (near-zero) decency only
		// occasionally.
		if p.src.Bool(0.2) {
			return p.decency * p.src.Float64()
		}
		return 0
	}
	rep, known := p.reputationOf(requester)
	if !known {
		// Stranger: bootstrap allowance.
		if p.src.Bool(cfg.ServeUnknownProb) {
			return p.noisyDecency()
		}
		return 0
	}
	if rep >= cfg.ReputationThreshold {
		return p.noisyDecency()
	}
	// Below threshold: degrade proportionally — the incentive gradient
	// that rewards contribution.
	return p.noisyDecency() * (rep / cfg.ReputationThreshold)
}

// noisyDecency is the peer's decency with small observation noise.
func (p *Peer) noisyDecency() float64 {
	q := p.decency + 0.05*p.src.NormFloat64()
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
