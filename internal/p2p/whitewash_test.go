package p2p

import (
	"testing"

	"diffgossip/internal/graph"
)

func TestResetIdentityClearsHistory(t *testing.T) {
	cfg := testConfig(60, 90)
	cfg.QueriesPerRound = 0.9
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	// Find a peer someone has direct experience with.
	target := -1
	for j := 0; j < net.N() && target < 0; j++ {
		for i := 0; i < net.N(); i++ {
			if i == j {
				continue
			}
			if _, known := net.Peer(i).TrustIn(j); known {
				target = j
				break
			}
		}
	}
	if target < 0 {
		t.Skip("no direct experience accumulated")
	}
	rep := make([]float64, net.N())
	for j := range rep {
		rep[j] = 0.5
	}
	if err := net.SetGlobalReputation(rep); err != nil {
		t.Fatal(err)
	}
	if err := net.ResetIdentity(target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N(); i++ {
		if i == target {
			continue
		}
		if _, known := net.Peer(i).TrustIn(target); known {
			t.Fatalf("peer %d still has direct trust in laundered identity %d", i, target)
		}
	}
}

func TestResetIdentityRange(t *testing.T) {
	net, err := NewNetwork(testConfig(10, 91))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.ResetIdentity(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := net.ResetIdentity(10); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestStrangerPriorGrantsStanding(t *testing.T) {
	cfg := testConfig(10, 92)
	cfg.StrangerPrior = 0.7
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	p := net.Peer(0)
	p.mu.Lock()
	rep, known := p.reputationOf(5)
	p.mu.Unlock()
	if !known || rep != 0.7 {
		t.Fatalf("stranger prior not applied: %v, %v", rep, known)
	}
}

func TestStrangerPriorValidation(t *testing.T) {
	cfg := testConfig(10, 93)
	cfg.StrangerPrior = 1.5
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("prior > 1 accepted")
	}
}

func TestQueryTTLBoundsReach(t *testing.T) {
	// On a long ring, a resource held only by the antipodal peer is out of
	// any small-TTL flood's reach, so the query cannot hit.
	n := 40
	g := graph.Ring(n)
	cfg := Config{
		Graph:            g,
		NumResources:     2,
		ResourcesPerPeer: 1,
		QueryTTL:         3,
		QueriesPerRound:  0,
		ServeUnknownProb: 1,
	}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	// With QueriesPerRound = 0 nothing is issued; this exercises the
	// zero-activity path end to end.
	s := net.Stats()
	if s.Queries != 0 || s.Transfers != 0 {
		t.Fatalf("activity without queries: %+v", s)
	}
}
