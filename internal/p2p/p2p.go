// Package p2p implements the workload substrate the paper's system model
// (§3) describes: an unstructured file-sharing network on a power-law
// overlay, where rational peers flood queries for resources, transfer files,
// grade each other's service quality into local trust values, and gate the
// service they offer on the requester's reputation — the mechanism that makes
// free riding unprofitable once reputation aggregation works.
//
// Peers run as goroutines exchanging typed messages through mailboxes; the
// simulation advances in rounds coordinated by the Network. The trust
// estimates the peers accumulate feed directly into the aggregation
// algorithms of internal/core, closing the loop the paper motivates.
package p2p

import (
	"fmt"
	"math"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// Config parameterises a file-sharing simulation.
type Config struct {
	// Graph is the overlay topology (typically graph.MustPA(n, 2, seed)).
	Graph *graph.Graph
	// NumResources is the size of the global resource catalogue.
	NumResources int
	// ResourcesPerPeer is how many distinct resources each peer seeds.
	ResourcesPerPeer int
	// ZipfExponent skews resource popularity (0 = uniform; Gnutella-like
	// workloads use ~0.8–1.2).
	ZipfExponent float64
	// QueryTTL is the flood horizon in overlay hops.
	QueryTTL int
	// QueriesPerRound is the expected number of peers issuing a query each
	// round, expressed as a probability per peer in [0,1].
	QueriesPerRound float64
	// FreeRiderFrac is the fraction of peers that free ride: they rarely
	// serve, and poorly.
	FreeRiderFrac float64
	// ServeUnknownProb is the probability a peer serves a stranger with no
	// reputation at all (the bootstrap allowance).
	ServeUnknownProb float64
	// ReputationThreshold gates service: requesters whose reputation falls
	// below it receive degraded service proportional to their reputation.
	ReputationThreshold float64
	// StrangerPrior is the reputation assumed for peers with no direct or
	// aggregated information. The paper sets it to 0 to defeat
	// whitewashing and notes a higher, dynamically adjusted value as an
	// open aspect; the whitewash experiment sweeps it.
	StrangerPrior float64
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) validate() error {
	if c.Graph == nil || c.Graph.N() == 0 {
		return fmt.Errorf("p2p: empty overlay graph")
	}
	if c.NumResources <= 0 || c.ResourcesPerPeer <= 0 {
		return fmt.Errorf("p2p: need positive resource counts")
	}
	if c.ResourcesPerPeer > c.NumResources {
		return fmt.Errorf("p2p: resources per peer %d exceeds catalogue %d", c.ResourcesPerPeer, c.NumResources)
	}
	if c.QueryTTL < 1 {
		return fmt.Errorf("p2p: TTL %d < 1", c.QueryTTL)
	}
	if c.QueriesPerRound < 0 || c.QueriesPerRound > 1 {
		return fmt.Errorf("p2p: queries per round %v out of [0,1]", c.QueriesPerRound)
	}
	if c.FreeRiderFrac < 0 || c.FreeRiderFrac > 1 {
		return fmt.Errorf("p2p: free rider fraction out of [0,1]")
	}
	if c.ServeUnknownProb < 0 || c.ServeUnknownProb > 1 {
		return fmt.Errorf("p2p: serve-unknown probability out of [0,1]")
	}
	if c.ReputationThreshold < 0 || c.ReputationThreshold > 1 {
		return fmt.Errorf("p2p: reputation threshold out of [0,1]")
	}
	if c.StrangerPrior < 0 || c.StrangerPrior > 1 {
		return fmt.Errorf("p2p: stranger prior out of [0,1]")
	}
	return nil
}

// DefaultConfig returns a workload close to the paper's narrative: heavy
// query load, TTL-limited flooding, a meaningful free-riding population.
func DefaultConfig(g *graph.Graph, seed uint64) Config {
	return Config{
		Graph:               g,
		NumResources:        200,
		ResourcesPerPeer:    8,
		ZipfExponent:        1.0,
		QueryTTL:            4,
		QueriesPerRound:     0.5,
		FreeRiderFrac:       0.25,
		ServeUnknownProb:    0.5,
		ReputationThreshold: 0.4,
		Seed:                seed,
	}
}

// Stats aggregates observable outcomes of the simulation, split by the
// requester's class so the free-riding suppression effect is measurable.
type Stats struct {
	// Queries and Hits count query issuance and successful resolution.
	Queries, Hits int
	// Transfers counts attempted downloads.
	Transfers int
	// QualitySumHonest / TransfersHonest give average delivered quality
	// for honest requesters; likewise for free riders.
	QualitySumHonest    float64
	TransfersHonest     int
	QualitySumFreeRider float64
	TransfersFreeRider  int
	// MessagesRouted counts every overlay message (queries, hits,
	// transfer requests and responses).
	MessagesRouted int
}

// HonestAvgQuality returns the mean quality honest requesters received.
func (s Stats) HonestAvgQuality() float64 {
	if s.TransfersHonest == 0 {
		return 0
	}
	return s.QualitySumHonest / float64(s.TransfersHonest)
}

// FreeRiderAvgQuality returns the mean quality free riders received.
func (s Stats) FreeRiderAvgQuality() float64 {
	if s.TransfersFreeRider == 0 {
		return 0
	}
	return s.QualitySumFreeRider / float64(s.TransfersFreeRider)
}

// zipfWeights returns unnormalised popularity weights for resources.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// sampleWeighted draws an index proportional to weights.
func sampleWeighted(weights []float64, src *rng.Source) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := src.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// TrustSnapshot extracts the current direct-interaction trust matrix across
// all peers — the input to the aggregation algorithms in internal/core.
func (n *Network) TrustSnapshot() *trust.Matrix {
	m := trust.NewMatrix(len(n.peers))
	for i, p := range n.peers {
		p.mu.Lock()
		for j, est := range p.estimators {
			// Only peers with at least one real transaction count as
			// raters (the paper's t_ij exists only after interaction).
			if est.Count() > 0 {
				if err := m.Set(i, j, est.Value()); err != nil {
					p.mu.Unlock()
					panic("p2p: estimator produced out-of-range trust: " + err.Error())
				}
			}
		}
		p.mu.Unlock()
	}
	return m
}

// SetGlobalReputation pushes an aggregated reputation vector to every peer;
// peers use it to gate service for strangers. rep[j] is the network-wide
// reputation of peer j.
func (n *Network) SetGlobalReputation(rep []float64) error {
	if len(rep) != len(n.peers) {
		return fmt.Errorf("p2p: reputation vector length %d, want %d", len(rep), len(n.peers))
	}
	for _, p := range n.peers {
		p.mu.Lock()
		p.globalRep = append(p.globalRep[:0], rep...)
		p.mu.Unlock()
	}
	return nil
}
