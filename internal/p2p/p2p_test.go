package p2p

import (
	"testing"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
)

func testConfig(n int, seed uint64) Config {
	g := graph.MustPA(n, 2, seed)
	cfg := DefaultConfig(g, seed+1)
	cfg.NumResources = 60
	cfg.ResourcesPerPeer = 5
	return cfg
}

func TestConfigValidation(t *testing.T) {
	g := graph.MustPA(20, 2, 1)
	bad := []Config{
		{},
		{Graph: g, NumResources: 0, ResourcesPerPeer: 1, QueryTTL: 2},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 20, QueryTTL: 2},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 2, QueryTTL: 0},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 2, QueryTTL: 2, QueriesPerRound: 2},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 2, QueryTTL: 2, FreeRiderFrac: -1},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 2, QueryTTL: 2, ServeUnknownProb: 3},
		{Graph: g, NumResources: 10, ResourcesPerPeer: 2, QueryTTL: 2, ReputationThreshold: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestNetworkSetup(t *testing.T) {
	net, err := NewNetwork(testConfig(50, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.N() != 50 {
		t.Fatalf("N = %d", net.N())
	}
	for i := 0; i < 50; i++ {
		p := net.Peer(i)
		if p.ID() != i {
			t.Fatalf("peer %d has id %d", i, p.ID())
		}
		if p.NumResources() != 5 {
			t.Fatalf("peer %d seeded %d resources, want 5", i, p.NumResources())
		}
		if d := p.Decency(); d < 0 || d > 1 {
			t.Fatalf("peer %d decency %v", i, d)
		}
	}
}

func TestRoundsProduceTransactions(t *testing.T) {
	net, err := NewNetwork(testConfig(80, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.RunRounds(10); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.Queries == 0 {
		t.Fatal("no queries issued")
	}
	if s.Hits == 0 {
		t.Fatal("no query hits")
	}
	if s.Transfers == 0 {
		t.Fatal("no transfers")
	}
	if s.MessagesRouted <= s.Queries {
		t.Fatalf("implausible message count %d for %d queries", s.MessagesRouted, s.Queries)
	}
}

func TestTrustSnapshotGrowsWithInteraction(t *testing.T) {
	net, err := NewNetwork(testConfig(60, 30))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	before := net.TrustSnapshot()
	if before.NumEntries() != 0 {
		t.Fatalf("trust entries before any round: %d", before.NumEntries())
	}
	if err := net.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	after := net.TrustSnapshot()
	if after.NumEntries() == 0 {
		t.Fatal("no trust accumulated after 12 rounds")
	}
	// Downloads succeed, so the requester must have graded the holder.
	s := net.Stats()
	if s.Transfers > 0 && after.NumEntries() == 0 {
		t.Fatal("transfers happened but no trust recorded")
	}
}

func TestFreeRidersEarnLowTrust(t *testing.T) {
	cfg := testConfig(100, 40)
	cfg.FreeRiderFrac = 0.3
	cfg.QueriesPerRound = 0.8
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.RunRounds(25); err != nil {
		t.Fatal(err)
	}
	tm := net.TrustSnapshot()
	var frSum, hSum float64
	var frCnt, hCnt int
	for j := 0; j < net.N(); j++ {
		sum, cnt := tm.ColumnSum(j)
		if cnt == 0 {
			continue
		}
		if net.Peer(j).IsFreeRider() {
			frSum += sum / float64(cnt)
			frCnt++
		} else {
			hSum += sum / float64(cnt)
			hCnt++
		}
	}
	if frCnt == 0 || hCnt == 0 {
		t.Skip("workload produced no rated peers of one class")
	}
	if frSum/float64(frCnt) >= hSum/float64(hCnt) {
		t.Fatalf("free riders rated %.3f, honest %.3f — no separation",
			frSum/float64(frCnt), hSum/float64(hCnt))
	}
}

func TestReputationGatingPunishesFreeRiders(t *testing.T) {
	// With aggregated reputation distributed, free riders should receive
	// visibly worse service than honest peers.
	cfg := testConfig(100, 50)
	cfg.FreeRiderFrac = 0.3
	cfg.QueriesPerRound = 0.8
	cfg.ServeUnknownProb = 0.4
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	// Warm-up: accumulate direct experience.
	if err := net.RunRounds(15); err != nil {
		t.Fatal(err)
	}
	// Aggregate with DGT and distribute.
	tm := net.TrustSnapshot()
	g := cfg.Graph
	rep := make([]float64, net.N())
	all, err := core.GlobalAll(g, tm, core.Params{Epsilon: 1e-5, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < net.N(); j++ {
		rep[j] = all.Reputation[0][j]
	}
	if err := net.SetGlobalReputation(rep); err != nil {
		t.Fatal(err)
	}
	// Measure service quality after reputation is live.
	pre := net.Stats()
	if err := net.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	post := net.Stats()
	dHonest := post.QualitySumHonest - pre.QualitySumHonest
	nHonest := post.TransfersHonest - pre.TransfersHonest
	dFree := post.QualitySumFreeRider - pre.QualitySumFreeRider
	nFree := post.TransfersFreeRider - pre.TransfersFreeRider
	if nHonest == 0 || nFree == 0 {
		t.Skip("insufficient transfers to compare classes")
	}
	if dFree/float64(nFree) >= dHonest/float64(nHonest) {
		t.Fatalf("free riders got quality %.3f >= honest %.3f",
			dFree/float64(nFree), dHonest/float64(nHonest))
	}
}

func TestSetGlobalReputationValidation(t *testing.T) {
	net, err := NewNetwork(testConfig(20, 60))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.SetGlobalReputation(make([]float64, 19)); err == nil {
		t.Fatal("short reputation vector accepted")
	}
}

func TestCloseIdempotentAndRoundAfterCloseFails(t *testing.T) {
	net, err := NewNetwork(testConfig(20, 70))
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close()
	if err := net.Round(); err == nil {
		t.Fatal("Round after Close succeeded")
	}
}

func TestStatsAverages(t *testing.T) {
	var s Stats
	if s.HonestAvgQuality() != 0 || s.FreeRiderAvgQuality() != 0 {
		t.Fatal("zero-transfer averages not 0")
	}
	s = Stats{QualitySumHonest: 2, TransfersHonest: 4, QualitySumFreeRider: 1, TransfersFreeRider: 2}
	if s.HonestAvgQuality() != 0.5 || s.FreeRiderAvgQuality() != 0.5 {
		t.Fatal("averages wrong")
	}
}

func TestZipfWeightsMonotone(t *testing.T) {
	w := zipfWeights(10, 1.0)
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("zipf weights not decreasing at %d", i)
		}
	}
	u := zipfWeights(5, 0)
	for _, v := range u {
		if v != 1 {
			t.Fatalf("zipf s=0 not uniform: %v", u)
		}
	}
}
