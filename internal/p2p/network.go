package p2p

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"diffgossip/internal/rng"
)

// Network owns the peers, routes messages between their goroutines and
// advances the simulation in rounds. A round has two quiescent phases:
// query flooding (queries spread, hits travel back) and transfer (requesters
// pick a holder, holders serve according to reputation, requesters grade the
// service). All message processing happens on the peers' own goroutines.
type Network struct {
	cfg     Config
	peers   []*Peer
	popular []float64 // resource popularity weights

	inflight sync.WaitGroup // tracks undelivered/unprocessed messages
	querySeq atomic.Int64

	statsMu sync.Mutex
	stats   Stats

	closed bool
}

// NewNetwork builds the network, seeds resources and behavioural roles, and
// starts one goroutine per peer.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	root := rng.New(cfg.Seed)
	net := &Network{
		cfg:     cfg,
		peers:   make([]*Peer, n),
		popular: zipfWeights(cfg.NumResources, cfg.ZipfExponent),
	}
	for i := 0; i < n; i++ {
		src := root.Split()
		free := src.Bool(cfg.FreeRiderFrac)
		var decency float64
		if free {
			decency = src.Beta(1, 8)
		} else {
			decency = src.Beta(4, 2)
		}
		p := newPeer(i, decency, free, src)
		p.strangerPrior = cfg.StrangerPrior
		// Seed the catalogue with popularity-weighted resources.
		for len(p.resources) < cfg.ResourcesPerPeer {
			p.resources[sampleWeighted(net.popular, src)] = true
		}
		net.peers[i] = p
	}
	for _, p := range net.peers {
		go net.serve(p)
	}
	return net, nil
}

// N returns the number of peers.
func (net *Network) N() int { return len(net.peers) }

// Peer returns the i-th peer (for inspection in tests and examples).
func (net *Network) Peer(i int) *Peer { return net.peers[i] }

// Stats returns a copy of the accumulated counters.
func (net *Network) Stats() Stats {
	net.statsMu.Lock()
	defer net.statsMu.Unlock()
	return net.stats
}

// Close shuts down all peer goroutines. The network must be quiescent (only
// call after Round has returned).
func (net *Network) Close() {
	if net.closed {
		return
	}
	net.closed = true
	for _, p := range net.peers {
		close(p.done)
	}
}

// serve is the peer goroutine: it processes mailbox messages until shutdown.
func (net *Network) serve(p *Peer) {
	for {
		select {
		case m := <-p.inbox:
			net.handle(p, m)
			net.inflight.Done()
		case <-p.done:
			return
		}
	}
}

// send routes a message to peer "to". The inflight counter is balanced by
// serve; a full mailbox falls back to a detached sender so routing can never
// deadlock the handler goroutines.
func (net *Network) send(to int, m message) {
	net.inflight.Add(1)
	net.statsMu.Lock()
	net.stats.MessagesRouted++
	net.statsMu.Unlock()
	p := net.peers[to]
	select {
	case p.inbox <- m:
	default:
		go func() { p.inbox <- m }()
	}
}

// handle dispatches one message on the owning peer's goroutine.
func (net *Network) handle(p *Peer, m message) {
	switch {
	case m.query != nil:
		net.handleQuery(p, m.query)
	case m.hit != nil:
		p.mu.Lock()
		p.hits[m.hit.queryID] = append(p.hits[m.hit.queryID], m.hit.holder)
		p.mu.Unlock()
	case m.request != nil:
		net.handleRequest(p, m.request)
	case m.response != nil:
		net.handleResponse(p, m.response)
	}
}

func (net *Network) handleQuery(p *Peer, q *queryMsg) {
	p.mu.Lock()
	if p.seenQuery[q.id] {
		p.mu.Unlock()
		return
	}
	p.seenQuery[q.id] = true
	holds := p.resources[q.resource]
	p.mu.Unlock()

	if holds && p.id != q.origin {
		net.send(q.origin, message{hit: &hitMsg{queryID: q.id, holder: p.id}})
	}
	if q.ttl > 0 {
		fwd := *q
		fwd.ttl--
		for _, v := range net.cfg.Graph.Neighbors(p.id) {
			net.send(v, message{query: &fwd})
		}
	}
}

func (net *Network) handleRequest(p *Peer, r *requestMsg) {
	p.mu.Lock()
	holds := p.resources[r.resource]
	p.mu.Unlock()
	quality := 0.0
	if holds {
		p.mu.Lock()
		quality = p.serviceQuality(r.requester, &net.cfg)
		p.mu.Unlock()
	}
	net.send(r.requester, message{response: &responseMsg{
		queryID:  r.queryID,
		holder:   p.id,
		resource: r.resource,
		quality:  quality,
	}})
}

func (net *Network) handleResponse(p *Peer, r *responseMsg) {
	p.mu.Lock()
	p.recordTransaction(r.holder, r.quality)
	if r.quality > 0 {
		p.resources[r.resource] = true
	}
	delete(p.want, r.queryID)
	delete(p.hits, r.queryID)
	free := p.free
	p.mu.Unlock()

	net.statsMu.Lock()
	net.stats.Transfers++
	if free {
		net.stats.TransfersFreeRider++
		net.stats.QualitySumFreeRider += r.quality
	} else {
		net.stats.TransfersHonest++
		net.stats.QualitySumHonest += r.quality
	}
	net.statsMu.Unlock()
}

// Round advances the simulation one round: query issuance and flooding, then
// holder selection and transfers. It blocks until the network is quiescent.
func (net *Network) Round() error {
	if net.closed {
		return fmt.Errorf("p2p: network closed")
	}
	// Phase 1: issue queries.
	issued := 0
	for _, p := range net.peers {
		p.mu.Lock()
		wants := p.src.Bool(net.cfg.QueriesPerRound)
		var res int
		if wants {
			// Pick a popular resource the peer lacks (bounded retries:
			// a peer holding everything stays quiet).
			found := false
			for try := 0; try < 8; try++ {
				res = sampleWeighted(net.popular, p.src)
				if !p.resources[res] {
					found = true
					break
				}
			}
			wants = found
		}
		if !wants {
			p.mu.Unlock()
			continue
		}
		id := net.querySeq.Add(1)
		p.want[id] = res
		p.mu.Unlock()
		issued++
		net.send(p.id, message{query: &queryMsg{
			id: id, origin: p.id, resource: res, ttl: net.cfg.QueryTTL,
		}})
	}
	net.statsMu.Lock()
	net.stats.Queries += issued
	net.statsMu.Unlock()
	net.inflight.Wait()

	// Phase 2: pick responders and transfer.
	for _, p := range net.peers {
		p.mu.Lock()
		type pick struct {
			queryID  int64
			holder   int
			resource int
		}
		var picks []pick
		for id, holders := range p.hits {
			res, ok := p.want[id]
			if !ok || len(holders) == 0 {
				continue
			}
			best := net.chooseHolder(p, holders)
			picks = append(picks, pick{queryID: id, holder: best, resource: res})
		}
		// Unanswered queries expire at end of round.
		hit := len(picks)
		p.mu.Unlock()

		net.statsMu.Lock()
		net.stats.Hits += hit
		net.statsMu.Unlock()
		for _, pk := range picks {
			net.send(pk.holder, message{request: &requestMsg{
				queryID: pk.queryID, requester: p.id, resource: pk.resource,
			}})
		}
	}
	net.inflight.Wait()

	// Expire leftover round state.
	for _, p := range net.peers {
		p.mu.Lock()
		for id := range p.want {
			delete(p.want, id)
			delete(p.hits, id)
		}
		p.mu.Unlock()
	}
	return nil
}

// chooseHolder selects the most reputable responder, breaking ties randomly.
// Callers must hold p.mu.
func (net *Network) chooseHolder(p *Peer, holders []int) int {
	sort.Ints(holders)
	best := holders[0]
	bestRep := -1.0
	for _, h := range holders {
		rep, known := p.reputationOf(h)
		if !known {
			rep = 0.25 // neutral prior for strangers, above known-bad peers
		}
		if rep > bestRep || (rep == bestRep && p.src.Bool(0.5)) {
			best, bestRep = h, rep
		}
	}
	return best
}

// RunRounds advances the simulation r rounds.
func (net *Network) RunRounds(r int) error {
	for i := 0; i < r; i++ {
		if err := net.Round(); err != nil {
			return err
		}
	}
	return nil
}

// ResetIdentity models whitewashing: peer i rejoins under a fresh identity,
// so every other peer forgets its direct experience with i and the
// aggregated reputation entry for i becomes unknown. The peer keeps its
// resources and behaviour — only its history is laundered. Only call between
// rounds (the network must be quiescent).
func (net *Network) ResetIdentity(i int) error {
	if i < 0 || i >= len(net.peers) {
		return fmt.Errorf("p2p: peer %d out of range", i)
	}
	for _, p := range net.peers {
		p.mu.Lock()
		delete(p.estimators, i)
		if i < len(p.globalRep) {
			p.globalRep[i] = 0
		}
		p.mu.Unlock()
	}
	return nil
}
