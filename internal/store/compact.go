package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file bounds the ledger's durable and in-memory footprint at unbounded
// traffic. The paper's model needs only the latest rating per (rater,
// subject) cell at fold time, so once an epoch has durably folded past an
// entry, every superseded rating in that cell is dead weight. Compact
// rewrites the WAL keeping just the live subset; TrimHistory applies the
// same rule to the in-memory per-origin replication history once every known
// peer's watermark has passed an entry.

// CompactConfig parameterises Compact and TrimHistory.
type CompactConfig struct {
	// Origin is the owning node's cluster identity — the id stamped into the
	// LWW tag of locally accepted entries (empty when standalone). It must
	// match the service's replication origin, or compaction could keep a
	// different cell winner than the epoch fold does.
	Origin string
	// FoldedSeq returns the highest ledger sequence number whose fold into
	// subject's shard segment has been durably persisted. Entries at or below
	// it are compaction candidates; everything newer is unfolded tail and is
	// always kept. Nil means nothing is folded (Compact becomes a no-op
	// rewrite).
	FoldedSeq func(subject int) uint64
}

// CompactStats reports one WAL compaction: line counts and byte sizes before
// and after the rewrite.
type CompactStats struct {
	EntriesBefore int
	EntriesAfter  int
	BytesBefore   int64
	BytesAfter    int64
}

// compactCrash is a test seam simulating a crash inside Compact. When
// non-nil it runs at each named stage ("tmp-written" — temp file durable,
// not yet renamed; "renamed" — new file published, in-memory handles not yet
// swapped); a non-nil return aborts Compact there. Aborting at "renamed"
// leaves the Ledger's open handle on the unlinked old inode, exactly like a
// process kill at that instant — the test must discard the Ledger and reopen
// from disk, as a restart would.
var compactCrash func(stage string) error

// lwwTag is the last-writer-wins tag of one ledger entry, mirroring the
// epoch fold's conflict ordering (internal/service): ingest wall-clock
// first, then origin id, then origin sequence number. Compaction must rank
// cell rivals exactly as the fold does, or the kept entry could differ from
// the fold's winner and a post-compaction replay would diverge.
type lwwTag struct {
	ts     int64
	origin string
	seq    uint64
}

// entryTag derives an entry's LWW tag; localOrigin stands in for the empty
// origin of locally accepted entries.
func entryTag(fb Feedback, localOrigin string) lwwTag {
	if fb.Origin == "" {
		return lwwTag{ts: fb.UnixNano, origin: localOrigin, seq: fb.Seq}
	}
	return lwwTag{ts: fb.UnixNano, origin: fb.Origin, seq: fb.OriginSeq}
}

func (a lwwTag) before(b lwwTag) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// compactionKeep marks which entries survive compaction. entries must be in
// ledger (apply) order. Three groups are kept:
//
//   - every unfolded entry (still pending work);
//   - the LWW-winning entry of each (rater, subject) cell among folded
//     entries — ties break to the later entry, matching fold apply order;
//   - the highest-keyed folded entry of each origin stream, even when
//     another entry won its cell, so per-origin replication watermarks
//     replay to exactly their pre-compaction values.
//
// Dropping a superseded entry is safe cluster-wide: the winner carries its
// own tag, replicated application tolerates origin-sequence gaps (entries at
// or below the watermark are skipped, entries above are applied), and a peer
// that never sees a loser converges to the same cells as one that did.
func compactionKeep(entries []Feedback, n int, localOrigin string, folded func(Feedback) bool) []bool {
	keep := make([]bool, len(entries))
	type win struct {
		i int
		t lwwTag
	}
	winners := make(map[uint64]win)
	heads := make(map[string]int)
	for i, fb := range entries {
		if !folded(fb) {
			keep[i] = true
			continue
		}
		heads[fb.Origin] = i
		cell := uint64(fb.Rater)*uint64(n) + uint64(fb.Subject)
		t := entryTag(fb, localOrigin)
		if w, ok := winners[cell]; !ok || !t.before(w.t) {
			winners[cell] = win{i: i, t: t}
		}
	}
	for _, w := range winners {
		keep[w.i] = true
	}
	for _, i := range heads {
		keep[i] = true
	}
	return keep
}

// Compact rewrites the backing WAL file keeping only the live subset of
// entries (see compactionKeep), with their original lines — sequence
// numbers, origin tags and timestamps unchanged — so a post-compaction
// replay rebuilds identical in-memory state. The rewrite follows the same
// crash contract as snapshot publication: temp file in the same directory,
// fsync, rename over the ledger path, directory fsync — after a crash the
// path holds either the old file or the compacted one, never a torn mix.
// The in-memory pending window, history and watermarks are untouched.
func (l *Ledger) Compact(cfg CompactConfig) (CompactStats, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	var st CompactStats
	if l.f == nil {
		return st, fmt.Errorf("store: compact: ledger has no backing file")
	}
	if l.wErr {
		if err := l.resyncLocked(); err != nil {
			return st, err
		}
	}
	if err := l.w.Flush(); err != nil {
		l.wErr = true
		return st, fmt.Errorf("store: flush ledger: %w", err)
	}
	// Read the current contents through a separate handle, so the append
	// handle's file position is untouched on every error path.
	rf, err := os.Open(l.path)
	if err != nil {
		return st, fmt.Errorf("store: compact: %w", err)
	}
	defer rf.Close()
	scratch := &Ledger{n: l.n}
	entries, goodEnd, err := scratch.replay(rf)
	if err != nil {
		return st, fmt.Errorf("store: compact: %w", err)
	}
	st.EntriesBefore = len(entries)
	st.BytesBefore = goodEnd
	keep := compactionKeep(entries, l.n, cfg.Origin, func(fb Feedback) bool {
		return cfg.FoldedSeq != nil && fb.Seq <= cfg.FoldedSeq(fb.Subject)
	})

	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".ledger-compact-*.tmp")
	if err != nil {
		return st, fmt.Errorf("store: compact: temp file: %w", err)
	}
	fail := func(err error) (CompactStats, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return st, err
	}
	w := bufio.NewWriter(tmp)
	for i := range entries {
		if !keep[i] {
			continue
		}
		b, err := json.Marshal(entries[i])
		if err != nil {
			return fail(fmt.Errorf("store: compact: encode entry: %w", err))
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return fail(fmt.Errorf("store: compact: write: %w", err))
		}
		st.EntriesAfter++
		st.BytesAfter += int64(len(b))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("store: compact: flush: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: compact: sync: %w", err))
	}
	if compactCrash != nil {
		if err := compactCrash("tmp-written"); err != nil {
			return fail(err)
		}
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fail(fmt.Errorf("store: compact: publish: %w", err))
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync makes the rename durable; best effort on
		// filesystems that reject it.
		d.Sync()
		d.Close()
	}
	if compactCrash != nil {
		if err := compactCrash("renamed"); err != nil {
			return st, err
		}
	}
	// The temp handle survives the rename (it is the same inode, now at the
	// ledger path) and is positioned at end-of-file, so it simply becomes
	// the append handle — no reopen step that could fail half-swapped.
	old := l.f
	l.f, l.w = tmp, w
	l.goodOff = st.BytesAfter
	l.mCompactions.Inc()
	if d := st.EntriesBefore - st.EntriesAfter; d > 0 {
		l.mCompactDrops.Add(uint64(d))
	}
	if err := old.Close(); err != nil {
		// The swap is complete and consistent; report the stray handle.
		return st, fmt.Errorf("store: compact: close previous ledger handle: %w", err)
	}
	return st, nil
}

// TrimHistory compacts the in-memory per-origin replication history to the
// same live subset Compact keeps on disk, dropping superseded entries that
// every known peer has already passed. floors maps origin stream keys ("" =
// locally accepted) to the highest origin sequence number all peers'
// watermarks have passed: an entry is a trim candidate only at or below its
// stream's floor, so any peer — live, suspect, or dead — can still pull
// every entry it might be missing. Streams without a floor entry are never
// trimmed. Returns the number of entries dropped. Requires EnableReplication
// (0 otherwise). The WAL, pending window and watermarks are untouched.
func (l *Ledger) TrimHistory(cfg CompactConfig, floors map[string]uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.hist) == 0 || len(floors) == 0 {
		return 0
	}
	total := 0
	for _, h := range l.hist {
		total += len(h)
	}
	all := make([]Feedback, 0, total)
	for _, h := range l.hist {
		all = append(all, h...)
	}
	// Global ledger order (local Seq) restores apply order across streams,
	// which the cell-winner tie-break depends on.
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	keep := compactionKeep(all, l.n, cfg.Origin, func(fb Feedback) bool {
		floor, ok := floors[fb.Origin]
		if !ok {
			return false
		}
		key := fb.OriginSeq
		if fb.Origin == "" {
			key = fb.Seq
		}
		return key <= floor
	})
	nh := make(map[string][]Feedback, len(l.hist))
	removed := 0
	for i, fb := range all {
		if keep[i] {
			nh[fb.Origin] = append(nh[fb.Origin], fb)
		} else {
			removed++
		}
	}
	l.hist = nh
	if removed > 0 {
		l.mHistTrims.Add(uint64(removed))
	}
	return removed
}
