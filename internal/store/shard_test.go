package store

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"diffgossip/internal/gossip"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

func TestShardHelpers(t *testing.T) {
	if ShardOf(7, 1) != 0 || ShardOf(7, 3) != 1 || SlotOf(7, 3) != 2 || SlotOf(7, 1) != 7 {
		t.Fatal("shard/slot arithmetic broken")
	}
	subs := ShardSubjects(10, 2, 3) // 2, 5, 8
	if len(subs) != 3 || subs[0] != 2 || subs[1] != 5 || subs[2] != 8 {
		t.Fatalf("ShardSubjects(10,2,3) = %v", subs)
	}
	for _, j := range subs {
		if ShardOf(j, 3) != 2 || subs[SlotOf(j, 3)] != j {
			t.Fatalf("subject %d does not round-trip its shard/slot", j)
		}
	}
}

func randomSnapshot(t *testing.T, n int, seed uint64) *Snapshot {
	t.Helper()
	src := rng.New(seed)
	snap := &Snapshot{
		Epoch: 5, Seq: 123, N: n,
		Trust:           trust.NewMatrix(n),
		Global:          make([]float64, n),
		Raters:          make([]int, n),
		Steps:           17,
		Converged:       true,
		ElapsedNs:       999,
		CreatedUnixNano: 424242,
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && src.Bool(0.3) {
				if err := snap.Trust.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		sum, cnt := snap.Trust.ColumnSum(j)
		snap.Raters[j] = cnt
		if cnt > 0 {
			snap.Global[j] = sum / float64(cnt)
		}
	}
	return snap
}

// TestSplitStitchRoundTrip: SplitSnapshot and StitchSnapshot are inverses on
// the data that matters (values, raters, trust entries, fold point).
func TestSplitStitchRoundTrip(t *testing.T) {
	snap := randomSnapshot(t, 23, 9)
	for _, shards := range []int{1, 4, 7} {
		segs, err := SplitSnapshot(snap, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != shards {
			t.Fatalf("split into %d segments, want %d", len(segs), shards)
		}
		for j := 0; j < snap.N; j++ {
			seg := segs[ShardOf(j, shards)]
			got, err := seg.Reputation(j)
			if err != nil {
				t.Fatal(err)
			}
			if got != snap.Global[j] || seg.RaterCount(j) != snap.Raters[j] {
				t.Fatalf("S=%d subject %d: split lost data", shards, j)
			}
		}
		back, err := StitchSnapshot(segs)
		if err != nil {
			t.Fatal(err)
		}
		if back.Epoch != snap.Epoch || back.Seq != snap.Seq || back.N != snap.N {
			t.Fatalf("S=%d: stitched header %d/%d/%d", shards, back.Epoch, back.Seq, back.N)
		}
		for j := 0; j < snap.N; j++ {
			if back.Global[j] != snap.Global[j] || back.Raters[j] != snap.Raters[j] {
				t.Fatalf("S=%d subject %d: stitch lost globals", shards, j)
			}
			for i := 0; i < snap.N; i++ {
				a, aok := snap.Trust.Get(i, j)
				b, bok := back.Trust.Get(i, j)
				if a != b || aok != bok {
					t.Fatalf("S=%d entry (%d,%d): stitch lost trust", shards, i, j)
				}
			}
		}
	}
}

// TestShardSnapshotFileRoundTrip pins the segment wire format.
func TestShardSnapshotFileRoundTrip(t *testing.T) {
	snap := randomSnapshot(t, 15, 4)
	segs, err := SplitSnapshot(snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	seg := segs[2]
	seg.Computed = 3
	path := filepath.Join(t.TempDir(), "shard-0002.gob")
	if err := seg.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 2 || got.Shards != 4 || got.N != 15 || got.Epoch != seg.Epoch || got.Seq != seg.Seq || got.Computed != 3 {
		t.Fatalf("reloaded header %+v", got)
	}
	for _, j := range got.Cols.Subjects() {
		a, _ := seg.Reputation(j)
		b, _ := got.Reputation(j)
		if a != b {
			t.Fatalf("subject %d: reloaded %v != %v", j, b, a)
		}
		sumA, cntA := seg.Cols.ColumnSum(j)
		sumB, cntB := got.Cols.ColumnSum(j)
		if sumA != sumB || cntA != cntB {
			t.Fatalf("subject %d: reloaded columns differ", j)
		}
	}
	// Missing files are a clean nil.
	if s, err := LoadShardFile(filepath.Join(t.TempDir(), "nope.gob")); s != nil || err != nil {
		t.Fatalf("missing segment = (%v, %v)", s, err)
	}
	// Corrupt payloads fail loudly.
	if _, err := LoadShardSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage segment accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if m, err := LoadManifestFile(path); m != nil || err != nil {
		t.Fatalf("missing manifest = (%v, %v)", m, err)
	}
	if err := SaveManifestFile(Manifest{N: 100, Shards: 8, CreatedUnixNano: 5}, path); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 100 || m.Shards != 8 || m.Version != manifestVersion {
		t.Fatalf("manifest %+v", m)
	}
}

// TestLedgerShardTracking: per-shard dirty accounting across append, take
// and restore, with lock-free counters.
func TestLedgerShardTracking(t *testing.T) {
	l := NewLedger(10)
	if err := l.SetShards(3); err != nil {
		t.Fatal(err)
	}
	if l.DirtyCount() != 0 || l.PendingCount() != 0 {
		t.Fatal("fresh ledger not clean")
	}
	// Subjects 0 (shard 0) and 4 (shard 1).
	if _, err := l.Append(1, 0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, 4, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, 0, 0.7, 0); err != nil {
		t.Fatal(err)
	}
	if l.DirtyCount() != 2 || !l.ShardDirty(0) || !l.ShardDirty(1) || l.ShardDirty(2) {
		t.Fatalf("dirty set wrong: count=%d", l.DirtyCount())
	}
	if l.PendingCount() != 3 {
		t.Fatalf("pending %d", l.PendingCount())
	}
	batch := l.TakePending()
	if len(batch) != 3 || batch[0].Shard != 0 || batch[1].Shard != 1 || batch[2].Shard != 0 {
		t.Fatalf("batch shards: %+v", batch)
	}
	if l.DirtyCount() != 0 || l.PendingCount() != 0 || l.ShardDirty(0) {
		t.Fatal("take did not clear the dirty set")
	}
	// Restore re-marks.
	l.Restore(batch)
	if l.DirtyCount() != 2 || l.PendingCount() != 3 {
		t.Fatalf("restore: dirty=%d pending=%d", l.DirtyCount(), l.PendingCount())
	}
	// SetShards recomputes from pending.
	if err := l.SetShards(10); err != nil {
		t.Fatal(err)
	}
	if l.DirtyCount() != 2 || !l.ShardDirty(0) || !l.ShardDirty(4) {
		t.Fatalf("reshard recompute: dirty=%d", l.DirtyCount())
	}
	if err := l.SetShards(0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
}

// TestShardSnapshotWarmRoundTrip: wire v2 carries the per-slot campaign
// states (sparse, dense, and absent alike) through save/load bit for bit,
// and rejects corrupt warm payloads instead of seeding next epoch's
// campaigns with them.
func TestShardSnapshotWarmRoundTrip(t *testing.T) {
	snap := randomSnapshot(t, 15, 9)
	segs, err := SplitSnapshot(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	seg := segs[1] // subjects 1, 4, 7, 10, 13 → 5 slots
	seg.GraphFP = 0xfeedbeef
	seg.TotalSteps = 42
	seg.WarmStarts = 2
	seg.ColdStarts = 3
	seg.Warm = []*gossip.CampaignState{
		{Sparse: true, Raters: []int{2, 9}, PrevVals: []float64{0.5, 0.25},
			Y: []float64{0.4, 0.35}, G: []float64{1, 1}, Steps: 7},
		nil,
		{Sparse: false, Raters: []int{3}, PrevVals: []float64{1},
			Y: make([]float64, 15), G: make([]float64, 15), Steps: 12},
		nil,
		nil,
	}
	seg.Warm[2].Y[3] = 1
	seg.Warm[2].G[3] = 1

	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.GraphFP != seg.GraphFP || got.TotalSteps != 42 || got.WarmStarts != 2 || got.ColdStarts != 3 {
		t.Fatalf("reloaded header %+v", got)
	}
	if len(got.Warm) != 5 || got.Warm[1] != nil || got.Warm[3] != nil || got.Warm[4] != nil {
		t.Fatalf("reloaded warm layout wrong: %+v", got.Warm)
	}
	for _, k := range []int{0, 2} {
		a, b := seg.Warm[k], got.Warm[k]
		if b == nil || b.Sparse != a.Sparse || b.Steps != a.Steps {
			t.Fatalf("slot %d header drifted: %+v vs %+v", k, a, b)
		}
		for x := range a.Raters {
			if b.Raters[x] != a.Raters[x] || b.PrevVals[x] != a.PrevVals[x] {
				t.Fatalf("slot %d rater %d drifted", k, x)
			}
		}
		for x := range a.Y {
			if b.Y[x] != a.Y[x] || b.G[x] != a.G[x] {
				t.Fatalf("slot %d mass %d drifted", k, x)
			}
		}
	}

	// Segments without warm state (the v1 shape) still round-trip to nil.
	seg.Warm = nil
	buf.Reset()
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadShardSnapshot(bytes.NewReader(buf.Bytes())); err != nil || got.Warm != nil {
		t.Fatalf("no-warm round trip = (%v, %v)", got, err)
	}

	// Corrupt warm payloads must be refused: NaN mass, descending raters,
	// mismatched shapes.
	for name, ws := range map[string]*gossip.CampaignState{
		"nan-mass":          {Sparse: true, Raters: []int{1}, PrevVals: []float64{0.5}, Y: []float64{math.NaN()}, G: []float64{1}},
		"negative-weight":   {Sparse: true, Raters: []int{1}, PrevVals: []float64{0.5}, Y: []float64{0.5}, G: []float64{-1}},
		"descending-raters": {Sparse: true, Raters: []int{9, 2}, PrevVals: []float64{0.5, 0.5}, Y: []float64{0, 0}, G: []float64{1, 1}},
		"bad-prev-val":      {Sparse: true, Raters: []int{1}, PrevVals: []float64{1.5}, Y: []float64{0.5}, G: []float64{1}},
		"dense-wrong-len":   {Sparse: false, Raters: []int{1}, PrevVals: []float64{0.5}, Y: []float64{0.5}, G: []float64{1}},
	} {
		seg.Warm = []*gossip.CampaignState{ws, nil, nil, nil, nil}
		buf.Reset()
		if err := seg.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShardSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("%s: corrupt warm payload accepted", name)
		}
	}
}
