package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplicatedIdempotent(t *testing.T) {
	l := NewLedger(10)
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	fb := Feedback{Origin: "peer-a", OriginSeq: 3, Rater: 1, Subject: 2, Value: 0.5}
	seq, applied, err := l.AppendReplicated(fb)
	if err != nil || !applied || seq != 1 {
		t.Fatalf("first apply: seq=%d applied=%v err=%v", seq, applied, err)
	}
	// Exact duplicate and an older entry are both no-ops.
	for _, dup := range []Feedback{fb, {Origin: "peer-a", OriginSeq: 2, Rater: 4, Subject: 5, Value: 0.9}} {
		seq, applied, err = l.AppendReplicated(dup)
		if err != nil || applied || seq != 0 {
			t.Fatalf("duplicate apply: seq=%d applied=%v err=%v", seq, applied, err)
		}
	}
	if got := l.OriginMark("peer-a"); got != 3 {
		t.Fatalf("watermark = %d, want 3", got)
	}
	if got := l.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
}

func TestAppendReplicatedValidation(t *testing.T) {
	l := NewLedger(10)
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendReplicated(Feedback{Rater: 1, Subject: 2, Value: 0.5}); err == nil {
		t.Fatal("entry without origin tags accepted")
	}
	if _, _, err := l.AppendReplicated(Feedback{Origin: "p", OriginSeq: 1, Rater: 99, Subject: 2, Value: 0.5}); err == nil {
		t.Fatal("out-of-range rater accepted")
	}
	l2 := NewLedger(10)
	if _, _, err := l2.AppendReplicated(Feedback{Origin: "p", OriginSeq: 1, Rater: 1, Subject: 2, Value: 0.5}); err == nil {
		t.Fatal("replicated append without EnableReplication accepted")
	}
}

func TestEntriesSinceLocalAndRemote(t *testing.T) {
	l := NewLedger(10)
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	// Interleave local and replicated entries; local seqs then have gaps
	// from each origin's point of view.
	if _, err := l.Append(0, 1, 0.1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendReplicated(Feedback{Origin: "b", OriginSeq: 1, Rater: 2, Subject: 3, Value: 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(4, 5, 0.3, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendReplicated(Feedback{Origin: "b", OriginSeq: 4, Rater: 6, Subject: 7, Value: 0.4}); err != nil {
		t.Fatal(err)
	}

	local := l.EntriesSince("", 0, 0)
	if len(local) != 2 || local[0].Seq != 1 || local[1].Seq != 3 {
		t.Fatalf("local stream = %+v", local)
	}
	if got := l.EntriesSince("", 1, 0); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("local past 1 = %+v", got)
	}
	remote := l.EntriesSince("b", 1, 0)
	if len(remote) != 1 || remote[0].OriginSeq != 4 {
		t.Fatalf("remote past 1 = %+v", remote)
	}
	if got := l.EntriesSince("b", 4, 0); got != nil {
		t.Fatalf("remote past watermark = %+v, want nil", got)
	}
	if got := l.EntriesSince("", 0, 1); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("limit=1 = %+v", got)
	}
	// TakePending drains the fold window but never the retained history.
	l.TakePending()
	if got := l.EntriesSince("", 0, 0); len(got) != 2 {
		t.Fatalf("history after TakePending = %+v", got)
	}
}

// TestReplicationSurvivesReopen proves the WAL round-trips origin tags: a
// reopened ledger re-seeded from its own replay serves the same watermarks
// and pull answers as the original.
func TestReplicationSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	l, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.EnableReplication(replayed); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, 1, 0.9, 42); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendReplicated(Feedback{Origin: "peer-b", OriginSeq: 7, Rater: 2, Subject: 3, Value: 0.4, UnixNano: 43}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, replayed2, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.EnableReplication(replayed2); err != nil {
		t.Fatal(err)
	}
	if got := l2.OriginMark("peer-b"); got != 7 {
		t.Fatalf("reopened watermark = %d, want 7", got)
	}
	// The local stream's watermark is the last locally-originated entry's
	// seq (1); the replicated entry consumed ledger seq 2 but belongs to
	// peer-b's stream.
	if got := l2.OriginMark(""); got != 1 {
		t.Fatalf("reopened local-stream mark = %d, want 1", got)
	}
	if got := l2.Seq(); got != 2 {
		t.Fatalf("reopened ledger seq = %d, want 2", got)
	}
	remote := l2.EntriesSince("peer-b", 0, 0)
	if len(remote) != 1 || remote[0].OriginSeq != 7 || remote[0].Value != 0.4 || remote[0].UnixNano != 43 {
		t.Fatalf("reopened remote stream = %+v", remote)
	}
	// A duplicate of the persisted entry is still recognised after reopen.
	if _, applied, err := l2.AppendReplicated(Feedback{Origin: "peer-b", OriginSeq: 7, Rater: 2, Subject: 3, Value: 0.4}); err != nil || applied {
		t.Fatalf("duplicate after reopen: applied=%v err=%v", applied, err)
	}
}

// TestEnableReplicationRejectsNonMonotonicWAL: a tampered WAL whose
// replicated origin sequence numbers regress must be refused, not silently
// re-marked.
func TestEnableReplicationRejectsNonMonotonicWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	wal := `{"seq":1,"rater":0,"subject":1,"value":0.5,"origin":"p","origin_seq":5}
{"seq":2,"rater":0,"subject":2,"value":0.5,"origin":"p","origin_seq":4}
`
	if err := os.WriteFile(path, []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	l, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.EnableReplication(replayed); err == nil {
		t.Fatal("non-monotonic origin seq accepted")
	}
}
