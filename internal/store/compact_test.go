package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// compactLedger opens a ledger at path, appends hist-style traffic with heavy
// supersession (each rater re-rates the same few subjects), and returns it.
func compactSeedLedger(t *testing.T, path string, appends int) *Ledger {
	t.Helper()
	l, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh ledger replayed %d entries", len(replayed))
	}
	for i := 0; i < appends; i++ {
		rater, subject := i%4, (i+1)%4
		if _, err := l.Append(rater, subject, float64(i%10)/10, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestLedgerCompactKeepsLiveSubset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := compactSeedLedger(t, path, 40)
	seq := l.Seq()
	// Everything is folded: only the 4 distinct (rater, subject) cells
	// survive.
	st, err := l.Compact(CompactConfig{FoldedSeq: func(int) uint64 { return seq }})
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesBefore != 40 || st.EntriesAfter != 4 {
		t.Fatalf("compact kept %d of %d entries, want 4 of 40", st.EntriesAfter, st.EntriesBefore)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("compact did not shrink the file: %d -> %d bytes", st.BytesBefore, st.BytesAfter)
	}
	// Appends continue on the compacted file with the next seq.
	if got, err := l.Append(5, 6, 0.5, 0); err != nil || got != seq+1 {
		t.Fatalf("append after compact: seq=%d err=%v, want %d", got, err, seq+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted file replays cleanly: sparse seqs, min seq > 1.
	l2, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != 5 {
		t.Fatalf("reopen replayed %d entries, want 5", len(replayed))
	}
	if replayed[0].Seq <= 1 {
		t.Fatalf("compacted file should start past seq 1, got %d", replayed[0].Seq)
	}
	if l2.Seq() != seq+1 {
		t.Fatalf("reopened seq %d, want %d", l2.Seq(), seq+1)
	}
	// The survivors are the latest entry per cell — the LWW winner, since
	// local timestamps here increase with seq.
	wantVal := map[[2]int]float64{}
	for i := 0; i < 40; i++ {
		wantVal[[2]int{i % 4, (i + 1) % 4}] = float64(i%10) / 10
	}
	for _, fb := range replayed[:4] {
		if want := wantVal[[2]int{fb.Rater, fb.Subject}]; fb.Value != want {
			t.Fatalf("cell (%d,%d) kept value %v, want latest %v", fb.Rater, fb.Subject, fb.Value, want)
		}
	}
}

func TestLedgerCompactKeepsUnfoldedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := compactSeedLedger(t, path, 40)
	defer l.Close()
	// Only the first 30 are folded; the unfolded tail survives verbatim.
	st, err := l.Compact(CompactConfig{FoldedSeq: func(int) uint64 { return 30 }})
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesAfter != 4+10 {
		t.Fatalf("compact kept %d entries, want 4 cell winners + 10 tail", st.EntriesAfter)
	}
	// Nil FoldedSeq: nothing is folded, the rewrite is a no-op subset-wise.
	st, err = l.Compact(CompactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesBefore != st.EntriesAfter {
		t.Fatalf("no-fold compact dropped entries: %d -> %d", st.EntriesBefore, st.EntriesAfter)
	}
}

// TestLedgerCompactKeepsLWWWinnerNotLastAppend pins the conflict rule: the
// kept entry per cell is the fold's LWW winner (timestamp, origin, seq), not
// simply the last-appended line.
func TestLedgerCompactKeepsLWWWinnerNotLastAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	// Local write at t=2000 first, then a replicated rival for the same cell
	// with an OLDER timestamp: the local entry stays the LWW winner even
	// though the rival was appended later.
	if _, err := l.Append(1, 2, 0.9, 2000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendReplicated(Feedback{Rater: 1, Subject: 2, Value: 0.1, UnixNano: 1000, Origin: "node-b", OriginSeq: 5}); err != nil {
		t.Fatal(err)
	}
	seq := l.Seq()
	st, err := l.Compact(CompactConfig{Origin: "node-a", FoldedSeq: func(int) uint64 { return seq }})
	if err != nil {
		t.Fatal(err)
	}
	// Both survive — the loser is its origin stream's head, kept so the
	// node-b watermark replays — but the winner must be among them.
	if st.EntriesAfter != 2 {
		t.Fatalf("kept %d entries, want cell winner + stream head", st.EntriesAfter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var sawWinner bool
	for _, fb := range replayed {
		if fb.Origin == "" && fb.Value == 0.9 {
			sawWinner = true
		}
	}
	if !sawWinner {
		t.Fatalf("LWW winner dropped by compaction: %+v", replayed)
	}
	// Watermarks replay to their pre-compaction values.
	if err := l2.EnableReplication(replayed); err != nil {
		t.Fatal(err)
	}
	if got := l2.OriginMark("node-b"); got != 5 {
		t.Fatalf("node-b watermark after compacted replay = %d, want 5", got)
	}
}

// TestLedgerCompactCrashPoints kills compaction at each stage of the
// tmp/rename/swap sequence and proves a reboot replays cleanly from whichever
// file the crash left behind, converging to the same entries either way.
func TestLedgerCompactCrashPoints(t *testing.T) {
	defer func() { compactCrash = nil }()
	boom := errors.New("injected crash")

	// Control: what an uncompacted reopen replays, minus the dropped losers.
	mkPath := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "ledger.jsonl")
		l := compactSeedLedger(t, path, 40)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("before-rename", func(t *testing.T) {
		path := mkPath(t)
		l, _, err := OpenLedger(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		compactCrash = func(stage string) error {
			if stage == "tmp-written" {
				return boom
			}
			return nil
		}
		if _, err := l.Compact(CompactConfig{FoldedSeq: func(int) uint64 { return 40 }}); !errors.Is(err, boom) {
			t.Fatalf("compact error = %v, want injected crash", err)
		}
		compactCrash = nil
		l.Close()
		// The rename never happened: boot sees the old, full ledger.
		l2, replayed, err := OpenLedger(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if len(replayed) != 40 || l2.Seq() != 40 {
			t.Fatalf("reopen after pre-rename crash: %d entries seq %d, want the old file intact", len(replayed), l2.Seq())
		}
		// No temp litter survives the abort.
		m, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".ledger-compact-*"))
		if len(m) != 0 {
			t.Fatalf("aborted compaction left temp files: %v", m)
		}
	})

	t.Run("after-rename", func(t *testing.T) {
		path := mkPath(t)
		l, _, err := OpenLedger(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		compactCrash = func(stage string) error {
			if stage == "renamed" {
				return boom
			}
			return nil
		}
		if _, err := l.Compact(CompactConfig{FoldedSeq: func(int) uint64 { return 40 }}); !errors.Is(err, boom) {
			t.Fatalf("compact error = %v, want injected crash", err)
		}
		compactCrash = nil
		// The crash hit after the rename published the new file: this Ledger
		// object is dead (its handle points at the unlinked old inode, like a
		// killed process's would) — discard it and reboot from disk.
		l.Close()
		l2, replayed, err := OpenLedger(path, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if len(replayed) != 4 {
			t.Fatalf("reopen after post-rename crash replayed %d entries, want the compacted 4", len(replayed))
		}
		if l2.Seq() != 40 {
			t.Fatalf("reopened seq %d, want 40 (highest surviving seq)", l2.Seq())
		}
		if _, err := l2.Append(5, 6, 0.5, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLedgerAppendRecoversAfterWriteError is the regression test for the
// sticky bufio failure: before the goodOff/resync fix, one failed write or
// flush left the buffered writer permanently errored (and possibly a partial
// line in the file), so every later append failed and a reboot could refuse
// the malformed line. Now the next append truncates back to the last good
// line boundary and proceeds.
func TestLedgerAppendRecoversAfterWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, 2, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	// Simulate the failure: swap in a writer whose sink always fails — the
	// bufio error is sticky exactly like a real transient disk error — and,
	// as a failed flush can, leave a partial line in the backing file.
	l.mu.Lock()
	l.w = bufio.NewWriterSize(failingWriter{}, 1)
	if _, err := l.f.WriteString(`{"seq":2,"ra`); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.mu.Unlock()
	if _, err := l.Append(3, 4, 0.25, 0); err == nil {
		t.Fatal("append through a failing writer should error")
	}
	// The fix: the very next append resyncs (truncate to the last good line,
	// reset the writer onto the file) and succeeds.
	seq, err := l.Append(3, 4, 0.25, 0)
	if err != nil {
		t.Fatalf("append after write error did not recover: %v", err)
	}
	if seq != 2 {
		t.Fatalf("recovered append got seq %d, want 2 (failed attempt must not consume a seq)", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The partial line was truncated away: reboot replays cleanly.
	l2, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatalf("reopen after recovered write error: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 2 || replayed[1].Rater != 3 {
		t.Fatalf("replayed %+v, want the two good entries", replayed)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("injected write error") }

func TestLedgerTrimHistory(t *testing.T) {
	l := NewLedger(8)
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(i%4, (i+1)%4, 0.5, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		fb := Feedback{Rater: 4, Subject: 5, Value: 0.5, UnixNano: int64(2000 + i), Origin: "node-b", OriginSeq: uint64(i + 1)}
		if _, _, err := l.AppendReplicated(fb); err != nil {
			t.Fatal(err)
		}
	}
	// No floor for node-b: its stream must not be trimmed at all.
	removed := l.TrimHistory(CompactConfig{Origin: "node-a"}, map[string]uint64{"": 20})
	if removed != 16 {
		t.Fatalf("trimmed %d local entries, want 16 (4 cells survive)", removed)
	}
	if got := len(l.EntriesSince("node-b", 0, 0)); got != 10 {
		t.Fatalf("node-b stream trimmed to %d entries despite missing floor", got)
	}
	// Floor below the node-b head: everything at or below it is superseded
	// except the cell winner... which is the head here (same cell, rising
	// timestamps), so 9 drop once the floor passes seq 9.
	removed = l.TrimHistory(CompactConfig{Origin: "node-a"}, map[string]uint64{"node-b": 9})
	if removed != 8 {
		t.Fatalf("trimmed %d node-b entries, want 8 (floor at 9 spares seq 10 and the seq-9 winner-at-floor)", removed)
	}
	after := l.EntriesSince("node-b", 0, 0)
	if len(after) != 2 || after[len(after)-1].OriginSeq != 10 {
		t.Fatalf("node-b stream after trim: %+v", after)
	}
	// Watermarks and pull answers still work past the trim point.
	if got := l.OriginMark("node-b"); got != 10 {
		t.Fatalf("node-b watermark %d after trim, want 10", got)
	}
	if ents := l.EntriesSince("node-b", 9, 0); len(ents) != 1 || ents[0].OriginSeq != 10 {
		t.Fatalf("EntriesSince past trim: %+v", ents)
	}
}

// TestLedgerCompactConcurrentAppends races Compact against live appends (the
// race job runs this under -race): compaction must neither lose nor duplicate
// entries, and the post-compaction file must replay cleanly.
func TestLedgerCompactConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l := compactSeedLedger(t, path, 20)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := l.Append(i%8, (i+3)%8, 0.5, int64(5000+i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		if _, err := l.Compact(CompactConfig{FoldedSeq: func(int) uint64 { return 20 }}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	before := l.Seq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Seq() != before {
		t.Fatalf("reopened seq %d, want %d", l2.Seq(), before)
	}
	// Every entry past the fold point survived every rewrite.
	unfolded := 0
	for _, fb := range replayed {
		if fb.Seq > 20 {
			unfolded++
		}
	}
	if unfolded != 50 {
		t.Fatalf("%d unfolded entries survived, want all 50", unfolded)
	}
}

// TestCompactionKeepTieBreak pins the tie rule: equal LWW tags resolve to the
// later entry in apply order, matching the fold's overwrite semantics.
func TestCompactionKeepTieBreak(t *testing.T) {
	entries := []Feedback{
		{Seq: 1, Rater: 1, Subject: 2, Value: 0.1, UnixNano: 100},
		{Seq: 2, Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
	}
	// Local entries tie on timestamp but differ on seq: seq 2 wins.
	keep := compactionKeep(entries, 8, "", func(Feedback) bool { return true })
	if !reflect.DeepEqual(keep, []bool{false, true}) {
		t.Fatalf("keep = %v, want the later local entry", keep)
	}
}

func TestHintLogRewriteSurfacesOldHandleCloseError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.jsonl")
	hl, _, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.Append(testHint("peer-1", 0)); err != nil {
		t.Fatal(err)
	}
	// Force the old handle's Close inside Rewrite to fail. Before the fix
	// this error was dropped on the floor (and a reopen failure would have
	// left the log holding a closed handle).
	if err := hl.f.Close(); err != nil {
		t.Fatal(err)
	}
	err = hl.Rewrite([]Hint{testHint("peer-1", 1)})
	if err == nil {
		t.Fatal("Rewrite swallowed the old handle's close error")
	}
	// The error is diagnostic, not fatal: the rewrite itself succeeded and
	// the log keeps working on the new handle.
	if err := hl.Append(testHint("peer-2", 2)); err != nil {
		t.Fatalf("hint log unusable after rewrite close error: %v", err)
	}
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Hint{testHint("peer-1", 1), testHint("peer-2", 2)}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed %+v, want %+v", replayed, want)
	}
}

// TestHintLogBlankLinesTolerated is the regression test for the replay
// asymmetry: Ledger.replay skipped blank lines but OpenHintLog fed them to
// the JSON decoder and refused to boot.
func TestHintLogBlankLinesTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.jsonl")
	h1, h2 := testHint("peer-1", 0), testHint("peer-2", 7)
	var buf []byte
	for i, h := range []Hint{h1, h2} {
		b, err := jsonMarshalHint(h)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
		if i == 0 {
			buf = append(buf, '\n') // stray blank line between hints
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	hl, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatalf("blank line refused hint log boot: %v", err)
	}
	defer hl.Close()
	if !reflect.DeepEqual(replayed, []Hint{h1, h2}) {
		t.Fatalf("replayed %+v, want both hints", replayed)
	}
}

func jsonMarshalHint(h Hint) ([]byte, error) {
	return json.Marshal(h)
}
