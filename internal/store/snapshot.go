package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"diffgossip/internal/trust"
)

// Snapshot is one immutable, versioned publication of the reputation state:
// the trust matrix as of the epoch's fold point plus the reputations the
// differential-gossip epoch computed from it. Snapshots are frozen at
// construction — nothing in the service ever mutates one after it is
// published — so any number of readers may hold and query the same Snapshot
// concurrently, with no locking, while later epochs build their successors.
type Snapshot struct {
	// Epoch is the snapshot version, strictly increasing from 0 (the empty
	// boot snapshot).
	Epoch uint64
	// Seq is the highest ledger sequence number folded into Trust; feedback
	// with larger Seq is not yet visible here.
	Seq uint64
	// N is the network size.
	N int
	// Trust is the frozen direct-interaction matrix the epoch ran on.
	// It must never be mutated (see the trust.Matrix concurrency contract);
	// concurrent reads of a never-written Matrix are safe.
	Trust *trust.Matrix
	// Global[j] is subject j's global reputation (Algorithm 1's fixed point,
	// as estimated by the epoch's vector-gossip run; exactly 0 for subjects
	// nobody has rated).
	Global []float64
	// Raters[j] is the number of distinct raters of subject j in Trust.
	Raters []int
	// Steps and Converged report the epoch's underlying gossip run (both
	// zero-valued on the boot snapshot, which runs no gossip).
	Steps     int
	Converged bool
	// ElapsedNs is the epoch's wall-clock compute time in nanoseconds.
	ElapsedNs int64
	// CreatedUnixNano is the publication wall-clock time.
	CreatedUnixNano int64
}

// NewBootSnapshot returns the epoch-0 snapshot an empty service publishes
// before any feedback has been folded.
func NewBootSnapshot(n int, createdUnixNano int64) *Snapshot {
	return &Snapshot{
		N:               n,
		Trust:           trust.NewMatrix(n),
		Global:          make([]float64, n),
		Raters:          make([]int, n),
		CreatedUnixNano: createdUnixNano,
	}
}

// Reputation returns subject's global reputation under this snapshot.
func (s *Snapshot) Reputation(subject int) (float64, error) {
	if subject < 0 || subject >= s.N {
		return 0, fmt.Errorf("store: subject %d out of range [0,%d)", subject, s.N)
	}
	return s.Global[subject], nil
}

// Personal returns the globally calibrated local reputation of subject as
// seen by rater — the GCLR view (paper eq. (6)) evaluated on the frozen
// matrix, so it is consistent with the same epoch as the global values.
func (s *Snapshot) Personal(rater, subject int, p trust.WeightParams) (float64, error) {
	if rater < 0 || rater >= s.N || subject < 0 || subject >= s.N {
		return 0, fmt.Errorf("store: pair (%d,%d) out of range [0,%d)", rater, subject, s.N)
	}
	return trust.WeightedColumn(s.Trust, rater, subject, s.Trust.InteractedWith(rater), p, true), nil
}

// snapshotWire is the gob representation; the matrix rides as its own gob
// payload so trust's versioned wire format is reused unchanged.
type snapshotWire struct {
	Version         int
	Epoch, Seq      uint64
	N               int
	Global          []float64
	Raters          []int
	Steps           int
	Converged       bool
	ElapsedNs       int64
	CreatedUnixNano int64
	Matrix          []byte
}

const snapshotWireVersion = 1

// Save serialises the snapshot with gob.
func (s *Snapshot) Save(w io.Writer) error {
	var mb bytes.Buffer
	if err := s.Trust.Save(&mb); err != nil {
		return fmt.Errorf("store: encode snapshot matrix: %w", err)
	}
	wire := snapshotWire{
		Version:         snapshotWireVersion,
		Epoch:           s.Epoch,
		Seq:             s.Seq,
		N:               s.N,
		Global:          s.Global,
		Raters:          s.Raters,
		Steps:           s.Steps,
		Converged:       s.Converged,
		ElapsedNs:       s.ElapsedNs,
		CreatedUnixNano: s.CreatedUnixNano,
		Matrix:          mb.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot deserialises a snapshot written by Save, validating shape.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var wire snapshotWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if wire.Version != snapshotWireVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", wire.Version)
	}
	if wire.N < 0 || len(wire.Global) != wire.N || len(wire.Raters) != wire.N {
		return nil, fmt.Errorf("store: malformed snapshot payload")
	}
	m, err := trust.Load(bytes.NewReader(wire.Matrix))
	if err != nil {
		return nil, err
	}
	if m.N() != wire.N {
		return nil, fmt.Errorf("store: snapshot matrix size %d does not match N=%d", m.N(), wire.N)
	}
	return &Snapshot{
		Epoch:           wire.Epoch,
		Seq:             wire.Seq,
		N:               wire.N,
		Trust:           m,
		Global:          wire.Global,
		Raters:          wire.Raters,
		Steps:           wire.Steps,
		Converged:       wire.Converged,
		ElapsedNs:       wire.ElapsedNs,
		CreatedUnixNano: wire.CreatedUnixNano,
	}, nil
}

// SaveFile writes the snapshot to path atomically and durably: the bytes
// land in a temporary file in the same directory, are fsynced, replace path
// by rename, and the directory entry is fsynced too — so after a crash (or
// power loss) the path holds either the old snapshot or the complete new
// one, never a torn file.
func (s *Snapshot) SaveFile(path string) error {
	return writeFileAtomic(path, ".snapshot-*.tmp", s.Save)
}

// writeFileAtomic is the shared atomic-and-durable publication primitive:
// write to a same-directory temp file, fsync, rename over path, fsync the
// directory entry. After a crash the path holds either the old contents or
// the complete new ones, never a torn file.
func writeFileAtomic(path, tmpPattern string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish %s: %w", filepath.Base(path), err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync makes the rename itself durable; best effort on
		// filesystems that reject it.
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshotFile reads a snapshot written by SaveFile. It returns
// (nil, nil) when the file does not exist, so boot code can treat "no
// snapshot yet" as a non-error.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	return LoadSnapshot(f)
}
