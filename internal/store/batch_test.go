package store

import (
	"bufio"
	"errors"
	"path/filepath"
	"testing"
)

func TestLedgerAppendBatch(t *testing.T) {
	l := NewLedger(8)
	first, last, err := l.AppendBatch([]Feedback{
		{Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
		{Rater: 3, Subject: 2, Value: 0.4, UnixNano: 200},
		{Rater: 1, Subject: 5, Value: 0.7, UnixNano: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 3 {
		t.Fatalf("batch seqs [%d,%d], want [1,3]", first, last)
	}
	if l.Seq() != 3 || l.PendingCount() != 3 {
		t.Fatalf("Seq=%d PendingCount=%d, want 3/3", l.Seq(), l.PendingCount())
	}
	pending := l.TakePending()
	for i, fb := range pending {
		if fb.Seq != uint64(i+1) {
			t.Fatalf("pending[%d].Seq = %d, want contiguous from 1", i, fb.Seq)
		}
		if fb.Shard != ShardOf(fb.Subject, 1) {
			t.Fatalf("pending[%d].Shard = %d, want %d", i, fb.Shard, ShardOf(fb.Subject, 1))
		}
	}
	// Sequence space is shared with single appends: the next Append
	// continues after the batch.
	seq, err := l.Append(0, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("post-batch Append seq = %d, want 4", seq)
	}
}

func TestLedgerAppendBatchAllOrNothing(t *testing.T) {
	l := NewLedger(4)
	cases := map[string][]Feedback{
		"empty":        {},
		"bad value":    {{Rater: 1, Subject: 2, Value: 0.5}, {Rater: 2, Subject: 3, Value: 1.5}},
		"bad subject":  {{Rater: 1, Subject: 9, Value: 0.5}},
		"origin tags":  {{Rater: 1, Subject: 2, Value: 0.5, Origin: "peer", OriginSeq: 7}},
		"negative idx": {{Rater: -1, Subject: 2, Value: 0.5}},
	}
	for name, batch := range cases {
		if _, _, err := l.AppendBatch(batch); err == nil {
			t.Errorf("%s batch accepted", name)
		}
	}
	if l.Seq() != 0 || l.PendingCount() != 0 {
		t.Fatalf("rejected batches moved state: seq=%d pending=%d", l.Seq(), l.PendingCount())
	}
	// The empty batch rejection is a validation error, same family as a bad
	// rating — callers map both to 400.
	if _, _, err := l.AppendBatch(nil); !errors.Is(err, ErrInvalidFeedback) {
		t.Fatalf("empty batch error = %v, want ErrInvalidFeedback", err)
	}
}

func TestLedgerAppendBatchPersistReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, 1, 0.2, 50); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendBatch([]Feedback{
		{Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
		{Rater: 3, Subject: 4, Value: 0.4, UnixNano: 200},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(replayed))
	}
	want := []Feedback{
		{Seq: 1, Rater: 0, Subject: 1, Value: 0.2, UnixNano: 50},
		{Seq: 2, Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
		{Seq: 3, Rater: 3, Subject: 4, Value: 0.4, UnixNano: 200},
	}
	for i, fb := range replayed {
		if fb != want[i] {
			t.Errorf("replayed[%d] = %+v, want %+v", i, fb, want[i])
		}
	}
}

func TestLedgerAppendBatchHistory(t *testing.T) {
	l := NewLedger(8)
	if err := l.EnableReplication(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.AppendBatch([]Feedback{
		{Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
		{Rater: 3, Subject: 4, Value: 0.4, UnixNano: 200},
	}); err != nil {
		t.Fatal(err)
	}
	// Batched entries enter the local replication history like single
	// appends do, so anti-entropy ships them to peers.
	got := l.EntriesSince("", 0, 16)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("local history after batch = %+v, want seqs 1,2", got)
	}
}

// TestLedgerAppendBatchRecoversAfterWriteError: a batch that dies mid-write
// admits nothing — no seqs consumed, no pending entries — and the WAL
// truncates back to the last good line so the next write starts clean.
func TestLedgerAppendBatchRecoversAfterWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, 2, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	// As in TestLedgerAppendRecoversAfterWriteError: a sticky failing writer
	// plus a partial line already spilled into the backing file.
	l.mu.Lock()
	l.w = bufio.NewWriterSize(failingWriter{}, 1)
	if _, err := l.f.WriteString(`{"seq":2,"ra`); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.mu.Unlock()
	if _, _, err := l.AppendBatch([]Feedback{
		{Rater: 3, Subject: 4, Value: 0.25},
		{Rater: 5, Subject: 6, Value: 0.75},
	}); err == nil {
		t.Fatal("batch through a failing writer should error")
	}
	if l.Seq() != 1 || l.PendingCount() != 1 {
		t.Fatalf("failed batch moved state: seq=%d pending=%d", l.Seq(), l.PendingCount())
	}
	// The next batch resyncs and lands with fresh contiguous seqs.
	first, last, err := l.AppendBatch([]Feedback{
		{Rater: 3, Subject: 4, Value: 0.25},
		{Rater: 5, Subject: 6, Value: 0.75},
	})
	if err != nil {
		t.Fatalf("batch after write error did not recover: %v", err)
	}
	if first != 2 || last != 3 {
		t.Fatalf("recovered batch seqs [%d,%d], want [2,3]", first, last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := OpenLedger(path, 8)
	if err != nil {
		t.Fatalf("reopen after recovered batch error: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 3 || replayed[2].Rater != 5 {
		t.Fatalf("replayed %+v, want the three good entries", replayed)
	}
}
