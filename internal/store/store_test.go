package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"diffgossip/internal/trust"
)

func TestLedgerAppendValidates(t *testing.T) {
	l := NewLedger(5)
	if _, err := l.Append(-1, 0, 0.5, 0); err == nil {
		t.Error("negative rater accepted")
	}
	if _, err := l.Append(0, 5, 0.5, 0); err == nil {
		t.Error("out-of-range subject accepted")
	}
	if _, err := l.Append(0, 1, 1.5, 0); err == nil {
		t.Error("value > 1 accepted")
	}
	if _, err := l.Append(0, 1, math.NaN(), 0); err == nil {
		t.Error("NaN value accepted")
	}
	if l.PendingCount() != 0 {
		t.Fatalf("rejected appends left %d pending entries", l.PendingCount())
	}
}

func TestLedgerSeqAndPending(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 3; i++ {
		seq, err := l.Append(i, 3, 0.25*float64(i+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if got := l.PendingCount(); got != 3 {
		t.Fatalf("PendingCount = %d, want 3", got)
	}
	batch := l.TakePending()
	if len(batch) != 3 || batch[0].Seq != 1 || batch[2].Seq != 3 {
		t.Fatalf("TakePending returned %+v", batch)
	}
	if l.PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
	if l.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", l.Seq())
	}
}

func TestLedgerPersistReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh ledger replayed %d entries", len(replayed))
	}
	want := []Feedback{
		{Seq: 1, Rater: 1, Subject: 2, Value: 0.9, UnixNano: 100},
		{Seq: 2, Rater: 3, Subject: 2, Value: 0.4, UnixNano: 200},
		{Seq: 3, Rater: 1, Subject: 2, Value: 0.7, UnixNano: 300},
	}
	for _, fb := range want {
		if _, err := l.Append(fb.Rater, fb.Subject, fb.Value, fb.UnixNano); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(replayed), len(want))
	}
	for i, fb := range replayed {
		if fb != want[i] {
			t.Errorf("replayed[%d] = %+v, want %+v", i, fb, want[i])
		}
	}
	// Appends resume after the highest replayed seq.
	seq, err := l2.Append(0, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("post-replay seq = %d, want 4", seq)
	}
}

func TestLedgerReplayRejectsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl": "{not json\n",
		"range.jsonl":   `{"seq":1,"rater":99,"subject":0,"value":0.5}` + "\n",
		"seq.jsonl":     `{"seq":2,"rater":0,"subject":1,"value":0.5}` + "\n" + `{"seq":2,"rater":0,"subject":1,"value":0.5}` + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenLedger(path, 10); err == nil {
			t.Errorf("%s: corrupt ledger accepted", name)
		}
	}
}

// TestLedgerTornTailTruncated: an unterminated final line — the artifact of
// an append that crashed mid-write — is dropped and truncated away, and the
// ledger keeps working; the same malformed content as a *complete* line is
// real corruption and still fails hard.
func TestLedgerTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	good := `{"seq":1,"rater":0,"subject":1,"value":0.5}` + "\n"
	if err := os.WriteFile(path, []byte(good+`{"seq":2,"rater":0,"sub`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, replayed, err := OpenLedger(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0].Seq != 1 {
		t.Fatalf("replayed %+v, want just seq 1", replayed)
	}
	// The torn bytes are gone and the next append reuses the freed seq slot
	// on a clean line boundary.
	seq, err := l.Append(2, 3, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("post-truncate seq = %d, want 2", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, replayed, err = OpenLedger(path, 10); err != nil || len(replayed) != 2 {
		t.Fatalf("reopen after truncate: %d entries, err %v", len(replayed), err)
	}
}

// TestLedgerRestorePrepends: restored entries fold BEFORE anything already
// pending (they are older), preserving last-wins order.
func TestLedgerRestorePrepends(t *testing.T) {
	l := NewLedger(4)
	if _, err := l.Append(0, 1, 0.9, 0); err != nil { // seq 1
		t.Fatal(err)
	}
	batch := l.TakePending()
	if _, err := l.Append(0, 1, 0.2, 0); err != nil { // seq 2, newer
		t.Fatal(err)
	}
	l.Restore(batch)
	got := l.TakePending()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("pending order %+v, want seq 1 then 2", got)
	}
}

func TestLedgerConcurrentAppend(t *testing.T) {
	l := NewLedger(8)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(w, (w+i)%8, 0.5, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Seq(); got != workers*per {
		t.Fatalf("Seq = %d, want %d", got, workers*per)
	}
	batch := l.TakePending()
	if len(batch) != workers*per {
		t.Fatalf("pending = %d, want %d", len(batch), workers*per)
	}
	seen := make(map[uint64]bool, len(batch))
	for _, fb := range batch {
		if seen[fb.Seq] {
			t.Fatalf("duplicate seq %d", fb.Seq)
		}
		seen[fb.Seq] = true
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := trust.NewMatrix(6)
	m.Set(0, 3, 0.8)
	m.Set(1, 3, 0.6)
	m.Set(2, 5, 0.1)
	s := &Snapshot{
		Epoch:           7,
		Seq:             42,
		N:               6,
		Trust:           m,
		Global:          []float64{0, 0, 0, 0.7, 0, 0.1},
		Raters:          []int{0, 0, 0, 2, 0, 1},
		Steps:           19,
		Converged:       true,
		ElapsedNs:       12345,
		CreatedUnixNano: 99,
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.Seq != s.Seq || got.N != s.N ||
		got.Steps != s.Steps || !got.Converged || got.ElapsedNs != s.ElapsedNs ||
		got.CreatedUnixNano != s.CreatedUnixNano {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for j := range s.Global {
		if got.Global[j] != s.Global[j] || got.Raters[j] != s.Raters[j] {
			t.Fatalf("column %d mismatch", j)
		}
	}
	if got.Trust.Value(0, 3) != 0.8 || got.Trust.NumEntries() != 3 {
		t.Fatal("trust matrix not preserved")
	}
}

func TestSnapshotSaveFileAtomicAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.gob")
	if s, err := LoadSnapshotFile(path); err != nil || s != nil {
		t.Fatalf("missing snapshot: got (%v, %v), want (nil, nil)", s, err)
	}
	s := NewBootSnapshot(4, 123)
	s.Epoch = 1
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 1 || got.N != 4 {
		t.Fatalf("loaded %+v", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestSnapshotQueries(t *testing.T) {
	m := trust.NewMatrix(4)
	m.Set(1, 2, 1.0) // node 1 rates subject 2 high
	m.Set(3, 2, 0.2) // node 3 rates it low; rater mean = 0.6
	m.Set(0, 1, 0.9) // node 0 trusts node 1, so 1's opinion is upweighted
	s := &Snapshot{N: 4, Trust: m, Global: []float64{0, 0, 0.6, 0}, Raters: []int{0, 0, 2, 0}}
	if v, err := s.Reputation(2); err != nil || v != 0.6 {
		t.Fatalf("Reputation(2) = (%v, %v)", v, err)
	}
	if _, err := s.Reputation(9); err == nil {
		t.Error("out-of-range subject accepted")
	}
	// Node 0's personal view upweights node 1's high rating above the rater
	// mean; a node with no interactions sees exactly the rater mean.
	p := trust.DefaultWeightParams
	personal, err := s.Personal(0, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if personal <= 0.6 {
		t.Fatalf("personal view %v not above global 0.6", personal)
	}
	stranger, err := s.Personal(2, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stranger-0.6) > 1e-12 {
		t.Fatalf("stranger view %v != rater mean 0.6", stranger)
	}
	if _, err := s.Personal(0, 9, p); err == nil {
		t.Error("out-of-range pair accepted")
	}
}
