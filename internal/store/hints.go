package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"diffgossip/internal/obs"
)

// HintEntry is one feedback rating inside a hinted-handoff batch: the wire
// fields of a replicated ledger entry, without the local sequence number (a
// hint is addressed to a peer, not applied locally).
type HintEntry struct {
	// OriginSeq is the sequence number the origin node's ledger assigned.
	OriginSeq uint64 `json:"origin_seq"`
	// Rater and Subject are node ids; Value is the direct trust value.
	Rater   int     `json:"rater"`
	Subject int     `json:"subject"`
	Value   float64 `json:"value"`
	// UnixNano is the ingest wall-clock time at the origin (0 when unknown).
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// Hint is one buffered anti-entropy batch owed to a dead peer: the entries
// of origin's stream contiguously extending it past sequence number After,
// to be replayed to Peer when it comes back.
type Hint struct {
	// Peer is the cluster id (transport address) the batch is owed to.
	Peer string `json:"peer"`
	// Origin and After frame the batch exactly like a KindEntries message.
	Origin string `json:"origin,omitempty"`
	After  uint64 `json:"after,omitempty"`
	// Entries is the batch, in strictly ascending OriginSeq order.
	Entries []HintEntry `json:"entries"`
}

// HintLog persists hinted-handoff batches as JSON lines alongside the WAL,
// so hints owed to a dead peer survive a restart of the hinting node. It is
// an append-mostly log: enqueue appends one line, and after replay shrinks
// the queue the caller rewrites the whole file through an atomic rename —
// the same crash contract as the ledger (old file or new file, never torn).
//
// Not safe for concurrent use; the owning cluster node serialises access.
type HintLog struct {
	path string
	f    *os.File
	w    *bufio.Writer

	// mAppends and mRewrites count durable hint-log writes; the owning
	// cluster node's Instrument hook exposes them.
	mAppends  obs.Counter
	mRewrites obs.Counter
}

// InstrumentMetrics returns the hint log's append and rewrite counters for
// registration by the owning component (internal/cluster).
func (hl *HintLog) InstrumentMetrics() (appends, rewrites *obs.Counter) {
	return &hl.mAppends, &hl.mRewrites
}

// OpenHintLog opens (creating if absent) the hint log at path and replays
// every buffered hint in append order. A torn final line — a crash
// mid-append — is cut off; any malformed complete line is real corruption
// and fails hard.
func OpenHintLog(path string) (*HintLog, []Hint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open hint log: %w", err)
	}
	var (
		out     []Hint
		goodEnd int64
	)
	br := bufio.NewReader(f)
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			f.Close()
			return nil, nil, fmt.Errorf("store: read hint log: %w", err)
		}
		if len(b) > 0 && b[len(b)-1] == '\n' {
			line++
			// Blank lines are tolerated exactly as Ledger.replay tolerates
			// them: counted as good bytes and skipped, so a stray newline
			// never refuses boot.
			if trimmed := b[:len(b)-1]; len(trimmed) != 0 {
				var h Hint
				if jerr := json.Unmarshal(trimmed, &h); jerr != nil {
					f.Close()
					return nil, nil, fmt.Errorf("store: hint log line %d: %w", line, jerr)
				}
				out = append(out, h)
			}
			goodEnd += int64(len(b))
		}
		if err == io.EOF {
			break
		}
	}
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncate torn hint tail: %w", err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek hint log: %w", err)
	}
	return &HintLog{path: path, f: f, w: bufio.NewWriter(f)}, out, nil
}

// Append durably adds one hint to the log: the line is flushed to the OS
// before Append returns (fsync waits for Sync or Close — hints are a
// best-effort fast path; the anti-entropy pull remains the correctness
// backstop if the last few lines are lost to a power cut).
func (hl *HintLog) Append(h Hint) error {
	b, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("store: encode hint: %w", err)
	}
	b = append(b, '\n')
	if _, err := hl.w.Write(b); err != nil {
		return fmt.Errorf("store: append hint: %w", err)
	}
	if err := hl.w.Flush(); err != nil {
		return fmt.Errorf("store: flush hint: %w", err)
	}
	hl.mAppends.Inc()
	return nil
}

// Rewrite atomically replaces the whole log with hints — called after a
// replay drains part of the queue, so delivered batches are not replayed
// again across a restart. Any failure before the rename leaves the old file
// and the old handle untouched; after the rename the temp handle itself
// becomes the log's handle (the rename moves the inode, not the fd), so
// there is no reopen step that could fail and leave the log pointing at a
// closed file. A non-nil error after the swap means the replacement
// succeeded but closing the previous handle failed; the log stays usable.
func (hl *HintLog) Rewrite(hints []Hint) error {
	tmp := hl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: rewrite hint log: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, h := range hints {
		b, err := json.Marshal(h)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: encode hint: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: rewrite hint log: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: rewrite hint log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync hint log: %w", err)
	}
	if err := os.Rename(tmp, hl.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: replace hint log: %w", err)
	}
	oldErr := hl.f.Close()
	hl.f = f
	hl.w = w // w's buffer is flushed; appends continue at the file's end
	hl.mRewrites.Inc()
	if oldErr != nil {
		return fmt.Errorf("store: close previous hint log handle: %w", oldErr)
	}
	return nil
}

// Sync flushes buffered hints and fsyncs the log file.
func (hl *HintLog) Sync() error {
	if err := hl.w.Flush(); err != nil {
		return fmt.Errorf("store: flush hint log: %w", err)
	}
	if err := hl.f.Sync(); err != nil {
		return fmt.Errorf("store: sync hint log: %w", err)
	}
	return nil
}

// Close flushes, fsyncs and closes the log.
func (hl *HintLog) Close() error {
	if err := hl.Sync(); err != nil {
		hl.f.Close()
		return err
	}
	return hl.f.Close()
}
