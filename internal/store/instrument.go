package store

import (
	"diffgossip/internal/obs"
)

// snapshotWrites counts durable shard-segment writes process-wide. Segment
// saves happen on ShardSnapshot values, which carry no back-pointer to their
// ledger, so the counter lives at package level and Instrument exposes it.
var snapshotWrites obs.Counter

// Instrument registers the ledger's store-layer metrics with reg: entry and
// WAL-line append counters, fsync count and duration, and snapshot segment
// writes. The counters are maintained unconditionally (single atomic adds on
// the append path); only the fsync-duration histogram springs to life here,
// via an atomic pointer, so an uninstrumented ledger never touches it.
// Call once per registry, before serving.
func (l *Ledger) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h := obs.NewHistogram(obs.DefBuckets()...)
	l.mFsyncHist.Store(h)
	reg.Counter("diffgossip_store_ledger_entries_total", "",
		"Feedback entries accepted into the ledger (in-memory or durable).", &l.mEntries)
	reg.Counter("diffgossip_store_wal_appends_total", "",
		"Feedback entries written as WAL lines (0 for an in-memory ledger).", &l.mWALAppends)
	reg.Counter("diffgossip_store_wal_fsyncs_total", "",
		"WAL fsync syscalls issued.", &l.mFsyncs)
	reg.Histogram("diffgossip_store_wal_fsync_duration_seconds", "",
		"WAL fsync latency, in seconds.", h)
	reg.Counter("diffgossip_store_snapshot_writes_total", "",
		"Durable shard snapshot segment writes (process-wide).", &snapshotWrites)
	reg.Counter("diffgossip_store_wal_compactions_total", "",
		"WAL compaction rewrites completed.", &l.mCompactions)
	reg.Counter("diffgossip_store_wal_compaction_dropped_entries_total", "",
		"Superseded WAL entries dropped by compaction.", &l.mCompactDrops)
	reg.Counter("diffgossip_store_hist_trimmed_entries_total", "",
		"Superseded replication-history entries trimmed from memory.", &l.mHistTrims)
}
