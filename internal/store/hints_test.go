package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testHint(peer string, after uint64) Hint {
	return Hint{
		Peer:  peer,
		After: after,
		Entries: []HintEntry{
			{OriginSeq: after + 1, Rater: 1, Subject: 2, Value: 0.5, UnixNano: 99},
			{OriginSeq: after + 2, Rater: 3, Subject: 4, Value: 0.25},
		},
	}
}

func TestHintLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.jsonl")
	hl, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d hints", len(replayed))
	}
	want := []Hint{testHint("peer-1", 0), testHint("peer-2", 7)}
	for _, h := range want {
		if err := hl.Append(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}

	hl2, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer hl2.Close()
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed %+v, want %+v", replayed, want)
	}
}

func TestHintLogRewriteShrinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.jsonl")
	hl, _, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := hl.Append(testHint("peer-1", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Replay delivered the first three; only the last survives — and appends
	// after the rewrite land after it.
	if err := hl.Rewrite([]Hint{testHint("peer-1", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := hl.Append(testHint("peer-1", 4)); err != nil {
		t.Fatal(err)
	}
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Hint{testHint("peer-1", 3), testHint("peer-1", 4)}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed %+v, want %+v", replayed, want)
	}
}

func TestHintLogTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.jsonl")
	hl, _, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.Append(testHint("peer-1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"peer":"peer-2","entr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hl2, replayed, err := OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0].Peer != "peer-1" {
		t.Fatalf("replayed %+v, want only the complete line", replayed)
	}
	// The torn tail was truncated: a fresh append replays cleanly.
	if err := hl2.Append(testHint("peer-3", 9)); err != nil {
		t.Fatal(err)
	}
	if err := hl2.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err = OpenHintLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 || replayed[1].Peer != "peer-3" {
		t.Fatalf("replayed %+v after truncation", replayed)
	}
}
