package store

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"diffgossip/internal/gossip"
)

// FuzzLedgerOpen throws arbitrary bytes at the WAL replay path. Whatever the
// input — torn tails, garbage lines, hostile JSON — OpenLedger must never
// panic, and when it accepts a file the result must be coherent:
//
//   - every replayed entry is valid (ids in range, value in [0,1], strictly
//     increasing seq);
//   - the open is idempotent: closing and reopening replays exactly the
//     same entries (the first open may truncate a torn tail; doing so must
//     not change what replays);
//   - appends keep working and survive a reopen.
func FuzzLedgerOpen(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"seq\":1,\"rater\":0,\"subject\":1,\"value\":0.5}\n"))
	f.Add([]byte("{\"seq\":1,\"rater\":0,\"subject\":1,\"value\":0.5}\n{\"seq\":2,\"rater\":1,\"subject\":0,\"value\":1}\n"))
	f.Add([]byte("{\"seq\":1,\"rater\":0,\"subject\":1,\"value\":0.5}\n{\"seq\":2,\"rater\":1,\"sub")) // torn tail
	f.Add([]byte("\n\n{\"seq\":3,\"rater\":2,\"subject\":3,\"value\":0}\n"))
	f.Add([]byte("{\"seq\":1,\"rater\":0,\"subject\":1,\"value\":1e999}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\"seq\":0,\"rater\":0,\"subject\":0,\"value\":0}\n"))
	f.Add([]byte("{\"seq\":1,\"rater\":-1,\"subject\":0,\"value\":0}\n"))
	f.Add([]byte("{\"seq\":18446744073709551615,\"rater\":0,\"subject\":0,\"value\":0}\n{\"seq\":1,\"rater\":0,\"subject\":0,\"value\":0}\n"))
	// Compacted-file shapes (see Compact): sparse seqs and a min seq > 1 are
	// valid — only non-increasing seqs are corruption.
	f.Add([]byte("{\"seq\":7,\"rater\":0,\"subject\":1,\"value\":0.5}\n"))
	f.Add([]byte("{\"seq\":2,\"rater\":0,\"subject\":1,\"value\":0.5}\n{\"seq\":9,\"rater\":1,\"subject\":0,\"value\":1}\n{\"seq\":10,\"rater\":2,\"subject\":3,\"value\":0.25}\n"))
	f.Add([]byte("{\"seq\":3,\"rater\":0,\"subject\":1,\"value\":0.5,\"origin\":\"node-1\",\"origin_seq\":8}\n{\"seq\":12,\"rater\":1,\"subject\":0,\"value\":1,\"origin\":\"node-1\",\"origin_seq\":20}\n"))

	const n = 16
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ledger.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, replayed, err := OpenLedger(path, n)
		if err != nil {
			return // rejected corrupt input: fine, as long as it didn't panic
		}
		var lastSeq uint64
		for k, fb := range replayed {
			if fb.Rater < 0 || fb.Rater >= n || fb.Subject < 0 || fb.Subject >= n {
				t.Fatalf("replayed entry %d has out-of-range ids: %+v", k, fb)
			}
			if fb.Value < 0 || fb.Value > 1 || math.IsNaN(fb.Value) {
				t.Fatalf("replayed entry %d has invalid value: %+v", k, fb)
			}
			if fb.Seq <= lastSeq {
				t.Fatalf("replayed entry %d seq not increasing: %d after %d", k, fb.Seq, lastSeq)
			}
			lastSeq = fb.Seq
		}
		// An accepted ledger accepts appends and assigns the next seq — the
		// single exception is an exhausted sequence space (a replayed entry
		// at MaxUint64), which must refuse rather than wrap and poison the
		// file. A refused append must leave no trace.
		seq, err := l.Append(1, 2, 0.25, 0)
		appended := err == nil
		if err != nil && lastSeq != math.MaxUint64 {
			t.Fatalf("append after replay: %v", err)
		}
		if appended && seq != lastSeq+1 {
			t.Fatalf("append seq %d, want %d", seq, lastSeq+1)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Reopen: same entries (plus the append if it succeeded), bit for
		// bit.
		l2, replayed2, err := OpenLedger(path, n)
		if err != nil {
			t.Fatalf("reopen of a once-accepted ledger failed: %v", err)
		}
		defer l2.Close()
		want := len(replayed)
		if appended {
			want++
		}
		if len(replayed2) != want {
			t.Fatalf("reopen replayed %d entries, want %d", len(replayed2), want)
		}
		for k := range replayed {
			if replayed2[k] != replayed[k] {
				t.Fatalf("entry %d changed across reopen: %+v vs %+v", k, replayed2[k], replayed[k])
			}
		}
		if appended {
			if got := replayed2[len(replayed)]; got.Seq != seq || got.Rater != 1 || got.Subject != 2 || got.Value != 0.25 {
				t.Fatalf("appended entry did not survive reopen: %+v", got)
			}
		}
	})
}

// FuzzFeedbackDecode targets the per-line JSON decoding contract directly: a
// line the ledger accepts must produce an in-range entry, and re-encoding it
// must survive a decode round-trip unchanged.
func FuzzFeedbackDecode(f *testing.F) {
	f.Add([]byte(`{"seq":1,"rater":3,"subject":4,"value":0.25,"unix_nano":123}`))
	f.Add([]byte(`{"value":5e-1}`))
	f.Add([]byte(`{"rater":1e3}`))
	f.Add([]byte(`{"seq":-1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"value":"0.5"}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		var fb Feedback
		if err := json.Unmarshal(line, &fb); err != nil {
			return
		}
		l := NewLedger(8)
		if err := l.check(fb.Rater, fb.Subject, fb.Value); err != nil {
			return
		}
		out, err := json.Marshal(fb)
		if err != nil {
			t.Fatalf("accepted entry does not re-encode: %+v: %v", fb, err)
		}
		var back Feedback
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded entry does not decode: %s: %v", out, err)
		}
		if back != fb {
			t.Fatalf("entry changed across a round-trip: %+v vs %+v", back, fb)
		}
	})
}

// FuzzSnapshotLoad throws arbitrary bytes at the gob snapshot decoder (which
// nests the trust matrix decoder). It must reject corrupt input with an
// error — never a panic or an out-of-bounds allocation — and anything it
// accepts must satisfy the snapshot's shape invariants.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed with a genuine snapshot so the fuzzer mutates realistic bytes.
	snap := NewBootSnapshot(4, 1)
	snap.Global[2] = 0.5
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.N < 0 || len(s.Global) != s.N || len(s.Raters) != s.N {
			t.Fatalf("accepted snapshot with inconsistent shape: N=%d global=%d raters=%d", s.N, len(s.Global), len(s.Raters))
		}
		if s.Trust == nil || s.Trust.N() != s.N {
			t.Fatalf("accepted snapshot with mismatched matrix: %+v", s)
		}
	})
}

// FuzzShardSnapshotLoad throws arbitrary bytes at the shard segment decoder
// (which nests the trust columns decoder). It must reject corrupt input with
// an error — never a panic or an out-of-bounds allocation — and anything it
// accepts must satisfy the segment's layout invariants.
func FuzzShardSnapshotLoad(f *testing.F) {
	// Seed with a genuine segment so the fuzzer mutates realistic bytes.
	snap := NewBootSnapshot(9, 1)
	snap.Trust.Set(1, 4, 0.5)
	snap.Trust.Set(2, 4, 0.25)
	snap.Global[4] = 0.375
	snap.Raters[4] = 2
	segs, err := SplitSnapshot(snap, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := segs[1].Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A second seed with a warm payload, so the fuzzer mutates the v2 fields
	// too.
	segs[1].GraphFP = 7
	segs[1].Warm = []*gossip.CampaignState{
		{Sparse: true, Raters: []int{1, 2}, PrevVals: []float64{0.5, 0.25},
			Y: []float64{0.4, 0.35}, G: []float64{1, 1}, Steps: 5},
		nil, nil,
	}
	buf.Reset()
	if err := segs[1].Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadShardSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.Shard < 0 || s.Shard >= s.Shards || s.N < 0 {
			t.Fatalf("accepted segment with bad layout: shard %d/%d over N=%d", s.Shard, s.Shards, s.N)
		}
		want := len(ShardSubjects(s.N, s.Shard, s.Shards))
		if len(s.Global) != want || len(s.Raters) != want || len(s.Cols.Subjects()) != want {
			t.Fatalf("accepted segment with inconsistent slots: %d/%d/%d want %d",
				len(s.Global), len(s.Raters), len(s.Cols.Subjects()), want)
		}
		for k, j := range s.Cols.Subjects() {
			if ShardOf(j, s.Shards) != s.Shard || SlotOf(j, s.Shards) != k {
				t.Fatalf("accepted segment whose column %d holds foreign subject %d", k, j)
			}
		}
		if s.Warm != nil && len(s.Warm) != want {
			t.Fatalf("accepted segment with %d warm slots, want %d", len(s.Warm), want)
		}
		for k, ws := range s.Warm {
			if ws == nil {
				continue
			}
			// Anything accepted must be a sane campaign seed: aligned rater
			// set in range, finite masses, non-negative weights.
			if len(ws.PrevVals) != len(ws.Raters) || ws.Steps < 0 {
				t.Fatalf("accepted warm slot %d with misaligned shape", k)
			}
			size := s.N
			if ws.Sparse {
				size = len(ws.Raters)
			}
			if len(ws.Y) != size || len(ws.G) != size {
				t.Fatalf("accepted warm slot %d with %d/%d masses, want %d", k, len(ws.Y), len(ws.G), size)
			}
			prev := -1
			for x, i := range ws.Raters {
				if i <= prev || i >= s.N {
					t.Fatalf("accepted warm slot %d with unsorted raters", k)
				}
				prev = i
				if !(ws.PrevVals[x] >= 0 && ws.PrevVals[x] <= 1) {
					t.Fatalf("accepted warm slot %d with out-of-range value", k)
				}
			}
			for x := range ws.Y {
				if math.IsNaN(ws.Y[x]) || math.IsInf(ws.Y[x], 0) || !(ws.G[x] >= 0) || math.IsInf(ws.G[x], 0) {
					t.Fatalf("accepted warm slot %d with invalid mass", k)
				}
			}
		}
	})
}
