package store

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"diffgossip/internal/gossip"
	"diffgossip/internal/trust"
)

// This file is the sharded persistence format that replaced the single
// snapshot.gob: a static manifest.json naming the layout plus one
// shard-NNNN.gob segment per subject shard. Segments are written
// individually with fsync + atomic rename as their shards fold — a clean
// shard's segment is never rewritten — and the write ordering (ledger fsync
// before any segment) keeps the boot invariant that the on-disk WAL covers
// everything any on-disk segment claims to have folded. The manifest is
// written once, when the directory is initialised or resharded, never per
// epoch, so there is no per-epoch global commit point to contend on.
//
// Migration: a data directory from the pre-shard format (snapshot.gob, no
// manifest) is split into segments on first boot via SplitSnapshot; the
// legacy file is left in place but ignored once a manifest exists.

// ShardSnapshot is one shard's immutable publication: the reputations and
// frozen trust columns of the subjects congruent to Shard mod Shards, as of
// this shard's last fold. Like the legacy Snapshot it is frozen at
// construction, so readers share it without locks; unlike it, each shard
// carries its own fold point (Epoch, Seq) — the composite view is
// snapshot-consistent per shard, not globally.
type ShardSnapshot struct {
	// Shard identifies this segment; Shards is the total count it was
	// written under. N is the network size.
	Shard, Shards, N int
	// Epoch is the service epoch counter value at this shard's last fold
	// (0 = boot, nothing folded yet). Seq is the ledger sequence number
	// through which this shard's subjects are folded: every ledger entry
	// for these subjects with Seq <= this value is reflected here.
	Epoch, Seq uint64
	// Global[k] is the global reputation of subject Shard + k*Shards;
	// Raters[k] its distinct-rater count.
	Global []float64
	Raters []int
	// Steps is the slowest campaign of the last fold; Converged is whether
	// every campaign converged (vacuously true at boot). Computed counts
	// the campaigns that actually ran in the last fold — the per-shard
	// increment of the service's incrementality fold counter.
	Steps     int
	Converged bool
	Computed  int
	// TotalSteps sums every campaign's step count in the last fold;
	// WarmStarts/ColdStarts split Computed by how each campaign was seeded.
	TotalSteps             int
	WarmStarts, ColdStarts int
	// ElapsedNs is the last fold's wall-clock compute time.
	ElapsedNs int64
	// CreatedUnixNano is the publication wall-clock time.
	CreatedUnixNano int64
	// GraphFP fingerprints the gossip graph the fold ran over. Warm state is
	// only valid against the same graph (the masses live on its nodes and its
	// topology shaped them), so boot drops Warm when the fingerprint
	// disagrees with the running service's.
	GraphFP uint64
	// Cols holds the frozen trust columns of this shard's subjects.
	Cols *trust.Columns
	// Warm[k] is subject slot k's recorded campaign state — next epoch's warm
	// seed — or nil when none was kept. A nil slice (the pre-v2 decode, a
	// reshard, a boot snapshot) means every campaign restarts cold.
	Warm []*gossip.CampaignState
}

// NewBootShardSnapshot returns the empty shard state a fresh service
// publishes before any feedback for the shard has been folded.
func NewBootShardSnapshot(n, shard, shards int, createdUnixNano int64) *ShardSnapshot {
	subjects := ShardSubjects(n, shard, shards)
	cols, err := trust.NewColumns(n, subjects, make([][]int, len(subjects)), make([][]float64, len(subjects)))
	if err != nil {
		panic(err) // shard layout is internally generated; cannot fail
	}
	return &ShardSnapshot{
		Shard:           shard,
		Shards:          shards,
		N:               n,
		Global:          make([]float64, len(subjects)),
		Raters:          make([]int, len(subjects)),
		Converged:       true,
		CreatedUnixNano: createdUnixNano,
		Cols:            cols,
	}
}

// Covers reports whether subject j belongs to this shard.
func (s *ShardSnapshot) Covers(j int) bool {
	return j >= 0 && j < s.N && ShardOf(j, s.Shards) == s.Shard
}

// Reputation returns subject j's global reputation under this shard
// snapshot; j must belong to the shard.
func (s *ShardSnapshot) Reputation(j int) (float64, error) {
	if !s.Covers(j) {
		return 0, fmt.Errorf("store: subject %d not in shard %d/%d over N=%d", j, s.Shard, s.Shards, s.N)
	}
	return s.Global[SlotOf(j, s.Shards)], nil
}

// RaterCount returns the distinct-rater count of subject j (0 when j is not
// in this shard).
func (s *ShardSnapshot) RaterCount(j int) int {
	if !s.Covers(j) {
		return 0
	}
	return s.Raters[SlotOf(j, s.Shards)]
}

// shardWire is the gob representation of a segment; the frozen columns ride
// as their own payload so trust's versioned wire format is reused.
type shardWire struct {
	Version          int
	Shard, Shards, N int
	Epoch, Seq       uint64
	Global           []float64
	Raters           []int
	Steps            int
	Converged        bool
	Computed         int
	TotalSteps       int
	WarmStarts       int
	ColdStarts       int
	ElapsedNs        int64
	CreatedUnixNano  int64
	GraphFP          uint64
	Cols             []byte
	Warm             []warmWire
}

// warmWire is a slot's campaign state on the wire. Gob cannot encode nil
// pointers inside a slice, so absent states ride as the zero value with
// Present=false instead of as nils.
type warmWire struct {
	Present   bool
	Sparse    bool
	Raters    []int
	PrevVals  []float64
	Y, G      []float64
	Steps     int
	Converged bool
}

// shardWireVersion 2 added TotalSteps/WarmStarts/ColdStarts, GraphFP and the
// Warm payload. Version-1 segments decode fine — their warm fields are simply
// absent, so every campaign restarts cold after the upgrade.
const shardWireVersion = 2

// maxShardWireN caps the node count accepted from a serialised segment,
// mirroring trust's maxWireN: decode allocates Θ(N) before reading entries.
const maxShardWireN = 1 << 24

// Save serialises the segment with gob.
func (s *ShardSnapshot) Save(w io.Writer) error {
	var cb bytes.Buffer
	if err := s.Cols.Save(&cb); err != nil {
		return fmt.Errorf("store: encode shard columns: %w", err)
	}
	wire := shardWire{
		Version: shardWireVersion,
		Shard:   s.Shard, Shards: s.Shards, N: s.N,
		Epoch: s.Epoch, Seq: s.Seq,
		Global: s.Global, Raters: s.Raters,
		Steps: s.Steps, Converged: s.Converged, Computed: s.Computed,
		TotalSteps: s.TotalSteps, WarmStarts: s.WarmStarts, ColdStarts: s.ColdStarts,
		ElapsedNs: s.ElapsedNs, CreatedUnixNano: s.CreatedUnixNano,
		GraphFP: s.GraphFP,
		Cols:    cb.Bytes(),
	}
	if s.Warm != nil {
		wire.Warm = make([]warmWire, len(s.Warm))
		for k, ws := range s.Warm {
			if ws == nil {
				continue
			}
			wire.Warm[k] = warmWire{
				Present: true, Sparse: ws.Sparse,
				Raters: ws.Raters, PrevVals: ws.PrevVals,
				Y: ws.Y, G: ws.G, Steps: ws.Steps, Converged: ws.Converged,
			}
		}
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("store: encode shard snapshot: %w", err)
	}
	return nil
}

// LoadShardSnapshot deserialises a segment written by Save, validating its
// shape against the shard layout it claims.
func LoadShardSnapshot(r io.Reader) (*ShardSnapshot, error) {
	var wire shardWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("store: decode shard snapshot: %w", err)
	}
	if wire.Version < 1 || wire.Version > shardWireVersion {
		return nil, fmt.Errorf("store: unsupported shard snapshot version %d", wire.Version)
	}
	if wire.N < 0 || wire.Shards < 1 || wire.Shard < 0 || wire.Shard >= wire.Shards {
		return nil, fmt.Errorf("store: malformed shard snapshot header")
	}
	if wire.N > maxShardWireN {
		// Bound before ShardSubjects allocates Θ(N) — a corrupt header must
		// be an error, not an out-of-range allocation (same guard class as
		// trust's maxWireN, found by fuzzing the legacy snapshot decoder).
		return nil, fmt.Errorf("store: shard snapshot size %d exceeds the wire-format bound %d", wire.N, maxShardWireN)
	}
	want := len(ShardSubjects(wire.N, wire.Shard, wire.Shards))
	if len(wire.Global) != want || len(wire.Raters) != want {
		return nil, fmt.Errorf("store: shard snapshot has %d/%d slots, want %d", len(wire.Global), len(wire.Raters), want)
	}
	cols, err := trust.LoadColumns(bytes.NewReader(wire.Cols))
	if err != nil {
		return nil, err
	}
	if cols.N() != wire.N || len(cols.Subjects()) != want {
		return nil, fmt.Errorf("store: shard snapshot columns do not match the shard layout")
	}
	for k, j := range cols.Subjects() {
		if j != wire.Shard+k*wire.Shards {
			return nil, fmt.Errorf("store: shard snapshot column %d holds subject %d", k, j)
		}
	}
	warm, err := decodeWarm(wire, want)
	if err != nil {
		return nil, err
	}
	return &ShardSnapshot{
		Shard: wire.Shard, Shards: wire.Shards, N: wire.N,
		Epoch: wire.Epoch, Seq: wire.Seq,
		Global: wire.Global, Raters: wire.Raters,
		Steps: wire.Steps, Converged: wire.Converged, Computed: wire.Computed,
		TotalSteps: wire.TotalSteps, WarmStarts: wire.WarmStarts, ColdStarts: wire.ColdStarts,
		ElapsedNs: wire.ElapsedNs, CreatedUnixNano: wire.CreatedUnixNano,
		GraphFP: wire.GraphFP,
		Cols:    cols,
		Warm:    warm,
	}, nil
}

// decodeWarm validates and unpacks a segment's warm payload. Warm state is an
// optimisation, not ground truth, but a corrupt segment must still fail
// loudly rather than inject NaNs or negative weight mass into next epoch's
// campaigns — the same strictness the column payload gets.
func decodeWarm(wire shardWire, want int) ([]*gossip.CampaignState, error) {
	if wire.Warm == nil {
		return nil, nil
	}
	if len(wire.Warm) != want {
		return nil, fmt.Errorf("store: shard snapshot has %d warm slots, want %d", len(wire.Warm), want)
	}
	warm := make([]*gossip.CampaignState, want)
	for k := range wire.Warm {
		w := &wire.Warm[k]
		if !w.Present {
			continue
		}
		if len(w.Raters) > wire.N || len(w.PrevVals) != len(w.Raters) {
			return nil, fmt.Errorf("store: warm slot %d has a malformed rater set", k)
		}
		prev := -1
		for x, i := range w.Raters {
			if i <= prev || i >= wire.N {
				return nil, fmt.Errorf("store: warm slot %d raters not strictly ascending in range", k)
			}
			prev = i
			v := w.PrevVals[x]
			if !(v >= 0 && v <= 1) { // rejects NaN too
				return nil, fmt.Errorf("store: warm slot %d value %v out of [0,1]", k, v)
			}
		}
		size := wire.N
		if w.Sparse {
			size = len(w.Raters)
		}
		if len(w.Y) != size || len(w.G) != size {
			return nil, fmt.Errorf("store: warm slot %d masses have length %d/%d, want %d", k, len(w.Y), len(w.G), size)
		}
		for x := range w.Y {
			if math.IsNaN(w.Y[x]) || math.IsInf(w.Y[x], 0) {
				return nil, fmt.Errorf("store: warm slot %d carries a non-finite value mass", k)
			}
			if !(w.G[x] >= 0) || math.IsInf(w.G[x], 0) {
				return nil, fmt.Errorf("store: warm slot %d carries an invalid weight mass", k)
			}
		}
		if w.Steps < 0 {
			return nil, fmt.Errorf("store: warm slot %d has a negative step count", k)
		}
		warm[k] = &gossip.CampaignState{
			Sparse: w.Sparse,
			Raters: w.Raters, PrevVals: w.PrevVals,
			Y: w.Y, G: w.G, Steps: w.Steps, Converged: w.Converged,
		}
	}
	return warm, nil
}

// SaveFile writes the segment to path atomically and durably (fsync, rename,
// directory fsync), like the legacy Snapshot.SaveFile.
func (s *ShardSnapshot) SaveFile(path string) error {
	err := writeFileAtomic(path, ".shard-*.tmp", s.Save)
	if err == nil {
		snapshotWrites.Inc()
	}
	return err
}

// LoadShardFile reads a segment written by SaveFile; (nil, nil) when the
// file does not exist (a shard that never folded has no segment).
func LoadShardFile(path string) (*ShardSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open shard snapshot: %w", err)
	}
	defer f.Close()
	return LoadShardSnapshot(f)
}

// Manifest is the static identity of a sharded data directory: written once
// when the directory is initialised (or resharded), never per epoch.
type Manifest struct {
	Version         int   `json:"version"`
	N               int   `json:"n"`
	Shards          int   `json:"shards"`
	CreatedUnixNano int64 `json:"created_unix_nano"`
}

const manifestVersion = 1

// SaveManifestFile writes the manifest atomically and durably.
func SaveManifestFile(m Manifest, path string) error {
	m.Version = manifestVersion
	return writeFileAtomic(path, ".manifest-*.tmp", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(m)
	})
}

// LoadManifestFile reads a manifest; (nil, nil) when the file does not
// exist, so boot code can fall back to the legacy single-snapshot format.
func LoadManifestFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", m.Version)
	}
	if m.N < 1 || m.Shards < 1 || m.Shards > m.N {
		return nil, fmt.Errorf("store: malformed manifest (n=%d, shards=%d)", m.N, m.Shards)
	}
	return &m, nil
}

// SplitSnapshot splits a legacy single-file snapshot into per-shard
// segments — the boot-time migration from the pre-shard format. Globals,
// rater counts and trust columns are copied verbatim, so the migrated
// directory serves exactly the reputations the old one did; every segment
// inherits the snapshot's fold point. Warm state and the graph fingerprint
// are not carried (the legacy format never had them, and a reshard
// re-slots every subject), so the first post-split epoch restarts cold —
// correct, just slower.
func SplitSnapshot(snap *Snapshot, shards int) ([]*ShardSnapshot, error) {
	if shards < 1 || shards > snap.N {
		return nil, fmt.Errorf("store: cannot split snapshot over N=%d into %d shards", snap.N, shards)
	}
	segs := make([]*ShardSnapshot, shards)
	for sh := 0; sh < shards; sh++ {
		subjects := ShardSubjects(snap.N, sh, shards)
		cols, err := trust.ColumnsOf(snap.Trust, subjects)
		if err != nil {
			return nil, err
		}
		global := make([]float64, len(subjects))
		raters := make([]int, len(subjects))
		for k, j := range subjects {
			global[k] = snap.Global[j]
			raters[k] = snap.Raters[j]
		}
		segs[sh] = &ShardSnapshot{
			Shard: sh, Shards: shards, N: snap.N,
			Epoch: snap.Epoch, Seq: snap.Seq,
			Global: global, Raters: raters,
			Steps: snap.Steps, Converged: snap.Converged,
			ElapsedNs: snap.ElapsedNs, CreatedUnixNano: snap.CreatedUnixNano,
			Cols: cols,
		}
	}
	return segs, nil
}

// StitchSnapshot reassembles a full-width snapshot from one segment per
// shard — the inverse of SplitSnapshot, used to reshard a directory whose
// manifest disagrees with the configured shard count and by tests. The
// stitched Seq is the minimum over the segments: entries above it may
// already be folded into some shards, but refolding is idempotent, so the
// conservative fold point is always safe. Epoch is the maximum, keeping the
// service's epoch counter monotone.
func StitchSnapshot(segs []*ShardSnapshot) (*Snapshot, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("store: no segments to stitch")
	}
	n := segs[0].N
	out := &Snapshot{
		N:      n,
		Trust:  trust.NewMatrix(n),
		Global: make([]float64, n),
		Raters: make([]int, n),
	}
	first := true
	for sh, seg := range segs {
		if seg == nil {
			return nil, fmt.Errorf("store: missing segment %d", sh)
		}
		if seg.N != n || seg.Shards != len(segs) || seg.Shard != sh {
			return nil, fmt.Errorf("store: segment %d does not fit the layout (shard %d/%d over N=%d)", sh, seg.Shard, seg.Shards, seg.N)
		}
		if first || seg.Seq < out.Seq {
			out.Seq = seg.Seq
		}
		if seg.Epoch > out.Epoch {
			out.Epoch = seg.Epoch
		}
		if seg.Steps > out.Steps {
			out.Steps = seg.Steps
		}
		if seg.CreatedUnixNano > out.CreatedUnixNano {
			out.CreatedUnixNano = seg.CreatedUnixNano
		}
		out.ElapsedNs += seg.ElapsedNs
		first = false
		for k, j := range seg.Cols.Subjects() {
			out.Global[j] = seg.Global[k]
			out.Raters[j] = seg.Raters[k]
			_, ids, vals := seg.Cols.ColumnAt(k)
			for x, i := range ids {
				if err := out.Trust.Set(i, j, vals[x]); err != nil {
					return nil, err
				}
			}
		}
	}
	out.Converged = true
	for _, seg := range segs {
		out.Converged = out.Converged && seg.Converged
	}
	return out, nil
}
