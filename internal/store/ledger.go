// Package store is the persistence substrate of the reputation service: an
// append-only feedback ledger (the write path) and immutable, versioned
// reputation snapshots (the read path).
//
// The two halves meet only at epoch boundaries. Feedback accumulates in the
// ledger — and, when a data directory is configured, in a JSON-lines
// write-ahead file — until the epoch scheduler (internal/service) folds the
// pending batch into the trust state, recomputes reputations by gossip, and
// publishes a new Snapshot. A Snapshot is frozen at construction and never
// mutated afterwards, so readers may share one across goroutines without
// locks; persistence uses gob (reusing trust.Matrix's wire format) with
// atomic rename, so a crash leaves either the old snapshot or the new one,
// never a torn file.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/obs"
)

// ErrInvalidFeedback marks feedback rejected by validation (out-of-range ids
// or values) as opposed to I/O failures; callers use errors.Is to map the
// two classes to different outcomes (e.g. HTTP 400 vs 500).
var ErrInvalidFeedback = errors.New("invalid feedback")

// Feedback is one direct-interaction rating: "Rater now places trust Value in
// Subject". When the next epoch folds it, t[Rater][Subject] = Value; the
// latest entry per (rater, subject) pair wins, matching trust.Matrix.Set
// semantics. Estimating Value from raw transaction outcomes is the caller's
// concern (see trust.Estimator) — the ledger stores the estimate.
type Feedback struct {
	// Seq is the ledger-assigned sequence number, strictly increasing from 1.
	Seq uint64 `json:"seq"`
	// Rater and Subject are node ids in [0, N).
	Rater   int `json:"rater"`
	Subject int `json:"subject"`
	// Value is the direct trust t_ij ∈ [0,1].
	Value float64 `json:"value"`
	// UnixNano is the ingest wall-clock time (0 when unknown, e.g. entries
	// replayed from ledgers written by older builds).
	UnixNano int64 `json:"unix_nano,omitempty"`
	// Origin is the cluster node id that first accepted this entry, for
	// entries replicated in from a peer; empty for entries this ledger
	// accepted itself (the common, standalone case — the WAL format is
	// unchanged when clustering is off). OriginSeq is the sequence number the
	// origin's own ledger assigned. The (Origin, OriginSeq) pair globally
	// identifies a replicated entry, which is what makes replicated
	// application idempotent.
	Origin    string `json:"origin,omitempty"`
	OriginSeq uint64 `json:"origin_seq,omitempty"`
	// Shard is the subject shard this entry belongs to under the ledger's
	// configured shard count, stamped by TakePending for the epoch
	// scheduler. It is derived state (Subject mod shards), never persisted:
	// the shard count may change across restarts.
	Shard int `json:"-"`
}

// ShardOf maps a subject to its shard under S subject shards. Modulo
// placement spreads id-adjacent hot subjects across shards; every layer
// (ledger dirty tracking, segment files, the composite read view) uses this
// one function so the partition can never skew.
func ShardOf(subject, shards int) int {
	if shards <= 1 {
		return 0
	}
	return subject % shards
}

// ShardSubjects returns shard's subjects — ascending ids congruent to shard
// mod shards — over an N-node id space.
func ShardSubjects(n, shard, shards int) []int {
	if shards <= 1 {
		shard, shards = 0, 1
	}
	out := make([]int, 0, (n-shard+shards-1)/shards)
	for j := shard; j < n; j += shards {
		out = append(out, j)
	}
	return out
}

// SlotOf maps a subject to its position inside its shard's subject list.
func SlotOf(subject, shards int) int {
	if shards <= 1 {
		return subject
	}
	return subject / shards
}

// Ledger is the append-only feedback log. Appends are cheap and concurrent
// (one short mutex hold, no epoch work on the ingest path); the epoch
// scheduler drains the pending window with TakePending. With a backing file
// every append is also written as one JSON line, so the full feedback history
// survives restarts and stays greppable.
type Ledger struct {
	n int

	mu      sync.Mutex
	seq     uint64
	pending []Feedback
	path    string
	f       *os.File
	w       *bufio.Writer

	// goodOff is the byte offset just past the last fully flushed WAL line.
	// wErr records that a write or flush failed, which may have left a
	// partial line in the file; before the next write the ledger resyncs by
	// truncating back to goodOff, so one transient I/O error can never
	// produce a malformed complete line that bricks replay at next boot.
	goodOff int64
	wErr    bool

	// syncMu serialises fsync without holding mu, so a slow disk never
	// blocks Append (see Sync).
	syncMu sync.Mutex

	// Shard-aware pending accounting. shards is fixed by SetShards before
	// concurrent use; dirty[s] reports whether shard s has pending entries.
	// The flags and counters are atomics updated under mu, so the stats
	// path reads them lock-free while writers stay serialised.
	shards     int
	dirty      []atomic.Bool
	dirtyCount atomic.Int64
	pendingN   atomic.Int64

	// Replication state, nil until EnableReplication: marks holds the
	// highest OriginSeq applied per remote origin (the local stream's
	// watermark is just seq), and hist retains every accepted entry per
	// origin ("" = locally accepted) so anti-entropy pulls are answered from
	// memory instead of re-reading the WAL. Both guarded by mu.
	marks map[string]uint64
	hist  map[string][]Feedback

	// Observability instruments (see Instrument). The counters are plain
	// atomics maintained on every append/sync regardless of registration;
	// the fsync histogram is created only when Instrument runs, behind an
	// atomic pointer so Sync can read it without a lock.
	mEntries      obs.Counter
	mWALAppends   obs.Counter
	mFsyncs       obs.Counter
	mFsyncHist    atomic.Pointer[obs.Histogram]
	mCompactions  obs.Counter
	mCompactDrops obs.Counter
	mHistTrims    obs.Counter
}

// NewLedger returns a memory-only ledger over n nodes with a single shard.
func NewLedger(n int) *Ledger {
	l := &Ledger{n: n}
	l.initShards(1)
	return l
}

func (l *Ledger) initShards(s int) {
	l.shards = s
	l.dirty = make([]atomic.Bool, s)
}

// SetShards configures the subject-shard count the ledger tracks dirtiness
// at. It must be called before concurrent use (the service sets it at
// boot); the dirty set is recomputed from whatever is pending.
func (l *Ledger) SetShards(s int) error {
	if s < 1 {
		return fmt.Errorf("store: shard count %d must be >= 1", s)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.initShards(s)
	l.dirtyCount.Store(0)
	for i := range l.pending {
		l.pending[i].Shard = ShardOf(l.pending[i].Subject, s)
		l.markDirtyLocked(l.pending[i].Shard)
	}
	return nil
}

// markDirtyLocked flags a shard as having pending feedback; callers hold mu.
func (l *Ledger) markDirtyLocked(shard int) {
	if !l.dirty[shard].Swap(true) {
		l.dirtyCount.Add(1)
	}
}

// Shards returns the configured subject-shard count.
func (l *Ledger) Shards() int { return l.shards }

// ShardDirty reports, lock-free, whether shard s has pending feedback.
func (l *Ledger) ShardDirty(s int) bool {
	if s < 0 || s >= len(l.dirty) {
		return false
	}
	return l.dirty[s].Load()
}

// DirtyCount returns, lock-free, the number of shards with pending feedback.
func (l *Ledger) DirtyCount() int { return int(l.dirtyCount.Load()) }

// OpenLedger opens (creating if absent) the JSON-lines ledger file at path
// and replays every existing entry, returning them in append order so the
// caller can decide which are already reflected in a loaded snapshot (Seq ≤
// Snapshot.Seq) and which are still pending. Subsequent appends go to both
// memory and the file.
func OpenLedger(path string, n int) (*Ledger, []Feedback, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open ledger: %w", err)
	}
	l := &Ledger{n: n, f: f, path: path}
	l.initShards(1)
	replayed, goodEnd, err := l.replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A torn final line (crash or failed flush mid-append) is cut off so the
	// next append starts on a clean line boundary.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncate torn ledger tail: %w", err)
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek ledger: %w", err)
	}
	l.w = bufio.NewWriter(f)
	l.goodOff = goodEnd
	return l, replayed, nil
}

// replay reads the whole file, validating every line, and returns the byte
// offset just past the last good line. Sequence numbers must be strictly
// increasing — but need not be dense and need not start at 1: a compacted
// file (see Compact) keeps an arbitrary subsequence of the original lines
// with their original seqs, so gaps and a min seq > 1 are valid. The ledger
// resumes after the highest one seen. An
// unterminated final line is the crash artifact of an append that never
// completed (Append flushes a full line per entry, so nothing else can tear)
// and is silently dropped; any malformed *complete* line is real corruption
// and fails hard.
func (l *Ledger) replay(r io.Reader) ([]Feedback, int64, error) {
	var out []Feedback
	var goodEnd int64
	br := bufio.NewReader(r)
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("store: read ledger: %w", err)
		}
		if err == io.EOF {
			// len(b) > 0 here means an unterminated torn tail: the caller
			// truncates it away via the returned goodEnd.
			return out, goodEnd, nil
		}
		line++
		trimmed := b[:len(b)-1]
		if len(trimmed) == 0 {
			goodEnd += int64(len(b))
			continue
		}
		var fb Feedback
		if err := json.Unmarshal(trimmed, &fb); err != nil {
			return nil, 0, fmt.Errorf("store: ledger line %d: %w", line, err)
		}
		if err := l.check(fb.Rater, fb.Subject, fb.Value); err != nil {
			return nil, 0, fmt.Errorf("store: ledger line %d: %w", line, err)
		}
		if fb.Seq <= l.seq {
			return nil, 0, fmt.Errorf("store: ledger line %d: seq %d not increasing (after %d)", line, fb.Seq, l.seq)
		}
		l.seq = fb.Seq
		out = append(out, fb)
		goodEnd += int64(len(b))
	}
}

func (l *Ledger) check(rater, subject int, value float64) error {
	if rater < 0 || rater >= l.n || subject < 0 || subject >= l.n {
		return fmt.Errorf("store: feedback (%d,%d) out of range [0,%d): %w", rater, subject, l.n, ErrInvalidFeedback)
	}
	if value < 0 || value > 1 || math.IsNaN(value) {
		return fmt.Errorf("store: feedback value %v out of [0,1]: %w", value, ErrInvalidFeedback)
	}
	return nil
}

// Append validates and records one feedback entry, returning its sequence
// number. unixNano is the ingest timestamp (pass 0 to omit). An error means
// the entry was NOT recorded: the write-ahead line is durably written (and
// flushed) before any in-memory state changes, so a failed append leaves
// both the file and the pending window exactly as they were — a client told
// "rejected" can never have its rating silently take effect later.
func (l *Ledger) Append(rater, subject int, value float64, unixNano int64) (uint64, error) {
	if err := l.check(rater, subject, value); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fb := Feedback{Rater: rater, Subject: subject, Value: value, UnixNano: unixNano}
	if err := l.appendLocked(&fb); err != nil {
		return 0, err
	}
	return fb.Seq, nil
}

// appendLocked assigns the next local sequence number, durably writes the WAL
// line, and admits the entry to the pending window (and, in replication mode,
// the retained per-origin history). Callers hold mu; fb.Seq and fb.Shard are
// filled in on success, and on error nothing — file or memory — has changed.
func (l *Ledger) appendLocked(fb *Feedback) error {
	return l.appendModeLocked(fb, true)
}

// appendModeLocked is appendLocked with the pending window made optional:
// enqueue=false records the entry in the WAL, history and watermarks but
// does NOT add it to the pending window or dirty set — for entries arriving
// in a bootstrap state transfer, whose fold is already reflected in the
// shipped segments.
func (l *Ledger) appendModeLocked(fb *Feedback, enqueue bool) error {
	if l.seq == math.MaxUint64 {
		// Replaying a hostile ledger can leave seq at the top of its range;
		// wrapping to 0 would durably write an entry that poisons every
		// future replay (seq must be strictly increasing), so refuse.
		return fmt.Errorf("store: ledger sequence space exhausted")
	}
	fb.Seq = l.seq + 1
	if l.w != nil {
		if l.wErr {
			if err := l.resyncLocked(); err != nil {
				return err
			}
		}
		// Marshal the value, not the pointer: boxing *fb would make every
		// caller's Feedback escape to the heap even in memory mode, where
		// this branch never runs — the copy costs one alloc only when a WAL
		// line is actually encoded.
		b, err := json.Marshal(*fb)
		if err != nil {
			return fmt.Errorf("store: encode feedback: %w", err)
		}
		b = append(b, '\n')
		if _, err := l.w.Write(b); err != nil {
			l.wErr = true
			return fmt.Errorf("store: write ledger: %w", err)
		}
		if err := l.w.Flush(); err != nil {
			l.wErr = true
			return fmt.Errorf("store: flush ledger: %w", err)
		}
		l.goodOff += int64(len(b))
		l.mWALAppends.Inc()
	}
	l.mEntries.Inc()
	l.seq = fb.Seq
	fb.Shard = ShardOf(fb.Subject, l.shards)
	if enqueue {
		l.pending = append(l.pending, *fb)
		l.pendingN.Store(int64(len(l.pending)))
		l.markDirtyLocked(fb.Shard)
	}
	if l.hist != nil {
		l.hist[fb.Origin] = append(l.hist[fb.Origin], *fb)
		if fb.Origin != "" {
			l.marks[fb.Origin] = fb.OriginSeq
		}
	}
	return nil
}

// AppendBatch validates and records a batch of locally-submitted feedback
// entries atomically, returning the first and last assigned sequence numbers.
// The batch is all-or-nothing: every entry is validated before anything is
// written, the WAL lines are buffered and flushed as one unit, and only after
// the flush succeeds does any in-memory state (seq, pending window, dirty
// set, replication history) change — a batch that fails before its flush
// leaves the ledger exactly as it was, with any partial bytes truncated away
// before the next write. Only the terminal fsync can fail after admission; an
// error from it means the entries will fold but their durability barrier did
// not complete, so callers should report the batch as failed (re-submitting
// identical ratings is idempotent at the trust layer — same cells, same LWW
// coordinates).
//
// Durability is the batch's whole point: where Append flushes each entry to
// the OS (fsync deferred to the epoch boundary), AppendBatch finishes with
// ONE fsync for the entire batch — thousands of ratings amortize a single
// disk barrier, and a 202 for the batch means every entry in it is on disk.
// Entries must be local (no Origin tags): replicated entries arrive one at a
// time through AppendReplicated, whose watermark bookkeeping is per-entry.
func (l *Ledger) AppendBatch(entries []Feedback) (first, last uint64, err error) {
	if len(entries) == 0 {
		return 0, 0, fmt.Errorf("store: empty batch: %w", ErrInvalidFeedback)
	}
	for i := range entries {
		if entries[i].Origin != "" || entries[i].OriginSeq != 0 {
			return 0, 0, fmt.Errorf("store: batch entry %d carries origin tags; batches are local-only", i)
		}
		if err := l.check(entries[i].Rater, entries[i].Subject, entries[i].Value); err != nil {
			return 0, 0, fmt.Errorf("store: batch entry %d: %w", i, err)
		}
	}
	l.mu.Lock()
	if l.seq > math.MaxUint64-uint64(len(entries)) {
		l.mu.Unlock()
		return 0, 0, fmt.Errorf("store: ledger sequence space exhausted")
	}
	var total int64
	if l.w != nil {
		if l.wErr {
			if err := l.resyncLocked(); err != nil {
				l.mu.Unlock()
				return 0, 0, err
			}
		}
		for i := range entries {
			entries[i].Seq = l.seq + 1 + uint64(i)
			b, err := json.Marshal(&entries[i])
			if err != nil {
				l.mu.Unlock()
				return 0, 0, fmt.Errorf("store: encode feedback: %w", err)
			}
			b = append(b, '\n')
			if _, err := l.w.Write(b); err != nil {
				// bufio may already have spilled complete earlier lines into
				// the file; wErr makes the next write truncate back to
				// goodOff, which still sits before the batch.
				l.wErr = true
				l.mu.Unlock()
				return 0, 0, fmt.Errorf("store: write ledger: %w", err)
			}
			total += int64(len(b))
		}
		if err := l.w.Flush(); err != nil {
			l.wErr = true
			l.mu.Unlock()
			return 0, 0, fmt.Errorf("store: flush ledger: %w", err)
		}
		l.goodOff += total
		l.mWALAppends.Add(uint64(len(entries)))
	}
	for i := range entries {
		entries[i].Seq = l.seq + 1 + uint64(i)
		entries[i].Shard = ShardOf(entries[i].Subject, l.shards)
		l.markDirtyLocked(entries[i].Shard)
	}
	l.seq += uint64(len(entries))
	l.mEntries.Add(uint64(len(entries)))
	l.pending = append(l.pending, entries...)
	l.pendingN.Store(int64(len(l.pending)))
	if l.hist != nil {
		l.hist[""] = append(l.hist[""], entries...)
	}
	first, last = entries[0].Seq, entries[len(entries)-1].Seq
	l.mu.Unlock()
	// The one amortized disk barrier; Sync takes its own mutex, so a slow
	// disk stalls only other syncers, never concurrent appends.
	if err := l.Sync(); err != nil {
		return 0, 0, err
	}
	return first, last, nil
}

// resyncLocked recovers the WAL after a failed write or flush: a bufio error
// is sticky and the failed attempt may have pushed a partial line into the
// file, so the ledger truncates back to the last known line boundary and
// resets the writer before anything else is written. Callers hold mu.
func (l *Ledger) resyncLocked() error {
	if _, err := l.f.Seek(l.goodOff, io.SeekStart); err != nil {
		return fmt.Errorf("store: resync ledger: %w", err)
	}
	if err := l.f.Truncate(l.goodOff); err != nil {
		return fmt.Errorf("store: resync ledger: %w", err)
	}
	l.w.Reset(l.f)
	l.wErr = false
	return nil
}

// EnableReplication switches the ledger into cluster mode: every accepted
// entry is retained in a per-origin in-memory history (so anti-entropy pulls
// are answered without touching the WAL) and per-origin watermarks track the
// highest replicated OriginSeq applied. replayed is the full entry list a
// boot-time OpenLedger returned (nil for a fresh or memory-only ledger); it
// seeds the history and watermarks. Must be called before concurrent use.
// The retained history mirrors the WAL, so memory grows with ledger size —
// the standalone service never enables it and pays nothing.
func (l *Ledger) EnableReplication(replayed []Feedback) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hist != nil {
		return fmt.Errorf("store: replication already enabled")
	}
	marks := make(map[string]uint64)
	hist := make(map[string][]Feedback)
	for _, fb := range replayed {
		if fb.Origin != "" {
			if fb.OriginSeq <= marks[fb.Origin] {
				return fmt.Errorf("store: ledger seq %d: origin %q seq %d not increasing (after %d)",
					fb.Seq, fb.Origin, fb.OriginSeq, marks[fb.Origin])
			}
			marks[fb.Origin] = fb.OriginSeq
		}
		fb.Shard = ShardOf(fb.Subject, l.shards)
		hist[fb.Origin] = append(hist[fb.Origin], fb)
	}
	l.marks, l.hist = marks, hist
	return nil
}

// AppendReplicated applies one entry pulled from a peer, idempotently: an
// entry at or below its origin's watermark reports (0, false, nil) and
// changes nothing; a new entry is appended exactly like a local one — WAL
// line (with its origin tags), local sequence number, pending window, shard
// dirty set — and advances the origin's watermark. Requires
// EnableReplication. Entries of one origin must be applied in ascending
// OriginSeq order; the cluster layer's batch framing guarantees it.
func (l *Ledger) AppendReplicated(fb Feedback) (uint64, bool, error) {
	if fb.Origin == "" || fb.OriginSeq == 0 {
		return 0, false, fmt.Errorf("store: replicated entry missing origin tags")
	}
	if err := l.check(fb.Rater, fb.Subject, fb.Value); err != nil {
		return 0, false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hist == nil {
		return 0, false, fmt.Errorf("store: replication not enabled")
	}
	if fb.OriginSeq <= l.marks[fb.Origin] {
		return 0, false, nil // duplicate: already applied
	}
	if err := l.appendLocked(&fb); err != nil {
		return 0, false, err
	}
	return fb.Seq, true, nil
}

// AppendReplicatedStored applies one replicated entry exactly like
// AppendReplicated — WAL line, local sequence number, history, watermark —
// but does NOT enqueue it in the pending window: the caller asserts its fold
// is already reflected in state it is installing alongside (a bootstrap
// state transfer). Same idempotency rule: at or below the origin watermark
// reports (0, false, nil).
func (l *Ledger) AppendReplicatedStored(fb Feedback) (uint64, bool, error) {
	if fb.Origin == "" || fb.OriginSeq == 0 {
		return 0, false, fmt.Errorf("store: replicated entry missing origin tags")
	}
	if err := l.check(fb.Rater, fb.Subject, fb.Value); err != nil {
		return 0, false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hist == nil {
		return 0, false, fmt.Errorf("store: replication not enabled")
	}
	if fb.OriginSeq <= l.marks[fb.Origin] {
		return 0, false, nil // duplicate: already applied
	}
	if err := l.appendModeLocked(&fb, false); err != nil {
		return 0, false, err
	}
	return fb.Seq, true, nil
}

// OriginMarks returns a copy of the per-origin replication watermarks: for
// each remote origin, the highest OriginSeq applied. The local stream's
// watermark is Seq(). Nil before EnableReplication.
func (l *Ledger) OriginMarks() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.marks == nil {
		return nil
	}
	out := make(map[string]uint64, len(l.marks))
	for o, s := range l.marks {
		out[o] = s
	}
	return out
}

// OriginMark returns the replication watermark of one origin stream. For a
// remote origin that is the highest OriginSeq applied. For the local stream
// ("") it is the Seq of the last locally-originated entry — NOT the raw
// ledger seq, which also counts replicated appends: peers can only ever
// catch up to the local stream's own entries, so that is the number a
// digest must advertise for convergence to be detectable.
func (l *Ledger) OriginMark(origin string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if origin == "" {
		if l.hist != nil {
			if h := l.hist[""]; len(h) > 0 {
				return h[len(h)-1].Seq
			}
			return 0
		}
		return l.seq
	}
	return l.marks[origin]
}

// EntriesSince returns up to limit retained entries of one origin stream
// ("" = locally accepted) whose origin sequence number exceeds after, in
// ascending order — the payload of one anti-entropy pull. For the local
// stream the ordering key is Seq; for a remote origin it is OriginSeq.
// Requires EnableReplication (nil otherwise). The returned entries are
// copies; local ones carry Origin=="" and the caller stamps its own node id
// before putting them on the wire.
func (l *Ledger) EntriesSince(origin string, after uint64, limit int) []Feedback {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hist == nil {
		return nil
	}
	h := l.hist[origin]
	key := func(fb Feedback) uint64 {
		if origin == "" {
			return fb.Seq
		}
		return fb.OriginSeq
	}
	// Binary search for the first entry past the watermark: both streams are
	// appended in ascending key order.
	lo, hi := 0, len(h)
	for lo < hi {
		mid := (lo + hi) / 2
		if key(h[mid]) <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(h) {
		return nil
	}
	end := len(h)
	if limit > 0 && lo+limit < end {
		end = lo + limit
	}
	out := make([]Feedback, end-lo)
	copy(out, h[lo:end])
	return out
}

// Restore re-queues entries as pending without re-appending them to the
// file, preserving fold order: the entries go BEFORE anything currently
// pending, since they are older (boot-time WAL replay, or an epoch batch
// being returned after a failed epoch). Entries must carry their original
// Seq values.
func (l *Ledger) Restore(entries []Feedback) {
	if len(entries) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = append(append(make([]Feedback, 0, len(entries)+len(l.pending)), entries...), l.pending...)
	l.pendingN.Store(int64(len(l.pending)))
	for i := range entries {
		l.pending[i].Shard = ShardOf(l.pending[i].Subject, l.shards)
		l.markDirtyLocked(l.pending[i].Shard)
	}
}

// TakePending atomically removes and returns the pending window in append
// order, each entry stamped with its subject shard; the epoch scheduler
// calls it once per epoch. The per-shard dirty set transfers to the caller
// with the batch.
func (l *Ledger) TakePending() []Feedback {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.pending
	l.pending = nil
	l.pendingN.Store(0)
	for s := range l.dirty {
		l.dirty[s].Store(false)
	}
	l.dirtyCount.Store(0)
	return out
}

// PendingCount returns the number of entries awaiting the next epoch. It is
// a single atomic load — the stats endpoint reads it lock-free.
func (l *Ledger) PendingCount() int {
	return int(l.pendingN.Load())
}

// Sync fsyncs the backing file (no-op for memory-only ledgers). The service
// calls it at each epoch boundary before persisting snapshot segments, so
// that after any crash the on-disk ledger is always at least as new as the
// on-disk segments — the invariant the boot-time truncation guard checks.
// Individual appends are flushed to the OS but not fsynced; a power loss can
// drop the tail since the last epoch, which replay handles, never entries a
// persisted segment claims to have folded.
//
// Only the buffered flush runs under the append mutex; the fsync syscall
// itself holds a separate sync mutex, so a slow disk delays at most other
// syncers — Submit keeps ingesting at memory speed while the kernel drains.
func (l *Ledger) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	f := l.f
	if f == nil {
		l.mu.Unlock()
		return nil
	}
	if l.w != nil {
		if l.wErr {
			if err := l.resyncLocked(); err != nil {
				l.mu.Unlock()
				return err
			}
		}
		if err := l.w.Flush(); err != nil {
			l.wErr = true
			l.mu.Unlock()
			return fmt.Errorf("store: flush ledger: %w", err)
		}
	}
	l.mu.Unlock()
	start := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync ledger: %w", err)
	}
	l.mFsyncs.Inc()
	l.mFsyncHist.Load().Observe(time.Since(start).Seconds())
	return nil
}

// Seq returns the last assigned sequence number (0 when empty).
func (l *Ledger) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// N returns the node-id bound the ledger validates against.
func (l *Ledger) N() int { return l.n }

// Close flushes and closes the backing file, if any. It takes the sync
// mutex first so an in-flight fsync never races the close.
func (l *Ledger) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.w != nil {
		err = l.w.Flush()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	return err
}
