package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"diffgossip/internal/obs"
	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// The refused-request counter children, one per documented shed reason.
const (
	refusedOversized    = iota // body or batch over its limit → 413
	refusedMalformed           // bad JSON or invalid ratings → 400
	refusedBackpressure        // pending-fold window full → 429
	refusedInflight            // admission gate full → 503
	refusedCanceled            // client abandoned the request → 499
	refusedReasons
)

// refusedLabels are the stable reason label values of
// dgserve_http_refused_total, indexed like the refused* constants.
var refusedLabels = [refusedReasons]string{
	"oversized", "malformed", "backpressure", "inflight", "canceled",
}

// ingressMetrics are the front door's own instruments, beyond the per-route
// middleware: why requests were refused, how many ratings arrived batched,
// and how many conditional reads short-circuited. Maintained always,
// exposed when a registry is configured.
type ingressMetrics struct {
	refused      [refusedReasons]obs.Counter
	batchRatings obs.Counter
	notModified  obs.Counter
}

func (m *ingressMetrics) register(reg *obs.Registry) {
	for i := range m.refused {
		reg.Counter("dgserve_http_refused_total",
			fmt.Sprintf("reason=%q", refusedLabels[i]),
			"HTTP requests refused by the front door, by shed reason: oversized (413), malformed (400), backpressure (429), inflight (503), canceled (499).",
			&m.refused[i])
	}
	reg.Counter("dgserve_http_batch_ratings_total", "",
		"Feedback ratings accepted through POST /v1/feedback/batch.", &m.batchRatings)
	reg.Counter("dgserve_http_not_modified_total", "",
		"Conditional reads answered 304 from the fold-point ETag.", &m.notModified)
}

// overloaded reports whether the pending-fold window exceeds MaxPending —
// the backpressure condition. One atomic load; negative MaxPending disables.
func (s *Server) overloaded() bool {
	return s.cfg.MaxPending > 0 && s.svc.Pending() >= s.cfg.MaxPending
}

// retryAfterSeconds derives the Retry-After horizon from the epoch cadence:
// pending feedback drains at the next fold, so one interval (rounded up, at
// least a second) is when capacity realistically returns.
func (s *Server) retryAfterSeconds() int {
	secs := int(math.Ceil(s.cfg.EpochEvery.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shedBackpressure answers 429 with the Retry-After horizon. The check runs
// BEFORE the request body is read: refusing is nearly free, which is exactly
// what keeps read latency flat while writers flood (see the bench's
// overload rows).
func (s *Server) shedBackpressure(w http.ResponseWriter) {
	s.m.refused[refusedBackpressure].Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("httpapi: %d entries pending, max %d — retry after the next fold", s.svc.Pending(), s.cfg.MaxPending))
}

// FeedbackRequest is the POST /v1/feedback body (and the element shape of a
// batch). UnixNano optionally pins the entry's last-writer-wins coordinate —
// deterministic replays and cross-replica tests use it; live clients omit it
// and the server stamps ingest time.
type FeedbackRequest struct {
	Rater   int     `json:"rater"`
	Subject int     `json:"subject"`
	Value   float64 `json:"value"`
	// UnixNano is optional: 0 means "stamp at ingest".
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// FeedbackResponse acknowledges an accepted feedback entry. The entry is
// durable in the ledger but not yet visible to reads — hence 202 Accepted —
// and will be folded once its subject's shard epoch reaches Seq (watch the
// reputation response's seq field). Shard identifies the subject shard the
// entry dirtied.
type FeedbackResponse struct {
	Seq     uint64 `json:"seq"`
	Shard   int    `json:"shard"`
	Pending int    `json:"pending"`
	Epoch   uint64 `json:"epoch"`
}

// ingestError maps a submit failure to its documented status and refused
// reason, handling the overload contract's 400/499/500 split in one place.
func (s *Server) ingestError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Nothing reached the WAL: SubmitCtx/SubmitBatch check the context
		// before touching the ledger.
		s.m.refused[refusedCanceled].Inc()
		writeError(w, StatusClientClosedRequest, err)
	case errors.Is(err, store.ErrInvalidFeedback):
		s.m.refused[refusedMalformed].Inc()
		writeError(w, http.StatusBadRequest, err)
	default:
		// WAL I/O or other server-side failure: the client should retry.
		writeError(w, http.StatusInternalServerError, err)
	}
}

// decodeError maps a request-body decode failure: over-limit bodies and
// over-long batches are 413, everything else malformed 400.
func (s *Server) decodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) || errors.Is(err, ErrBatchTooLarge) {
		s.m.refused[refusedOversized].Inc()
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	s.m.refused[refusedMalformed].Inc()
	writeError(w, http.StatusBadRequest, fmt.Errorf("bad feedback body: %w", err))
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if s.overloaded() {
		s.shedBackpressure(w)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSingleBody)
	var req FeedbackRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.decodeError(w, err)
		return
	}
	seq, err := s.svc.SubmitCtx(r.Context(), req.Rater, req.Subject, req.Value, req.UnixNano)
	if err != nil {
		s.ingestError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, FeedbackResponse{
		Seq:     seq,
		Shard:   store.ShardOf(req.Subject, s.svc.Shards()),
		Pending: s.svc.Pending(),
		Epoch:   s.svc.Epochs(),
	})
}

// BatchResponse acknowledges an accepted feedback batch: Accepted entries
// were assigned the contiguous sequence range [FirstSeq, LastSeq] and are on
// disk behind one fsync. Like the single ack it is 202 Accepted — visibility
// still waits for each subject's shard to fold.
type BatchResponse struct {
	Accepted int    `json:"accepted"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Pending  int    `json:"pending"`
	Epoch    uint64 `json:"epoch"`
}

// ErrBatchTooLarge reports a batch body with more entries than the server's
// MaxBatch limit; the front door maps it to 413.
var ErrBatchTooLarge = errors.New("httpapi: batch exceeds entry limit")

// handleFeedbackBatch ingests up to MaxBatch ratings in one request body —
// a JSON array or JSON lines of FeedbackRequest objects — amortizing one
// WAL flush and ONE fsync across the whole batch (service.SubmitBatch).
// The batch is atomic: any malformed or invalid entry rejects it all, so a
// 202 means every rating is durable. Backpressure and byte limits apply
// before the body is decoded.
func (s *Server) handleFeedbackBatch(w http.ResponseWriter, r *http.Request) {
	if s.overloaded() {
		s.shedBackpressure(w)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	entries, err := DecodeBatch(r.Body, s.cfg.MaxBatch)
	if err != nil {
		s.decodeError(w, err)
		return
	}
	first, last, err := s.svc.SubmitBatch(r.Context(), entries)
	if err != nil {
		s.ingestError(w, err)
		return
	}
	s.m.batchRatings.Add(uint64(len(entries)))
	writeJSON(w, http.StatusAccepted, BatchResponse{
		Accepted: len(entries),
		FirstSeq: first,
		LastSeq:  last,
		Pending:  s.svc.Pending(),
		Epoch:    s.svc.Epochs(),
	})
}

// DecodeBatch parses a batch request body — either one JSON array of
// FeedbackRequest objects or a stream of them (JSON lines) — into ledger
// entries, enforcing maxBatch (ErrBatchTooLarge beyond it; 0 or negative
// means unlimited). Unknown fields and empty batches are errors: a batch is
// an ingest contract, not a lenient import. Exported for the fuzz harness,
// which holds it to "never panic, never return entries alongside an error".
func DecodeBatch(r io.Reader, maxBatch int) ([]store.Feedback, error) {
	br := bufio.NewReader(r)
	first, err := peekNonSpace(br)
	if err != nil {
		return nil, fmt.Errorf("httpapi: empty batch body: %w", err)
	}
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	var entries []store.Feedback
	add := func(req FeedbackRequest) error {
		if maxBatch > 0 && len(entries) >= maxBatch {
			return fmt.Errorf("%w: max %d entries", ErrBatchTooLarge, maxBatch)
		}
		entries = append(entries, store.Feedback{
			Rater: req.Rater, Subject: req.Subject, Value: req.Value, UnixNano: req.UnixNano,
		})
		return nil
	}
	if first == '[' {
		if _, err := dec.Token(); err != nil { // consume '['
			return nil, err
		}
		for dec.More() {
			var req FeedbackRequest
			if err := dec.Decode(&req); err != nil {
				return nil, err
			}
			if err := add(req); err != nil {
				return nil, err
			}
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			return nil, err
		}
		if t, err := dec.Token(); err != io.EOF {
			return nil, fmt.Errorf("httpapi: trailing data after batch array: %v", t)
		}
	} else {
		for {
			var req FeedbackRequest
			if err := dec.Decode(&req); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if err := add(req); err != nil {
				return nil, err
			}
		}
	}
	if len(entries) == 0 {
		return nil, errors.New("httpapi: empty batch")
	}
	return entries, nil
}

// peekNonSpace returns the first non-whitespace byte without consuming it.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return b, br.UnreadByte()
	}
}

// Service returns the reputation service behind the front door; the bench
// harness and tests use it to force epochs and read views directly.
func (s *Server) Service() *service.Service { return s.svc }
