package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// ReputationResponse answers a reputation query. Epoch and Seq identify the
// fold point of the subject's own shard; Raters is the number of distinct
// raters backing the value (0 means "no evidence", not "bad reputation").
type ReputationResponse struct {
	Subject    int     `json:"subject"`
	Reputation float64 `json:"reputation"`
	Raters     int     `json:"raters"`
	Shard      int     `json:"shard"`
	Epoch      uint64  `json:"epoch"`
	Seq        uint64  `json:"seq"`
	// As and Personal are set on ?as=rater queries: the GCLR view of the
	// subject from that rater's perspective.
	As       *int `json:"as,omitempty"`
	Personal bool `json:"personal,omitempty"`
}

// segETag renders a shard fold point as a strong ETag: "<shard>-<epoch>-<seq>".
// The triple fully identifies a published shard snapshot — two responses
// with the same tag were served from the same immutable publication.
func segETag(shard, epoch, seq uint64) string {
	b := make([]byte, 0, 48)
	b = append(b, '"')
	b = strconv.AppendUint(b, shard, 10)
	b = append(b, '-')
	b = strconv.AppendUint(b, epoch, 10)
	b = append(b, '-')
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, '"')
	return string(b)
}

// statsETag is the /v1/stats variant, keyed by the cumulative fold counters:
// "s-<epochs>-<folded_shards>". It moves whenever any shard folds.
func statsETag(epochs, foldedShards uint64) string {
	b := make([]byte, 0, 48)
	b = append(b, '"', 's', '-')
	b = strconv.AppendUint(b, epochs, 10)
	b = append(b, '-')
	b = strconv.AppendUint(b, foldedShards, 10)
	b = append(b, '"')
	return string(b)
}

// handleReputation serves single-subject reads. The global path is the hot
// read: one atomic shard-snapshot load (service.SubjectRead), no composite
// view, and an ETag keyed by that shard's fold point — an If-None-Match hit
// answers 304 before the response struct is even built, so pollers between
// folds cost the server almost nothing. Personalised (?as=) reads recompute
// a GCLR view per request and are not ETagged.
func (s *Server) handleReputation(w http.ResponseWriter, r *http.Request) {
	subject, err := strconv.Atoi(r.PathValue("subject"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad subject: %w", err))
		return
	}
	resp := ReputationResponse{Subject: subject}
	if as := r.URL.Query().Get("as"); as != "" {
		rater, err := strconv.Atoi(as)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad as=%q: %w", as, err))
			return
		}
		resp.As, resp.Personal = &rater, true
		var view *service.View
		resp.Reputation, view, err = s.svc.PersonalReputation(rater, subject)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		resp.Raters = view.Raters(subject)
		resp.Shard = store.ShardOf(subject, view.Shards())
		resp.Epoch, resp.Seq = view.SubjectEpoch(subject), view.SubjectSeq(subject)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Global read: everything comes from the subject's own shard snapshot,
	// so one atomic load suffices — no composite view on the hot path.
	seg, err := s.svc.SubjectRead(subject)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	etag := segETag(uint64(seg.Shard), seg.Epoch, seg.Seq)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		s.m.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp.Reputation, err = seg.Reputation(subject)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp.Raters = seg.RaterCount(subject)
	resp.Shard = seg.Shard
	resp.Epoch, resp.Seq = seg.Epoch, seg.Seq
	writeJSON(w, http.StatusOK, resp)
}

// dumpFlushEvery is how many NDJSON lines the reputation dump writes between
// flushes: frequent enough that a slow consumer sees steady progress, rare
// enough that flushing never dominates.
const dumpFlushEvery = 512

// handleReputationDump streams every subject's global reputation as NDJSON
// (one ReputationResponse per line, subjects ascending), chunked — the full
// network never materialises as one response buffer. The view is captured
// once at the start: the dump is snapshot-consistent per shard, like any
// composite read.
func (s *Server) handleReputationDump(w http.ResponseWriter, r *http.Request) {
	view := s.svc.View()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	shards := view.Shards()
	line := ReputationResponse{}
	for j := 0; j < view.N(); j++ {
		rep, err := view.Reputation(j)
		if err != nil {
			return // client sees a truncated stream; nothing sane to send mid-body
		}
		line.Subject = j
		line.Reputation = rep
		line.Raters = view.Raters(j)
		line.Shard = store.ShardOf(j, shards)
		line.Epoch, line.Seq = view.SubjectEpoch(j), view.SubjectSeq(j)
		if err := writeNDJSON(w, &line); err != nil {
			return // client went away
		}
		if flusher != nil && (j+1)%dumpFlushEvery == 0 {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// writeNDJSON writes one dump line.
func writeNDJSON(w http.ResponseWriter, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
