package httpapi

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeBatchArray(t *testing.T) {
	entries, err := DecodeBatch(strings.NewReader(
		` [ {"rater":1,"subject":2,"value":0.5}, {"rater":3,"subject":4,"value":0.25,"unix_nano":77} ] `), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Rater != 1 || entries[1].UnixNano != 77 {
		t.Fatalf("decoded %+v", entries)
	}
}

func TestDecodeBatchJSONLines(t *testing.T) {
	body := "{\"rater\":1,\"subject\":2,\"value\":0.5}\n{\"rater\":3,\"subject\":4,\"value\":0.25}\n"
	entries, err := DecodeBatch(strings.NewReader(body), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Subject != 4 {
		t.Fatalf("decoded %+v", entries)
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	for name, body := range map[string]string{
		"empty body":       "",
		"whitespace only":  "  \n\t ",
		"empty array":      "[]",
		"trailing garbage": `[{"rater":1,"subject":2,"value":0.5}] extra`,
		"unknown field":    `[{"rater":1,"subject":2,"value":0.5,"bogus":1}]`,
		"truncated":        `[{"rater":1,"sub`,
		"not feedback":     `"just a string"`,
	} {
		if entries, err := DecodeBatch(strings.NewReader(body), 10); err == nil {
			t.Errorf("%s accepted: %+v", name, entries)
		}
	}
}

func TestDecodeBatchEntryLimit(t *testing.T) {
	body := `[{"rater":1,"subject":2,"value":0.5},{"rater":3,"subject":4,"value":0.5},{"rater":5,"subject":6,"value":0.5}]`
	if _, err := DecodeBatch(strings.NewReader(body), 2); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("3 entries under limit 2: err = %v, want ErrBatchTooLarge", err)
	}
	// 0 or negative = unlimited.
	if _, err := DecodeBatch(strings.NewReader(body), 0); err != nil {
		t.Fatalf("unlimited decode: %v", err)
	}
}

// FuzzBatchDecode holds DecodeBatch to its contract on arbitrary bodies:
// never panic, never return entries alongside an error, never return an
// empty batch without one, and never exceed the entry limit.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte(`[{"rater":1,"subject":2,"value":0.5}]`), 10)
	f.Add([]byte("{\"rater\":1,\"subject\":2,\"value\":0.5}\n{\"rater\":2,\"subject\":3,\"value\":0.25}"), 4096)
	f.Add([]byte(`[]`), 1)
	f.Add([]byte(` [ {"rater":0,"subject":0,"value":0} ] trailing`), 2)
	f.Add([]byte(`[{"rater":1,"subject":2,"value":0.5},`), 0)
	f.Add([]byte("\xff\xfe"), 3)
	f.Fuzz(func(t *testing.T, body []byte, maxBatch int) {
		entries, err := DecodeBatch(strings.NewReader(string(body)), maxBatch)
		if err != nil {
			if entries != nil {
				t.Fatalf("entries %+v returned alongside error %v", entries, err)
			}
			return
		}
		if len(entries) == 0 {
			t.Fatal("nil error with an empty batch")
		}
		if maxBatch > 0 && len(entries) > maxBatch {
			t.Fatalf("%d entries decoded past limit %d", len(entries), maxBatch)
		}
	})
}
