// Package httpapi is the production HTTP/JSON front door of the reputation
// service: the ingress surface cmd/dgserve serves and the surface the bench
// harness (internal/sim) drives, so every measured number exercises the real
// request path — batch ingest, backpressure, limits and conditional reads
// included.
//
// # Routes
//
//	POST /v1/feedback                    {"rater":i,"subject":j,"value":v}
//	POST /v1/feedback/batch              JSON array or JSON-lines of the same
//	GET  /v1/reputation/{subject}        global reputation (ETag/If-None-Match)
//	GET  /v1/reputation/{subject}?as=i   GCLR personalised view for rater i
//	GET  /v1/reputations                 streamed NDJSON dump of every subject
//	GET  /v1/epoch                       composite view metadata
//	POST /v1/epoch                       force an epoch now
//	GET  /v1/stats                       shard pipeline statistics (ETag)
//	GET  /v1/trace                       recent per-epoch fold traces
//	GET  /healthz                        liveness: 200 while the process serves
//	GET  /readyz                         readiness: 503 when degraded
//	GET  /metrics                        Prometheus text exposition
//
// # Overload contract
//
// The front door sheds load explicitly instead of queueing unboundedly, and
// every refusal has one documented status:
//
//   - 413 — body over the route's byte limit, or a batch over MaxBatch
//     entries (reason "oversized");
//   - 400 — malformed JSON or invalid ratings (reason "malformed"); a batch
//     is all-or-nothing, one bad entry rejects the whole batch;
//   - 429 + Retry-After — the pending-fold window exceeds MaxPending
//     (reason "backpressure"); Retry-After is derived from the epoch
//     cadence, and the condition is also a /readyz reason so dumb load
//     balancers rotate away;
//   - 503 — more than MaxInflight requests already in flight on the data
//     routes (reason "inflight"); probes and /metrics are never gated;
//   - 499 — the client abandoned the request before its entry was recorded
//     (reason "canceled"); nothing was written to the WAL.
//
// Each refusal increments dgserve_http_refused_total{reason=...} exactly
// once. Reads are served lock-free from the published per-shard snapshots;
// single-subject GETs and /v1/stats carry an ETag keyed by the shard fold
// point, so If-None-Match pollers cost one atomic load and a 304.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
)

// Default limits applied when the corresponding Config field is zero.
const (
	// DefaultMaxBatch caps entries per POST /v1/feedback/batch.
	DefaultMaxBatch = 4096
	// DefaultMaxBodyBytes caps the batch request body size.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultMaxPending is the pending-fold window size beyond which
	// feedback ingest answers 429.
	DefaultMaxPending = 65536
	// DefaultMaxInflight bounds concurrently served data-route requests.
	DefaultMaxInflight = 256
	// maxSingleBody caps the single-feedback request body: one rating is a
	// few dozen bytes, so anything near this limit is garbage.
	maxSingleBody = 4096
)

// StatusClientClosedRequest is the status reported when a request's context
// was canceled before its entry was recorded (nginx's 499 convention —
// there is no standard code for "the client hung up").
const StatusClientClosedRequest = 499

// Config parameterises a Server. Service is required; everything else has a
// serviceable zero value.
type Config struct {
	// Service is the reputation service the API fronts.
	Service *service.Service
	// Node is the cluster replication agent; nil outside cluster mode.
	// /v1/stats then carries peer health and /readyz watches membership.
	Node *cluster.Node
	// EpochEvery is the epoch scheduler interval (0 = manual epochs): it
	// bounds how long pending feedback may sit unfolded before /readyz
	// calls the scheduler stalled, and it sets the Retry-After horizon on
	// backpressure responses.
	EpochEvery time.Duration
	// Registry turns instrumentation on: request middleware on every route,
	// GET /metrics, readiness gauges and the refused-request counters. Nil
	// disables exposition (the counters are still maintained).
	Registry *obs.Registry
	// MaxBatch caps entries per batch POST (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes caps the batch request body size in bytes
	// (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxPending is the pending-fold window size beyond which feedback
	// ingest sheds with 429 (0 = DefaultMaxPending, negative = unlimited).
	MaxPending int
	// MaxInflight bounds concurrently served data-route requests; excess
	// requests answer 503 immediately (0 = DefaultMaxInflight, negative =
	// unlimited). Probes and /metrics are never gated.
	MaxInflight int
	// Started is the process start time used as the stall-detection floor;
	// zero means "now". Tests backdate it to simulate a long-running server.
	Started time.Time
}

// Server is the HTTP front door. Build one with New; it serves until its
// service closes.
type Server struct {
	cfg     Config
	svc     *service.Service
	node    *cluster.Node
	started time.Time
	mux     *http.ServeMux

	inflight atomic.Int64
	m        ingressMetrics
}

// New builds the HTTP surface over cfg.Service, applying the documented
// defaults for any zero limit.
func New(cfg Config) *Server {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.Started.IsZero() {
		cfg.Started = time.Now()
	}
	s := &Server{
		cfg: cfg, svc: cfg.Service, node: cfg.Node,
		started: cfg.Started, mux: http.NewServeMux(),
	}
	wrap := func(route string, h http.HandlerFunc) http.HandlerFunc { return h }
	if cfg.Registry != nil {
		wrap = obs.NewHTTPMetrics(cfg.Registry, "dgserve_http").Wrap
	}
	// Data routes sit behind the in-flight gate; probes and /metrics never
	// do — an overloaded server must still answer its load balancer.
	s.mux.HandleFunc("POST /v1/feedback", wrap("/v1/feedback", s.gated(s.handleFeedback)))
	s.mux.HandleFunc("POST /v1/feedback/batch", wrap("/v1/feedback/batch", s.gated(s.handleFeedbackBatch)))
	s.mux.HandleFunc("GET /v1/reputation/{subject}", wrap("/v1/reputation", s.gated(s.handleReputation)))
	s.mux.HandleFunc("GET /v1/reputations", wrap("/v1/reputations", s.gated(s.handleReputationDump)))
	s.mux.HandleFunc("GET /v1/epoch", wrap("/v1/epoch", s.gated(s.handleEpochGet)))
	s.mux.HandleFunc("POST /v1/epoch", wrap("/v1/epoch", s.gated(s.handleEpochPost)))
	s.mux.HandleFunc("GET /v1/stats", wrap("/v1/stats", s.gated(s.handleStats)))
	s.mux.HandleFunc("GET /v1/trace", wrap("/v1/trace", s.gated(s.handleTrace)))
	s.mux.HandleFunc("GET /healthz", wrap("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", wrap("/readyz", s.handleReady))
	if cfg.Registry != nil {
		s.mux.Handle("GET /metrics", cfg.Registry.Handler())
		s.m.register(cfg.Registry)
		cfg.Registry.GaugeFunc("dgserve_ready", "",
			"Readiness verdict mirrored from GET /readyz: 1 ready, 0 degraded.", func() float64 {
				if len(s.readyReasons()) == 0 {
					return 1
				}
				return 0
			})
		cfg.Registry.GaugeMapFunc("dgserve_unready_reason", "reason",
			"Active readiness-failure causes (1 = failing): epoch_pipeline_failed, membership_degraded, scheduler_stalled, backpressure.",
			func() map[string]float64 {
				out := map[string]float64{
					reasonEpochFailed: 0, reasonMembership: 0, reasonStalled: 0, reasonBackpressure: 0,
				}
				for _, r := range s.readyReasons() {
					out[r.key] = 1
				}
				return out
			})
	}
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// gated wraps a data-route handler in the bounded in-flight admission gate:
// the accept path is one atomic add and one compare, the reject path answers
// 503 without touching the handler. MaxInflight < 0 disables the gate.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.MaxInflight < 0 {
		return h
	}
	limit := int64(s.cfg.MaxInflight)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight.Add(1) > limit {
			s.inflight.Add(-1)
			s.m.refused[refusedInflight].Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("httpapi: %d requests already in flight", limit))
			return
		}
		defer s.inflight.Add(-1)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// EpochResponse is the GET/POST /v1/epoch answer: the composite view's
// metadata plus the current ingest backlog. Epoch/Seq are the newest fold
// point any shard has published; Steps/ElapsedNs aggregate the newest
// epoch's folds; PerShard carries each shard's own fold point and timings.
type EpochResponse struct {
	Epoch       uint64              `json:"epoch"`
	Seq         uint64              `json:"seq"`
	Pending     int                 `json:"pending"`
	N           int                 `json:"n"`
	Shards      int                 `json:"shards"`
	DirtyShards int                 `json:"dirty_shards"`
	Steps       int                 `json:"steps"`
	Converged   bool                `json:"converged"`
	ElapsedNs   int64               `json:"elapsed_ns"`
	PerShard    []service.ShardStat `json:"per_shard"`
	// Ran reports, on POST /v1/epoch responses, whether an epoch actually
	// recomputed (false = nothing pending, shard snapshots unchanged).
	Ran bool `json:"ran"`
}

func (s *Server) epochInfo(view *service.View) EpochResponse {
	st := s.svc.Stats()
	return EpochResponse{
		Epoch:       view.Epoch(),
		Seq:         view.Seq(),
		Pending:     st.Pending,
		N:           view.N(),
		Shards:      view.Shards(),
		DirtyShards: st.DirtyShards,
		Steps:       view.Steps(),
		Converged:   view.Converged(),
		ElapsedNs:   view.ElapsedNs(),
		PerShard:    st.PerShard,
	}
}

func (s *Server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.epochInfo(s.svc.View()))
}

func (s *Server) handleEpochPost(w http.ResponseWriter, r *http.Request) {
	view, ran, err := s.svc.RunEpoch()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := s.epochInfo(view)
	resp.Ran = ran
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the /v1/stats body: the shard pipeline statistics plus,
// in cluster mode, the replication layer's watermarks, counters and per-peer
// health.
type StatsResponse struct {
	service.Stats
	// Cluster is present only in cluster mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// handleStats serves the shard pipeline statistics (and cluster peer health
// when federated). The service half of the path is lock-free — atomic
// counter loads and per-shard pointer loads — so it can be scraped
// aggressively without perturbing ingest or epochs. The response carries an
// ETag keyed by the fold counters (epochs, folded shards): If-None-Match
// pollers get a 304 from two atomic loads when no shard has folded since —
// note pending/dirty gauges may have moved inside an unchanged fold point.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	etag := statsETag(s.svc.Epochs(), s.svc.FoldedShards())
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		s.m.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	resp := StatsResponse{Stats: s.svc.Stats()}
	if s.node != nil {
		st := s.node.Stats()
		resp.Cluster = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth is the liveness probe: a process that can answer it should
// not be restarted, so it always reports 200. Degradation — epoch errors,
// failing peers, a stalled scheduler, backpressure — is readiness, on
// /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"epoch":  s.svc.Epochs(),
		"n":      s.svc.N(),
		"shards": s.svc.Shards(),
	})
}

// stallGrace is how many scheduler intervals pending feedback may wait
// before /readyz declares the epoch scheduler stalled. Three intervals
// absorbs one slow fold without flapping.
const stallGrace = 3

// The stable reason keys readiness failures are exported under — both as the
// dgserve_unready_reason gauge's label values and for tests matching probe
// output to metrics.
const (
	reasonEpochFailed  = "epoch_pipeline_failed"
	reasonMembership   = "membership_degraded"
	reasonStalled      = "scheduler_stalled"
	reasonBackpressure = "backpressure"
)

// readyReason is one cause of readiness failure: a stable key for metrics
// and a human explanation for the probe body.
type readyReason struct{ key, msg string }

// readyReasons computes the readiness verdict — the single source both
// GET /readyz and the dgserve_ready/dgserve_unready_reason gauges report
// from. Empty means ready.
func (s *Server) readyReasons() []readyReason {
	var reasons []readyReason
	if err := s.svc.Err(); err != nil {
		reasons = append(reasons, readyReason{reasonEpochFailed, fmt.Sprintf("epoch pipeline failed: %v", err)})
	}
	if s.node != nil {
		if degraded, why := s.node.Degraded(); degraded {
			reasons = append(reasons, readyReason{reasonMembership, "cluster membership degraded: " + why})
		}
	}
	if s.overloaded() {
		reasons = append(reasons, readyReason{reasonBackpressure,
			fmt.Sprintf("ingest backpressure: %d entries pending, max %d — rotate writes away",
				s.svc.Pending(), s.cfg.MaxPending)})
	}
	if s.cfg.EpochEvery > 0 && s.svc.Pending() > 0 {
		// Pending feedback with a running scheduler should fold within an
		// interval; measure from the later of the last epoch and process
		// start so a fresh server is not instantly stalled.
		ref := s.started.UnixNano()
		if last := s.svc.LastEpochUnixNano(); last > ref {
			ref = last
		}
		if wait := time.Since(time.Unix(0, ref)); wait > stallGrace*s.cfg.EpochEvery {
			reasons = append(reasons, readyReason{reasonStalled,
				fmt.Sprintf("epoch scheduler stalled: %d entries pending for %v (interval %v)",
					s.svc.Pending(), wait.Round(time.Millisecond), s.cfg.EpochEvery)})
		}
	}
	return reasons
}

// handleReady is the readiness probe: 200 while this node should receive
// traffic, 503 with the reasons otherwise. A degraded node keeps serving —
// clients that reach it directly still get answers — the probe only steers
// load balancers away.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if rs := s.readyReasons(); len(rs) > 0 {
		msgs := make([]string, len(rs))
		for i, rr := range rs {
			msgs[i] = rr.msg
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": msgs})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// TraceResponse is the GET /v1/trace body: the scheduler's ring of recent
// non-empty epochs, oldest first, plus the ring's capacity.
type TraceResponse struct {
	Depth  int                  `json:"depth"`
	Epochs []service.EpochTrace `json:"epochs"`
}

// handleTrace serves the epoch trace ring — the postmortem view of the last
// TraceDepth folds: which shards recomputed, when each fold started and how
// long its campaigns ran, and whether anti-entropy preceded the epoch.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TraceResponse{Depth: s.svc.TraceDepth(), Epochs: s.svc.Trace()})
}
