package trust

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"diffgossip/internal/rng"
)

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(5)
	if err := m.Set(1, 2, 0.7); err != nil {
		t.Fatal(err)
	}
	v, ok := m.Get(1, 2)
	if !ok || v != 0.7 {
		t.Fatalf("Get(1,2) = %v,%v", v, ok)
	}
	if _, ok := m.Get(2, 1); ok {
		t.Fatal("matrix symmetric without being set")
	}
	if m.Value(4, 4) != 0 {
		t.Fatal("missing entry not zero")
	}
}

func TestMatrixRejectsBadValues(t *testing.T) {
	m := NewMatrix(3)
	for _, v := range []float64{-0.1, 1.1, math.NaN()} {
		if err := m.Set(0, 1, v); err == nil {
			t.Fatalf("Set accepted %v", v)
		}
	}
}

func TestMatrixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range Set")
		}
	}()
	_ = NewMatrix(2).Set(0, 5, 0.5)
}

func TestMatrixDelete(t *testing.T) {
	m := NewMatrix(3)
	_ = m.Set(0, 1, 0.4)
	m.Delete(0, 1)
	if m.Has(0, 1) {
		t.Fatal("entry survived Delete")
	}
	m.Delete(2, 0) // deleting absent entry is a no-op
}

func TestRatersOf(t *testing.T) {
	m := NewMatrix(6)
	_ = m.Set(4, 2, 0.9)
	_ = m.Set(1, 2, 0.3)
	_ = m.Set(1, 3, 0.5)
	ids, vals := m.RatersOf(2)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 4 {
		t.Fatalf("RatersOf(2) ids = %v", ids)
	}
	if vals[0] != 0.3 || vals[1] != 0.9 {
		t.Fatalf("RatersOf(2) vals = %v", vals)
	}
	if ids, _ := m.RatersOf(0); ids != nil {
		t.Fatalf("RatersOf(0) = %v, want none", ids)
	}
}

func TestColumnStats(t *testing.T) {
	m := NewMatrix(4)
	_ = m.Set(0, 3, 0.2)
	_ = m.Set(1, 3, 0.6)
	if got := m.ColumnMean(3); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("ColumnMean = %v, want 0.2", got)
	}
	if got := m.ColumnRaterMean(3); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("ColumnRaterMean = %v, want 0.4", got)
	}
	sum, cnt := m.ColumnSum(3)
	if sum != 0.8 || cnt != 2 {
		t.Fatalf("ColumnSum = %v,%d", sum, cnt)
	}
	if m.ColumnRaterMean(0) != 0 {
		t.Fatal("empty column rater mean not 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(3)
	_ = m.Set(0, 1, 0.5)
	c := m.Clone()
	_ = c.Set(0, 1, 0.9)
	if m.Value(0, 1) != 0.5 {
		t.Fatal("clone shares storage")
	}
	if c.NumEntries() != 1 || m.NumEntries() != 1 {
		t.Fatal("entry counts wrong")
	}
}

// TestCloneFrozenUnderOriginalMutation pins the snapshot-path half of the
// concurrency contract: after Clone, mutations of the ORIGINAL — updates,
// new rows, deletes — must be invisible to the clone.
func TestCloneFrozenUnderOriginalMutation(t *testing.T) {
	m := NewMatrix(4)
	_ = m.Set(0, 1, 0.5)
	_ = m.Set(2, 1, 0.3)
	c := m.Clone()
	_ = m.Set(0, 1, 0.9) // update an entry the clone holds
	_ = m.Set(3, 1, 0.7) // populate a row that was nil at clone time
	m.Delete(2, 1)       // drop an entry the clone holds
	if c.Value(0, 1) != 0.5 || c.Value(2, 1) != 0.3 {
		t.Fatal("clone saw mutations of the original")
	}
	if c.Has(3, 1) {
		t.Fatal("clone saw a row created after cloning")
	}
	if c.NumEntries() != 2 {
		t.Fatalf("clone has %d entries, want 2", c.NumEntries())
	}
	if got := c.ColumnRaterMean(1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("clone ColumnRaterMean = %v, want 0.4", got)
	}
}

// TestCloneEmptyAndFull covers the edge shapes the epoch path produces: the
// empty boot matrix and a matrix with every row populated.
func TestCloneEmptyAndFull(t *testing.T) {
	if c := NewMatrix(0).Clone(); c.N() != 0 || c.NumEntries() != 0 {
		t.Fatal("empty clone wrong")
	}
	if c := NewMatrix(5).Clone(); c.N() != 5 || c.NumEntries() != 0 {
		t.Fatal("zero-entry clone wrong")
	}
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			_ = m.Set(i, j, float64(i+j)/8)
		}
	}
	c := m.Clone()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.Value(i, j) != m.Value(i, j) {
				t.Fatalf("clone differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestCloneConcurrentReaders runs many readers over a frozen clone while the
// original keeps mutating — exactly the service's snapshot pattern. Run
// under -race (the CI race job does) this would catch any storage sharing.
func TestCloneConcurrentReaders(t *testing.T) {
	m := NewMatrix(16)
	for i := 0; i < 16; i++ {
		_ = m.Set(i, (i+1)%16, 0.5)
	}
	frozen := m.Clone()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				i, j := k%16, (k+1)%16
				frozen.Value(i, j)
				frozen.ColumnRaterMean(j)
				frozen.InteractedWith(i)
				frozen.RatersOf(j)
			}
		}()
	}
	for k := 0; k < 500; k++ {
		_ = m.Set(k%16, k%7, 0.25) // mutate the original only
	}
	wg.Wait()
}

func TestRowCopy(t *testing.T) {
	m := NewMatrix(3)
	_ = m.Set(1, 0, 0.25)
	r := m.Row(1)
	r[0] = 0.99
	if m.Value(1, 0) != 0.25 {
		t.Fatal("Row returned live map")
	}
}

func TestWeightParamsValidate(t *testing.T) {
	if err := DefaultWeightParams.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WeightParams{{A: 0.5, B: 1}, {A: math.NaN(), B: 1}, {A: 2, B: -1}, {A: math.Inf(1), B: 1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", p)
		}
	}
}

func TestWeightBounds(t *testing.T) {
	p := DefaultWeightParams
	if w := p.Weight(0); w != 1 {
		t.Fatalf("Weight(0) = %v, want 1", w)
	}
	if w := p.Weight(1); math.Abs(w-10) > 1e-12 {
		t.Fatalf("Weight(1) = %v, want 10", w)
	}
}

func TestWeightMonotoneAndAtLeastOne(t *testing.T) {
	p := WeightParams{A: 7, B: 1.3}
	f := func(raw uint32) bool {
		t1 := float64(raw%1000) / 999
		t2 := float64((raw/1000)%1000) / 999
		w1, w2 := p.Weight(t1), p.Weight(t2)
		if w1 < 1 || w2 < 1 {
			return false
		}
		if t1 < t2 && w1 > w2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsMapDefaultsToOne(t *testing.T) {
	m := NewMatrix(5)
	_ = m.Set(0, 2, 1.0)
	ws := Weights(m, 0, []int{1, 2, 3}, DefaultWeightParams)
	if ws[1] != 1 || ws[3] != 1 {
		t.Fatalf("non-interacted weights = %v", ws)
	}
	if math.Abs(ws[2]-10) > 1e-12 {
		t.Fatalf("weight for trusted neighbour = %v, want 10", ws[2])
	}
}

func TestWeightedColumnDegeneratesToGlobal(t *testing.T) {
	// With all weights 1 (no direct trust at the observer), eq. (5)
	// degenerates to eq. (1): the plain column mean.
	m := NewMatrix(10)
	src := rng.New(4)
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue // observer has no outgoing trust
		}
		_ = m.Set(i, 7, src.Float64())
	}
	got := WeightedColumn(m, 3, 7, []int{0, 1, 2}, DefaultWeightParams, false)
	want := m.ColumnMean(7)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightedColumn = %v, ColumnMean = %v", got, want)
	}
}

func TestWeightedColumnBoostsTrustedOpinion(t *testing.T) {
	// Observer 0 fully trusts neighbour 1; neighbour 1 rates node 2 high
	// while everyone else rates it low. The weighted estimate must exceed
	// the unweighted mean.
	m := NewMatrix(6)
	_ = m.Set(0, 1, 1.0) // observer trusts 1
	_ = m.Set(1, 2, 1.0)
	for i := 3; i < 6; i++ {
		_ = m.Set(i, 2, 0.1)
	}
	weighted := WeightedColumn(m, 0, 2, []int{1}, DefaultWeightParams, true)
	sum, cnt := m.ColumnSum(2)
	unweighted := sum / float64(cnt)
	if weighted <= unweighted {
		t.Fatalf("weighted %v <= unweighted %v", weighted, unweighted)
	}
	if weighted < 0 || weighted > 1 {
		t.Fatalf("weighted reputation %v out of [0,1]", weighted)
	}
}

func TestWeightedColumnEmpty(t *testing.T) {
	m := NewMatrix(4)
	if got := WeightedColumn(m, 0, 1, []int{2, 3}, DefaultWeightParams, true); got != 0 {
		t.Fatalf("empty-matrix weighted column = %v", got)
	}
}

func TestWeightedColumnStaysInUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 5 + int(seed%20)
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && src.Bool(0.4) {
					_ = m.Set(i, j, src.Float64())
				}
			}
		}
		o := src.Intn(n)
		j := src.Intn(n)
		nbrs := src.Sample(n, 3)
		v := WeightedColumn(m, o, j, nbrs, DefaultWeightParams, true)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorConfigValidation(t *testing.T) {
	if _, err := NewEstimator(EstimatorConfig{Prior: -1, Discount: 1}); err == nil {
		t.Fatal("negative prior accepted")
	}
	if _, err := NewEstimator(EstimatorConfig{Prior: 0, Discount: 0}); err == nil {
		t.Fatal("discount 0 accepted")
	}
	if _, err := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1.5}); err == nil {
		t.Fatal("discount >1 accepted")
	}
}

func TestEstimatorZeroDefault(t *testing.T) {
	e, err := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Fatalf("fresh estimator value = %v, want 0 (whitewash defence)", e.Value())
	}
}

func TestEstimatorConverges(t *testing.T) {
	e, _ := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1})
	for i := 0; i < 100; i++ {
		_ = e.Record(0.8)
	}
	if v := e.Value(); math.Abs(v-0.8) > 1e-9 {
		t.Fatalf("estimator converged to %v, want 0.8", v)
	}
	if e.Count() != 100 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestEstimatorDiscountTracksChange(t *testing.T) {
	e, _ := NewEstimator(EstimatorConfig{Prior: 0, Discount: 0.9})
	for i := 0; i < 50; i++ {
		_ = e.Record(1)
	}
	high := e.Value()
	for i := 0; i < 50; i++ {
		_ = e.Record(0)
	}
	low := e.Value()
	if high < 0.95 {
		t.Fatalf("after good streak value = %v", high)
	}
	if low > 0.05 {
		t.Fatalf("discounted estimator too sticky: %v after defection streak", low)
	}
}

func TestEstimatorRejectsBadQuality(t *testing.T) {
	e, _ := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1})
	for _, q := range []float64{-0.1, 1.01, math.NaN()} {
		if err := e.Record(q); err == nil {
			t.Fatalf("Record accepted %v", q)
		}
	}
}

func TestEstimatorBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		e, _ := NewEstimator(EstimatorConfig{Prior: 1, Discount: 0.95})
		for i := 0; i < 200; i++ {
			if err := e.Record(src.Float64()); err != nil {
				return false
			}
			if v := e.Value(); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorReset(t *testing.T) {
	e, _ := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1})
	_ = e.Record(1)
	e.Reset()
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("Reset did not clear state")
	}
}
