package trust

import (
	"math"
	"testing"
)

func TestGenerateWorkloadValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{N: 0},
		{N: 10, Density: -0.1},
		{N: 10, Density: 1.2},
		{N: 10, NeighborDensity: 2},
		{N: 10, FreeRiderFrac: -1},
	}
	for _, cfg := range bad {
		if _, err := GenerateWorkload(cfg); err == nil {
			t.Fatalf("accepted %+v", cfg)
		}
	}
}

func TestGenerateWorkloadShape(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{N: 100, Density: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Matrix.N() != 100 || len(w.Decency) != 100 || len(w.FreeRider) != 100 {
		t.Fatal("workload shape wrong")
	}
	// Density 0.2 over 100*99 ordered pairs: expect ~1980 entries.
	got := float64(w.Matrix.NumEntries())
	if got < 1500 || got > 2500 {
		t.Fatalf("entries = %v, want ~1980", got)
	}
	for j, d := range w.Decency {
		if d < 0 || d > 1 {
			t.Fatalf("decency[%d] = %v", j, d)
		}
	}
	// No self trust.
	for i := 0; i < 100; i++ {
		if w.Matrix.Has(i, i) {
			t.Fatalf("self trust at %d", i)
		}
	}
}

func TestGenerateWorkloadObservationsTrackDecency(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{N: 200, Density: 0.3, Noise: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 200; j++ {
		sum, cnt := w.Matrix.ColumnSum(j)
		if cnt < 10 {
			continue
		}
		mean := sum / float64(cnt)
		// Clamping biases extremes slightly, so allow a loose band.
		if math.Abs(mean-w.Decency[j]) > 0.1 {
			t.Fatalf("subject %d: observed mean %v, decency %v", j, mean, w.Decency[j])
		}
	}
}

func TestGenerateWorkloadNeighborDensity(t *testing.T) {
	adj := func(i, j int) bool { return (i+j)%2 == 0 }
	w, err := GenerateWorkload(WorkloadConfig{
		N: 100, Density: 0.01, NeighborDensity: 0.9, Adjacent: adj, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nbrPairs, nbrHits := 0, 0
	farPairs, farHits := 0, 0
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if i == j {
				continue
			}
			if adj(i, j) {
				nbrPairs++
				if w.Matrix.Has(i, j) {
					nbrHits++
				}
			} else {
				farPairs++
				if w.Matrix.Has(i, j) {
					farHits++
				}
			}
		}
	}
	nbrRate := float64(nbrHits) / float64(nbrPairs)
	farRate := float64(farHits) / float64(farPairs)
	if nbrRate < 0.8 || farRate > 0.05 {
		t.Fatalf("density split wrong: neighbour %v, far %v", nbrRate, farRate)
	}
}

func TestGenerateWorkloadFreeRiders(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{N: 500, Density: 0.1, FreeRiderFrac: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fr, honest := 0, 0
	frSum, honestSum := 0.0, 0.0
	for j := 0; j < 500; j++ {
		if w.FreeRider[j] {
			fr++
			frSum += w.Decency[j]
		} else {
			honest++
			honestSum += w.Decency[j]
		}
	}
	if fr < 150 || fr > 250 {
		t.Fatalf("free riders = %d, want ~200", fr)
	}
	if frSum/float64(fr) >= honestSum/float64(honest) {
		t.Fatal("free riders not less decent than honest nodes")
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	cfg := WorkloadConfig{N: 50, Density: 0.3, Seed: 5}
	a, _ := GenerateWorkload(cfg)
	b, _ := GenerateWorkload(cfg)
	if a.Matrix.NumEntries() != b.Matrix.NumEntries() {
		t.Fatal("workload not deterministic")
	}
	for i := 0; i < 50; i++ {
		for j, v := range a.Matrix.Row(i) {
			if b.Matrix.Value(i, j) != v {
				t.Fatalf("value (%d,%d) differs", i, j)
			}
		}
	}
}
