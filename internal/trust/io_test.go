package trust

import (
	"bytes"
	"testing"

	"diffgossip/internal/rng"
)

func TestMatrixSaveLoadRoundTrip(t *testing.T) {
	src := rng.New(5)
	m := NewMatrix(100)
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if i != j && src.Bool(0.1) {
				if err := m.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 100 || got.NumEntries() != m.NumEntries() {
		t.Fatalf("shape: %d/%d vs %d/%d", got.N(), got.NumEntries(), m.N(), m.NumEntries())
	}
	for i := 0; i < 100; i++ {
		for j, v := range m.Row(i) {
			if got.Value(i, j) != v {
				t.Fatalf("entry (%d,%d) differs", i, j)
			}
		}
	}
}

func TestMatrixSaveDeterministic(t *testing.T) {
	m := NewMatrix(10)
	_ = m.Set(3, 4, 0.5)
	_ = m.Set(1, 2, 0.25)
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("save not deterministic")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadEmptyMatrix(t *testing.T) {
	m := NewMatrix(7)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 7 || got.NumEntries() != 0 {
		t.Fatalf("empty round trip: N=%d entries=%d", got.N(), got.NumEntries())
	}
}
