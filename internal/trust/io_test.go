package trust

import (
	"bytes"
	"encoding/gob"
	"testing"

	"diffgossip/internal/rng"
)

func TestMatrixSaveLoadRoundTrip(t *testing.T) {
	src := rng.New(5)
	m := NewMatrix(100)
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if i != j && src.Bool(0.1) {
				if err := m.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 100 || got.NumEntries() != m.NumEntries() {
		t.Fatalf("shape: %d/%d vs %d/%d", got.N(), got.NumEntries(), m.N(), m.NumEntries())
	}
	for i := 0; i < 100; i++ {
		for j, v := range m.Row(i) {
			if got.Value(i, j) != v {
				t.Fatalf("entry (%d,%d) differs", i, j)
			}
		}
	}
}

func TestMatrixSaveDeterministic(t *testing.T) {
	m := NewMatrix(10)
	_ = m.Set(3, 4, 0.5)
	_ = m.Set(1, 2, 0.25)
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("save not deterministic")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadEmptyMatrix(t *testing.T) {
	m := NewMatrix(7)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 7 || got.NumEntries() != 0 {
		t.Fatalf("empty round trip: N=%d entries=%d", got.N(), got.NumEntries())
	}
}

func TestLoadRejectsOversizedN(t *testing.T) {
	// Regression: a corrupt matrixWire claiming N=2^40 used to crash the
	// process with an out-of-range allocation before any entry was read.
	wire := matrixWire{N: 1 << 40, Version: wireVersion}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("oversized matrix accepted")
	}
}

// FuzzMatrixLoad hammers the gob matrix decoder: arbitrary bytes must be
// rejected with an error — never a panic or an unbounded allocation — and
// any accepted matrix must round-trip through Save unchanged.
func FuzzMatrixLoad(f *testing.F) {
	m := NewMatrix(5)
	m.Set(0, 1, 0.25)
	m.Set(4, 2, 1)
	var seedBuf bytes.Buffer
	if err := m.Save(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := got.Save(&buf); err != nil {
			t.Fatalf("accepted matrix does not re-save: %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-saved matrix does not re-load: %v", err)
		}
		if back.N() != got.N() || back.NumEntries() != got.NumEntries() {
			t.Fatalf("matrix changed across round-trip: N %d vs %d, entries %d vs %d",
				back.N(), got.N(), back.NumEntries(), got.NumEntries())
		}
	})
}
