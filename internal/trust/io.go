package trust

import (
	"encoding/gob"
	"fmt"
	"io"
)

// matrixWire is the gob representation of a Matrix: a flat triple list, which
// stays compact for the sparse matrices the system produces.
type matrixWire struct {
	N       int
	I, J    []int
	V       []float64
	Version int
}

const wireVersion = 1

// maxWireN caps the node count accepted from a serialised matrix. Load
// allocates Θ(N) before reading any entries, so without a bound a corrupt
// or hostile file crashes the process with an out-of-range allocation
// instead of returning an error (found by fuzzing the snapshot decoder).
// 2^24 nodes is two orders of magnitude beyond the largest experiment and
// keeps the worst-case transient allocation at a few hundred megabytes.
const maxWireN = 1 << 24

// Save serialises the matrix with gob. Entries are written in deterministic
// (row, column) order so identical matrices produce identical bytes.
func (m *Matrix) Save(w io.Writer) error {
	wire := matrixWire{N: m.n, Version: wireVersion}
	for i := 0; i < m.n; i++ {
		for _, j := range m.InteractedWith(i) {
			wire.I = append(wire.I, i)
			wire.J = append(wire.J, j)
			wire.V = append(wire.V, m.rows[i][j])
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// columnsWire is the gob representation of a frozen Columns: the subject
// list plus one flat triple list, reusing the Matrix layout column by
// column so the format stays compact and deterministic.
type columnsWire struct {
	N        int
	Subjects []int
	Counts   []int // entries per subject, parallel to Subjects
	I        []int // rater ids, concatenated in subject order
	V        []float64
	Version  int
}

// Save serialises the column set with gob, deterministically (subjects in
// construction order, raters ascending).
func (c *Columns) Save(w io.Writer) error {
	wire := columnsWire{N: c.n, Version: wireVersion}
	for s := range c.subjects {
		j, ids, vals := c.ColumnAt(s)
		wire.Subjects = append(wire.Subjects, j)
		wire.Counts = append(wire.Counts, len(ids))
		wire.I = append(wire.I, ids...)
		wire.V = append(wire.V, vals...)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadColumns deserialises a column set written by (*Columns).Save,
// validating shape, ranges and ordering.
func LoadColumns(r io.Reader) (*Columns, error) {
	var wire columnsWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("trust: decode columns: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("trust: unsupported columns version %d", wire.Version)
	}
	if wire.N < 0 || wire.N > maxWireN || len(wire.Counts) != len(wire.Subjects) || len(wire.Subjects) > wire.N {
		return nil, fmt.Errorf("trust: malformed columns payload")
	}
	if len(wire.I) != len(wire.V) {
		return nil, fmt.Errorf("trust: malformed columns payload")
	}
	raters := make([][]int, len(wire.Subjects))
	vals := make([][]float64, len(wire.Subjects))
	off := 0
	for s, cnt := range wire.Counts {
		// Subtraction form: off+cnt can overflow on a hostile count.
		if cnt < 0 || cnt > len(wire.I)-off {
			return nil, fmt.Errorf("trust: malformed columns payload")
		}
		raters[s] = wire.I[off : off+cnt]
		vals[s] = wire.V[off : off+cnt]
		off += cnt
	}
	if off != len(wire.I) {
		return nil, fmt.Errorf("trust: malformed columns payload")
	}
	return NewColumns(wire.N, wire.Subjects, raters, vals)
}

// Load deserialises a matrix written by Save, validating every entry.
func Load(r io.Reader) (*Matrix, error) {
	var wire matrixWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("trust: decode: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("trust: unsupported matrix version %d", wire.Version)
	}
	if wire.N < 0 || len(wire.I) != len(wire.J) || len(wire.I) != len(wire.V) {
		return nil, fmt.Errorf("trust: malformed matrix payload")
	}
	if wire.N > maxWireN {
		return nil, fmt.Errorf("trust: matrix size %d exceeds the wire-format bound %d", wire.N, maxWireN)
	}
	m := NewMatrix(wire.N)
	for k := range wire.I {
		i, j := wire.I[k], wire.J[k]
		if i < 0 || i >= wire.N || j < 0 || j >= wire.N {
			return nil, fmt.Errorf("trust: entry (%d,%d) out of range", i, j)
		}
		if err := m.Set(i, j, wire.V[k]); err != nil {
			return nil, err
		}
	}
	return m, nil
}
