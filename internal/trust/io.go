package trust

import (
	"encoding/gob"
	"fmt"
	"io"
)

// matrixWire is the gob representation of a Matrix: a flat triple list, which
// stays compact for the sparse matrices the system produces.
type matrixWire struct {
	N       int
	I, J    []int
	V       []float64
	Version int
}

const wireVersion = 1

// maxWireN caps the node count accepted from a serialised matrix. Load
// allocates Θ(N) before reading any entries, so without a bound a corrupt
// or hostile file crashes the process with an out-of-range allocation
// instead of returning an error (found by fuzzing the snapshot decoder).
// 2^24 nodes is two orders of magnitude beyond the largest experiment and
// keeps the worst-case transient allocation at a few hundred megabytes.
const maxWireN = 1 << 24

// Save serialises the matrix with gob. Entries are written in deterministic
// (row, column) order so identical matrices produce identical bytes.
func (m *Matrix) Save(w io.Writer) error {
	wire := matrixWire{N: m.n, Version: wireVersion}
	for i := 0; i < m.n; i++ {
		for _, j := range m.InteractedWith(i) {
			wire.I = append(wire.I, i)
			wire.J = append(wire.J, j)
			wire.V = append(wire.V, m.rows[i][j])
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load deserialises a matrix written by Save, validating every entry.
func Load(r io.Reader) (*Matrix, error) {
	var wire matrixWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("trust: decode: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("trust: unsupported matrix version %d", wire.Version)
	}
	if wire.N < 0 || len(wire.I) != len(wire.J) || len(wire.I) != len(wire.V) {
		return nil, fmt.Errorf("trust: malformed matrix payload")
	}
	if wire.N > maxWireN {
		return nil, fmt.Errorf("trust: matrix size %d exceeds the wire-format bound %d", wire.N, maxWireN)
	}
	m := NewMatrix(wire.N)
	for k := range wire.I {
		i, j := wire.I[k], wire.J[k]
		if i < 0 || i >= wire.N || j < 0 || j >= wire.N {
			return nil, fmt.Errorf("trust: entry (%d,%d) out of range", i, j)
		}
		if err := m.Set(i, j, wire.V[k]); err != nil {
			return nil, err
		}
	}
	return m, nil
}
