package trust

import (
	"math"
	"testing"
	"testing/quick"

	"diffgossip/internal/rng"
)

func TestBLUEValidation(t *testing.T) {
	if _, err := NewBLUEEstimator(0); err == nil {
		t.Fatal("discount 0 accepted")
	}
	if _, err := NewBLUEEstimator(1.1); err == nil {
		t.Fatal("discount >1 accepted")
	}
	b, err := NewBLUEEstimator(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ x, s2 float64 }{
		{-0.1, 1}, {1.1, 1}, {math.NaN(), 1},
		{0.5, 0}, {0.5, -1}, {0.5, math.Inf(1)}, {0.5, math.NaN()},
	} {
		if err := b.Observe(bad.x, bad.s2); err == nil {
			t.Fatalf("Observe(%v, %v) accepted", bad.x, bad.s2)
		}
	}
}

func TestBLUEEmptyDefaults(t *testing.T) {
	b, _ := NewBLUEEstimator(1)
	if b.Value() != 0 {
		t.Fatalf("empty value = %v", b.Value())
	}
	if !math.IsInf(b.Variance(), 1) {
		t.Fatalf("empty variance = %v", b.Variance())
	}
}

func TestBLUEInverseVarianceWeighting(t *testing.T) {
	// Two observations: 0.9 with tiny variance, 0.1 with huge variance.
	// The estimate must sit near 0.9.
	b, _ := NewBLUEEstimator(1)
	if err := b.Observe(0.9, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(0.1, 1.0); err != nil {
		t.Fatal(err)
	}
	if v := b.Value(); v < 0.85 {
		t.Fatalf("BLUE = %v, want near 0.9", v)
	}
	// Exact check: (0.9/0.001 + 0.1/1)/(1/0.001 + 1/1).
	want := (0.9/0.001 + 0.1) / (1/0.001 + 1)
	if math.Abs(b.Value()-want) > 1e-12 {
		t.Fatalf("BLUE = %v, want %v", b.Value(), want)
	}
}

func TestBLUEVarianceShrinks(t *testing.T) {
	b, _ := NewBLUEEstimator(1)
	_ = b.Observe(0.5, 0.04)
	v1 := b.Variance()
	_ = b.Observe(0.5, 0.04)
	v2 := b.Variance()
	if v2 >= v1 {
		t.Fatalf("variance did not shrink: %v -> %v", v1, v2)
	}
	if math.Abs(v2-0.02) > 1e-12 {
		t.Fatalf("two equal observations: variance %v, want 0.02", v2)
	}
}

func TestBLUEUnbiasedOnNoisyStream(t *testing.T) {
	src := rng.New(7)
	b, _ := NewBLUEEstimator(1)
	truth := 0.65
	for i := 0; i < 20000; i++ {
		x := truth + 0.1*src.NormFloat64()
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		if err := b.Observe(x, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(b.Value()-truth) > 0.01 {
		t.Fatalf("BLUE = %v, want ~%v", b.Value(), truth)
	}
	if b.Count() != 20000 {
		t.Fatalf("count = %d", b.Count())
	}
}

func TestBLUEDiscountTracksChange(t *testing.T) {
	b, _ := NewBLUEEstimator(0.9)
	for i := 0; i < 60; i++ {
		_ = b.Observe(1, 0.01)
	}
	for i := 0; i < 60; i++ {
		_ = b.Observe(0, 0.01)
	}
	if v := b.Value(); v > 0.05 {
		t.Fatalf("discounted BLUE too sticky: %v", v)
	}
	b.Reset()
	if b.Value() != 0 || b.Count() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestBLUEBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		b, _ := NewBLUEEstimator(0.95)
		for i := 0; i < 100; i++ {
			if err := b.Observe(src.Float64(), 0.001+src.Float64()); err != nil {
				return false
			}
			if v := b.Value(); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFuseBLUE(t *testing.T) {
	v, s2, err := FuseBLUE([]float64{0.8, 0.2}, []float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("fused value %v, want 0.5", v)
	}
	if math.Abs(s2-0.005) > 1e-12 {
		t.Fatalf("fused variance %v, want 0.005", s2)
	}
}

func TestFuseBLUESkipsUnusable(t *testing.T) {
	v, s2, err := FuseBLUE([]float64{0.9, 0.1}, []float64{0.01, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.9 {
		t.Fatalf("fused = %v, want 0.9 (inf-variance input ignored)", v)
	}
	if s2 != 0.01 {
		t.Fatalf("variance = %v", s2)
	}
	v, s2, err = FuseBLUE(nil, nil)
	if err != nil || v != 0 || !math.IsInf(s2, 1) {
		t.Fatalf("empty fuse = %v, %v, %v", v, s2, err)
	}
}

func TestFuseBLUELengthMismatch(t *testing.T) {
	if _, _, err := FuseBLUE([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBLUEAgreesWithEstimatorOnCleanStream(t *testing.T) {
	// On a constant-quality stream both estimators converge to the truth.
	blue, _ := NewBLUEEstimator(1)
	beta, _ := NewEstimator(EstimatorConfig{Prior: 0, Discount: 1})
	for i := 0; i < 500; i++ {
		_ = blue.Observe(0.7, 0.01)
		_ = beta.Record(0.7)
	}
	if math.Abs(blue.Value()-beta.Value()) > 1e-9 {
		t.Fatalf("estimators disagree: BLUE %v, beta %v", blue.Value(), beta.Value())
	}
}
