package trust

import (
	"fmt"
	"sort"
)

// Reader is the read-only surface the reputation evaluations
// (WeightedColumn, the GCLR references, the service's query path) need from
// trust state. Matrix implements it; so do the frozen per-shard Columns and
// the composite view the sharded service stitches from them, which is how
// one evaluation path serves both the monolithic and the sharded pipeline.
type Reader interface {
	// N is the node-id bound.
	N() int
	// Get returns t_ij and whether the entry exists.
	Get(i, j int) (float64, bool)
	// Value returns t_ij, or 0 when absent.
	Value(i, j int) float64
	// ColumnSum returns (Σ_i t_ij, raterCount) for column j.
	ColumnSum(j int) (float64, int)
	// InteractedWith returns the sorted ids node i holds direct trust about.
	InteractedWith(i int) []int
}

var (
	_ Reader = (*Matrix)(nil)
	_ Reader = (*Columns)(nil)
)

// Columns is a frozen, column-major slice of a trust matrix: the direct
// trust data for a subset of subjects, indexed both by column (rater lists
// in ascending order, as the gossip fold consumes them) and by row (so
// GCLR-style evaluations can walk an observer's ratings without scanning
// every column). The sharded service publishes one Columns per shard
// snapshot; like a cloned Matrix it is immutable after construction, so any
// number of readers may share it without locks.
//
// Reads for subjects outside the subset report "no entry" — the composite
// view dispatches each subject to the shard that owns it.
//
// Storage is compressed-sparse-column: all rater ids live in one flat []int
// and all values in one flat []float64, with the per-slot slices as
// contiguous subslice views into them. A shard's whole column set is then
// two allocations plus the views, entries of neighbouring subjects share
// cache lines, and total memory scales with the number of ratings — never
// with N×subjects.
type Columns struct {
	n        int
	subjects []int
	slot     map[int]int       // subject -> position in subjects
	raters   [][]int           // per slot, ascending; views into one flat backing
	vals     [][]float64       // aligned with raters; views into one flat backing
	rows     []map[int]float64 // rows[i][j] = t_ij restricted to subjects; nil when empty
}

// ColumnsOf freezes the given subject columns of m. The subjects must be
// distinct and in range; their order is preserved.
func ColumnsOf(m *Matrix, subjects []int) (*Columns, error) {
	c, err := newColumnsShell(m.n, subjects)
	if err != nil {
		return nil, err
	}
	// Accumulate every column into one flat backing, then carve the per-slot
	// views — the CSC layout. Appends may reallocate the backing mid-build,
	// so the views are taken only after the last column lands.
	var ids []int
	var vals []float64
	offs := make([]int, len(c.subjects)+1)
	for s, j := range c.subjects {
		ids, vals = m.RatersOfInto(j, ids, vals)
		offs[s+1] = len(ids)
	}
	c.attachFlat(ids, vals, offs)
	c.buildRows()
	return c, nil
}

// attachFlat carves the per-slot column views out of one flat (ids, vals)
// backing, slot s owning [offs[s], offs[s+1]). Full-capacity slicing keeps a
// stray append on one view from clobbering its neighbour.
func (c *Columns) attachFlat(ids []int, vals []float64, offs []int) {
	for s := range c.subjects {
		lo, hi := offs[s], offs[s+1]
		c.raters[s] = ids[lo:hi:hi]
		c.vals[s] = vals[lo:hi:hi]
	}
}

// NewColumns assembles a frozen Columns from raw per-subject rater lists —
// the decode path of the shard-snapshot wire format. Each raters[s] must be
// strictly ascending with values in [0,1]; the entries are compacted into
// the flat CSC backing, so the input slices stay the caller's.
func NewColumns(n int, subjects []int, raters [][]int, vals [][]float64) (*Columns, error) {
	c, err := newColumnsShell(n, subjects)
	if err != nil {
		return nil, err
	}
	if len(raters) != len(subjects) || len(vals) != len(subjects) {
		return nil, fmt.Errorf("trust: columns payload has %d/%d columns, want %d", len(raters), len(vals), len(subjects))
	}
	total := 0
	for s := range subjects {
		ids, vs := raters[s], vals[s]
		if len(ids) != len(vs) {
			return nil, fmt.Errorf("trust: column %d has %d raters but %d values", subjects[s], len(ids), len(vs))
		}
		prev := -1
		for k, i := range ids {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("trust: column %d rater %d out of range [0,%d)", subjects[s], i, n)
			}
			if i <= prev {
				return nil, fmt.Errorf("trust: column %d raters not strictly ascending", subjects[s])
			}
			if vs[k] < 0 || vs[k] > 1 || vs[k] != vs[k] {
				return nil, fmt.Errorf("trust: column %d value %v out of [0,1]", subjects[s], vs[k])
			}
			prev = i
		}
		total += len(ids)
	}
	flatIDs := make([]int, 0, total)
	flatVals := make([]float64, 0, total)
	offs := make([]int, len(subjects)+1)
	for s := range subjects {
		flatIDs = append(flatIDs, raters[s]...)
		flatVals = append(flatVals, vals[s]...)
		offs[s+1] = len(flatIDs)
	}
	c.attachFlat(flatIDs, flatVals, offs)
	c.buildRows()
	return c, nil
}

func newColumnsShell(n int, subjects []int) (*Columns, error) {
	c := &Columns{
		n:        n,
		subjects: append([]int(nil), subjects...),
		slot:     make(map[int]int, len(subjects)),
		raters:   make([][]int, len(subjects)),
		vals:     make([][]float64, len(subjects)),
	}
	for s, j := range c.subjects {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("trust: subject %d out of range [0,%d)", j, n)
		}
		if _, dup := c.slot[j]; dup {
			return nil, fmt.Errorf("trust: duplicate subject %d", j)
		}
		c.slot[j] = s
	}
	return c, nil
}

// buildRows derives the row index from the column data.
func (c *Columns) buildRows() {
	c.rows = make([]map[int]float64, c.n)
	for s, j := range c.subjects {
		for k, i := range c.raters[s] {
			if c.rows[i] == nil {
				c.rows[i] = make(map[int]float64)
			}
			c.rows[i][j] = c.vals[s][k]
		}
	}
}

// N returns the node-id bound.
func (c *Columns) N() int { return c.n }

// Subjects returns the frozen subject set in construction order. The caller
// must not mutate it.
func (c *Columns) Subjects() []int { return c.subjects }

// Covers reports whether subject j is part of this column set.
func (c *Columns) Covers(j int) bool {
	_, ok := c.slot[j]
	return ok
}

// Column returns subject j's rater ids (ascending) and values, or nils when
// j is not covered. The caller must not mutate the returned slices.
func (c *Columns) Column(j int) ([]int, []float64) {
	s, ok := c.slot[j]
	if !ok {
		return nil, nil
	}
	return c.raters[s], c.vals[s]
}

// ColumnAt returns slot s's data — the encode path's accessor.
func (c *Columns) ColumnAt(s int) (subject int, raters []int, vals []float64) {
	return c.subjects[s], c.raters[s], c.vals[s]
}

// Get returns t_ij and whether i has rated j (false for uncovered subjects).
func (c *Columns) Get(i, j int) (float64, bool) {
	if i < 0 || i >= c.n || c.rows[i] == nil {
		return 0, false
	}
	v, ok := c.rows[i][j]
	return v, ok
}

// Value returns t_ij, or 0 when absent or uncovered.
func (c *Columns) Value(i, j int) float64 {
	v, _ := c.Get(i, j)
	return v
}

// ColumnSum returns (Σ_i t_ij, raterCount) for column j (zeros when
// uncovered).
func (c *Columns) ColumnSum(j int) (float64, int) {
	s, ok := c.slot[j]
	if !ok {
		return 0, 0
	}
	sum := 0.0
	for _, v := range c.vals[s] {
		sum += v
	}
	return sum, len(c.raters[s])
}

// InteractedWith returns the sorted subjects (within this column set) node i
// holds direct trust about.
func (c *Columns) InteractedWith(i int) []int {
	if i < 0 || i >= c.n || c.rows[i] == nil {
		return nil
	}
	out := make([]int, 0, len(c.rows[i]))
	for j := range c.rows[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// RatersOfInto appends subject j's raters and values (ascending) to the
// given slices — the frozen counterpart of Matrix.RatersOfInto, so either
// can seed a gossip fold. Uncovered subjects append nothing.
func (c *Columns) RatersOfInto(j int, ids []int, vals []float64) ([]int, []float64) {
	s, ok := c.slot[j]
	if !ok {
		return ids, vals
	}
	return append(ids, c.raters[s]...), append(vals, c.vals[s]...)
}

// RowOf returns node i's entries restricted to this column set as a shared
// map (nil when empty). The caller must not mutate it; the composite view
// uses it to stitch an observer's full row across shards.
func (c *Columns) RowOf(i int) map[int]float64 {
	if i < 0 || i >= c.n {
		return nil
	}
	return c.rows[i]
}

// NumEntries returns the number of stored (rater, subject) pairs.
func (c *Columns) NumEntries() int {
	total := 0
	for _, r := range c.raters {
		total += len(r)
	}
	return total
}
