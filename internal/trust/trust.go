// Package trust provides the local-trust substrate of the reputation system:
// the sparse matrix of direct-interaction trust values t_ij ∈ [0,1], the
// transaction-driven estimator producing them, and the confidence weights
// w_ij = a_i^(b_ij·t_ij) (paper eq. 2) used by globally calibrated local
// reputation.
//
// The aggregation layer (internal/core) is agnostic to how t_ij is estimated;
// the paper delegates estimation to a separate BLUE-based scheme [20], and
// this package substitutes a beta-style transaction-ratio estimator with
// exponential discounting of stale evidence, which produces values with the
// same semantics (0 = no trust, 1 = full trust, monotone in service quality).
package trust

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is the sparse N×N local trust matrix. Entry (i,j) is the trust node
// i places in node j from direct interaction only; absent entries mean "never
// transacted" and are treated as 0 by the aggregation algorithms (the paper's
// whitewashing-resistant default).
//
// # Concurrency
//
// Matrix is NOT goroutine-safe: no method may run concurrently with Set or
// Delete on the same matrix, and there is no internal locking. The two
// supported sharing patterns are
//
//   - single owner: the simulator engines and the service's epoch path own
//     one matrix each and mutate it from one goroutine at a time;
//   - frozen snapshot: Clone the matrix and never mutate the clone — any
//     number of goroutines may then call the read methods on it without
//     synchronisation (this is how store.Snapshot serves lock-free reads).
//
// Clone is a deep copy: mutations on either side are invisible to the other.
type Matrix struct {
	n    int
	rows []map[int]float64
}

// NewMatrix returns an empty trust matrix over n nodes.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("trust: negative size")
	}
	return &Matrix{n: n, rows: make([]map[int]float64, n)}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Set records t_ij = v. It panics on out-of-range indices and rejects values
// outside [0,1], which are always bugs upstream.
func (m *Matrix) Set(i, j int, v float64) error {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("trust: index (%d,%d) out of range [0,%d)", i, j, m.n))
	}
	if v < 0 || v > 1 || math.IsNaN(v) {
		return fmt.Errorf("trust: value %v out of [0,1]", v)
	}
	if m.rows[i] == nil {
		m.rows[i] = make(map[int]float64)
	}
	m.rows[i][j] = v
	return nil
}

// Get returns t_ij and whether node i has any direct-interaction value for j.
func (m *Matrix) Get(i, j int) (float64, bool) {
	if m.rows[i] == nil {
		return 0, false
	}
	v, ok := m.rows[i][j]
	return v, ok
}

// Value returns t_ij, or 0 when i has never transacted with j.
func (m *Matrix) Value(i, j int) float64 {
	v, _ := m.Get(i, j)
	return v
}

// Has reports whether i has direct-interaction trust for j.
func (m *Matrix) Has(i, j int) bool {
	_, ok := m.Get(i, j)
	return ok
}

// Delete removes the (i,j) entry; used when a peer's feedback is dropped
// after prolonged absence (paper §4.1.2).
func (m *Matrix) Delete(i, j int) {
	if m.rows[i] != nil {
		delete(m.rows[i], j)
	}
}

// Row returns node i's trust entries as a copied map.
func (m *Matrix) Row(i int) map[int]float64 {
	out := make(map[int]float64, len(m.rows[i]))
	for j, v := range m.rows[i] {
		out[j] = v
	}
	return out
}

// RatersOf returns the sorted list of nodes holding direct trust about j and
// their values. This is the set that starts a gossip round with weight 1 in
// Algorithm 1.
func (m *Matrix) RatersOf(j int) ([]int, []float64) {
	return m.RatersOfInto(j, nil, nil)
}

// RatersOfInto appends j's raters and their values to ids and vals and
// returns the extended slices, in ascending rater order (the row sweep
// yields sorted output by construction, so no sort pass runs). This is the
// allocation-free form of RatersOf for the shard fold path, which gathers
// thousands of columns per epoch into reused buffers.
func (m *Matrix) RatersOfInto(j int, ids []int, vals []float64) ([]int, []float64) {
	for i := 0; i < m.n; i++ {
		if r := m.rows[i]; r != nil {
			if v, ok := r[j]; ok {
				ids = append(ids, i)
				vals = append(vals, v)
			}
		}
	}
	return ids, vals
}

// InteractedWith returns the sorted ids of every node i holds direct trust
// about — the paper's neighbour set NS_i, since neighbourhood is defined by
// interaction (§3, §4.1.2). This is the set whose opinions receive
// confidence weights > 1 in the GCLR variants.
func (m *Matrix) InteractedWith(i int) []int {
	out := make([]int, 0, len(m.rows[i]))
	for j := range m.rows[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// NumEntries returns the number of stored (i,j) pairs.
func (m *Matrix) NumEntries() int {
	total := 0
	for _, r := range m.rows {
		total += len(r)
	}
	return total
}

// Clone returns a deep copy sharing no state with the receiver: mutating
// either matrix never affects the other. The snapshot path relies on this —
// a clone handed to concurrent readers must stay frozen while the original
// keeps absorbing feedback (see the concurrency contract on Matrix).
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	for i, r := range m.rows {
		if r == nil {
			continue
		}
		c.rows[i] = make(map[int]float64, len(r))
		for j, v := range r {
			c.rows[i][j] = v
		}
	}
	return c
}

// ColumnMean returns the mean of column j over all N nodes (missing entries
// count as 0) — the paper's global reputation definition, eq. (1)/(8).
func (m *Matrix) ColumnMean(j int) float64 {
	if m.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < m.n; i++ {
		if m.rows[i] != nil {
			sum += m.rows[i][j]
		}
	}
	return sum / float64(m.n)
}

// ColumnRaterMean returns the mean of column j over raters only — the value
// Algorithm 1's gossip converges to (Σ_i y_ij / Σ_i g_ij with g=1 for
// raters).
func (m *Matrix) ColumnRaterMean(j int) float64 {
	sum, cnt := 0.0, 0
	for i := 0; i < m.n; i++ {
		if m.rows[i] != nil {
			if v, ok := m.rows[i][j]; ok {
				sum += v
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// ColumnSum returns (Σ_i t_ij, raterCount) for column j.
func (m *Matrix) ColumnSum(j int) (float64, int) {
	sum, cnt := 0.0, 0
	for i := 0; i < m.n; i++ {
		if m.rows[i] != nil {
			if v, ok := m.rows[i][j]; ok {
				sum += v
				cnt++
			}
		}
	}
	return sum, cnt
}
