package trust

import (
	"fmt"
	"math"

	"diffgossip/internal/rng"
)

// WorkloadConfig describes a synthetic trust workload: each node j has a true
// decency level D_j ~ Beta(Alpha, BetaP); each (i,j) pair that has transacted
// yields a noisy observation t_ij = clamp(D_j + Normal(0, Noise)). The
// observed-pair structure is controlled by Density, biased so that neighbours
// on the overlay are more likely to have transacted (paper §3: neighbourhood
// follows interaction).
type WorkloadConfig struct {
	// N is the node count.
	N int
	// Density is the probability an arbitrary ordered pair (i,j) has
	// transacted.
	Density float64
	// NeighborDensity is the (higher) probability for overlay neighbours;
	// pairs are classified by the Adjacent callback. Ignored when Adjacent
	// is nil.
	NeighborDensity float64
	// Adjacent reports overlay adjacency; may be nil.
	Adjacent func(i, j int) bool
	// Alpha, BetaP parameterise the decency prior Beta(Alpha, BetaP);
	// zero values default to Beta(4, 2) (mostly decent population).
	Alpha, BetaP float64
	// Noise is the observation noise standard deviation (default 0.05).
	Noise float64
	// FreeRiderFrac makes this fraction of nodes free riders with decency
	// drawn from Beta(1, 8) (near zero contribution).
	FreeRiderFrac float64
	// Seed drives the generator.
	Seed uint64
}

// Workload is a generated trust scenario.
type Workload struct {
	// Matrix is the direct-interaction trust matrix.
	Matrix *Matrix
	// Decency is each node's ground-truth decency level.
	Decency []float64
	// FreeRider flags the nodes drawn from the free-rider prior.
	FreeRider []bool
}

// GenerateWorkload builds a Workload from cfg.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("trust: workload N=%d", cfg.N)
	}
	if cfg.Density < 0 || cfg.Density > 1 || cfg.NeighborDensity < 0 || cfg.NeighborDensity > 1 {
		return nil, fmt.Errorf("trust: workload density out of [0,1]")
	}
	if cfg.FreeRiderFrac < 0 || cfg.FreeRiderFrac > 1 {
		return nil, fmt.Errorf("trust: free rider fraction out of [0,1]")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 4
	}
	if cfg.BetaP == 0 {
		cfg.BetaP = 2
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.05
	}
	src := rng.New(cfg.Seed)
	w := &Workload{
		Matrix:    NewMatrix(cfg.N),
		Decency:   make([]float64, cfg.N),
		FreeRider: make([]bool, cfg.N),
	}
	for j := 0; j < cfg.N; j++ {
		if src.Bool(cfg.FreeRiderFrac) {
			w.FreeRider[j] = true
			w.Decency[j] = src.Beta(1, 8)
		} else {
			w.Decency[j] = src.Beta(cfg.Alpha, cfg.BetaP)
		}
	}
	for i := 0; i < cfg.N; i++ {
		for j := 0; j < cfg.N; j++ {
			if i == j {
				continue
			}
			p := cfg.Density
			if cfg.Adjacent != nil && cfg.Adjacent(i, j) {
				p = cfg.NeighborDensity
			}
			if !src.Bool(p) {
				continue
			}
			v := clamp01(w.Decency[j] + cfg.Noise*src.NormFloat64())
			if err := w.Matrix.Set(i, j, v); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

func clamp01(x float64) float64 {
	return math.Max(0, math.Min(1, x))
}
