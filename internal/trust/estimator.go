package trust

import (
	"fmt"
	"math"
)

// Estimator turns a stream of transaction outcomes with one peer into a trust
// value in [0,1]. The paper estimates trust with a BLUE-based scheme in a
// companion paper [20]; this estimator is a documented substitution with the
// same interface contract: quality-monotone, bounded, and discounting stale
// evidence so behaviour changes show up.
//
// Internally it is a discounted beta estimator: positive mass alpha and
// negative mass beta accumulate per-transaction quality q ∈ [0,1] as
// (alpha+q, beta+(1-q)), both decayed by Discount per new observation. The
// point estimate is alpha/(alpha+beta) with a Laplace-style prior.
type Estimator struct {
	alpha, beta float64
	prior       float64 // pseudo-count on each side
	discount    float64 // multiplicative decay applied before each update
	count       int
}

// EstimatorConfig tunes an Estimator.
type EstimatorConfig struct {
	// Prior is the pseudo-count added to both sides; with no observations
	// the estimate is 0.5 when Prior > 0. The simulator uses Prior = 0 with
	// an explicit "has transacted" bit instead, matching the paper's
	// initial-trust-zero whitewashing defence.
	Prior float64
	// Discount in (0,1] decays old evidence; 1 disables discounting.
	Discount float64
}

// NewEstimator returns an estimator with the given configuration.
func NewEstimator(cfg EstimatorConfig) (*Estimator, error) {
	if cfg.Prior < 0 || math.IsNaN(cfg.Prior) {
		return nil, fmt.Errorf("trust: negative prior %v", cfg.Prior)
	}
	if cfg.Discount <= 0 || cfg.Discount > 1 {
		return nil, fmt.Errorf("trust: discount %v out of (0,1]", cfg.Discount)
	}
	return &Estimator{prior: cfg.Prior, discount: cfg.Discount}, nil
}

// Record folds in one transaction with quality q ∈ [0,1] (1 = full requested
// service delivered promptly, 0 = defection).
func (e *Estimator) Record(q float64) error {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return fmt.Errorf("trust: quality %v out of [0,1]", q)
	}
	e.alpha = e.alpha*e.discount + q
	e.beta = e.beta*e.discount + (1 - q)
	e.count++
	return nil
}

// Value returns the current trust estimate in [0,1]. With no observations and
// no prior it returns 0 — the whitewashing-safe default.
func (e *Estimator) Value() float64 {
	num := e.alpha + e.prior
	den := e.alpha + e.beta + 2*e.prior
	if den == 0 {
		return 0
	}
	return num / den
}

// Count returns the number of recorded transactions.
func (e *Estimator) Count() int { return e.count }

// Reset clears all evidence.
func (e *Estimator) Reset() {
	e.alpha, e.beta, e.count = 0, 0, 0
}
