package trust

import (
	"fmt"
	"math"
)

// WeightParams holds the per-node parameters of the paper's confidence
// weight, eq. (2): w_ij = a_i^(b_ij · t_ij).
//
// A is the node's base (a_i >= 1), tunable by the overall quality of service
// it receives from the network; B is the per-neighbour exponent scale b_ij.
// The paper treats both as constants per node, which we default to here, but
// the API accepts per-edge overrides so the "dynamically adjusted" extension
// the paper mentions is expressible.
type WeightParams struct {
	A float64 // base a_i; must be >= 1 so that w >= 1 always
	B float64 // default exponent scale b_ij
}

// DefaultWeightParams mirrors the constants used throughout the experiments:
// a = 10, b = 1, giving w ∈ [1,10] as trust goes 0 → 1.
var DefaultWeightParams = WeightParams{A: 10, B: 1}

// Validate rejects parameter settings that would break the invariant
// w_ij >= 1 on which the collusion analysis (eq. 17) depends.
func (p WeightParams) Validate() error {
	if p.A < 1 || math.IsNaN(p.A) || math.IsInf(p.A, 0) {
		return fmt.Errorf("trust: weight base a=%v must be >= 1", p.A)
	}
	if p.B < 0 || math.IsNaN(p.B) || math.IsInf(p.B, 0) {
		return fmt.Errorf("trust: weight scale b=%v must be >= 0", p.B)
	}
	return nil
}

// Weight returns w = a^(b·t) for a single trust value.
func (p WeightParams) Weight(t float64) float64 {
	return math.Pow(p.A, p.B*t)
}

// Weights computes node i's confidence weight for every neighbour in nbrs
// given the local trust matrix. Nodes i has never transacted with get weight
// exactly 1, as eq. (6) requires.
func Weights(m *Matrix, i int, nbrs []int, p WeightParams) map[int]float64 {
	out := make(map[int]float64, len(nbrs))
	for _, v := range nbrs {
		if t, ok := m.Get(i, v); ok {
			out[v] = p.Weight(t)
		} else {
			out[v] = 1
		}
	}
	return out
}

// WeightedColumn evaluates the paper's eq. (4)/(6) reference value directly
// (centralised, no gossip): the globally calibrated local reputation of node
// j as seen by node o, over the full matrix. The gossip algorithms must
// converge to this; tests and the collusion experiments compare against it.
//
//	Rep_{o,j} = ( Σ_{i∈NS_o} (w_oi − 1)·t_ij + Σ_i t_ij )
//	          / ( Σ_{i∈NS_o} (w_oi − 1) + N_d )
//
// where N_d is the number of raters of j when raterDenominator is true
// (matching Algorithm 2's count gossip) or the full N otherwise (matching
// the eq. (6) derivation). The two coincide when every node has rated j.
func WeightedColumn(m Reader, o, j int, nbrs []int, p WeightParams, raterDenominator bool) float64 {
	sumT, raters := m.ColumnSum(j)
	num := sumT
	den := float64(raters)
	if !raterDenominator {
		den = float64(m.N())
	}
	for _, i := range nbrs {
		t, ok := m.Get(o, i)
		if !ok {
			continue // weight 1 contributes nothing beyond the Σ t_ij term
		}
		w := p.Weight(t)
		num += (w - 1) * m.Value(i, j)
		den += w - 1
	}
	if den == 0 {
		return 0
	}
	return num / den
}
