package trust

import (
	"fmt"
	"math"
)

// BLUEEstimator implements the estimation approach of the paper's companion
// scheme [20] ("Trust estimation in peer-to-peer network using BLUE"): a Best
// Linear Unbiased Estimator that fuses observations from channels of
// different, known noise variances — e.g. a node's own transaction outcomes
// (low variance) and second-hand reports from advisors (higher variance).
//
// Given independent unbiased observations x_c with variances σ_c², the BLUE
// of the underlying trust value is the inverse-variance weighted mean
//
//	t̂ = Σ_c x_c/σ_c² ⁄ Σ_c 1/σ_c²,   Var(t̂) = 1 ⁄ Σ_c 1/σ_c² ,
//
// which is the minimum-variance linear unbiased combination. Observations
// are discounted over logical time so behaviour changes show up.
type BLUEEstimator struct {
	discount float64
	// accumulated inverse-variance mass and weighted sum
	precision float64 // Σ 1/σ²  (after discounting)
	weighted  float64 // Σ x/σ²  (after discounting)
	count     int
}

// NewBLUEEstimator returns a BLUE estimator whose evidence decays by discount
// (in (0,1]; 1 disables decay) per observation.
func NewBLUEEstimator(discount float64) (*BLUEEstimator, error) {
	if discount <= 0 || discount > 1 {
		return nil, fmt.Errorf("trust: BLUE discount %v out of (0,1]", discount)
	}
	return &BLUEEstimator{discount: discount}, nil
}

// Observe folds in one observation x with noise variance sigma2. Typical
// usage gives direct transactions a small variance (e.g. 0.01) and
// second-hand reports a larger one scaled by the advisor's own
// trustworthiness.
func (b *BLUEEstimator) Observe(x, sigma2 float64) error {
	if x < 0 || x > 1 || math.IsNaN(x) {
		return fmt.Errorf("trust: BLUE observation %v out of [0,1]", x)
	}
	if sigma2 <= 0 || math.IsNaN(sigma2) || math.IsInf(sigma2, 0) {
		return fmt.Errorf("trust: BLUE variance %v must be positive and finite", sigma2)
	}
	b.precision = b.precision*b.discount + 1/sigma2
	b.weighted = b.weighted*b.discount + x/sigma2
	b.count++
	return nil
}

// Value returns the current BLUE estimate clamped to [0,1]; 0 with no
// evidence (the whitewashing-safe default shared with Estimator).
func (b *BLUEEstimator) Value() float64 {
	if b.precision == 0 {
		return 0
	}
	return clamp01(b.weighted / b.precision)
}

// Variance returns the estimator's variance 1/Σ(1/σ²); +Inf with no
// evidence.
func (b *BLUEEstimator) Variance() float64 {
	if b.precision == 0 {
		return math.Inf(1)
	}
	return 1 / b.precision
}

// Count returns the number of observations folded in.
func (b *BLUEEstimator) Count() int { return b.count }

// Reset clears all evidence.
func (b *BLUEEstimator) Reset() {
	b.precision, b.weighted, b.count = 0, 0, 0
}

// FuseBLUE combines independent estimates (value, variance) pairs into a
// single BLUE, e.g. a node's own estimate with advisor estimates. Entries
// with non-positive or infinite variance are skipped; with no usable entry it
// returns (0, +Inf).
func FuseBLUE(values, variances []float64) (float64, float64, error) {
	if len(values) != len(variances) {
		return 0, 0, fmt.Errorf("trust: FuseBLUE length mismatch %d vs %d", len(values), len(variances))
	}
	precision := 0.0
	weighted := 0.0
	for i, v := range values {
		s2 := variances[i]
		if s2 <= 0 || math.IsInf(s2, 0) || math.IsNaN(s2) {
			continue
		}
		precision += 1 / s2
		weighted += v / s2
	}
	if precision == 0 {
		return 0, math.Inf(1), nil
	}
	return clamp01(weighted / precision), 1 / precision, nil
}
