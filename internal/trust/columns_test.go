package trust

import (
	"bytes"
	"testing"

	"diffgossip/internal/rng"
)

func randomMatrix(t testing.TB, n int, density float64, seed uint64) *Matrix {
	t.Helper()
	src := rng.New(seed)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && src.Bool(density) {
				if err := m.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return m
}

// TestRatersOfIntoMatchesRatersOf: the append-style form returns exactly
// what RatersOf does, already sorted, reusing the caller's buffers.
func TestRatersOfIntoMatchesRatersOf(t *testing.T) {
	m := randomMatrix(t, 50, 0.3, 7)
	ids := make([]int, 0, 64)
	vals := make([]float64, 0, 64)
	for j := 0; j < 50; j++ {
		wantIds, wantVals := m.RatersOf(j)
		ids, vals = m.RatersOfInto(j, ids[:0], vals[:0])
		if len(ids) != len(wantIds) {
			t.Fatalf("subject %d: %d raters, want %d", j, len(ids), len(wantIds))
		}
		for k := range ids {
			if ids[k] != wantIds[k] || vals[k] != wantVals[k] {
				t.Fatalf("subject %d rater %d: (%d,%v) != (%d,%v)", j, k, ids[k], vals[k], wantIds[k], wantVals[k])
			}
			if k > 0 && ids[k] <= ids[k-1] {
				t.Fatalf("subject %d: raters not strictly ascending", j)
			}
		}
	}
}

// TestColumnsReaderMatchesMatrix: a frozen column set answers every Reader
// query identically to the matrix it was cut from, for covered subjects.
func TestColumnsReaderMatchesMatrix(t *testing.T) {
	const n = 40
	m := randomMatrix(t, n, 0.25, 11)
	subjects := []int{0, 3, 7, 21, 39}
	c, err := ColumnsOf(m, subjects)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != n || len(c.Subjects()) != len(subjects) {
		t.Fatalf("shape: n=%d subjects=%v", c.N(), c.Subjects())
	}
	covered := map[int]bool{}
	for _, j := range subjects {
		covered[j] = true
	}
	for i := 0; i < n; i++ {
		for _, j := range subjects {
			a, aok := m.Get(i, j)
			b, bok := c.Get(i, j)
			if a != b || aok != bok {
				t.Fatalf("entry (%d,%d): columns (%v,%v) != matrix (%v,%v)", i, j, b, bok, a, aok)
			}
		}
		// Row restricted to the covered subjects.
		want := 0
		for _, j := range m.InteractedWith(i) {
			if covered[j] {
				want++
			}
		}
		if got := len(c.InteractedWith(i)); got != want {
			t.Fatalf("row %d: %d covered interactions, want %d", i, got, want)
		}
	}
	for _, j := range subjects {
		aSum, aCnt := m.ColumnSum(j)
		bSum, bCnt := c.ColumnSum(j)
		if aSum != bSum || aCnt != bCnt {
			t.Fatalf("column %d: (%v,%d) != (%v,%d)", j, bSum, bCnt, aSum, aCnt)
		}
	}
	// Uncovered subjects read as empty.
	if v, ok := c.Get(1, 2); v != 0 || ok {
		t.Fatal("uncovered subject has entries")
	}
	if sum, cnt := c.ColumnSum(2); sum != 0 || cnt != 0 {
		t.Fatal("uncovered subject has a column sum")
	}
	if c.Covers(2) || !c.Covers(21) {
		t.Fatal("Covers wrong")
	}
	// WeightedColumn over the Reader interface agrees for covered columns.
	for _, o := range []int{0, 13, 39} {
		for _, j := range subjects {
			a := WeightedColumn(m, o, j, c.InteractedWith(o), DefaultWeightParams, true)
			b := WeightedColumn(c, o, j, c.InteractedWith(o), DefaultWeightParams, true)
			if a != b {
				t.Fatalf("WeightedColumn(%d,%d): %v != %v", o, j, b, a)
			}
		}
	}
}

// TestColumnsSaveLoadRoundTrip pins the gob wire format.
func TestColumnsSaveLoadRoundTrip(t *testing.T) {
	m := randomMatrix(t, 30, 0.3, 13)
	subjects := []int{2, 5, 8, 11, 29}
	c, err := ColumnsOf(m, subjects)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadColumns(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.NumEntries() != c.NumEntries() {
		t.Fatalf("reload shape: n=%d entries=%d", got.N(), got.NumEntries())
	}
	for i := 0; i < 30; i++ {
		for _, j := range subjects {
			a, aok := c.Get(i, j)
			b, bok := got.Get(i, j)
			if a != b || aok != bok {
				t.Fatalf("entry (%d,%d) drifted through the wire", i, j)
			}
		}
	}
	// Corruption fails loudly.
	if _, err := LoadColumns(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage columns accepted")
	}
}

// TestNewColumnsValidates rejects malformed raw column data.
func TestNewColumnsValidates(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		subjects []int
		raters   [][]int
		vals     [][]float64
	}{
		{"dup subject", 5, []int{1, 1}, [][]int{{0}, {0}}, [][]float64{{0.5}, {0.5}}},
		{"subject range", 5, []int{5}, [][]int{{0}}, [][]float64{{0.5}}},
		{"rater range", 5, []int{1}, [][]int{{5}}, [][]float64{{0.5}}},
		{"not ascending", 5, []int{1}, [][]int{{2, 2}}, [][]float64{{0.5, 0.5}}},
		{"value range", 5, []int{1}, [][]int{{0}}, [][]float64{{1.5}}},
		{"length mismatch", 5, []int{1}, [][]int{{0, 1}}, [][]float64{{0.5}}},
		{"column count", 5, []int{1, 2}, [][]int{{0}}, [][]float64{{0.5}}},
	}
	for _, tc := range cases {
		if _, err := NewColumns(tc.n, tc.subjects, tc.raters, tc.vals); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// BenchmarkRatersOf vs BenchmarkRatersOfInto: the satellite's alloc+sort
// churn comparison — Into reuses buffers and skips the redundant sort.
func BenchmarkRatersOf(b *testing.B) {
	m := randomMatrix(b, 1000, 0.1, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RatersOf(i % 1000)
	}
}

func BenchmarkRatersOfInto(b *testing.B) {
	m := randomMatrix(b, 1000, 0.1, 3)
	ids := make([]int, 0, 256)
	vals := make([]float64, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, vals = m.RatersOfInto(i%1000, ids[:0], vals[:0])
	}
}

// FuzzColumnsLoad hammers the gob columns decoder: arbitrary bytes must be
// rejected with an error — never a panic or a hostile allocation — and any
// accepted column set must satisfy the Columns invariants.
func FuzzColumnsLoad(f *testing.F) {
	m := NewMatrix(6)
	m.Set(0, 2, 0.5)
	m.Set(4, 2, 1)
	m.Set(1, 5, 0.25)
	c, err := ColumnsOf(m, []int{2, 5})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadColumns(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, j := range got.Subjects() {
			if j < 0 || j >= got.N() {
				t.Fatalf("accepted columns with out-of-range subject %d", j)
			}
			ids, vals := got.Column(j)
			prev := -1
			for k, i := range ids {
				if i <= prev || i >= got.N() {
					t.Fatalf("accepted column %d with bad rater order", j)
				}
				if vals[k] < 0 || vals[k] > 1 {
					t.Fatalf("accepted column %d with value %v", j, vals[k])
				}
				prev = i
			}
		}
	})
}
