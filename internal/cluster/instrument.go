package cluster

import (
	"diffgossip/internal/obs"
)

// Instrument registers the node's replication and membership metrics with
// reg. Every collector reads the node's existing mutex-guarded counters at
// scrape time (the node maintains them regardless of registration), so
// instrumentation adds zero cost to the exchange path; a scrape takes n.mu
// briefly, exactly like a /v1/stats read. Call once per registry, before
// serving.
func (n *Node) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stat := func(sel func() uint64) func() uint64 {
		return func() uint64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return sel()
		}
	}
	reg.CounterFunc("diffgossip_cluster_exchanges_total", "",
		"Anti-entropy exchange rounds initiated by this node.", stat(func() uint64 { return n.exchanges }))
	reg.CounterFunc("diffgossip_cluster_digests_sent_total", "",
		"Digest messages sent.", stat(func() uint64 { return n.stats.digestsSent }))
	reg.CounterFunc("diffgossip_cluster_digests_received_total", "",
		"Digest messages received.", stat(func() uint64 { return n.stats.digestsRecv }))
	reg.CounterFunc("diffgossip_cluster_batches_sent_total", "",
		"Entries batches sent (pushes, digest answers and hint replays).", stat(func() uint64 { return n.stats.batchesSent }))
	reg.CounterFunc("diffgossip_cluster_batches_received_total", "",
		"Entries batches received.", stat(func() uint64 { return n.stats.batchesRecv }))
	reg.CounterFunc("diffgossip_cluster_entries_applied_total", "",
		"Replicated entries applied to the local ledger.", stat(func() uint64 { return n.stats.applied }))
	reg.CounterFunc("diffgossip_cluster_entries_duplicate_total", "",
		"Replicated entries skipped as idempotent re-deliveries.", stat(func() uint64 { return n.stats.duplicate }))
	reg.CounterFunc("diffgossip_cluster_batches_gapped_total", "",
		"Entries batches discarded because an earlier batch was lost.", stat(func() uint64 { return n.stats.gapped }))
	reg.CounterFunc("diffgossip_cluster_hints_replayed_total", "",
		"Hinted entries replayed to peers that came back.", stat(func() uint64 { return n.stats.hintsReplayed }))
	reg.CounterFunc("diffgossip_cluster_hints_dropped_total", "",
		"Hinted entries dropped because a peer's hint queue was full.", stat(func() uint64 { return n.stats.hintsDropped }))
	reg.CounterFunc("diffgossip_cluster_hint_log_errors_total", "",
		"Durable hint-log I/O failures (hints then survive in memory only).", stat(func() uint64 { return n.stats.hintLogErrs }))
	reg.CounterFunc("diffgossip_cluster_hist_trims_total", "",
		"History-trim passes that dropped superseded replication entries.", stat(func() uint64 { return n.stats.histTrims }))
	reg.CounterFunc("diffgossip_cluster_hist_trimmed_entries_total", "",
		"Superseded entries dropped from the in-memory replication history.", stat(func() uint64 { return n.stats.histTrimmed }))
	reg.CounterFunc("diffgossip_cluster_bootstrap_requests_sent_total", "",
		"Snapshot-shipped bootstrap state requests sent.", stat(func() uint64 { return n.stats.stateReqsSent }))
	reg.CounterFunc("diffgossip_cluster_bootstrap_requests_served_total", "",
		"Snapshot-shipped bootstrap state requests answered with a transfer.", stat(func() uint64 { return n.stats.stateReqsServed }))
	reg.CounterFunc("diffgossip_cluster_bootstraps_installed_total", "",
		"Bootstrap state transfers installed into the local service.", stat(func() uint64 { return n.stats.statesInstalled }))
	reg.CounterFunc("diffgossip_cluster_bootstrap_errors_total", "",
		"Bootstrap serves or installs that failed.", stat(func() uint64 { return n.stats.bootstrapErrs }))
	reg.GaugeFunc("diffgossip_store_hint_log_depth", "",
		"Entries currently buffered in the hinted-handoff queues.", func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(n.hintedEntriesLocked())
		})
	reg.GaugeMapFunc("diffgossip_cluster_members", "state",
		"Known cluster members by membership state (alive, suspect, dead).", func() map[string]float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			n.updateStatesLocked(n.now())
			out := map[string]float64{"alive": 0, "suspect": 0, "dead": 0}
			for _, m := range n.members {
				out[m.state.String()]++
			}
			return out
		})
	reg.GaugeMapFunc("diffgossip_cluster_peer_state", "peer",
		"Per-peer membership state: 0 = alive, 1 = suspect, 2 = dead.", func() map[string]float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			n.updateStatesLocked(n.now())
			out := make(map[string]float64, len(n.members))
			for id, m := range n.members {
				out[id] = float64(m.state)
			}
			return out
		})
	if n.hintLog != nil {
		appends, rewrites := n.hintLog.InstrumentMetrics()
		reg.Counter("diffgossip_store_hint_appends_total", "",
			"Hint batches durably appended to the hint log.", appends)
		reg.Counter("diffgossip_store_hint_rewrites_total", "",
			"Hint-log compactions after a replay drained delivered batches.", rewrites)
	}
}
