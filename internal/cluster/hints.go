package cluster

import (
	"sort"

	"diffgossip/internal/store"
	"diffgossip/internal/transport"
)

// hintQueue buffers framed entry batches owed to one unreachable peer, in
// enqueue order (which is ascending (origin, after) order per origin, so a
// full replay extends the peer's streams without gaps).
type hintQueue struct {
	hints     []store.Hint
	entries   int  // total entries across hints, bounded by Config.MaxHintEntries
	replaying bool // a replay loop is in flight; don't start a second
}

// hintFromBatch converts a framed KindEntries message into its durable form.
func hintFromBatch(peer string, msg transport.Message) store.Hint {
	h := store.Hint{Peer: peer, Origin: msg.Origin, After: msg.After,
		Entries: make([]store.HintEntry, len(msg.Entries))}
	for i, e := range msg.Entries {
		h.Entries[i] = store.HintEntry{
			OriginSeq: e.OriginSeq, Rater: e.Rater, Subject: e.Subject,
			Value: e.Value, UnixNano: e.UnixNano,
		}
	}
	return h
}

// batchFromHint converts a buffered hint back into its wire form.
func batchFromHint(h store.Hint) transport.Message {
	msg := transport.Message{Kind: transport.KindEntries, Origin: h.Origin, After: h.After,
		Entries: make([]transport.FeedbackEntry, len(h.Entries))}
	for i, e := range h.Entries {
		msg.Entries[i] = transport.FeedbackEntry{
			OriginSeq: e.OriginSeq, Rater: e.Rater, Subject: e.Subject,
			Value: e.Value, UnixNano: e.UnixNano,
		}
	}
	return msg
}

// enqueueHintLocked buffers one batch owed to peer, appending it to the
// durable hint log when one is configured. It reports whether the hint was
// accepted; past the per-peer bound the batch is dropped (and tallied) — the
// anti-entropy pull remains the correctness backstop, hints only shorten the
// catch-up. Caller holds n.mu.
func (n *Node) enqueueHintLocked(peer string, h store.Hint) bool {
	q := n.hintQ[peer]
	if q == nil {
		q = &hintQueue{}
		n.hintQ[peer] = q
	}
	if q.entries+len(h.Entries) > n.maxHintEntries {
		n.stats.hintsDropped += uint64(len(h.Entries))
		return false
	}
	q.hints = append(q.hints, h)
	q.entries += len(h.Entries)
	if n.hintLog != nil {
		if err := n.hintLog.Append(h); err != nil {
			n.stats.hintLogErrs++
		}
	}
	return true
}

// replayHints drains peer's hint queue in order, stopping at the first send
// failure (the peer may have gone down again; the remainder waits for its
// next sign of life). After a replay that delivered anything, the durable
// log is compacted so delivered batches are not replayed across a restart.
func (n *Node) replayHints(peer string) {
	n.mu.Lock()
	q := n.hintQ[peer]
	if q == nil || len(q.hints) == 0 || q.replaying {
		n.mu.Unlock()
		return
	}
	q.replaying = true
	n.mu.Unlock()

	delivered, entries := 0, 0
	for {
		n.mu.Lock()
		if len(q.hints) == 0 {
			break
		}
		h := q.hints[0]
		n.mu.Unlock()
		err := n.tr.Send(peer, batchFromHint(h))
		n.mu.Lock()
		n.stats.batchesSent++
		if err != nil {
			if ph := n.peerH[peer]; ph != nil {
				ph.lastSendErr = err.Error()
			}
			break
		}
		q.hints = q.hints[1:]
		q.entries -= len(h.Entries)
		n.stats.hintsReplayed += uint64(len(h.Entries))
		delivered++
		entries += len(h.Entries)
		n.mu.Unlock()
	}
	// Still holding n.mu from the loop's exit path.
	q.replaying = false
	if delivered > 0 && n.hintLog != nil {
		if err := n.hintLog.Rewrite(n.allHintsLocked()); err != nil {
			n.stats.hintLogErrs++
		}
	}
	n.mu.Unlock()
	if delivered > 0 {
		n.log.Info("replayed hints", "peer", peer, "batches", delivered, "entries", entries)
	}
}

// allHintsLocked flattens every queue for a durable-log rewrite: peers in
// sorted order, each queue in its replay order. Caller holds n.mu.
func (n *Node) allHintsLocked() []store.Hint {
	peers := make([]string, 0, len(n.hintQ))
	for p := range n.hintQ {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	var out []store.Hint
	for _, p := range peers {
		out = append(out, n.hintQ[p].hints...)
	}
	return out
}

// hintedEntriesLocked sums the entries currently buffered across all peers.
// Caller holds n.mu.
func (n *Node) hintedEntriesLocked() int {
	total := 0
	for _, q := range n.hintQ {
		total += q.entries
	}
	return total
}
