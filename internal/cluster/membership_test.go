package cluster

import (
	"path/filepath"
	"testing"

	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// logicalClock is the deterministic membership clock for manual driving:
// tests advance it explicitly, in abstract "ticks" (1 unit = 1ns as far as
// the thresholds are concerned).
type logicalClock struct{ t int64 }

func (c *logicalClock) now() int64 { return c.t }

// seedNode builds one manually driven node on the hub with the shared
// logical clock and tick-scale thresholds.
func seedNode(t *testing.T, hub *transport.Hub, name string, seeds []string, clk *logicalClock, svc *service.Service, inc uint64, hintPath string) (*Node, *transport.ChannelTransport) {
	t.Helper()
	ep, err := hub.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{
		Service:      svc,
		Transport:    ep,
		Peers:        seeds,
		Now:          clk.now,
		Incarnation:  inc,
		SuspectAfter: 10,
		DeadAfter:    30,
		HintPath:     hintPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd, ep
}

// memberState digs one member's state out of a node's stats ("" = unknown).
func memberState(nd *Node, id string) string {
	for _, m := range nd.Stats().Members {
		if m.ID == id {
			return m.State
		}
	}
	return ""
}

// TestSingleSeedTransitiveDiscovery: four nodes, three of which know only
// node-0, discover the full mesh from gossiped views — the no-static-topology
// contract.
func TestSingleSeedTransitiveDiscovery(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	names := []string{"node-0", "node-1", "node-2", "node-3"}
	nodes := make([]*Node, len(names))
	for i, nm := range names {
		var seeds []string
		if i > 0 {
			seeds = []string{"node-0"} // one seed for everyone but the seed itself
		}
		svc := newClusterService(t, g, 1, nm)
		nd, ep := seedNode(t, hub, nm, seeds, clk, svc, 1, "")
		t.Cleanup(func() { ep.Close() })
		nodes[i] = nd
	}
	for round := 0; round < 4; round++ {
		clk.t++
		for _, nd := range nodes {
			nd.Exchange()
		}
		for pass := 0; pass < 2; pass++ {
			for _, nd := range nodes {
				nd.Drain()
			}
		}
	}
	for i, nd := range nodes {
		st := nd.Stats()
		if len(st.Members) != len(names)-1 {
			t.Fatalf("node %d knows %d members, want %d: %+v", i, len(st.Members), len(names)-1, st.Members)
		}
		for _, m := range st.Members {
			if m.State != "alive" {
				t.Fatalf("node %d sees %s as %s after full exchange", i, m.ID, m.State)
			}
			if m.Heartbeat == 0 {
				t.Fatalf("node %d never saw a heartbeat from %s", i, m.ID)
			}
		}
	}
}

// TestSuspectDeadReviveLifecycle pins the failure-detector transitions on
// the logical clock: silence crosses SuspectAfter then DeadAfter, and any
// direct message — here a digest from the restarted peer with a higher
// incarnation — revives the member instantly.
func TestSuspectDeadReviveLifecycle(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	svcA := newClusterService(t, g, 1, "node-a")
	svcB := newClusterService(t, g, 1, "node-b")
	ndA, epA := seedNode(t, hub, "node-a", []string{"node-b"}, clk, svcA, 1, "")
	defer epA.Close()
	ndB, epB := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 1, "")

	ndA.Exchange()
	ndB.Exchange()
	ndA.Drain()
	ndB.Drain()
	if got := memberState(ndA, "node-b"); got != "alive" {
		t.Fatalf("after exchange, node-b is %q, want alive", got)
	}

	// node-b crashes; silence accumulates on the logical clock.
	epB.Close()
	ndB.Close()
	clk.t = 11 // ≥ SuspectAfter
	if got := memberState(ndA, "node-b"); got != "suspect" {
		t.Fatalf("at t=11, node-b is %q, want suspect", got)
	}
	clk.t = 31 // ≥ DeadAfter
	if got := memberState(ndA, "node-b"); got != "dead" {
		t.Fatalf("at t=31, node-b is %q, want dead", got)
	}
	degraded, reason := ndA.Degraded()
	if !degraded || reason == "" {
		t.Fatalf("sole peer dead but not degraded (%v, %q)", degraded, reason)
	}

	// node-b restarts with a higher incarnation and digests its seed: one
	// message re-admits it.
	ndB2, epB2 := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 2, "")
	defer epB2.Close()
	defer ndB2.Close()
	ndB2.Exchange()
	ndA.Drain()
	if got := memberState(ndA, "node-b"); got != "alive" {
		t.Fatalf("after restart digest, node-b is %q, want alive", got)
	}
	if degraded, _ := ndA.Degraded(); degraded {
		t.Fatal("still degraded after peer revival")
	}
}

// TestHintedHandoffReplay: entries owed to a dead peer buffer as hints and
// replay — in full, in order — on the peer's first sign of life.
func TestHintedHandoffReplay(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	svcA := newClusterService(t, g, 1, "node-a")
	svcB := newClusterService(t, g, 1, "node-b")
	ndA, epA := seedNode(t, hub, "node-a", []string{"node-b"}, clk, svcA, 1, "")
	defer epA.Close()
	ndB, epB := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 1, "")

	// One full exchange so node-a has node-b's watermarks cached (the push
	// cache is what hints are framed against).
	ndA.Exchange()
	ndB.Exchange()
	ndA.Drain()
	ndB.Drain()

	// node-b dies; node-a keeps accepting writes through the outage.
	epB.Close()
	ndB.Close()
	for i := 0; i < 5; i++ {
		if _, err := svcA.SubmitAt(1, 2+i, 0.5, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.t = 31 // node-b is dead by now
	ndA.Exchange()
	st := ndA.Stats()
	if st.HintedEntries != 5 {
		t.Fatalf("hinted entries = %d, want 5; stats %+v", st.HintedEntries, st)
	}

	// node-b restarts (same durable ledger — the service lived) and
	// announces itself; node-a must replay the hints without waiting for a
	// digest round-trip about the missing entries.
	ndB2, epB2 := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 2, "")
	defer epB2.Close()
	defer ndB2.Close()
	ndB2.Exchange()
	ndA.Drain() // receive b's digest → revive → replay hints
	ndB2.Drain()
	if got := svcB.ReplicationMark("node-a"); got != 5 {
		t.Fatalf("node-b's watermark for node-a = %d, want 5; a stats %+v", got, ndA.Stats())
	}
	st = ndA.Stats()
	if st.HintedEntries != 0 || st.HintsReplayed != 5 {
		t.Fatalf("after replay: queued=%d replayed=%d, want 0/5", st.HintedEntries, st.HintsReplayed)
	}
}

// TestHintQueueBounded: the per-peer buffer drops batches past
// MaxHintEntries and tallies them; the pull recovers the loss later, so the
// only contract here is the bound and the accounting.
func TestHintQueueBounded(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	svcA := newClusterService(t, g, 1, "node-a")
	svcB := newClusterService(t, g, 1, "node-b")
	epA, err := hub.Endpoint("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	ndA, err := New(Config{
		Service: svcA, Transport: epA, Peers: []string{"node-b"},
		Now: clk.now, SuspectAfter: 10, DeadAfter: 30,
		MaxBatch: 2, MaxHintEntries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ndB, epB := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 1, "")
	ndA.Exchange()
	ndB.Exchange()
	ndA.Drain()
	ndB.Drain()
	epB.Close()
	ndB.Close()
	for i := 0; i < 8; i++ {
		if _, err := svcA.SubmitAt(1, 2+i, 0.5, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.t = 31
	// Each exchange hints one batch of ≤2 entries; the queue caps at 4.
	for i := 0; i < 5; i++ {
		ndA.Exchange()
	}
	st := ndA.Stats()
	if st.HintedEntries != 4 {
		t.Fatalf("hinted entries = %d, want the 4-entry bound; stats %+v", st.HintedEntries, st)
	}
	if st.HintsDropped == 0 {
		t.Fatal("overflow batches were not tallied as dropped")
	}
}

// TestHintLogSurvivesRestart: with Config.HintPath set, hints buffered for a
// dead peer are reloaded by a restarted node and still replay.
func TestHintLogSurvivesRestart(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	hintPath := filepath.Join(t.TempDir(), "hints.jsonl")
	svcA := newClusterService(t, g, 1, "node-a")
	svcB := newClusterService(t, g, 1, "node-b")
	ndA, epA := seedNode(t, hub, "node-a", []string{"node-b"}, clk, svcA, 1, hintPath)
	ndB, epB := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 1, "")

	ndA.Exchange()
	ndB.Exchange()
	ndA.Drain()
	ndB.Drain()
	epB.Close()
	ndB.Close()
	for i := 0; i < 3; i++ {
		if _, err := svcA.SubmitAt(1, 2+i, 0.5, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.t = 31
	ndA.Exchange()
	if st := ndA.Stats(); st.HintedEntries != 3 {
		t.Fatalf("hinted entries = %d, want 3", st.HintedEntries)
	}

	// node-a restarts: same service and address, a fresh node reloading the
	// hint log.
	if err := ndA.Close(); err != nil {
		t.Fatal(err)
	}
	epA.Close()
	ndA2, epA2 := seedNode(t, hub, "node-a", []string{"node-b"}, clk, svcA, 2, hintPath)
	defer epA2.Close()
	defer ndA2.Close()
	if st := ndA2.Stats(); st.HintedEntries != 3 {
		t.Fatalf("reloaded hinted entries = %d, want 3", st.HintedEntries)
	}

	// node-b comes back too; the reloaded hints replay.
	ndB2, epB2 := seedNode(t, hub, "node-b", []string{"node-a"}, clk, svcB, 2, "")
	defer epB2.Close()
	defer ndB2.Close()
	ndB2.Exchange()
	ndA2.Drain()
	ndB2.Drain()
	if got := svcB.ReplicationMark("node-a"); got != 3 {
		t.Fatalf("node-b's watermark for node-a = %d, want 3", got)
	}
}

// TestNewValidatesMembershipConfig covers the new constructor errors.
func TestNewValidatesMembershipConfig(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	ep, err := hub.Endpoint("node-x")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	svc := newClusterService(t, g, 1, "node-x")
	if _, err := New(Config{Service: svc, Transport: ep, SuspectAfter: 10, DeadAfter: 5}); err == nil {
		t.Error("DeadAfter ≤ SuspectAfter accepted")
	}
	mismatched := newClusterService(t, g, 1, "someone-else")
	if _, err := New(Config{Service: mismatched, Transport: ep}); err == nil {
		t.Error("service origin ≠ transport address accepted")
	}
	if _, err := New(Config{Service: svc, Transport: ep, Peers: []string{"node-x"}}); err == nil {
		t.Error("self in peer list accepted")
	}
}

// TestDeadPeerProbeCadence: dead members stop receiving routine digests but
// still get the periodic probe.
func TestDeadPeerProbeCadence(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	clk := &logicalClock{}
	svcA := newClusterService(t, g, 1, "node-a")
	ndA, epA := seedNode(t, hub, "node-a", []string{"node-b"}, clk, svcA, 1, "")
	defer epA.Close()
	// node-b never existed on the hub: every digest to it fails, and after
	// DeadAfter it is dead.
	clk.t = 31
	before := ndA.Stats().DigestsSent
	for i := 0; i < 8; i++ {
		ndA.Exchange()
	}
	probes := ndA.Stats().DigestsSent - before
	if probes == 0 {
		t.Fatal("dead peer never probed")
	}
	if probes >= 8 {
		t.Fatalf("dead peer received %d digests in 8 exchanges — routine sends not suppressed", probes)
	}
}
