package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// newClusterService builds one replica's service: every replica shares the
// overlay and the base seed, with FixedEpochSeed so converged replicas serve
// bit-identical reputations regardless of their epoch counts. origin must be
// the replica's transport address (cluster.New enforces the match).
func newClusterService(t *testing.T, g *graph.Graph, shards int, origin string) *service.Service {
	t.Helper()
	svc, err := service.New(service.Config{
		Graph:          g,
		Params:         core.Params{Epsilon: 1e-6, Seed: 11},
		Shards:         shards,
		Replicate:      true,
		FixedEpochSeed: true,
		Origin:         origin,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hubCluster builds k manually driven nodes over one in-memory hub.
func hubCluster(t *testing.T, g *graph.Graph, k, shards int) ([]*service.Service, []*Node) {
	t.Helper()
	hub := transport.NewHub()
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d", i)
	}
	svcs := make([]*service.Service, k)
	nodes := make([]*Node, k)
	for i := 0; i < k; i++ {
		ep, err := hub.Endpoint(names[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		var peers []string
		for j, nm := range names {
			if j != i {
				peers = append(peers, nm)
			}
		}
		svcs[i] = newClusterService(t, g, shards, names[i])
		nodes[i], err = New(Config{Service: svcs[i], Transport: ep, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
	}
	return svcs, nodes
}

// converge runs synchronous anti-entropy rounds until every node holds the
// same watermarks (or the iteration bound trips).
func converge(t *testing.T, nodes []*Node) {
	t.Helper()
	for i := 0; i < 100; i++ {
		for _, nd := range nodes {
			nd.Exchange()
		}
		// Two passes: the first turns digests into entry batches, the
		// second applies batches that crossed mid-round.
		for pass := 0; pass < 2; pass++ {
			for _, nd := range nodes {
				nd.Drain()
			}
		}
		ref := nodes[0].Stats().Marks
		same := true
		for _, nd := range nodes[1:] {
			if !reflect.DeepEqual(ref, nd.Stats().Marks) {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	for _, nd := range nodes {
		t.Logf("%s marks: %v", nd.Self(), nd.Stats().Marks)
	}
	t.Fatal("cluster did not converge within the iteration bound")
}

// TestThreeNodeConvergence is the acceptance scenario: feedback submitted to
// any one node is readable from all nodes after anti-entropy + one epoch,
// with reputations bit-identical across nodes — and bit-identical to a
// standalone service that ingested everything directly.
func TestThreeNodeConvergence(t *testing.T) {
	const n = 48
	g := testGraph(t, n)
	svcs, nodes := hubCluster(t, g, 3, 3)

	// Every rater submits through its home node (rater mod 3); values come
	// from a seeded stream so the run is reproducible.
	solo := newClusterService(t, g, 3, "")
	vals := rng.New(99)
	for rater := 0; rater < n; rater++ {
		for k := 0; k < 3; k++ {
			subject := vals.Intn(n)
			if subject == rater {
				continue
			}
			v := vals.Float64()
			if _, err := svcs[rater%3].Submit(rater, subject, v); err != nil {
				t.Fatal(err)
			}
			if _, err := solo.Submit(rater, subject, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	converge(t, nodes)
	for i, svc := range svcs {
		if _, ran, err := svc.RunEpoch(); err != nil || !ran {
			t.Fatalf("node %d epoch: ran=%v err=%v", i, ran, err)
		}
	}
	if _, ran, err := solo.RunEpoch(); err != nil || !ran {
		t.Fatalf("solo epoch: ran=%v err=%v", ran, err)
	}

	views := make([]*service.View, len(svcs))
	for i, svc := range svcs {
		views[i] = svc.View()
	}
	soloView := solo.View()
	rated := 0
	for j := 0; j < n; j++ {
		want, err := soloView.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range views {
			got, err := v.Reputation(j)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("subject %d: node %d serves %v, standalone serves %v", j, i, got, want)
			}
			if v.Raters(j) != soloView.Raters(j) {
				t.Fatalf("subject %d: node %d rater count %d != %d", j, i, v.Raters(j), soloView.Raters(j))
			}
		}
		if soloView.Raters(j) > 0 {
			rated++
		}
	}
	if rated == 0 {
		t.Fatal("test degenerated: no subject was rated")
	}

	// Replication accounting: every node applied entries from both peers
	// and nothing was gapped on the reliable hub.
	for i, nd := range nodes {
		st := nd.Stats()
		if st.EntriesApplied == 0 {
			t.Fatalf("node %d applied no replicated entries: %+v", i, st)
		}
		if st.BatchesGapped != 0 {
			t.Fatalf("node %d saw gapped batches on a reliable transport: %+v", i, st)
		}
	}
}

// TestDuplicateAndGapHandling drives the apply path directly: re-delivered
// batches are idempotent, and a batch whose frame is ahead of the watermark
// is discarded whole.
func TestDuplicateAndGapHandling(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	ep, err := hub.Endpoint("node-0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	fake, err := hub.Endpoint("fake-peer")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()

	svc := newClusterService(t, g, 1, "node-0")
	node, err := New(Config{Service: svc, Transport: ep, Peers: []string{"fake-peer"}})
	if err != nil {
		t.Fatal(err)
	}

	batch := transport.Message{
		Kind:   transport.KindEntries,
		Origin: "fake-peer",
		After:  0,
		Entries: []transport.FeedbackEntry{
			{OriginSeq: 1, Rater: 1, Subject: 2, Value: 0.5},
			{OriginSeq: 2, Rater: 3, Subject: 4, Value: 0.6},
		},
	}
	for i := 0; i < 2; i++ { // deliver the same batch twice
		if err := fake.Send("node-0", batch); err != nil {
			t.Fatal(err)
		}
	}
	// A gapped batch: claims to extend the stream past seq 10.
	gap := transport.Message{
		Kind: transport.KindEntries, Origin: "fake-peer", After: 10,
		Entries: []transport.FeedbackEntry{{OriginSeq: 11, Rater: 5, Subject: 6, Value: 0.7}},
	}
	if err := fake.Send("node-0", gap); err != nil {
		t.Fatal(err)
	}
	if got := node.Drain(); got != 3 {
		t.Fatalf("drained %d messages, want 3", got)
	}
	st := node.Stats()
	if st.EntriesApplied != 2 || st.EntriesDuplicate != 2 || st.BatchesGapped != 1 {
		t.Fatalf("stats = %+v, want 2 applied / 2 duplicate / 1 gapped", st)
	}
	if got := st.Marks["fake-peer"]; got != 2 {
		t.Fatalf("watermark = %d, want 2 (gapped batch must not advance it)", got)
	}
	if svc.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", svc.Pending())
	}
}

// TestDigestAnswersOnlyMissing: a peer that is already caught up receives no
// entry batches.
func TestDigestAnswersOnlyMissing(t *testing.T) {
	g := testGraph(t, 16)
	_, nodes := hubCluster(t, g, 2, 1)
	svc0 := nodes[0]
	if _, err := svc0Svc(t, nodes[0]).Submit(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	converge(t, nodes)
	sent := svc0.Stats().BatchesSent
	// Another full exchange with nothing new: no batches move.
	for _, nd := range nodes {
		nd.Exchange()
	}
	for pass := 0; pass < 2; pass++ {
		for _, nd := range nodes {
			nd.Drain()
		}
	}
	if got := svc0.Stats().BatchesSent; got != sent {
		t.Fatalf("idle exchange sent %d new batches", got-sent)
	}
}

// svc0Svc digs the service back out of a node for test ergonomics.
func svc0Svc(t *testing.T, n *Node) *service.Service {
	t.Helper()
	return n.svc
}

// TestOneWayJoinStillReplicatesBothWays: only B lists A as a peer, yet
// feedback submitted to B must still reach A — B's digest shows A it is
// behind, and A reciprocates with its own digest, turning the one-way join
// into two-way replication.
func TestOneWayJoinStillReplicatesBothWays(t *testing.T) {
	g := testGraph(t, 16)
	hub := transport.NewHub()
	epA, err := hub.Endpoint("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := hub.Endpoint("node-b")
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	svcA, svcB := newClusterService(t, g, 1, "node-a"), newClusterService(t, g, 1, "node-b")
	nodeA, err := New(Config{Service: svcA, Transport: epA}) // A joins nobody
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := New(Config{Service: svcB, Transport: epB, Peers: []string{"node-a"}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := svcB.Submit(1, 2, 0.7); err != nil {
		t.Fatal(err)
	}
	// B digests A (the only configured edge); A sees B is ahead,
	// reciprocates, B answers with the entry, A applies it.
	nodeB.Exchange()
	for i := 0; i < 4; i++ {
		nodeA.Drain()
		nodeB.Drain()
	}
	if got := svcA.ReplicationMark("node-b"); got != 1 {
		t.Fatalf("A's watermark for B = %d, want 1 (reciprocal digest broken); A stats %+v", got, nodeA.Stats())
	}
	if svcA.Pending() != 1 {
		t.Fatalf("A pending = %d, want the replicated entry", svcA.Pending())
	}
}

// TestTCPClusterReplication runs a two-node cluster over real sockets in the
// asynchronous Start mode and waits for a submission on one node to become
// readable on the other.
func TestTCPClusterReplication(t *testing.T) {
	g := testGraph(t, 16)
	tr1, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr1.Close()
	tr2, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()

	svc1 := newClusterService(t, g, 1, tr1.Addr())
	svc2 := newClusterService(t, g, 1, tr2.Addr())
	n1, err := New(Config{Service: svc1, Transport: tr1, Peers: []string{tr2.Addr()}, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := New(Config{Service: svc2, Transport: tr2, Peers: []string{tr1.Addr()}, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n1.Start()
	n2.Start()
	defer n1.Close()
	defer n2.Close()

	if _, err := svc1.Submit(3, 7, 0.9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc2.ReplicationMarks()[tr1.Addr()] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated; node2 stats: %+v", n2.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ran, err := svc2.RunEpoch(); err != nil || !ran {
		t.Fatalf("epoch on replica: ran=%v err=%v", ran, err)
	}
	got, _, err := svc2.Reputation(7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.9 {
		t.Fatalf("replicated reputation = %v, want 0.9", got)
	}
	st := n2.Stats()
	if len(st.Peers) == 0 || st.Peers[0].LastSeenUnixNano == 0 {
		t.Fatalf("peer health never updated: %+v", st.Peers)
	}
}

// TestClusterRaceHammer runs a 3-node hub cluster fully asynchronously —
// ticker-driven exchanges, concurrent submitters, concurrent epochs — as a
// -race workout for the replication paths.
func TestClusterRaceHammer(t *testing.T) {
	const n = 32
	g := testGraph(t, n)
	hub := transport.NewHub()
	svcs := make([]*service.Service, 3)
	nodes := make([]*Node, 3)
	names := []string{"h0", "h1", "h2"}
	for i := range svcs {
		ep, err := hub.Endpoint(names[i])
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		var peers []string
		for j, nm := range names {
			if j != i {
				peers = append(peers, nm)
			}
		}
		svcs[i] = newClusterService(t, g, 4, names[i])
		nodes[i], err = New(Config{Service: svcs[i], Transport: ep, Peers: peers, Interval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].Start()
		defer nodes[i].Close()
	}

	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		go func(w int) {
			vals := rng.New(uint64(w + 1))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				rater := (vals.Intn(n/3))*3 + w // disjoint rater sets per node
				if rater >= n {
					continue
				}
				subject := vals.Intn(n)
				if subject == rater {
					continue
				}
				svcs[w].Submit(rater, subject, vals.Float64())
				if i%16 == 0 {
					svcs[w].RunEpoch()
				}
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	close(done)
	for _, nd := range nodes {
		nd.Close()
	}
	for i, nd := range nodes {
		if st := nd.Stats(); st.EntriesApplied == 0 {
			t.Fatalf("node %d never applied a replicated entry: %+v", i, st)
		}
	}
}
