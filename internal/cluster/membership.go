package cluster

import (
	"fmt"
	"sort"
	"time"

	"diffgossip/internal/transport"
)

// MemberState classifies a peer's liveness, inferred from how recently its
// (incarnation, heartbeat) pair advanced in this node's membership table.
type MemberState int

const (
	// MemberAlive means the member's liveness pair advanced within
	// Config.SuspectAfter (or it was learned of that recently).
	MemberAlive MemberState = iota
	// MemberSuspect means the pair has not advanced for Config.SuspectAfter:
	// the member still receives digests (it may merely be slow or briefly
	// partitioned) but counts against readiness.
	MemberSuspect
	// MemberDead means the pair has not advanced for Config.DeadAfter:
	// routine exchanges stop (a periodic probe remains), and entries owed to
	// the member buffer as hints for replay on its return.
	MemberDead
)

// String implements fmt.Stringer.
func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// member is one row of this node's membership table. The liveness pair
// (incarnation, heartbeat) is monotone for a live peer — its heartbeat
// advances every exchange it runs, its incarnation advances across restarts
// — so the pair stalling is exactly the failure signal, no matter how many
// gossip hops the observation travelled.
type member struct {
	id          string
	addr        string
	incarnation uint64
	heartbeat   uint64
	lastAdvance int64 // local clock when the pair last advanced (or the member was learned)
	state       MemberState
}

// viewLocked assembles the membership view gossiped on digests: self first,
// then every known member in id order. Caller holds n.mu.
func (n *Node) viewLocked() []transport.PeerView {
	view := make([]transport.PeerView, 0, len(n.members)+1)
	view = append(view, transport.PeerView{
		ID: n.self, Addr: n.self, Incarnation: n.selfInc, Heartbeat: n.selfHB,
	})
	for _, id := range n.memberIDsLocked() {
		m := n.members[id]
		view = append(view, transport.PeerView{
			ID: m.id, Addr: m.addr, Incarnation: m.incarnation, Heartbeat: m.heartbeat,
		})
	}
	return view
}

// memberIDsLocked returns every member id in sorted order — the
// deterministic iteration order for exchanges and views. Caller holds n.mu.
func (n *Node) memberIDsLocked() []string {
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// mergeViewLocked folds a gossiped view into the membership table: unknown
// peers are added (transitive discovery — this is how a node bootstrapped
// with one seed learns the whole cluster), and a row whose liveness pair is
// ahead of ours advances the member and refreshes its recency. It returns
// the ids of members the merge revived from dead, so the caller can replay
// their hints. Caller holds n.mu.
func (n *Node) mergeViewLocked(view []transport.PeerView, now int64) []string {
	var revived []string
	for _, pv := range view {
		if pv.ID == "" || pv.ID == n.self {
			continue
		}
		m := n.members[pv.ID]
		if m == nil {
			addr := pv.Addr
			if addr == "" {
				addr = pv.ID
			}
			n.members[pv.ID] = &member{
				id: pv.ID, addr: addr,
				incarnation: pv.Incarnation, heartbeat: pv.Heartbeat,
				lastAdvance: now, state: MemberAlive,
			}
			continue
		}
		if pv.Incarnation > m.incarnation ||
			(pv.Incarnation == m.incarnation && pv.Heartbeat > m.heartbeat) {
			m.incarnation, m.heartbeat = pv.Incarnation, pv.Heartbeat
			if pv.Addr != "" {
				m.addr = pv.Addr
			}
			m.lastAdvance = now
			if m.state == MemberDead {
				revived = append(revived, m.id)
				n.log.Info("peer revived", "peer", m.id, "via", "gossiped view")
			}
			m.state = MemberAlive
		}
	}
	return revived
}

// observeDirectLocked notes a message received directly from id — first-hand
// liveness evidence, refreshing recency even when the gossiped pair has not
// advanced (entries batches carry no view). Unknown senders join the table,
// which is what re-admits a restarted peer that still remembers us. It
// reports whether the member was dead until now. Caller holds n.mu.
func (n *Node) observeDirectLocked(id string, now int64) bool {
	if id == "" || id == n.self {
		return false
	}
	m := n.members[id]
	if m == nil {
		n.members[id] = &member{id: id, addr: id, lastAdvance: now, state: MemberAlive}
		return false
	}
	m.lastAdvance = now
	wasDead := m.state == MemberDead
	if wasDead {
		n.log.Info("peer revived", "peer", id, "via", "direct message")
	}
	m.state = MemberAlive
	return wasDead
}

// updateStatesLocked reclassifies every member from liveness-pair recency
// against the suspect/dead thresholds. Caller holds n.mu.
func (n *Node) updateStatesLocked(now int64) {
	for _, m := range n.members {
		idle := now - m.lastAdvance
		next := MemberAlive
		switch {
		case idle >= n.deadAfter:
			next = MemberDead
		case idle >= n.suspectAfter:
			next = MemberSuspect
		}
		if next != m.state {
			n.log.Info("peer state changed",
				"peer", m.id, "from", m.state.String(), "to", next.String(),
				"idle", time.Duration(idle).String())
			m.state = next
		}
	}
}

// Degraded reports whether this node should fail its readiness probe on
// membership grounds: a majority of its known peers are suspect or dead —
// the node is likely the one partitioned, so a load balancer should stop
// routing to it. A node with no known peers (standalone, or a seed waiting
// to be found) is not degraded.
func (n *Node) Degraded() (bool, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.updateStatesLocked(n.now())
	if len(n.members) == 0 {
		return false, ""
	}
	down := 0
	for _, m := range n.members {
		if m.state != MemberAlive {
			down++
		}
	}
	if down*2 > len(n.members) {
		return true, fmt.Sprintf("%d/%d peers suspect or dead", down, len(n.members))
	}
	return false, ""
}
