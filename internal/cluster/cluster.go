// Package cluster federates dgserve replicas: an anti-entropy layer that
// replicates the append-only feedback ledger between reputation services
// over transport.Transport — the in-memory channel hub for tests and
// simulations, TCP for deployment.
//
// # Protocol
//
// Replication is pull-based and rides the ledger's monotonic sequence
// numbers. Every entry belongs to exactly one origin stream — the node whose
// ledger first accepted it — and is globally identified by (origin,
// origin-seq). Each node keeps, per origin, the highest origin-seq it has
// applied (its watermark; for its own stream that is just the local ledger
// seq). An anti-entropy exchange is then two message kinds:
//
//	digest    A → B   "my watermarks are {origin: seq, …}"
//	entries   B → A   one batch per origin A trails on, each framed with
//	                  (origin, after): the batch contiguously extends
//	                  origin's stream past seq `after`
//
// B answers a digest only with entries A is missing; A applies a batch only
// if its watermark for that origin is ≥ the batch's `after` frame (a lower
// watermark means an earlier batch was lost — the batch is discarded and the
// next digest re-pulls from the true watermark). Application is idempotent
// (store.Ledger.AppendReplicated skips entries at or below the watermark),
// so duplicate delivery, crashed-and-restarted peers and overlapping pulls
// are all harmless. Replicated entries enter the service's shard-aware
// ingest path like local submissions and fold at the next epoch.
//
// # Convergence
//
// Entries of one origin apply in origin-seq order on every node, and entries
// of different (rater, subject) cells commute under trust.Matrix.Set, so all
// nodes converge to the same trust state whenever each rater's stream enters
// the cluster through one home node (the natural deployment: a client
// sticks to its server). With service.Config.FixedEpochSeed set, a node's
// published reputations are a pure function of that folded state — so
// converged nodes serve bit-identical reputations, no matter how many
// epochs each ran or in what batches the entries arrived. Concurrent writes
// to the same cell through different nodes resolve in per-node arrival
// order; see docs/ARCHITECTURE.md for the contract and its planned
// last-writer-wins tightening.
//
// # Modes
//
// Start launches the asynchronous production form: a receive loop draining
// the transport inbox plus, with Config.Interval > 0, a digest ticker. For
// deterministic tests and the scenario engine, skip Start and drive the node
// manually with Exchange (send digests) and Drain (synchronously process
// everything queued); single-threaded driving makes whole-cluster runs
// replay bit-identically.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// Config parameterises a cluster node.
type Config struct {
	// Service is the reputation service this node replicates; it must have
	// been built with service.Config.Replicate (and, for bit-identical
	// cross-node reads, FixedEpochSeed). Required.
	Service *service.Service
	// Transport carries the anti-entropy messages; its address is the node's
	// origin id, so deployments must bind stable addresses (origin ids are
	// written into peers' ledgers) AND keep the service's ledger durable
	// across restarts — a reset ledger reuses origin seqs peers have
	// already marked applied, and its new entries would be silently dropped
	// cluster-wide (cmd/dgserve enforces -data for this reason). Required;
	// the node never closes it.
	Transport transport.Transport
	// Peers are the other nodes' transport addresses (static membership).
	Peers []string
	// Interval is the digest ticker period in Start mode. 0 disables the
	// ticker: digests then go out only via Exchange — typically the epoch
	// scheduler's pre-fold poke (service.Replicator) or a test driver. Note
	// an Exchange only initiates pulls; the replies land asynchronously on
	// the receive loop, so a pre-fold poke feeds the next epoch, not the
	// one it precedes — run the ticker faster than the epoch interval when
	// replication lag matters.
	Interval time.Duration
	// MaxBatch caps the entries per KindEntries message (default 256).
	// Larger backlogs stream across successive digest exchanges.
	MaxBatch int
}

// Node is one cluster member: the replication agent gluing a reputation
// service to the transport. Exchange, Drain and Stats are safe for
// concurrent use; a node is driven either by Start (asynchronous) or by an
// external single-threaded Exchange/Drain loop, never both.
type Node struct {
	svc      *service.Service
	tr       transport.Transport
	self     string
	peers    []string
	maxBatch int
	interval time.Duration

	mu    sync.Mutex
	peerH map[string]*peerHealth

	stats struct {
		digestsSent, digestsRecv   uint64
		batchesSent, batchesRecv   uint64
		applied, duplicate, gapped uint64
	}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type peerHealth struct {
	lastSeen    int64 // unix nanos of the last message received
	lastSendErr string
}

// New builds a cluster node over an already-listening transport. The node's
// origin id is the transport address.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: nil service")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: nil transport")
	}
	if cfg.Service.ReplicationMarks() == nil {
		// EnableReplication leaves a non-nil (possibly empty) mark map; nil
		// means the service was built without Config.Replicate.
		return nil, fmt.Errorf("cluster: service was not built with Config.Replicate")
	}
	n := &Node{
		svc:      cfg.Service,
		tr:       cfg.Transport,
		self:     cfg.Transport.Addr(),
		peers:    append([]string(nil), cfg.Peers...),
		maxBatch: cfg.MaxBatch,
		interval: cfg.Interval,
		peerH:    make(map[string]*peerHealth),
		stop:     make(chan struct{}),
	}
	if n.maxBatch <= 0 {
		n.maxBatch = 256
	}
	for _, p := range n.peers {
		if p == n.self {
			return nil, fmt.Errorf("cluster: peer list contains self (%s)", p)
		}
		n.peerH[p] = &peerHealth{}
	}
	return n, nil
}

// Self returns this node's origin id (its transport address).
func (n *Node) Self() string { return n.self }

// marks assembles the digest payload: this node's watermark for every origin
// stream it holds anything of, keyed by origin id (its own stream under its
// own id). Zero watermarks are omitted — an absent key reads as 0 on the
// receiving side, and canonical digests make cross-node convergence a plain
// map comparison.
func (n *Node) marks() map[string]uint64 {
	out := n.svc.ReplicationMarks()
	if out == nil {
		out = make(map[string]uint64)
	}
	if s := n.svc.LocalStreamMark(); s > 0 {
		out[n.self] = s
	}
	return out
}

// Exchange sends one digest to every peer — the pull half of anti-entropy.
// Send failures are recorded per peer (see Stats) and never abort the round:
// an unreachable peer simply catches up on a later exchange.
func (n *Node) Exchange() {
	digest := n.marks()
	for _, p := range n.peers {
		err := n.tr.Send(p, transport.Message{Kind: transport.KindDigest, Watermarks: digest})
		n.mu.Lock()
		n.stats.digestsSent++
		if h := n.peerH[p]; h != nil {
			if err != nil {
				h.lastSendErr = err.Error()
			} else {
				h.lastSendErr = ""
			}
		}
		n.mu.Unlock()
	}
}

// Drain synchronously processes every message currently queued on the
// transport inbox and returns how many it handled. It never blocks waiting
// for more — the deterministic driving mode for tests and the scenario
// engine (call Exchange on every node, then Drain on every node until the
// cluster quiesces).
func (n *Node) Drain() int {
	count := 0
	for {
		select {
		case msg, ok := <-n.tr.Inbox():
			if !ok {
				return count
			}
			n.handle(msg)
			count++
		default:
			return count
		}
	}
}

// Start launches the asynchronous mode: a goroutine draining the inbox and,
// with Config.Interval > 0, a digest ticker. Close stops both.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-n.stop:
				return
			case msg, ok := <-n.tr.Inbox():
				if !ok {
					return
				}
				n.handle(msg)
			}
		}
	}()
	if n.interval > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTicker(n.interval)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.C:
					n.Exchange()
				}
			}
		}()
	}
}

// Close stops the Start goroutines. It does not close the transport (the
// caller owns it) and is a no-op for manually driven nodes.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	return nil
}

// handle dispatches one inbound message.
func (n *Node) handle(msg transport.Message) {
	n.mu.Lock()
	h := n.peerH[msg.From]
	if h == nil {
		h = &peerHealth{}
		n.peerH[msg.From] = h
	}
	h.lastSeen = time.Now().UnixNano()
	n.mu.Unlock()

	switch msg.Kind {
	case transport.KindDigest:
		n.handleDigest(msg)
	case transport.KindEntries:
		n.handleEntries(msg)
	default:
		// Not a cluster message; the replication transport is dedicated, so
		// anything else is a peer bug — ignore rather than crash.
	}
}

// handleDigest answers a peer's watermark digest with one entries batch per
// origin stream the peer trails on, capped at MaxBatch entries each; deeper
// backlogs continue on the peer's next digest. When the digest shows the
// *sender* ahead instead, one digest goes back to it — so replication is
// two-way on any connected join graph, even if only one side lists the
// other as a peer. The reciprocal fires only while strictly behind, so it
// cannot ping-pong once the streams agree.
func (n *Node) handleDigest(msg transport.Message) {
	n.mu.Lock()
	n.stats.digestsRecv++
	n.mu.Unlock()

	mine := n.marks()
	behind := false
	for o, theirs := range msg.Watermarks {
		if o != n.self && theirs > mine[o] {
			behind = true
			break
		}
	}
	if behind {
		err := n.tr.Send(msg.From, transport.Message{Kind: transport.KindDigest, Watermarks: mine})
		n.mu.Lock()
		n.stats.digestsSent++
		if h := n.peerH[msg.From]; h != nil && err != nil {
			h.lastSendErr = err.Error()
		}
		n.mu.Unlock()
	}
	// Deterministic origin order keeps manually driven clusters replayable.
	origins := make([]string, 0, len(mine))
	for o := range mine {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		theirs := msg.Watermarks[o]
		if mine[o] <= theirs {
			continue
		}
		streamKey := o
		if o == n.self {
			streamKey = "" // the ledger keys the local stream as ""
		}
		ents := n.svc.ReplicationEntriesSince(streamKey, theirs, n.maxBatch)
		if len(ents) == 0 {
			continue
		}
		batch := transport.Message{
			Kind:    transport.KindEntries,
			Origin:  o,
			After:   theirs,
			Entries: make([]transport.FeedbackEntry, len(ents)),
		}
		for i, fb := range ents {
			oseq := fb.OriginSeq
			if streamKey == "" {
				oseq = fb.Seq // local entries carry their seq as the origin seq
			}
			batch.Entries[i] = transport.FeedbackEntry{
				OriginSeq: oseq,
				Rater:     fb.Rater,
				Subject:   fb.Subject,
				Value:     fb.Value,
				UnixNano:  fb.UnixNano,
			}
		}
		err := n.tr.Send(msg.From, batch)
		n.mu.Lock()
		n.stats.batchesSent++
		if h := n.peerH[msg.From]; h != nil && err != nil {
			h.lastSendErr = err.Error()
		}
		n.mu.Unlock()
	}
}

// handleEntries applies one replicated batch in order. A batch whose After
// frame is above this node's watermark for the origin is discarded whole —
// an earlier batch was lost in transit, and applying this one would leave a
// permanent hole in the stream; the next digest exchange re-pulls from the
// true watermark. Entries at or below the watermark are duplicates and skip
// for free.
func (n *Node) handleEntries(msg transport.Message) {
	n.mu.Lock()
	n.stats.batchesRecv++
	n.mu.Unlock()
	if msg.Origin == "" || msg.Origin == n.self {
		return // malformed, or our own stream echoed back
	}
	mark := n.svc.ReplicationMark(msg.Origin)
	if msg.After > mark {
		n.mu.Lock()
		n.stats.gapped++
		n.mu.Unlock()
		return
	}
	for _, e := range msg.Entries {
		applied, err := n.svc.ReplicatedSubmit(msg.Origin, e.OriginSeq, e.Rater, e.Subject, e.Value, e.UnixNano)
		n.mu.Lock()
		if err != nil {
			// Validation or WAL I/O failure: surface on the peer record and
			// stop the batch — the stream re-pulls from the watermark, so
			// nothing is skipped.
			if h := n.peerH[msg.From]; h != nil {
				h.lastSendErr = fmt.Sprintf("apply %s/%d: %v", msg.Origin, e.OriginSeq, err)
			}
			n.mu.Unlock()
			return
		}
		if applied {
			n.stats.applied++
		} else {
			n.stats.duplicate++
		}
		n.mu.Unlock()
	}
}

// PeerStat is one peer's health entry in Stats.
type PeerStat struct {
	// Addr is the peer's transport address.
	Addr string `json:"addr"`
	// LastSeenUnixNano is when this node last received any message from the
	// peer (0 = never).
	LastSeenUnixNano int64 `json:"last_seen_unix_nano,omitempty"`
	// LastErr is the most recent send or apply error involving this peer
	// (empty = healthy).
	LastErr string `json:"last_err,omitempty"`
}

// Stats is a point-in-time observation of the replication layer: this node's
// watermarks, per-peer health, and the exchange counters.
type Stats struct {
	// Self is this node's origin id.
	Self string `json:"self"`
	// Marks maps every origin stream this node holds to its watermark.
	Marks map[string]uint64 `json:"marks"`
	// Peers lists configured peers (plus any address that has messaged this
	// node), in address order.
	Peers []PeerStat `json:"peers"`
	// DigestsSent/DigestsReceived and BatchesSent/BatchesReceived count the
	// anti-entropy messages exchanged.
	DigestsSent     uint64 `json:"digests_sent"`
	DigestsReceived uint64 `json:"digests_received"`
	BatchesSent     uint64 `json:"batches_sent"`
	BatchesReceived uint64 `json:"batches_received"`
	// EntriesApplied counts replicated entries folded in; EntriesDuplicate
	// counts idempotent re-deliveries skipped; BatchesGapped counts batches
	// discarded because an earlier one was lost.
	EntriesApplied   uint64 `json:"entries_applied"`
	EntriesDuplicate uint64 `json:"entries_duplicate"`
	BatchesGapped    uint64 `json:"batches_gapped,omitempty"`
}

// Stats assembles the current replication statistics.
func (n *Node) Stats() Stats {
	st := Stats{Self: n.self, Marks: n.marks()}
	n.mu.Lock()
	defer n.mu.Unlock()
	st.DigestsSent = n.stats.digestsSent
	st.DigestsReceived = n.stats.digestsRecv
	st.BatchesSent = n.stats.batchesSent
	st.BatchesReceived = n.stats.batchesRecv
	st.EntriesApplied = n.stats.applied
	st.EntriesDuplicate = n.stats.duplicate
	st.BatchesGapped = n.stats.gapped
	addrs := make([]string, 0, len(n.peerH))
	for a := range n.peerH {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		h := n.peerH[a]
		st.Peers = append(st.Peers, PeerStat{Addr: a, LastSeenUnixNano: h.lastSeen, LastErr: h.lastSendErr})
	}
	return st
}

var _ service.Replicator = (*Node)(nil)
