// Package cluster federates dgserve replicas: an anti-entropy layer that
// replicates the append-only feedback ledger between reputation services
// over transport.Transport — the in-memory channel hub for tests and
// simulations, TCP for deployment.
//
// # Protocol
//
// Replication is pull-based and rides the ledger's monotonic sequence
// numbers. Every entry belongs to exactly one origin stream — the node whose
// ledger first accepted it — and is globally identified by (origin,
// origin-seq). Each node keeps, per origin, the highest origin-seq it has
// applied (its watermark; for its own stream that is just the local ledger
// seq). An anti-entropy exchange is then two message kinds:
//
//	digest    A → B   "my watermarks are {origin: seq, …}"
//	entries   B → A   one batch per origin A trails on, each framed with
//	                  (origin, after): the batch contiguously extends
//	                  origin's stream past seq `after`
//
// B answers a digest only with entries A is missing; A applies a batch only
// if its watermark for that origin is ≥ the batch's `after` frame (a lower
// watermark means an earlier batch was lost — the batch is discarded and the
// next digest re-pulls from the true watermark). Application is idempotent
// (store.Ledger.AppendReplicated skips entries at or below the watermark),
// so duplicate delivery, crashed-and-restarted peers and overlapping pulls
// are all harmless. Replicated entries enter the service's shard-aware
// ingest path like local submissions and fold at the next epoch.
//
// On top of the pull, each node keeps a per-peer cache of the watermarks it
// last saw in that peer's digests and eagerly *pushes* new entries past the
// cached marks on every exchange — push-pull anti-entropy. The pull remains
// the correctness backstop (a lost push is re-pulled from the true
// watermark); the push cuts convergence from two digest round-trips to one
// send, and is what turns an unreachable peer into buffered work — see
// hinted handoff below.
//
// # Membership
//
// Digests piggyback a membership view: every peer this node knows of, with
// the freshest (incarnation, heartbeat) liveness pair it has observed
// (transport.PeerView). Merging views gives transitive discovery — a node
// bootstrapped with a single seed learns the whole cluster — and the pair's
// advance (or stall) drives a per-peer state machine: alive → suspect after
// Config.SuspectAfter without advance → dead after Config.DeadAfter.
// Suspect peers still exchange; dead peers stop receiving routine digests
// (a periodic probe remains) and their owed entries buffer as hints. Any
// message from a peer — or a higher liveness pair gossiped about it — makes
// it alive again with no operator action; a restarted peer announces a
// higher incarnation, so its pair advances past every stale observation.
//
// # Hinted handoff
//
// When a push to a peer fails, or the peer is dead at exchange time, the
// framed batch joins a bounded per-peer hint queue (durable in a JSON-lines
// log next to the WAL when Config.HintPath is set) and the cached watermark
// advances so the next exchange hints the *next* chunk instead of this one
// again. On the peer's first sign of life the queue replays in order. A
// full queue drops new batches (tallied in Stats) — the pull recovers them
// — and a replayed batch the peer already has is discarded by the normal
// gap/duplicate rules, so hints are pure fast-path: they shorten a
// recovering peer's catch-up without adding correctness obligations.
//
// # Convergence
//
// Entries of one origin apply in origin-seq order on every node, and every
// entry carries the (timestamp, origin, origin-seq) tag under which the
// service resolves same-cell conflicts — a total order, applied at fold
// time, so any interleaving of streams folds to the same trust state on
// every node regardless of which node each write entered through. With
// service.Config.FixedEpochSeed set, published reputations are a pure
// function of that folded state — converged nodes serve bit-identical
// reputations, no matter how many epochs each ran, in what batches the
// entries arrived, or how clients were routed. See docs/ARCHITECTURE.md
// "Cross-node convergence" for the contract and its pinning tests.
//
// # Modes
//
// Start launches the asynchronous production form: a receive loop draining
// the transport inbox plus, with Config.Interval > 0, a digest ticker. For
// deterministic tests and the scenario engine, skip Start and drive the node
// manually with Exchange (send digests) and Drain (synchronously process
// everything queued); single-threaded driving makes whole-cluster runs
// replay bit-identically.
package cluster

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"diffgossip/internal/service"
	"diffgossip/internal/store"
	"diffgossip/internal/transport"
)

// Config parameterises a cluster node.
type Config struct {
	// Service is the reputation service this node replicates; it must have
	// been built with service.Config.Replicate (and, for bit-identical
	// cross-node reads, FixedEpochSeed). Required.
	Service *service.Service
	// Transport carries the anti-entropy messages; its address is the node's
	// origin id, so deployments must bind stable addresses (origin ids are
	// written into peers' ledgers) AND keep the service's ledger durable
	// across restarts — a reset ledger reuses origin seqs peers have
	// already marked applied, and its new entries would be silently dropped
	// cluster-wide (cmd/dgserve enforces -data for this reason). Required;
	// the node never closes it.
	Transport transport.Transport
	// Peers seeds the membership table with other nodes' transport
	// addresses. One reachable seed suffices: the rest of the cluster is
	// discovered transitively from gossiped views. An empty list is valid
	// for the first node of a cluster — it waits to be discovered.
	Peers []string
	// Interval is the digest ticker period in Start mode. 0 disables the
	// ticker: digests then go out only via Exchange — typically the epoch
	// scheduler's pre-fold poke (service.Replicator) or a test driver. Note
	// an Exchange only initiates pulls; the replies land asynchronously on
	// the receive loop, so a pre-fold poke feeds the next epoch, not the
	// one it precedes — run the ticker faster than the epoch interval when
	// replication lag matters.
	Interval time.Duration
	// MaxBatch caps the entries per KindEntries message (default 256).
	// Larger backlogs stream across successive digest exchanges.
	MaxBatch int
	// Incarnation is this process's liveness generation. It must increase
	// across restarts of the same node (cmd/dgserve derives it from the
	// boot wall-clock) so peers' stale observations of the previous run
	// cannot outrank the new one. 0 defaults to 1 — fine for tests that
	// never restart a node.
	Incarnation uint64
	// Now supplies the local clock (unix nanoseconds) for membership
	// recency. Nil defaults to time.Now; deterministic drivers (the
	// scenario engine) inject a logical clock so suspect/dead transitions
	// replay bit-identically.
	Now func() int64
	// SuspectAfter and DeadAfter are the failure-detection thresholds: a
	// member whose liveness pair has not advanced for SuspectAfter is
	// suspect, for DeadAfter dead. Zero defaults to 5× and 15× Interval
	// (10s/30s when Interval is 0). DeadAfter must exceed SuspectAfter.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// MaxHintEntries bounds the hinted-handoff buffer per dead peer, in
	// entries (default 4096). Batches past the bound are dropped and
	// recovered by the anti-entropy pull when the peer returns.
	MaxHintEntries int
	// HintPath, when set, makes the hint queues durable: a JSON-lines log
	// (store.HintLog) appended on enqueue and compacted after replay, so
	// entries owed to a dead peer survive a restart of this node. Empty
	// keeps hints in memory only.
	HintPath string
	// TrimEvery, when > 0, trims the in-memory replication history every
	// TrimEvery-th exchange: superseded entries that every known member's
	// watermark has passed are dropped (cell winners and per-stream heads
	// are always retained), bounding cluster-mode memory by live state plus
	// peer lag instead of lifetime traffic. Trimming waits until a digest
	// has been seen from every member — a long-dead member stalls trimming
	// rather than risking entries it may still need. 0 disables trimming.
	TrimEvery int
	// BootstrapLag, when > 0, enables requesting snapshot-shipped bootstrap:
	// on receiving a digest, a node that is fresh (empty ledger) or trails
	// the cluster by more than BootstrapLag entries in total asks the sender
	// for a full state transfer (shard segments plus the retained ledger
	// suffix) instead of pulling origin streams entry by entry. 0 disables
	// requesting; every node always serves state requests it receives.
	BootstrapLag uint64
	// Logger receives the node's structured log records: peer state
	// transitions and hint replays at Info, send failures at Debug. Nil
	// discards everything — the default for library use, so tests and the
	// scenario engine stay quiet (cmd/dgserve passes obs.Logger("cluster")).
	Logger *slog.Logger
}

// Node is one cluster member: the replication agent gluing a reputation
// service to the transport. Exchange, Drain and Stats are safe for
// concurrent use; a node is driven either by Start (asynchronous) or by an
// external single-threaded Exchange/Drain loop, never both.
type Node struct {
	svc      *service.Service
	tr       transport.Transport
	self     string
	maxBatch int
	interval time.Duration

	now            func() int64
	suspectAfter   int64 // nanos of the local clock
	deadAfter      int64
	maxHintEntries int
	trimEvery      int
	bootstrapLag   uint64
	log            *slog.Logger

	mu    sync.Mutex
	peerH map[string]*peerHealth
	// Membership: this node's liveness pair plus the table of every peer it
	// knows of (seeded from Config.Peers, grown by view merges).
	selfInc   uint64
	selfHB    uint64
	exchanges uint64 // exchange ticks, for the dead-probe cadence
	members   map[string]*member
	// ackMark caches, per peer, the watermarks it last advertised —
	// authoritative on every digest received from it, advanced
	// optimistically when entries are pushed or hinted to it. The eager
	// push sends only what ackMark says the peer is missing.
	ackMark map[string]map[string]uint64
	// hintQ buffers batches owed to unreachable peers; hintLog (nil when
	// Config.HintPath is empty, guarded by mu like the queues) makes them
	// durable.
	hintQ   map[string]*hintQueue
	hintLog *store.HintLog
	// bootstrapReqAt is n.exchanges+1 at the moment an outstanding state
	// request went out (0 = none); it rate-limits re-requests and gates
	// KindState handling to solicited transfers.
	bootstrapReqAt uint64

	stats struct {
		digestsSent, digestsRecv   uint64
		batchesSent, batchesRecv   uint64
		applied, duplicate, gapped uint64
		hintsDropped               uint64
		hintsReplayed              uint64
		hintLogErrs                uint64
		histTrims                  uint64
		histTrimmed                uint64
		stateReqsSent              uint64
		stateReqsServed            uint64
		statesInstalled            uint64
		bootstrapErrs              uint64
	}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type peerHealth struct {
	lastSeen    int64 // unix nanos of the last message received
	lastSendErr string
}

// New builds a cluster node over an already-listening transport. The node's
// origin id is the transport address; the service must carry the same id as
// its Config.Origin, or the LWW tags this node computes for local entries
// would disagree with the tags peers compute for their replicated copies.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: nil service")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: nil transport")
	}
	if cfg.Service.ReplicationMarks() == nil {
		// EnableReplication leaves a non-nil (possibly empty) mark map; nil
		// means the service was built without Config.Replicate.
		return nil, fmt.Errorf("cluster: service was not built with Config.Replicate")
	}
	if got, want := cfg.Service.Origin(), cfg.Transport.Addr(); got != want {
		return nil, fmt.Errorf("cluster: service origin %q != transport address %q — set service.Config.Origin to the cluster address so LWW tags agree across replicas", got, want)
	}
	n := &Node{
		svc:            cfg.Service,
		tr:             cfg.Transport,
		self:           cfg.Transport.Addr(),
		maxBatch:       cfg.MaxBatch,
		interval:       cfg.Interval,
		now:            cfg.Now,
		maxHintEntries: cfg.MaxHintEntries,
		trimEvery:      cfg.TrimEvery,
		bootstrapLag:   cfg.BootstrapLag,
		selfInc:        cfg.Incarnation,
		peerH:          make(map[string]*peerHealth),
		members:        make(map[string]*member),
		ackMark:        make(map[string]map[string]uint64),
		hintQ:          make(map[string]*hintQueue),
		log:            cfg.Logger,
		stop:           make(chan struct{}),
	}
	if n.log == nil {
		n.log = slog.New(slog.DiscardHandler)
	}
	if n.maxBatch <= 0 {
		n.maxBatch = 256
	}
	if n.maxHintEntries <= 0 {
		n.maxHintEntries = 4096
	}
	if n.selfInc == 0 {
		n.selfInc = 1
	}
	if n.now == nil {
		n.now = func() int64 { return time.Now().UnixNano() }
	}
	suspect, dead := cfg.SuspectAfter, cfg.DeadAfter
	if suspect == 0 {
		if cfg.Interval > 0 {
			suspect = 5 * cfg.Interval
		} else {
			suspect = 10 * time.Second
		}
	}
	if dead == 0 {
		dead = 3 * suspect
	}
	if dead <= suspect {
		return nil, fmt.Errorf("cluster: DeadAfter (%v) must exceed SuspectAfter (%v)", dead, suspect)
	}
	n.suspectAfter, n.deadAfter = int64(suspect), int64(dead)
	boot := n.now()
	for _, p := range cfg.Peers {
		if p == n.self {
			return nil, fmt.Errorf("cluster: peer list contains self (%s)", p)
		}
		n.peerH[p] = &peerHealth{}
		n.members[p] = &member{id: p, addr: p, lastAdvance: boot, state: MemberAlive}
	}
	if cfg.HintPath != "" {
		hl, buffered, err := store.OpenHintLog(cfg.HintPath)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		n.hintLog = hl
		for _, h := range buffered {
			q := n.hintQ[h.Peer]
			if q == nil {
				q = &hintQueue{}
				n.hintQ[h.Peer] = q
			}
			q.hints = append(q.hints, h)
			q.entries += len(h.Entries)
		}
	}
	return n, nil
}

// Self returns this node's origin id (its transport address).
func (n *Node) Self() string { return n.self }

// marks assembles the digest payload: this node's watermark for every origin
// stream it holds anything of, keyed by origin id (its own stream under its
// own id). Zero watermarks are omitted — an absent key reads as 0 on the
// receiving side, and canonical digests make cross-node convergence a plain
// map comparison.
func (n *Node) marks() map[string]uint64 {
	out := n.svc.ReplicationMarks()
	if out == nil {
		out = make(map[string]uint64)
	}
	if s := n.svc.LocalStreamMark(); s > 0 {
		out[n.self] = s
	}
	return out
}

// deadProbeEvery is the cadence (in exchange ticks) at which dead members
// still receive a digest — the cheap probe that notices a peer which came
// back without remembering us. The TCP transport's dial backoff keeps even
// these probes from hammering a host that is really gone.
const deadProbeEvery = 4

// Exchange runs one anti-entropy tick: advance this node's heartbeat,
// reclassify members, send a digest (with the membership view) to every
// non-dead member — plus a periodic probe to dead ones — and eagerly push
// entries past each peer's cached watermarks, buffering batches for
// unreachable peers as hints. Send failures are recorded per peer (see
// Stats) and never abort the round: an unreachable peer catches up on a
// later exchange or from its hint queue.
func (n *Node) Exchange() {
	digest := n.marks()
	n.mu.Lock()
	n.selfHB++
	now := n.now()
	n.updateStatesLocked(now)
	n.exchanges++
	tick := n.exchanges
	probe := tick%deadProbeEvery == 0
	view := n.viewLocked()
	ids := n.memberIDsLocked()
	states := make(map[string]MemberState, len(ids))
	for _, id := range ids {
		states[id] = n.members[id].state
	}
	n.mu.Unlock()

	for _, p := range ids {
		if states[p] == MemberDead && !probe {
			continue
		}
		err := n.tr.Send(p, transport.Message{Kind: transport.KindDigest, Watermarks: digest, View: view})
		n.mu.Lock()
		n.stats.digestsSent++
		n.recordSendLocked(p, err)
		n.mu.Unlock()
	}
	n.pushEntries(digest, ids, states)
	if n.trimEvery > 0 && tick%uint64(n.trimEvery) == 0 {
		n.trimRetainedHistory()
	}
}

// pushEntries is the eager half of push-pull anti-entropy: for every member
// whose digest we have seen (the ackMark cache), send up to one batch per
// origin stream the cache says it is missing. Successful sends advance the
// cache optimistically; failed sends — and dead members, which are not sent
// to at all — buffer the batch as a hint and advance the cache so the next
// exchange hints the following chunk. A cache that ran ahead of reality is
// corrected by the peer's next digest (and the batch it gap-discards is
// re-pulled), so optimism never loses entries.
func (n *Node) pushEntries(digest map[string]uint64, ids []string, states map[string]MemberState) {
	origins := make([]string, 0, len(digest))
	for o := range digest {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, p := range ids {
		n.mu.Lock()
		known := n.ackMark[p] != nil
		n.mu.Unlock()
		if !known {
			continue // never seen p's digest: don't guess what it needs
		}
		for _, o := range origins {
			if o == p {
				continue // p owns that stream; it cannot be missing it
			}
			n.mu.Lock()
			after := n.ackMark[p][o]
			n.mu.Unlock()
			if digest[o] <= after {
				continue
			}
			batch, ok := n.batchFor(o, after)
			if !ok {
				continue
			}
			last := batch.Entries[len(batch.Entries)-1].OriginSeq
			if states[p] == MemberDead {
				n.mu.Lock()
				if n.enqueueHintLocked(p, hintFromBatch(p, batch)) && n.ackMark[p] != nil {
					n.ackMark[p][o] = last
				}
				n.mu.Unlock()
				continue
			}
			err := n.tr.Send(p, batch)
			n.mu.Lock()
			n.stats.batchesSent++
			n.recordSendLocked(p, err)
			ok = err == nil || n.enqueueHintLocked(p, hintFromBatch(p, batch))
			if ok && n.ackMark[p] != nil {
				n.ackMark[p][o] = last
			}
			n.mu.Unlock()
		}
	}
}

// recordSendLocked updates a peer's health record after a send attempt,
// creating the record for peers discovered at runtime. Caller holds n.mu.
func (n *Node) recordSendLocked(p string, err error) {
	h := n.peerH[p]
	if h == nil {
		h = &peerHealth{}
		n.peerH[p] = h
	}
	if err != nil {
		h.lastSendErr = err.Error()
		n.log.Debug("send failed", "peer", p, "err", err)
	} else {
		h.lastSendErr = ""
	}
}

// Drain synchronously processes every message currently queued on the
// transport inbox and returns how many it handled. It never blocks waiting
// for more — the deterministic driving mode for tests and the scenario
// engine (call Exchange on every node, then Drain on every node until the
// cluster quiesces).
func (n *Node) Drain() int {
	count := 0
	for {
		select {
		case msg, ok := <-n.tr.Inbox():
			if !ok {
				return count
			}
			n.handle(msg)
			count++
		default:
			return count
		}
	}
}

// Start launches the asynchronous mode: a goroutine draining the inbox and,
// with Config.Interval > 0, a digest ticker. Close stops both.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-n.stop:
				return
			case msg, ok := <-n.tr.Inbox():
				if !ok {
					return
				}
				n.handle(msg)
			}
		}
	}()
	if n.interval > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTicker(n.interval)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.C:
					n.Exchange()
				}
			}
		}()
	}
}

// Close stops the Start goroutines and flushes and closes the durable hint
// log, so buffered hints survive to the next run. It does not close the
// transport (the caller owns it).
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hintLog != nil {
		err := n.hintLog.Close()
		n.hintLog = nil
		return err
	}
	return nil
}

// handle dispatches one inbound message. Any message is first-hand liveness
// evidence for its sender (re-admitting it if it was dead), a digest's view
// is merged for transitive discovery, and after dispatch any hints owed to
// the sender — or to members the view merge revived — replay.
func (n *Node) handle(msg transport.Message) {
	now := n.now()
	n.mu.Lock()
	h := n.peerH[msg.From]
	if h == nil {
		h = &peerHealth{}
		n.peerH[msg.From] = h
	}
	h.lastSeen = now
	n.observeDirectLocked(msg.From, now)
	var revived []string
	if msg.Kind == transport.KindDigest && len(msg.View) > 0 {
		revived = n.mergeViewLocked(msg.View, now)
	}
	hasHints := false
	if q := n.hintQ[msg.From]; q != nil && len(q.hints) > 0 {
		hasHints = true
	}
	n.mu.Unlock()

	switch msg.Kind {
	case transport.KindDigest:
		// Bootstrap decision first: with a state request outstanding,
		// handleDigest suppresses the reciprocal digest, so the sender does
		// not push entry batches the transfer is about to make redundant.
		n.maybeRequestBootstrap(msg)
		n.handleDigest(msg)
	case transport.KindEntries:
		n.handleEntries(msg)
	case transport.KindStateRequest:
		n.handleStateRequest(msg)
	case transport.KindState:
		n.handleState(msg)
	default:
		// Not a cluster message; the replication transport is dedicated, so
		// anything else is a peer bug — ignore rather than crash.
	}

	if hasHints {
		n.replayHints(msg.From)
	}
	for _, id := range revived {
		if id != msg.From {
			n.replayHints(id)
		}
	}
}

// handleDigest answers a peer's watermark digest with one entries batch per
// origin stream the peer trails on, capped at MaxBatch entries each; deeper
// backlogs continue on the peer's next digest. When the digest shows the
// *sender* ahead instead, one digest goes back to it — so replication is
// two-way on any connected join graph, even if only one side lists the
// other as a peer. The reciprocal fires only while strictly behind, so it
// cannot ping-pong once the streams agree.
func (n *Node) handleDigest(msg transport.Message) {
	n.mu.Lock()
	n.stats.digestsRecv++
	// The digest is the peer's authoritative statement of what it has:
	// reset the push cache to it. It may move DOWN — e.g. our optimistic
	// advance outran a batch the network dropped — which is exactly how the
	// push resynchronises.
	acks := make(map[string]uint64, len(msg.Watermarks))
	for o, s := range msg.Watermarks {
		acks[o] = s
	}
	n.ackMark[msg.From] = acks
	awaitingState := n.bootstrapReqAt != 0
	view := n.viewLocked()
	n.mu.Unlock()

	mine := n.marks()
	behind := false
	for o, theirs := range msg.Watermarks {
		if o != n.self && theirs > mine[o] {
			behind = true
			break
		}
	}
	// While a state request is outstanding the reciprocal digest is
	// suppressed: advertising stale marks would invite entry pushes the
	// incoming transfer covers wholesale.
	if behind && !awaitingState {
		err := n.tr.Send(msg.From, transport.Message{Kind: transport.KindDigest, Watermarks: mine, View: view})
		n.mu.Lock()
		n.stats.digestsSent++
		n.recordSendLocked(msg.From, err)
		n.mu.Unlock()
	}
	// Deterministic origin order keeps manually driven clusters replayable.
	origins := make([]string, 0, len(mine))
	for o := range mine {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		theirs := msg.Watermarks[o]
		if mine[o] <= theirs || o == msg.From {
			continue // up to date — or the peer's own stream, which it cannot be missing
		}
		batch, ok := n.batchFor(o, theirs)
		if !ok {
			continue
		}
		err := n.tr.Send(msg.From, batch)
		n.mu.Lock()
		n.stats.batchesSent++
		n.recordSendLocked(msg.From, err)
		if err == nil {
			last := batch.Entries[len(batch.Entries)-1].OriginSeq
			if cur := n.ackMark[msg.From]; cur != nil && last > cur[o] {
				cur[o] = last // don't re-push what this answer already carried
			}
		}
		n.mu.Unlock()
	}
}

// batchFor frames one KindEntries batch contiguously extending origin's
// stream past `after`, capped at MaxBatch entries. ok is false when nothing
// is retained past that point.
func (n *Node) batchFor(origin string, after uint64) (batch transport.Message, ok bool) {
	streamKey := origin
	if origin == n.self {
		streamKey = "" // the ledger keys the local stream as ""
	}
	ents := n.svc.ReplicationEntriesSince(streamKey, after, n.maxBatch)
	if len(ents) == 0 {
		return transport.Message{}, false
	}
	batch = transport.Message{
		Kind:    transport.KindEntries,
		Origin:  origin,
		After:   after,
		Entries: make([]transport.FeedbackEntry, len(ents)),
	}
	for i, fb := range ents {
		oseq := fb.OriginSeq
		if streamKey == "" {
			oseq = fb.Seq // local entries carry their seq as the origin seq
		}
		batch.Entries[i] = transport.FeedbackEntry{
			OriginSeq: oseq,
			Rater:     fb.Rater,
			Subject:   fb.Subject,
			Value:     fb.Value,
			UnixNano:  fb.UnixNano,
		}
	}
	return batch, true
}

// handleEntries applies one replicated batch in order. A batch whose After
// frame is above this node's watermark for the origin is discarded whole —
// an earlier batch was lost in transit, and applying this one would leave a
// permanent hole in the stream; the next digest exchange re-pulls from the
// true watermark. Entries at or below the watermark are duplicates and skip
// for free.
func (n *Node) handleEntries(msg transport.Message) {
	n.mu.Lock()
	n.stats.batchesRecv++
	n.mu.Unlock()
	if msg.Origin == "" || msg.Origin == n.self {
		return // malformed, or our own stream echoed back
	}
	mark := n.svc.ReplicationMark(msg.Origin)
	if msg.After > mark {
		n.mu.Lock()
		n.stats.gapped++
		n.mu.Unlock()
		return
	}
	for _, e := range msg.Entries {
		applied, err := n.svc.ReplicatedSubmit(msg.Origin, e.OriginSeq, e.Rater, e.Subject, e.Value, e.UnixNano)
		n.mu.Lock()
		if err != nil {
			// Validation or WAL I/O failure: surface on the peer record and
			// stop the batch — the stream re-pulls from the watermark, so
			// nothing is skipped.
			if h := n.peerH[msg.From]; h != nil {
				h.lastSendErr = fmt.Sprintf("apply %s/%d: %v", msg.Origin, e.OriginSeq, err)
			}
			n.mu.Unlock()
			return
		}
		if applied {
			n.stats.applied++
		} else {
			n.stats.duplicate++
		}
		n.mu.Unlock()
	}
}

// PeerStat is one peer's health entry in Stats.
type PeerStat struct {
	// Addr is the peer's transport address.
	Addr string `json:"addr"`
	// LastSeenUnixNano is when this node last received any message from the
	// peer (0 = never).
	LastSeenUnixNano int64 `json:"last_seen_unix_nano,omitempty"`
	// LastErr is the most recent send or apply error involving this peer
	// (empty = healthy).
	LastErr string `json:"last_err,omitempty"`
}

// MemberStat is one membership-table row in Stats.
type MemberStat struct {
	// ID is the member's origin id; Addr is where it is reached.
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// State is the failure detector's current classification: "alive",
	// "suspect" or "dead".
	State string `json:"state"`
	// Incarnation and Heartbeat are the freshest liveness pair observed.
	Incarnation uint64 `json:"incarnation"`
	Heartbeat   uint64 `json:"heartbeat"`
	// LastAdvanceUnixNano is the local clock reading when the pair last
	// advanced.
	LastAdvanceUnixNano int64 `json:"last_advance_unix_nano,omitempty"`
}

// Stats is a point-in-time observation of the replication layer: this node's
// watermarks, membership table, hint-queue gauges, per-peer health, and the
// exchange counters.
type Stats struct {
	// Self is this node's origin id; Incarnation and Heartbeat its own
	// liveness pair.
	Self        string `json:"self"`
	Incarnation uint64 `json:"incarnation"`
	Heartbeat   uint64 `json:"heartbeat"`
	// Marks maps every origin stream this node holds to its watermark.
	Marks map[string]uint64 `json:"marks"`
	// Members is the membership table (seeds plus discovered peers), in id
	// order.
	Members []MemberStat `json:"members,omitempty"`
	// Peers lists per-peer transport health (any address exchanged with),
	// in address order.
	Peers []PeerStat `json:"peers"`
	// DigestsSent/DigestsReceived and BatchesSent/BatchesReceived count the
	// anti-entropy messages exchanged.
	DigestsSent     uint64 `json:"digests_sent"`
	DigestsReceived uint64 `json:"digests_received"`
	BatchesSent     uint64 `json:"batches_sent"`
	BatchesReceived uint64 `json:"batches_received"`
	// EntriesApplied counts replicated entries folded in; EntriesDuplicate
	// counts idempotent re-deliveries skipped; BatchesGapped counts batches
	// discarded because an earlier one was lost.
	EntriesApplied   uint64 `json:"entries_applied"`
	EntriesDuplicate uint64 `json:"entries_duplicate"`
	BatchesGapped    uint64 `json:"batches_gapped,omitempty"`
	// HintedEntries is the number of entries currently buffered for
	// unreachable peers; HintsReplayed and HintsDropped are lifetime entry
	// counts, and HintLogErrors counts durable-log I/O failures (hints then
	// survive in memory only).
	HintedEntries int    `json:"hinted_entries"`
	HintsReplayed uint64 `json:"hints_replayed,omitempty"`
	HintsDropped  uint64 `json:"hints_dropped,omitempty"`
	HintLogErrors uint64 `json:"hint_log_errors,omitempty"`
	// HistTrims counts history-trim passes that dropped anything, and
	// HistTrimmedEntries the lifetime total of superseded entries dropped
	// from the in-memory replication history.
	HistTrims          uint64 `json:"hist_trims,omitempty"`
	HistTrimmedEntries uint64 `json:"hist_trimmed_entries,omitempty"`
	// BootstrapRequestsSent/Served count snapshot-shipped bootstrap
	// requests from each side; BootstrapsInstalled counts transfers this
	// node applied, and BootstrapErrors failed serves or installs.
	BootstrapRequestsSent   uint64 `json:"bootstrap_requests_sent,omitempty"`
	BootstrapRequestsServed uint64 `json:"bootstrap_requests_served,omitempty"`
	BootstrapsInstalled     uint64 `json:"bootstraps_installed,omitempty"`
	BootstrapErrors         uint64 `json:"bootstrap_errors,omitempty"`
	// DialFailures maps peer address to consecutive failed connection
	// attempts, when the transport tracks them (TCP dial backoff).
	DialFailures map[string]int `json:"dial_failures,omitempty"`
}

// Stats assembles the current replication statistics.
func (n *Node) Stats() Stats {
	st := Stats{Self: n.self, Marks: n.marks()}
	if fr, ok := n.tr.(transport.FailureReporter); ok {
		if f := fr.ConsecutiveFailures(); len(f) > 0 {
			st.DialFailures = f
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.updateStatesLocked(n.now())
	st.Incarnation = n.selfInc
	st.Heartbeat = n.selfHB
	st.DigestsSent = n.stats.digestsSent
	st.DigestsReceived = n.stats.digestsRecv
	st.BatchesSent = n.stats.batchesSent
	st.BatchesReceived = n.stats.batchesRecv
	st.EntriesApplied = n.stats.applied
	st.EntriesDuplicate = n.stats.duplicate
	st.BatchesGapped = n.stats.gapped
	st.HintedEntries = n.hintedEntriesLocked()
	st.HintsReplayed = n.stats.hintsReplayed
	st.HintsDropped = n.stats.hintsDropped
	st.HintLogErrors = n.stats.hintLogErrs
	st.HistTrims = n.stats.histTrims
	st.HistTrimmedEntries = n.stats.histTrimmed
	st.BootstrapRequestsSent = n.stats.stateReqsSent
	st.BootstrapRequestsServed = n.stats.stateReqsServed
	st.BootstrapsInstalled = n.stats.statesInstalled
	st.BootstrapErrors = n.stats.bootstrapErrs
	for _, id := range n.memberIDsLocked() {
		m := n.members[id]
		st.Members = append(st.Members, MemberStat{
			ID: m.id, Addr: m.addr, State: m.state.String(),
			Incarnation: m.incarnation, Heartbeat: m.heartbeat,
			LastAdvanceUnixNano: m.lastAdvance,
		})
	}
	addrs := make([]string, 0, len(n.peerH))
	for a := range n.peerH {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		h := n.peerH[a]
		st.Peers = append(st.Peers, PeerStat{Addr: a, LastSeenUnixNano: h.lastSeen, LastErr: h.lastSendErr})
	}
	return st
}

var _ service.Replicator = (*Node)(nil)
