package cluster

import (
	"reflect"
	"testing"

	"diffgossip/internal/rng"
	"diffgossip/internal/transport"
)

// TestClusterSnapshotBootstrap is the acceptance scenario for snapshot-shipped
// bootstrap: an established node has ingested and folded heavy supersession
// traffic (and trimmed its retained history down to the live subset), and a
// fresh node joins. The join must go through one state transfer — not an
// entry-by-entry replay of the full history — and end bit-identical.
func TestClusterSnapshotBootstrap(t *testing.T) {
	const n = 48
	g := testGraph(t, n)
	hub := transport.NewHub()
	epA, err := hub.Endpoint("node-a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { epA.Close() })
	svcA := newClusterService(t, g, 3, "node-a")
	a, err := New(Config{Service: svcA, Transport: epA, Peers: []string{"node-b"}, BootstrapLag: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Established traffic with heavy supersession, folded over several
	// epochs, then the history trimmed to its live subset (a lone node's
	// floors are its own marks): the transfer ships live state, not history.
	vals := rng.New(3)
	for k := 0; k < 600; k++ {
		if _, err := svcA.Submit(k%16, (k+1)%16, vals.Float64()); err != nil {
			t.Fatal(err)
		}
		if k%200 == 199 {
			if _, _, err := svcA.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
	}
	svcA.Submit(20, 21, 0.5) // unfolded tail travels with the transfer
	trimmed := svcA.TrimReplicationHistory(map[string]uint64{"node-a": svcA.LocalStreamMark()})
	if trimmed == 0 {
		t.Fatal("test degenerated: nothing was superseded, transfer would not be O(state)")
	}

	// A fresh replica joins with an empty ledger.
	epB, err := hub.Endpoint("node-b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { epB.Close() })
	svcB := newClusterService(t, g, 3, "node-b")
	b, err := New(Config{Service: svcB, Transport: epB, Peers: []string{"node-a"}, BootstrapLag: 1})
	if err != nil {
		t.Fatal(err)
	}

	// One round trip: A's digest reaches B, B asks for state, A serves it,
	// B installs it.
	a.Exchange()
	b.Drain() // digest in → state request out
	a.Drain() // request in → transfer out
	b.Drain() // transfer in → installed

	stB := b.Stats()
	if stB.BootstrapRequestsSent != 1 || stB.BootstrapsInstalled != 1 || stB.BootstrapErrors != 0 {
		t.Fatalf("B bootstrap stats: %+v", stB)
	}
	if st := a.Stats(); st.BootstrapRequestsServed != 1 {
		t.Fatalf("A served %d state requests, want 1", st.BootstrapRequestsServed)
	}
	// The transfer bypassed entry-by-entry replay entirely.
	if stB.EntriesApplied != 0 || stB.BatchesReceived != 0 {
		t.Fatalf("bootstrap fell back to entry replay: %+v", stB)
	}
	if !reflect.DeepEqual(a.Stats().Marks, stB.Marks) {
		t.Fatalf("marks after bootstrap: A %v, B %v", a.Stats().Marks, stB.Marks)
	}
	// Only the unfolded tail awaits an epoch on B.
	if got := svcB.Pending(); got != 1 {
		t.Fatalf("B has %d pending entries after bootstrap, want only the tail", got)
	}

	// After both fold the tail, reputations are bit-identical.
	if _, ran, err := svcA.RunEpoch(); err != nil || !ran {
		t.Fatalf("A tail epoch: ran=%v err=%v", ran, err)
	}
	if _, ran, err := svcB.RunEpoch(); err != nil || !ran {
		t.Fatalf("B tail epoch: ran=%v err=%v", ran, err)
	}
	va, vb := svcA.View(), svcB.View()
	for j := 0; j < n; j++ {
		want, _ := va.Reputation(j)
		got, _ := vb.Reputation(j)
		if got != want {
			t.Fatalf("subject %d: bootstrap replica serves %v, sender %v", j, got, want)
		}
	}

	// The pair keeps replicating normally: new feedback on B reaches A.
	if _, err := svcB.Submit(30, 31, 0.9); err != nil {
		t.Fatal(err)
	}
	converge(t, []*Node{a, b})
	// B's local entry carries its rebased post-install seq; A must have
	// applied exactly up to it.
	if got, want := svcA.ReplicationMarks()["node-b"], svcB.LocalStreamMark(); want == 0 || got != want {
		t.Fatalf("A's node-b mark after post-bootstrap replication = %d, want %d", got, want)
	}
}

// TestClusterHistoryTrim drives the TrimEvery cadence: once every member's
// watermarks have passed the superseded entries, the trim drops them — and
// replication stays correct afterwards.
func TestClusterHistoryTrim(t *testing.T) {
	const n = 32
	g := testGraph(t, n)
	hub := transport.NewHub()
	names := []string{"node-0", "node-1"}
	eps := make([]*transport.ChannelTransport, 2)
	nodes := make([]*Node, 2)
	for i, nm := range names {
		ep, err := hub.Endpoint(nm)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
	}
	svc0 := newClusterService(t, g, 2, names[0])
	svc1 := newClusterService(t, g, 2, names[1])
	var err error
	nodes[0], err = New(Config{Service: svc0, Transport: eps[0], Peers: []string{names[1]}, TrimEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodes[1], err = New(Config{Service: svc1, Transport: eps[1], Peers: []string{names[0]}, TrimEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	// No digest seen from the peer yet: trimming must refuse to guess.
	for k := 0; k < 50; k++ {
		if _, err := svc0.Submit(k%4, (k+1)%4, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].Exchange()
	if st := nodes[0].Stats(); st.HistTrims != 0 {
		t.Fatalf("trimmed before any peer digest: %+v", st)
	}

	// Converge, then exchange once more: now both watermarks cover the
	// superseded entries and the trim fires.
	converge(t, nodes)
	nodes[0].Exchange()
	st := nodes[0].Stats()
	if st.HistTrims == 0 || st.HistTrimmedEntries == 0 {
		t.Fatalf("trim never fired after full acknowledgement: %+v", st)
	}
	// Replication still works after the trim: fresh feedback flows, folds,
	// and serves identically.
	if _, err := svc1.Submit(9, 10, 0.7); err != nil {
		t.Fatal(err)
	}
	converge(t, nodes)
	if _, ran, err := svc0.RunEpoch(); err != nil || !ran {
		t.Fatalf("svc0 epoch: ran=%v err=%v", ran, err)
	}
	if _, ran, err := svc1.RunEpoch(); err != nil || !ran {
		t.Fatalf("svc1 epoch: ran=%v err=%v", ran, err)
	}
	v0, v1 := svc0.View(), svc1.View()
	for j := 0; j < n; j++ {
		r0, _ := v0.Reputation(j)
		r1, _ := v1.Reputation(j)
		if r0 != r1 {
			t.Fatalf("subject %d diverged after trim: %v vs %v", j, r0, r1)
		}
	}
}
