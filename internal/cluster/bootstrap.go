package cluster

import (
	"bytes"

	"diffgossip/internal/service"
	"diffgossip/internal/store"
	"diffgossip/internal/transport"
)

// This file is the cluster half of bounded storage: history trimming (drop
// retained entries every member has acknowledged) and snapshot-shipped
// bootstrap (serve and install service.StateTransfer over the transport's
// KindStateRequest/KindState messages).

// trimFloors computes the per-origin trim floors: the minimum, over this node
// and every known member, of the watermark each has acknowledged for that
// origin. Entries at or below the floor are held by everyone and safe to
// drop. Returns nil — trim nothing — when there are no members, or when any
// member has never sent a digest (its ackMark is unknown): a silent member
// may still need everything, so it stalls trimming rather than risking loss.
func (n *Node) trimFloors() map[string]uint64 {
	mine := n.marks()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.members) == 0 {
		return nil
	}
	floors := make(map[string]uint64, len(mine))
	for o, s := range mine {
		floors[o] = s
	}
	for id := range n.members {
		am := n.ackMark[id]
		if am == nil {
			return nil
		}
		for o := range floors {
			if am[o] < floors[o] {
				floors[o] = am[o]
			}
		}
	}
	return floors
}

// trimRetainedHistory runs one history-trim pass (the Config.TrimEvery
// cadence): superseded entries below every member's acknowledged watermark
// are dropped from the in-memory replication history.
func (n *Node) trimRetainedHistory() {
	floors := n.trimFloors()
	if floors == nil {
		return
	}
	dropped := n.svc.TrimReplicationHistory(floors)
	if dropped == 0 {
		return
	}
	n.mu.Lock()
	n.stats.histTrims++
	n.stats.histTrimmed += uint64(dropped)
	n.mu.Unlock()
	n.log.Debug("trimmed replication history", "dropped", dropped)
}

// bootstrapRetryAfter is how many exchange ticks an unanswered state request
// stays outstanding before a later digest may trigger a re-request.
const bootstrapRetryAfter = 8

// maybeRequestBootstrap decides, on a received digest, whether to ask the
// sender for a full state transfer instead of pulling origin streams entry by
// entry: a fresh node (empty ledger) requests on any lag at all, an
// established one only when its total lag exceeds Config.BootstrapLag. One
// request is outstanding at a time, retried after bootstrapRetryAfter
// exchanges if unanswered.
func (n *Node) maybeRequestBootstrap(msg transport.Message) {
	if n.bootstrapLag == 0 {
		return
	}
	mine := n.marks()
	fresh := n.svc.LedgerSeq() == 0
	var lag uint64
	for o, theirs := range msg.Watermarks {
		if o == n.self {
			continue
		}
		if have := mine[o]; theirs > have {
			lag += theirs - have
		}
	}
	if lag == 0 || (!fresh && lag <= n.bootstrapLag) {
		return
	}
	n.mu.Lock()
	if at := n.bootstrapReqAt; at != 0 && n.exchanges < at+bootstrapRetryAfter {
		n.mu.Unlock()
		return // a request is already in flight
	}
	n.bootstrapReqAt = n.exchanges + 1
	n.stats.stateReqsSent++
	n.mu.Unlock()

	err := n.tr.Send(msg.From, transport.Message{
		Kind:       transport.KindStateRequest,
		Watermarks: mine,
	})
	n.mu.Lock()
	n.recordSendLocked(msg.From, err)
	if err != nil {
		n.bootstrapReqAt = 0 // failed to even send; retry on the next digest
	}
	n.mu.Unlock()
	if err == nil {
		n.log.Info("requested bootstrap state", "peer", msg.From, "lag", lag, "fresh", fresh)
	}
}

// handleStateRequest serves a peer's bootstrap request: assemble the state
// transfer against the requester's marks and ship it as one KindState
// message. Every node serves requests regardless of its own BootstrapLag
// setting.
func (n *Node) handleStateRequest(msg transport.Message) {
	st, err := n.svc.BootstrapState(msg.Watermarks)
	if err != nil {
		n.mu.Lock()
		n.stats.bootstrapErrs++
		n.mu.Unlock()
		n.log.Warn("bootstrap state assembly failed", "peer", msg.From, "err", err)
		return
	}
	payload := &transport.StatePayload{
		Shards:   len(st.Segments),
		Segments: make([][]byte, len(st.Segments)),
		Folded:   stateEntries(st.Folded),
		Tail:     stateEntries(st.Tail),
		Marks:    st.Marks,
	}
	for i, seg := range st.Segments {
		payload.N = seg.N
		var buf bytes.Buffer
		if err := seg.Save(&buf); err != nil {
			n.mu.Lock()
			n.stats.bootstrapErrs++
			n.mu.Unlock()
			n.log.Warn("bootstrap segment encode failed", "shard", i, "err", err)
			return
		}
		payload.Segments[i] = buf.Bytes()
	}
	err = n.tr.Send(msg.From, transport.Message{Kind: transport.KindState, State: payload})
	n.mu.Lock()
	n.recordSendLocked(msg.From, err)
	if err == nil {
		n.stats.stateReqsServed++
	}
	n.mu.Unlock()
	if err == nil {
		n.log.Info("served bootstrap state", "peer", msg.From,
			"folded", len(payload.Folded), "tail", len(payload.Tail))
	}
}

// handleState installs a solicited state transfer. Unsolicited KindState
// messages — nothing outstanding, or a duplicate answer — are dropped: a
// transfer rewrites the whole local state, so only an answer this node asked
// for is trusted.
func (n *Node) handleState(msg transport.Message) {
	n.mu.Lock()
	pending := n.bootstrapReqAt != 0
	n.bootstrapReqAt = 0
	n.mu.Unlock()
	if !pending || msg.State == nil {
		return
	}
	st := &service.StateTransfer{
		Segments: make([]*store.ShardSnapshot, len(msg.State.Segments)),
		Folded:   storeEntries(msg.State.Folded),
		Tail:     storeEntries(msg.State.Tail),
		Marks:    msg.State.Marks,
	}
	for i, raw := range msg.State.Segments {
		seg, err := store.LoadShardSnapshot(bytes.NewReader(raw))
		if err != nil {
			n.mu.Lock()
			n.stats.bootstrapErrs++
			n.mu.Unlock()
			n.log.Warn("bootstrap segment decode failed", "peer", msg.From, "shard", i, "err", err)
			return
		}
		st.Segments[i] = seg
	}
	if err := n.svc.InstallBootstrap(st); err != nil {
		n.mu.Lock()
		n.stats.bootstrapErrs++
		n.mu.Unlock()
		n.log.Warn("bootstrap install failed", "peer", msg.From, "err", err)
		return
	}
	n.mu.Lock()
	n.stats.statesInstalled++
	n.mu.Unlock()
	n.log.Info("installed bootstrap state", "peer", msg.From,
		"folded", len(st.Folded), "tail", len(st.Tail))
}

// stateEntries converts ledger entries to their wire form.
func stateEntries(ents []store.Feedback) []transport.StateEntry {
	if len(ents) == 0 {
		return nil
	}
	out := make([]transport.StateEntry, len(ents))
	for i, fb := range ents {
		out[i] = transport.StateEntry{
			Origin:    fb.Origin,
			OriginSeq: fb.OriginSeq,
			Rater:     fb.Rater,
			Subject:   fb.Subject,
			Value:     fb.Value,
			UnixNano:  fb.UnixNano,
		}
	}
	return out
}

// storeEntries converts wire entries back to ledger form. Seq is left zero —
// the receiving ledger assigns its own local sequence numbers on append.
func storeEntries(ents []transport.StateEntry) []store.Feedback {
	if len(ents) == 0 {
		return nil
	}
	out := make([]store.Feedback, len(ents))
	for i, e := range ents {
		out[i] = store.Feedback{
			Origin:    e.Origin,
			OriginSeq: e.OriginSeq,
			Rater:     e.Rater,
			Subject:   e.Subject,
			Value:     e.Value,
			UnixNano:  e.UnixNano,
		}
	}
	return out
}
