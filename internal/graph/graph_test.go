package graph

import (
	"testing"
	"testing/quick"

	"diffgossip/internal/rng"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) not symmetric")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("wrong degrees after single edge")
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 5}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Fatalf("edge %v accepted", e)
		}
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if _, err := FromEdges(2, [][2]int{{0, 0}}); err == nil {
		t.Fatal("FromEdges accepted self loop")
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode -> %d, N = %d", id, g.N())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	c := g.Clone()
	_ = c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(3, 1)
	_ = g.AddEdge(0, 1)
	es := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", es, want)
		}
	}
}

func TestValidateDetectsAsymmetry(t *testing.T) {
	g := New(2)
	g.adj[0] = []int{1} // corrupt by hand
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric edge")
	}
}

func TestFixtureTopologies(t *testing.T) {
	ring := Ring(6)
	for u := 0; u < 6; u++ {
		if ring.Degree(u) != 2 {
			t.Fatalf("ring degree(%d) = %d", u, ring.Degree(u))
		}
	}
	k5 := Complete(5)
	if k5.M() != 10 {
		t.Fatalf("K5 edges = %d", k5.M())
	}
	star := Star(7)
	if star.Degree(0) != 6 || star.Degree(3) != 1 {
		t.Fatal("star degrees wrong")
	}
	for _, g := range []*Graph{ring, k5, star} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAvgNeighborDegree(t *testing.T) {
	star := Star(5)
	if got := star.AvgNeighborDegree(0); got != 1 {
		t.Fatalf("star centre avg nbr degree = %v", got)
	}
	if got := star.AvgNeighborDegree(1); got != 4 {
		t.Fatalf("star leaf avg nbr degree = %v", got)
	}
	if got := New(1).AvgNeighborDegree(0); got != 0 {
		t.Fatalf("isolated node avg nbr degree = %v", got)
	}
}

func TestDifferentialK(t *testing.T) {
	star := Star(5)
	// Centre: deg 4, avg nbr degree 1 -> k = 4.
	if k := star.DifferentialK(0); k != 4 {
		t.Fatalf("star centre k = %d, want 4", k)
	}
	// Leaf: deg 1, avg nbr degree 4 -> ratio 0.25 -> k = 1.
	if k := star.DifferentialK(1); k != 1 {
		t.Fatalf("star leaf k = %d, want 1", k)
	}
	// Ring: ratio exactly 1 everywhere.
	ring := Ring(8)
	for u := 0; u < 8; u++ {
		if k := ring.DifferentialK(u); k != 1 {
			t.Fatalf("ring k(%d) = %d", u, k)
		}
	}
	if k := New(1).DifferentialK(0); k != 1 {
		t.Fatalf("isolated node k = %d", k)
	}
}

func TestFigure2MatchesPaper(t *testing.T) {
	g := Figure2()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("Figure2 not connected")
	}
	degs := g.Degrees()
	for i, want := range Figure2Degrees {
		if degs[i] != want {
			t.Fatalf("Figure2 degree(%d) = %d, want %d", i+1, degs[i], want)
		}
	}
	ks := g.DifferentialKs()
	for i, want := range Figure2Ks {
		if ks[i] != want {
			t.Fatalf("Figure2 k(%d) = %d, want %d (paper Table 1)", i+1, ks[i], want)
		}
	}
}

func TestRandomNeighborMembership(t *testing.T) {
	g := Figure2()
	src := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		u := src.Intn(g.N())
		v := g.RandomNeighbor(u, src)
		if !g.HasEdge(u, v) {
			t.Fatalf("RandomNeighbor(%d) = %d not adjacent", u, v)
		}
	}
	if got := New(1).RandomNeighbor(0, src); got != -1 {
		t.Fatalf("isolated RandomNeighbor = %d, want -1", got)
	}
}

func TestRandomNeighborsDistinct(t *testing.T) {
	g := Figure2()
	src := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		u := src.Intn(g.N())
		k := 1 + src.Intn(3)
		picks := g.RandomNeighbors(u, k, src)
		wantLen := k
		if d := g.Degree(u); d < k {
			wantLen = d
		}
		if len(picks) != wantLen {
			t.Fatalf("RandomNeighbors(%d,%d) returned %d picks", u, k, len(picks))
		}
		seen := map[int]bool{}
		for _, v := range picks {
			if !g.HasEdge(u, v) || seen[v] {
				t.Fatalf("bad pick %d for node %d: %v", v, u, picks)
			}
			seen[v] = true
		}
	}
}

func TestPreferentialAttachmentInvariants(t *testing.T) {
	for _, m := range []int{2, 3} {
		for _, n := range []int{10, 100, 500} {
			g := MustPA(n, m, 99)
			if err := g.Validate(); err != nil {
				t.Fatalf("n=%d m=%d: %v", n, m, err)
			}
			if g.N() != n {
				t.Fatalf("N = %d, want %d", g.N(), n)
			}
			wantM := m*(m+1)/2 + (n-m-1)*m
			if g.M() != wantM {
				t.Fatalf("n=%d m=%d: M = %d, want %d", n, m, g.M(), wantM)
			}
			if !g.Connected() {
				t.Fatalf("n=%d m=%d: PA graph disconnected", n, m)
			}
			for u := 0; u < n; u++ {
				if g.Degree(u) < m {
					t.Fatalf("node %d has degree %d < m=%d", u, g.Degree(u), m)
				}
			}
		}
	}
}

func TestPADeterministicInSeed(t *testing.T) {
	a := MustPA(200, 2, 7)
	b := MustPA(200, 2, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed, different edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := MustPA(200, 2, 8)
	diff := false
	ec := c.Edges()
	for i := range ea {
		if i < len(ec) && ea[i] != ec[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical PA graphs")
	}
}

func TestPARejectsBadConfig(t *testing.T) {
	if _, err := PreferentialAttachment(PAConfig{N: 5, M: 0}); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := PreferentialAttachment(PAConfig{N: 2, M: 2}); err == nil {
		t.Fatal("n<=m accepted")
	}
}

func TestPAPowerLawTail(t *testing.T) {
	g := MustPA(5000, 2, 123)
	gamma := g.PowerLawExponent(2)
	// Pure BA yields gamma ~ 3; accept a generous band since n is modest.
	if gamma < 2.0 || gamma > 4.0 {
		t.Fatalf("PA exponent = %v, want in [2,4]", gamma)
	}
	maxDeg, _ := g.MaxDegree()
	if maxDeg < 30 {
		t.Fatalf("PA max degree = %d, expected a power node", maxDeg)
	}
}

func TestPAHubVsLeafFanout(t *testing.T) {
	g := MustPA(2000, 2, 5)
	_, hub := g.MaxDegree()
	if k := g.DifferentialK(hub); k < 2 {
		t.Fatalf("hub differential k = %d, want >= 2", k)
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 plus isolated node 4.
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS = %v, want %v", d, want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestDiameter(t *testing.T) {
	ring := Ring(10)
	if d := ring.Diameter(); d != 5 {
		t.Fatalf("ring diameter = %d, want 5", d)
	}
	if d := ring.DiameterApprox(); d != 5 {
		t.Fatalf("ring approx diameter = %d, want 5", d)
	}
	if d := Complete(6).Diameter(); d != 1 {
		t.Fatalf("K6 diameter = %d", d)
	}
}

func TestDiameterApproxLowerBoundsExact(t *testing.T) {
	g := MustPA(300, 2, 44)
	if approx, exact := g.DiameterApprox(), g.Diameter(); approx > exact {
		t.Fatalf("approx %d > exact %d", approx, exact)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(4)
	h := g.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("star histogram = %v", h)
	}
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != g.N() {
		t.Fatalf("histogram sums to %d, want %d", sum, g.N())
	}
}

func TestMeanDegree(t *testing.T) {
	if md := Ring(8).MeanDegree(); md != 2 {
		t.Fatalf("ring mean degree = %v", md)
	}
	if md := New(0).MeanDegree(); md != 0 {
		t.Fatalf("empty mean degree = %v", md)
	}
}

func TestDegreeSumEqualsTwiceEdges(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%200)
		g := MustPA(n, 2, seed)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(200, 0.05, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 0.05 * 200 * 199 / 2
	got := float64(g.M())
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("ER edges = %v, want ~%v", got, want)
	}
}

func TestAssortativityInRange(t *testing.T) {
	g := MustPA(1000, 2, 11)
	r := g.AssortativityByDegree()
	if r < -1 || r > 1 {
		t.Fatalf("assortativity = %v", r)
	}
}

func TestAppendRandomNeighborsMatchesRandomNeighbors(t *testing.T) {
	g := MustPA(120, 3, 31)
	for seed := uint64(0); seed < 10; seed++ {
		for u := 0; u < g.N(); u += 7 {
			for _, k := range []int{1, 2, g.Degree(u), g.Degree(u) + 3} {
				a, b := rng.New(seed), rng.New(seed)
				want := g.RandomNeighbors(u, k, a)
				got := g.AppendRandomNeighbors(nil, u, k, b)
				if len(got) != len(want) {
					t.Fatalf("u=%d k=%d: len %d vs %d", u, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("u=%d k=%d: [%d] = %d vs %d", u, k, i, got[i], want[i])
					}
				}
				if a.Uint64() != b.Uint64() {
					t.Fatalf("u=%d k=%d: rng streams diverged", u, k)
				}
			}
		}
	}
}

func TestAppendRandomNeighborsReusesBuffer(t *testing.T) {
	g := MustPA(60, 2, 33)
	src := rng.New(9)
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.AppendRandomNeighbors(buf[:0], 3, 2, src)
	})
	if allocs != 0 {
		t.Fatalf("AppendRandomNeighbors allocated %v times per run with a warm buffer", allocs)
	}
	if got := g.AppendRandomNeighbors([]int{-5}, 3, 1, src); len(got) != 2 || got[0] != -5 {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestAttachPreferential(t *testing.T) {
	g := MustPA(200, 2, 7)
	src := rng.New(11)
	for k := 0; k < 50; k++ {
		u := AttachPreferential(g, 2, src, nil)
		if u != 200+k {
			t.Fatalf("new node id %d, want %d", u, 200+k)
		}
		if d := g.Degree(u); d != 2 {
			t.Fatalf("join %d got degree %d, want 2", u, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Replays are bit-identical from the same seed.
	g1, g2 := MustPA(100, 2, 3), MustPA(100, 2, 3)
	s1, s2 := rng.New(5), rng.New(5)
	for k := 0; k < 20; k++ {
		AttachPreferential(g1, 2, s1, nil)
		AttachPreferential(g2, 2, s2, nil)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("replay edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("replay edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestAttachPreferentialEligibleFilter(t *testing.T) {
	g := MustPA(50, 2, 9)
	down := map[int]bool{0: true, 1: true, 2: true}
	src := rng.New(13)
	for k := 0; k < 30; k++ {
		u := AttachPreferential(g, 3, src, func(v int) bool { return !down[v] })
		for _, v := range g.Neighbors(u) {
			if down[v] {
				t.Fatalf("join %d attached to excluded node %d", u, v)
			}
		}
	}

	// Hubs attract joins: the max-degree node should gather more new edges
	// than a typical leaf over many joins.
	degMax := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > degMax {
			degMax = d
		}
	}
	if degMax < 6 {
		t.Fatalf("preferential joins did not concentrate on hubs (max degree %d)", degMax)
	}
}

func TestAttachPreferentialDegenerate(t *testing.T) {
	// Empty overlay: first join stays isolated, second bootstraps an edge.
	g := New(1)
	src := rng.New(1)
	u := AttachPreferential(g, 2, src, nil)
	if g.Degree(u) != 1 { // attaches to the lone isolated node 0
		t.Fatalf("bootstrap join degree %d, want 1", g.Degree(u))
	}
	// All candidates excluded: the newcomer stays isolated.
	v := AttachPreferential(g, 2, src, func(int) bool { return false })
	if g.Degree(v) != 0 {
		t.Fatalf("fully excluded join got degree %d", g.Degree(v))
	}
	// m larger than the candidate pool: connects to everything available.
	w := AttachPreferential(g, 99, src, nil)
	if g.Degree(w) != 2 {
		t.Fatalf("m>candidates join degree %d, want 2", g.Degree(w))
	}
}
