package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteEdgeList emits the graph in the plain "u v" per-line format
// (canonical order, u < v), interoperable with common graph tooling and with
// cmd/dgnet -edges.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Lines starting with '#' are
// directives or comments; the "# nodes N" header sizes the graph (required so
// isolated trailing nodes survive a round trip).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if text[0] == '#' {
			var n int
			if _, err := fmt.Sscanf(text, "# nodes %d", &n); err == nil {
				if g != nil {
					return nil, fmt.Errorf("graph: duplicate nodes header at line %d", line)
				}
				g = New(n)
			}
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graph: edge before '# nodes N' header at line %d", line)
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %d: %q", line, text)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing '# nodes N' header")
	}
	return g, nil
}
