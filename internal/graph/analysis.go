package graph

import (
	"math"
	"sort"
)

// BFS returns the hop distance from src to every node; unreachable nodes get
// -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components returns the connected components as slices of node ids, largest
// first.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// Connected reports whether the graph has a single component (and is
// non-empty).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return false
	}
	comps := g.Components()
	return len(comps) == 1
}

// Eccentricity returns the maximum finite BFS distance from u.
func (g *Graph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running BFS from every node. It is
// O(N·M); use DiameterApprox for large graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		if e := g.Eccentricity(u); e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterApprox lower-bounds the diameter with a double BFS sweep: BFS from
// an arbitrary node, then BFS from the farthest node found. On power-law
// graphs this is typically exact or off by one.
func (g *Graph) DiameterApprox() int {
	if g.N() == 0 {
		return 0
	}
	d0 := g.BFS(0)
	far, best := 0, 0
	for u, d := range d0 {
		if d > best {
			far, best = u, d
		}
	}
	d1 := g.BFS(far)
	best = 0
	for _, d := range d1 {
		if d > best {
			best = d
		}
	}
	return best
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
	}
	counts := make([]int, maxDeg+1)
	for _, nbrs := range g.adj {
		counts[len(nbrs)]++
	}
	return counts
}

// MeanDegree returns the average degree 2M/N.
func (g *Graph) MeanDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// MaxDegree returns the largest degree and one node achieving it.
func (g *Graph) MaxDegree() (deg, node int) {
	for u, nbrs := range g.adj {
		if len(nbrs) > deg {
			deg, node = len(nbrs), u
		}
	}
	return deg, node
}

// PowerLawExponent estimates gamma in P(d) ~ d^-gamma by the Clauset–Shalizi–
// Newman discrete MLE with the given minimum degree:
//
//	gamma ≈ 1 + n / Σ ln(d_i / (dmin - 0.5))
//
// For PA graphs with m >= 2 the estimate should land near 3; the paper cites
// 2.3 for measured Gnutella topologies.
func (g *Graph) PowerLawExponent(dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	n := 0
	sum := 0.0
	for _, nbrs := range g.adj {
		d := len(nbrs)
		if d >= dmin {
			n++
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
		}
	}
	if n == 0 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}

// AssortativityByDegree returns the Pearson correlation of degrees across
// edges (Newman's r). PA graphs are weakly disassortative; the metric is
// exposed for the network-inspection CLI.
func (g *Graph) AssortativityByDegree() float64 {
	var sx, sy, sxx, syy, sxy float64
	n := 0.0
	for _, nbrs := range g.adj {
		du := float64(len(nbrs))
		for _, v := range nbrs {
			dv := float64(len(g.adj[v]))
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
			n++
		}
	}
	if n == 0 {
		return 0
	}
	num := sxy/n - (sx/n)*(sy/n)
	den := math.Sqrt(sxx/n-(sx/n)*(sx/n)) * math.Sqrt(syy/n-(sy/n)*(sy/n))
	if den == 0 {
		return 0
	}
	return num / den
}
