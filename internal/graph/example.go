package graph

// Figure2 returns the paper's 10-node example network (§4.2, Figure 2). The
// paper gives the degree sequence (4,4,7,3,3,2,2,2,3,2) and the resulting
// differential fan-outs k = (1,1,3,1,1,1,1,1,1,1) but not the full edge list;
// this topology realises both exactly:
//
//	node (1-based):  1  2  3  4  5  6  7  8  9 10
//	degree:          4  4  7  3  3  2  2  2  3  2
//	k:               1  1  3  1  1  1  1  1  1  1
//
// Node 3 is the power node; its neighbours are all nodes except the two other
// degree-4 nodes, which keeps its average neighbour degree low enough
// (17/7 ≈ 2.43) that k_3 = round(7/2.43) = 3 as in the paper's Table 1.
func Figure2() *Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {0, 8},
		{1, 6}, {1, 7}, {1, 8},
		{2, 3}, {2, 4}, {2, 5}, {2, 6}, {2, 7}, {2, 8}, {2, 9},
		{3, 5},
		{4, 9},
	}
	g, err := FromEdges(10, edges)
	if err != nil {
		panic("graph: Figure2 construction failed: " + err.Error())
	}
	return g
}

// Figure2Degrees is the degree sequence the paper reports for Figure 2.
var Figure2Degrees = []int{4, 4, 7, 3, 3, 2, 2, 2, 3, 2}

// Figure2Ks is the differential fan-out vector from the paper's Table 1.
var Figure2Ks = []int{1, 1, 3, 1, 1, 1, 1, 1, 1, 1}
