package graph

import (
	"fmt"

	"diffgossip/internal/rng"
)

// PAConfig parameterises the preferential attachment generator.
type PAConfig struct {
	// N is the final number of nodes. Must be > M.
	N int
	// M is the number of edges each arriving node creates (the paper's m).
	// The paper's analysis requires m >= 2 so that the graph is connected
	// with high probability and differential push spreads in O((log2 N)^2).
	M int
	// Seed drives the generator deterministically.
	Seed uint64
}

// PreferentialAttachment grows a power-law graph G^m_N by the PA process the
// paper cites ([11] Barabási–Albert, [12] Bollobás et al.): the graph starts
// from a small connected seed clique of m+1 nodes, and each subsequent node
// joins with m edges whose endpoints are chosen with probability proportional
// to current degree. Multi-edges are resolved by resampling, so the result is
// a connected simple graph with a d^-gamma degree tail (gamma ≈ 3 for pure
// BA; Gnutella's measured 2.3 is in the same regime for gossip purposes).
func PreferentialAttachment(cfg PAConfig) (*Graph, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("graph: PA requires m >= 1, got %d", cfg.M)
	}
	if cfg.N <= cfg.M {
		return nil, fmt.Errorf("graph: PA requires n > m, got n=%d m=%d", cfg.N, cfg.M)
	}
	src := rng.New(cfg.Seed)
	g := New(cfg.N)

	// Repeated-endpoint list: node u appears deg(u) times, so sampling a
	// uniform element of the list samples a node proportionally to degree.
	endpoints := make([]int, 0, 2*cfg.M*cfg.N)

	// Seed clique on nodes 0..m ensures every early node has degree >= m and
	// the graph is connected from the start.
	for u := 0; u <= cfg.M; u++ {
		for v := u + 1; v <= cfg.M; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, u, v)
		}
	}

	targets := make(map[int]struct{}, cfg.M)
	ordered := make([]int, 0, cfg.M)
	for u := cfg.M + 1; u < cfg.N; u++ {
		clear(targets)
		ordered = ordered[:0]
		for len(targets) < cfg.M {
			t := endpoints[src.Intn(len(endpoints))]
			if _, dup := targets[t]; dup {
				continue // resample duplicates
			}
			targets[t] = struct{}{}
			ordered = append(ordered, t) // keep draw order: map iteration is not deterministic
		}
		for _, t := range ordered {
			if err := g.AddEdge(u, t); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, u, t)
		}
	}
	return g, nil
}

// AttachPreferential grows g by one node wired with up to m edges whose
// endpoints are drawn with probability proportional to current degree —
// the same arrival process PreferentialAttachment uses — so joins in a churn
// scenario preserve the overlay's power-law shape. eligible, when non-nil,
// restricts candidate endpoints (a live-membership filter: a newcomer cannot
// discover departed peers); duplicates are resolved by resampling. When
// fewer than m distinct eligible endpoints with positive degree exist, every
// one of them is used; with none, the newcomer falls back to uniform choice
// among eligible isolated nodes, and failing that stays isolated. Returns
// the new node's id.
func AttachPreferential(g *Graph, m int, src *rng.Source, eligible func(int) bool) int {
	u := g.AddNode()
	if m < 1 {
		return u
	}
	ok := func(v int) bool { return v != u && (eligible == nil || eligible(v)) }

	// Candidate mass: eligible nodes weighted by degree.
	total := 0
	candidates := 0
	isolated := -1
	isolatedCount := 0
	for v := 0; v < u; v++ {
		if !ok(v) {
			continue
		}
		if d := g.Degree(v); d > 0 {
			total += d
			candidates++
		} else {
			isolatedCount++
			isolated = v
		}
	}
	if candidates == 0 {
		// Degenerate overlay: no eligible node has an edge yet. Bootstrap
		// with one uniform edge to an eligible isolated node if any exists.
		if isolatedCount > 0 {
			pick := src.Intn(isolatedCount)
			for v := 0; v < u; v++ {
				if ok(v) && g.Degree(v) == 0 {
					if pick == 0 {
						isolated = v
						break
					}
					pick--
				}
			}
			g.AddEdge(u, isolated) //nolint:errcheck // endpoints valid by construction
		}
		return u
	}
	if m > candidates {
		m = candidates
	}
	for g.Degree(u) < m {
		// Degree-proportional draw by prefix walk over the eligible mass.
		// O(N) per draw is fine at event rate; duplicates resample.
		r := src.Intn(total)
		t := -1
		for v := 0; v < u; v++ {
			if !ok(v) {
				continue
			}
			if d := g.Degree(v); d > 0 {
				if r < d {
					t = v
					break
				}
				r -= d
			}
		}
		if t < 0 || g.HasEdge(u, t) {
			continue
		}
		g.AddEdge(u, t) //nolint:errcheck // endpoints validated above
		total++         // the target's degree just grew; keep the mass exact
	}
	return u
}

// MustPA is PreferentialAttachment that panics on config error; convenient in
// tests and benchmarks where the config is a literal.
func MustPA(n, m int, seed uint64) *Graph {
	g, err := PreferentialAttachment(PAConfig{N: n, M: m, Seed: seed})
	if err != nil {
		panic(err)
	}
	return g
}

// Ring returns a cycle on n nodes; a useful worst-ish case for push gossip
// and a simple fixture for tests.
func Ring(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		if err := g.AddEdge(u, (u+1)%n); err != nil && n > 2 {
			panic(err)
		}
	}
	return g
}

// Complete returns the complete graph K_n, the topology assumed by the
// push-sum analysis in Kempe et al. that the paper builds on.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Star returns a star with node 0 at the centre — the extreme power-node
// case motivating differential push.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(0, v); err != nil {
			panic(err)
		}
	}
	return g
}

// ErdosRenyi returns a G(n,p) random graph, used as a non-power-law contrast
// topology in ablation benchmarks.
func ErdosRenyi(n int, p float64, seed uint64) *Graph {
	src := rng.New(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Bool(p) {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}
