// Package graph provides the network substrate for the differential gossip
// simulator: an undirected simple graph with adjacency lists, a preferential
// attachment (Barabási–Albert) generator producing the power-law topologies
// the paper evaluates on, and structural analysis helpers (degree
// distribution, power-law exponent fit, BFS, components, diameter).
package graph

import (
	"fmt"
	"sort"

	"diffgossip/internal/rng"
)

// Graph is an undirected simple graph on nodes 0..N-1. The zero value is an
// empty graph; use New to pre-size.
type Graph struct {
	adj [][]int
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]int, n)}
}

// FromEdges builds a graph on n nodes from an edge list. Duplicate and
// self-loop edges are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// AddNode appends an isolated node and returns its id.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge (u,v). It returns an error for
// out-of-range endpoints, self loops, and duplicate edges.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether (u,v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	// Scan the shorter list.
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns deg(u).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for i, nbrs := range g.adj {
		out[i] = len(nbrs)
	}
	return out
}

// Edges returns every undirected edge once, with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for u, nbrs := range g.adj {
		c.adj[u] = append([]int(nil), nbrs...)
	}
	return c
}

// Validate checks structural invariants: symmetric adjacency, no self loops,
// no duplicates, indices in range. It is used by tests and by generators.
func (g *Graph) Validate() error {
	for u, nbrs := range g.adj {
		seen := make(map[int]bool, len(nbrs))
		for _, v := range nbrs {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			if seen[v] {
				return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
			}
			seen[v] = true
			found := false
			for _, w := range g.adj[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, v)
			}
		}
	}
	return nil
}

// AvgNeighborDegree returns the mean degree of u's neighbours, or 0 when u is
// isolated. Differential gossip sizes each node's push fan-out by the ratio
// of its own degree to this quantity.
func (g *Graph) AvgNeighborDegree(u int) float64 {
	nbrs := g.adj[u]
	if len(nbrs) == 0 {
		return 0
	}
	sum := 0
	for _, v := range nbrs {
		sum += len(g.adj[v])
	}
	return float64(sum) / float64(len(nbrs))
}

// DifferentialK returns the paper's per-node push fan-out
// k_i = round(deg_i / avgNeighborDeg_i) clamped below at 1 (§4.1.1: the ratio
// is rounded to the nearest integer when k >= 1, and taken as 1 otherwise).
func (g *Graph) DifferentialK(u int) int {
	avg := g.AvgNeighborDegree(u)
	if avg == 0 {
		return 1
	}
	k := float64(g.Degree(u)) / avg
	if k < 1 {
		return 1
	}
	// Round half up, matching the paper's "round off to nearest integer".
	return int(k + 0.5)
}

// DifferentialKs returns DifferentialK for every node.
func (g *Graph) DifferentialKs() []int {
	out := make([]int, g.N())
	for u := range out {
		out[u] = g.DifferentialK(u)
	}
	return out
}

// RandomNeighbor returns a uniformly random neighbour of u, or -1 if u is
// isolated.
func (g *Graph) RandomNeighbor(u int, src *rng.Source) int {
	nbrs := g.adj[u]
	if len(nbrs) == 0 {
		return -1
	}
	return nbrs[src.Intn(len(nbrs))]
}

// RandomNeighbors returns k neighbours of u chosen uniformly at random
// without replacement (all of them if k >= deg(u)).
func (g *Graph) RandomNeighbors(u, k int, src *rng.Source) []int {
	if len(g.adj[u]) == 0 || k <= 0 {
		return nil
	}
	c := k
	if d := len(g.adj[u]); c > d {
		c = d
	}
	return g.AppendRandomNeighbors(make([]int, 0, c), u, k, src)
}

// AppendRandomNeighbors appends k neighbours of u chosen uniformly at random
// without replacement (all of them if k >= deg(u)) to dst and returns the
// extended slice. It consumes exactly the same draws as RandomNeighbors, so
// engines can switch between the two without perturbing a seeded run, and it
// allocates nothing when dst has enough capacity — the gossip hot path calls
// it once per active node per step with a reused scratch buffer.
func (g *Graph) AppendRandomNeighbors(dst []int, u, k int, src *rng.Source) []int {
	nbrs := g.adj[u]
	if len(nbrs) == 0 || k <= 0 {
		return dst
	}
	base := len(dst)
	dst = src.SampleInto(dst, len(nbrs), k)
	for i := base; i < len(dst); i++ {
		dst[i] = nbrs[dst[i]]
	}
	return dst
}
