// Package rank provides the reputation-ranking layer GossipTrust [17] pairs
// with gossip aggregation and the paper cites as the efficient-ranking
// architecture: a Bloom filter per reputation bucket, so a node can test
// "is peer j in the top bucket?" in O(hashes) with a few bytes per peer
// instead of shipping full sorted vectors, plus an exact top-k selector for
// the experiments.
package rank

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Bloom is a fixed-size Bloom filter over peer ids.
type Bloom struct {
	bits   []uint64
	m      uint64 // number of bits
	hashes int
}

// NewBloom sizes a filter for n expected entries at the given false-positive
// rate.
func NewBloom(n int, fpRate float64) (*Bloom, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rank: bloom capacity %d", n)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("rank: false-positive rate %v out of (0,1)", fpRate)
	}
	// Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	mf := -float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)
	m := uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(mf / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{
		bits:   make([]uint64, (m+63)/64),
		m:      m,
		hashes: k,
	}, nil
}

// indices derives the k bit positions for id with double hashing over FNV-1a.
func (b *Bloom) indices(id int) []uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(id))
	h := fnv.New64a()
	h.Write(buf[:])
	h1 := h.Sum64()
	h.Write(buf[:])
	h2 := h.Sum64() | 1 // odd, so it cycles all positions
	out := make([]uint64, b.hashes)
	for i := range out {
		out[i] = (h1 + uint64(i)*h2) % b.m
	}
	return out
}

// Add inserts a peer id.
func (b *Bloom) Add(id int) {
	for _, idx := range b.indices(id) {
		b.bits[idx/64] |= 1 << (idx % 64)
	}
}

// Contains reports (probabilistically) whether id was added. False positives
// occur at roughly the configured rate; false negatives never.
func (b *Bloom) Contains(id int) bool {
	for _, idx := range b.indices(id) {
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits (for overhead accounting).
func (b *Bloom) Bits() int { return int(b.m) }

// Ranking buckets a reputation vector into bands and answers membership
// queries through per-band Bloom filters — GossipTrust's space-efficient
// ranking structure.
type Ranking struct {
	cuts    []float64 // ascending band lower bounds, cuts[0] = 0
	filters []*Bloom
	counts  []int
}

// NewRanking builds a ranking from the reputation vector rep with the given
// band boundaries (ascending values in (0,1); e.g. {0.25, 0.5, 0.75} makes
// four bands). fpRate sizes the per-band Bloom filters.
func NewRanking(rep []float64, bounds []float64, fpRate float64) (*Ranking, error) {
	if len(rep) == 0 {
		return nil, fmt.Errorf("rank: empty reputation vector")
	}
	for i, b := range bounds {
		if b <= 0 || b >= 1 {
			return nil, fmt.Errorf("rank: bound %v out of (0,1)", b)
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("rank: bounds not ascending at %d", i)
		}
	}
	r := &Ranking{cuts: append([]float64{0}, bounds...)}
	r.filters = make([]*Bloom, len(r.cuts))
	r.counts = make([]int, len(r.cuts))
	for i := range r.filters {
		f, err := NewBloom(len(rep), fpRate)
		if err != nil {
			return nil, err
		}
		r.filters[i] = f
	}
	for id, v := range rep {
		band := r.bandOf(v)
		r.filters[band].Add(id)
		r.counts[band]++
	}
	return r, nil
}

// bandOf returns the band index containing value v.
func (r *Ranking) bandOf(v float64) int {
	band := 0
	for i := len(r.cuts) - 1; i >= 0; i-- {
		if v >= r.cuts[i] {
			band = i
			break
		}
	}
	return band
}

// NumBands returns the number of reputation bands.
func (r *Ranking) NumBands() int { return len(r.cuts) }

// BandCount returns how many peers landed in band i.
func (r *Ranking) BandCount(i int) int { return r.counts[i] }

// InBand reports (probabilistically) whether peer id is in band i.
func (r *Ranking) InBand(id, band int) bool {
	if band < 0 || band >= len(r.filters) {
		return false
	}
	return r.filters[band].Contains(id)
}

// BandOfPeer scans bands from the top and returns the first band whose
// filter contains id (the Bloom false-positive rate applies).
func (r *Ranking) BandOfPeer(id int) int {
	for band := len(r.filters) - 1; band >= 0; band-- {
		if r.filters[band].Contains(id) {
			return band
		}
	}
	return 0
}

// TopK returns the ids of the k highest-reputation peers (exact, ties broken
// by lower id), used by the experiments to cross-check the filter answers.
func TopK(rep []float64, k int) []int {
	ids := make([]int, len(rep))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if rep[ids[a]] != rep[ids[b]] {
			return rep[ids[a]] > rep[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}
