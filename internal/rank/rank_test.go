package rank

import (
	"testing"
	"testing/quick"

	"diffgossip/internal/rng"
)

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom(0, 0.01); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewBloom(10, 0); err == nil {
		t.Fatal("fp rate 0 accepted")
	}
	if _, err := NewBloom(10, 1); err == nil {
		t.Fatal("fp rate 1 accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		b, err := NewBloom(200, 0.01)
		if err != nil {
			return false
		}
		var added []int
		for i := 0; i < 200; i++ {
			id := src.Intn(1 << 20)
			b.Add(id)
			added = append(added, id)
		}
		for _, id := range added {
			if !b.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b, err := NewBloom(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		b.Add(i)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.Contains(1_000_000 + i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %v, want ~0.01", rate)
	}
}

func TestBloomSizing(t *testing.T) {
	small, _ := NewBloom(100, 0.01)
	large, _ := NewBloom(10000, 0.01)
	if large.Bits() <= small.Bits() {
		t.Fatal("bigger capacity did not grow the filter")
	}
}

func TestRankingValidation(t *testing.T) {
	rep := []float64{0.1, 0.9}
	if _, err := NewRanking(nil, []float64{0.5}, 0.01); err == nil {
		t.Fatal("empty reputation accepted")
	}
	if _, err := NewRanking(rep, []float64{0}, 0.01); err == nil {
		t.Fatal("bound 0 accepted")
	}
	if _, err := NewRanking(rep, []float64{0.5, 0.3}, 0.01); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

func TestRankingBandsAndCounts(t *testing.T) {
	rep := []float64{0.05, 0.3, 0.6, 0.95, 0.99, 0.1}
	r, err := NewRanking(rep, []float64{0.25, 0.5, 0.75}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBands() != 4 {
		t.Fatalf("bands = %d", r.NumBands())
	}
	wantCounts := []int{2, 1, 1, 2} // [0,.25): {0,5}; [.25,.5): {1}; [.5,.75): {2}; [.75,1]: {3,4}
	for i, want := range wantCounts {
		if got := r.BandCount(i); got != want {
			t.Fatalf("band %d count = %d, want %d", i, got, want)
		}
	}
	// Membership (no false negatives).
	if !r.InBand(3, 3) || !r.InBand(4, 3) {
		t.Fatal("top peers missing from top band")
	}
	if !r.InBand(0, 0) {
		t.Fatal("low peer missing from bottom band")
	}
	if r.InBand(0, -1) || r.InBand(0, 9) {
		t.Fatal("out-of-range band reported membership")
	}
}

func TestBandOfPeer(t *testing.T) {
	rep := make([]float64, 100)
	src := rng.New(3)
	for i := range rep {
		rep[i] = src.Float64()
	}
	r, err := NewRanking(rep, []float64{0.25, 0.5, 0.75}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for id, v := range rep {
		want := r.bandOf(v)
		if got := r.BandOfPeer(id); got != want {
			wrong++ // Bloom false positives in higher bands can misplace
		}
	}
	if wrong > 3 {
		t.Fatalf("%d/100 peers misplaced, expected ~0 at fp=1e-4", wrong)
	}
}

func TestTopK(t *testing.T) {
	rep := []float64{0.2, 0.9, 0.5, 0.9, 0.1}
	top := TopK(rep, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v, want [1 3 2]", top)
	}
	if got := TopK(rep, 99); len(got) != 5 {
		t.Fatalf("oversize k returned %d", len(got))
	}
	if got := TopK(rep, -1); len(got) != 0 {
		t.Fatalf("negative k returned %d", len(got))
	}
}

func TestTopKAgreesWithRankingTopBand(t *testing.T) {
	rep := make([]float64, 500)
	src := rng.New(9)
	for i := range rep {
		rep[i] = src.Float64()
	}
	r, err := NewRanking(rep, []float64{0.9}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	inTop := 0
	for _, v := range rep {
		if v >= 0.9 {
			inTop++
		}
	}
	for _, id := range TopK(rep, inTop) {
		if !r.InBand(id, 1) {
			t.Fatalf("top-k peer %d (rep %v) not in top band", id, rep[id])
		}
	}
}
