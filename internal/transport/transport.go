// Package transport provides the message-passing layer under the networked
// gossip agent (internal/agent): a Transport abstraction with two
// implementations — an in-memory channel hub for tests and simulations, and a
// TCP implementation (gob-framed, persistent connections) for running real
// distributed peers.
//
// Addresses are opaque strings: peer names for the channel hub, host:port for
// TCP.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Message is the unit of exchange between agents. Payload fields cover every
// message the differential gossip protocol and the cluster anti-entropy
// exchange need; Kind discriminates.
type Message struct {
	// From is the sender's address.
	From string
	// Kind discriminates the payload.
	Kind Kind
	// Subject identifies which reputation subject a gossip pair concerns.
	Subject int
	// Y, G are the gossip pair masses (KindPair).
	Y, G float64
	// Count is the optional rater-count mass (KindPair).
	Count float64
	// Degree is the sender's overlay degree (KindDegree).
	Degree int
	// Converged is the sender's convergence flag (KindConverged).
	Converged bool
	// Watermarks, on a KindDigest message, maps origin node ids to the
	// highest origin sequence number the sender has applied; the receiver
	// answers with KindEntries batches for every origin it knows more of.
	Watermarks map[string]uint64
	// Origin and After frame a KindEntries batch: every entry in Entries
	// belongs to the feedback stream first accepted by the node Origin, and
	// the batch contiguously extends that stream past origin sequence number
	// After. A receiver whose watermark for Origin is below After must
	// discard the batch (a gap — an earlier batch was lost) and re-pull on
	// the next digest exchange.
	Origin string
	After  uint64
	// Entries is the replicated feedback batch (KindEntries), in strictly
	// ascending OriginSeq order.
	Entries []FeedbackEntry
	// View, on a KindDigest message, piggybacks the sender's membership
	// view: every peer it knows of, with the freshest (incarnation,
	// heartbeat) pair it has observed. Receivers merge the view to discover
	// peers transitively from a single seed.
	View []PeerView
	// State is the bootstrap payload of a KindState message (nil on every
	// other kind). Watermarks doubles as the requester's marks on a
	// KindStateRequest message.
	State *StatePayload
}

// StatePayload is the body of a snapshot-shipped bootstrap (KindState): the
// sender's folded shard segments plus its retained ledger suffix, everything
// a fresh or deeply lagging replica needs to converge in O(state) instead of
// replaying whole origin streams.
type StatePayload struct {
	// N is the network size the segments cover; Shards is their layout.
	N, Shards int
	// Segments holds one encoded shard snapshot per shard (the gob framing
	// store.ShardSnapshot.Save writes), indexed by shard.
	Segments [][]byte
	// Folded are retained entries already reflected in Segments; Tail are
	// entries past the segments' fold points. Both in per-origin ascending
	// order, every entry origin-stamped.
	Folded []StateEntry
	Tail   []StateEntry
	// Marks are the sender's per-origin watermarks at capture time, keyed by
	// origin id (the sender's own stream under its id).
	Marks map[string]uint64
}

// StateEntry is one ledger entry inside a state transfer. Unlike a
// KindEntries batch — which carries one origin on the enclosing Message — a
// state transfer mixes streams, so each entry is origin-stamped itself.
type StateEntry struct {
	// Origin is the node id whose ledger first accepted the entry; OriginSeq
	// is the sequence number that ledger assigned.
	Origin    string
	OriginSeq uint64
	// Rater and Subject are node ids; Value is the direct trust t_ij ∈ [0,1].
	Rater, Subject int
	Value          float64
	// UnixNano is the ingest wall-clock time at the origin (0 when unknown).
	UnixNano int64
}

// PeerView is one row of a gossiped membership view. Liveness is ordered by
// (Incarnation, Heartbeat): a peer's own heartbeat increases while it runs,
// and its incarnation increases across restarts, so the pair advances
// monotonically for a live peer and stalls forever for a dead one.
type PeerView struct {
	// ID is the peer's cluster identity (its transport address).
	ID string
	// Addr is where the peer can be reached; today always equal to ID, kept
	// separate so identity can outlive an address change.
	Addr string
	// Incarnation counts the peer's process restarts.
	Incarnation uint64
	// Heartbeat counts the peer's anti-entropy exchanges within one
	// incarnation.
	Heartbeat uint64
}

// FeedbackEntry is the wire form of one replicated feedback ledger entry: the
// rating itself plus the sequence number its origin's ledger assigned it. The
// (Origin, OriginSeq) pair — Origin rides on the enclosing Message — globally
// identifies the entry, which is what makes replicated application
// idempotent.
type FeedbackEntry struct {
	// OriginSeq is the sequence number the origin node's ledger assigned.
	OriginSeq uint64
	// Rater and Subject are node ids; Value is the direct trust t_ij ∈ [0,1].
	Rater, Subject int
	Value          float64
	// UnixNano is the ingest wall-clock time at the origin (0 when unknown).
	UnixNano int64
}

// Kind enumerates protocol message types.
type Kind int

const (
	// KindDegree announces the sender's degree (protocol setup).
	KindDegree Kind = iota
	// KindPair carries a gossip share.
	KindPair
	// KindConverged announces or revokes convergence.
	KindConverged
	// KindFeedback carries a direct-trust feedback value (Algorithm 2's
	// neighbour feedback phase).
	KindFeedback
	// KindDigest carries a cluster node's per-origin ledger watermarks — the
	// "send me everything past seq S" half of the anti-entropy pull.
	KindDigest
	// KindEntries carries a batch of replicated feedback ledger entries
	// answering a digest.
	KindEntries
	// KindStateRequest asks a peer for a full bootstrap state transfer; the
	// message's Watermarks carry the requester's per-origin marks so the
	// reply ships only what the requester is missing.
	KindStateRequest
	// KindState answers a state request with a StatePayload — folded shard
	// segments plus the retained ledger suffix.
	KindState
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDegree:
		return "degree"
	case KindPair:
		return "pair"
	case KindConverged:
		return "converged"
	case KindFeedback:
		return "feedback"
	case KindDigest:
		return "digest"
	case KindEntries:
		return "entries"
	case KindStateRequest:
		return "state-request"
	case KindState:
		return "state"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Transport moves messages between agents.
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send delivers msg to the endpoint at addr. Implementations stamp
	// msg.From with this endpoint's address.
	Send(addr string, msg Message) error
	// Inbox returns the stream of received messages. The channel closes
	// when the transport closes.
	Inbox() <-chan Message
	// Close releases resources and closes the inbox.
	Close() error
}

// FailureReporter is implemented by transports that track consecutive send
// failures per peer (today the TCP transport's dial-backoff counters).
// Consumers type-assert on it to surface link health in their stats.
type FailureReporter interface {
	// ConsecutiveFailures maps peer address to the number of consecutive
	// failed connection attempts; healthy peers are omitted.
	ConsecutiveFailures() map[string]int
}

// Hub is an in-memory switchboard connecting ChannelTransport endpoints by
// name. Safe for concurrent use.
type Hub struct {
	mu        sync.RWMutex
	endpoints map[string]*ChannelTransport
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{endpoints: make(map[string]*ChannelTransport)}
}

// Endpoint registers (or returns the existing) endpoint with the given name.
func (h *Hub) Endpoint(name string) (*ChannelTransport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.endpoints[name]; exists {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	ep := &ChannelTransport{
		hub:   h,
		name:  name,
		inbox: make(chan Message, 1024),
	}
	h.endpoints[name] = ep
	return ep, nil
}

// deliver routes a message to the named endpoint.
func (h *Hub) deliver(to string, msg Message) error {
	h.mu.RLock()
	ep, ok := h.endpoints[to]
	h.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: unknown endpoint %q", to)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return ErrClosed
	}
	ep.inbox <- msg
	return nil
}

// remove unregisters a closed endpoint.
func (h *Hub) remove(name string) {
	h.mu.Lock()
	delete(h.endpoints, name)
	h.mu.Unlock()
}

// ChannelTransport is a Hub endpoint.
type ChannelTransport struct {
	hub   *Hub
	name  string
	inbox chan Message

	mu     sync.Mutex
	closed bool
}

// Addr returns the endpoint name.
func (c *ChannelTransport) Addr() string { return c.name }

// Send delivers msg to the named endpoint via the hub.
func (c *ChannelTransport) Send(addr string, msg Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	msg.From = c.name
	return c.hub.deliver(addr, msg)
}

// Inbox returns the receive stream.
func (c *ChannelTransport) Inbox() <-chan Message { return c.inbox }

// Close unregisters the endpoint and closes the inbox.
func (c *ChannelTransport) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.hub.remove(c.name)
	close(c.inbox)
	return nil
}
