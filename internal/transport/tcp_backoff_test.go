package transport

import (
	"errors"
	"testing"
	"time"
)

// TestTCPDialBackoff pins the reconnect-backoff contract: a failed dial opens
// a backoff window during which further sends fail fast with ErrBackoff
// (no second dial), the failure count is visible through
// ConsecutiveFailures, and a successful dial after the window resets both.
func TestTCPDialBackoff(t *testing.T) {
	sender, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Reserve an address and close it so nothing listens there.
	ghost, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ghost.Addr()
	ghost.Close()

	if err := sender.Send(addr, Message{Kind: KindDigest}); err == nil {
		t.Fatal("send to dead address succeeded")
	} else if errors.Is(err, ErrBackoff) {
		t.Fatalf("first failure already in backoff: %v", err)
	}
	if got := sender.ConsecutiveFailures()[addr]; got != 1 {
		t.Fatalf("failures after first dial = %d, want 1", got)
	}

	// Inside the window (at least dialBackoffBase/2) the send must fail fast
	// without dialling.
	if err := sender.Send(addr, Message{Kind: KindDigest}); !errors.Is(err, ErrBackoff) {
		t.Fatalf("send inside backoff window: %v, want ErrBackoff", err)
	}
	if got := sender.ConsecutiveFailures()[addr]; got != 1 {
		t.Fatalf("fast-fail counted as a dial attempt: failures = %d", got)
	}

	// Revive the peer and wait out the first window (full base, jitter keeps
	// it below that); the next send dials, succeeds and resets the counters.
	reborn, err := ListenTCP(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer reborn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := sender.Send(addr, Message{Kind: KindDigest, Subject: 7}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send never succeeded after peer revival")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := sender.ConsecutiveFailures()[addr]; got != 0 {
		t.Fatalf("failures not reset after successful dial: %d", got)
	}
	select {
	case msg := <-reborn.Inbox():
		if msg.Subject != 7 {
			t.Fatalf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revived peer received nothing")
	}
}
