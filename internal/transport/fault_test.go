package transport

import (
	"testing"
)

// faultPair builds two hub endpoints with a fault injector on a's send side.
func faultPair(t *testing.T, seed uint64) (*Fault, *ChannelTransport) {
	t.Helper()
	hub := NewHub()
	a, err := hub.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	return NewFault(a, seed), b
}

func drain(b *ChannelTransport) int {
	n := 0
	for {
		select {
		case <-b.Inbox():
			n++
		default:
			return n
		}
	}
}

func TestFaultTransparentByDefault(t *testing.T) {
	fa, b := faultPair(t, 1)
	defer fa.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", Message{Kind: KindPair, Subject: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(b); got != 10 {
		t.Fatalf("delivered %d of 10 with no faults", got)
	}
	if d, p, h := fa.Stats(); d+p+h != 0 {
		t.Fatalf("fault tallies nonzero on clean run: %d/%d/%d", d, p, h)
	}
	if fa.Addr() != "a" {
		t.Fatalf("Addr = %q", fa.Addr())
	}
}

func TestFaultDropProbability(t *testing.T) {
	fa, b := faultPair(t, 2)
	defer fa.Close()
	defer b.Close()
	fa.SetDropProb(1)
	for i := 0; i < 25; i++ {
		if err := fa.Send("b", Message{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(b); got != 0 {
		t.Fatalf("%d messages leaked through a 100%% drop link", got)
	}
	if d, _, _ := fa.Stats(); d != 25 {
		t.Fatalf("dropped tally %d, want 25", d)
	}
}

func TestFaultPartitionAndHeal(t *testing.T) {
	fa, b := faultPair(t, 3)
	defer fa.Close()
	defer b.Close()
	fa.SetPartition(map[string]int{"a": 0, "b": 1})
	if err := fa.Send("b", Message{}); err != nil {
		t.Fatal(err)
	}
	if got := drain(b); got != 0 {
		t.Fatal("message crossed a partition")
	}
	if _, p, _ := fa.Stats(); p != 1 {
		t.Fatalf("partition tally %d, want 1", p)
	}
	fa.SetPartition(nil) // heal
	if err := fa.Send("b", Message{}); err != nil {
		t.Fatal(err)
	}
	if got := drain(b); got != 1 {
		t.Fatal("message lost after heal")
	}
}

func TestFaultDelayReleasedOnTick(t *testing.T) {
	fa, b := faultPair(t, 4)
	defer fa.Close()
	defer b.Close()
	fa.SetDelayProb(1)
	for i := 0; i < 5; i++ {
		if err := fa.Send("b", Message{Subject: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(b); got != 0 {
		t.Fatalf("%d delayed messages arrived before Tick", got)
	}
	fa.SetDelayProb(0)
	if err := fa.Tick(); err != nil {
		t.Fatal(err)
	}
	// Held messages come out in send order.
	for i := 0; i < 5; i++ {
		m := <-b.Inbox()
		if m.Subject != i {
			t.Fatalf("delayed delivery out of order: got subject %d at slot %d", m.Subject, i)
		}
	}
}

func TestFaultDeterministicSchedule(t *testing.T) {
	outcome := func(seed uint64) []bool {
		fa, b := faultPair(t, seed)
		defer fa.Close()
		defer b.Close()
		fa.SetDropProb(0.5)
		out := make([]bool, 40)
		for i := range out {
			if err := fa.Send("b", Message{}); err != nil {
				t.Fatal(err)
			}
			out[i] = drain(b) == 1
		}
		return out
	}
	a, b2 := outcome(7), outcome(7)
	diff := false
	for i := range a {
		if a[i] != b2[i] {
			diff = true
		}
	}
	if diff {
		t.Fatal("same seed produced different fault schedules")
	}
	c := outcome(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 40-send fault schedules")
	}
}
