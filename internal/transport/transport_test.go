package transport

import (
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindDegree, KindPair, KindConverged, KindFeedback, Kind(42)} {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}

func TestHubRoundTrip(t *testing.T) {
	h := NewHub()
	a, err := h.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() != "a" {
		t.Fatalf("Addr = %q", a.Addr())
	}
	if err := a.Send("b", Message{Kind: KindPair, Subject: 3, Y: 1.5, G: 0.5}); err != nil {
		t.Fatal(err)
	}
	msg := <-b.Inbox()
	if msg.From != "a" || msg.Y != 1.5 || msg.G != 0.5 || msg.Subject != 3 {
		t.Fatalf("received %+v", msg)
	}
}

func TestHubDuplicateRegistration(t *testing.T) {
	h := NewHub()
	if _, err := h.Endpoint("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Endpoint("x"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestHubUnknownDestination(t *testing.T) {
	h := NewHub()
	a, _ := h.Endpoint("a")
	if err := a.Send("ghost", Message{}); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestChannelTransportClose(t *testing.T) {
	h := NewHub()
	a, _ := h.Endpoint("a")
	b, _ := h.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := a.Send("b", Message{}); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	if err := b.Send("a", Message{}); err != ErrClosed {
		t.Fatalf("send from closed endpoint: %v", err)
	}
	if _, ok := <-b.Inbox(); ok {
		t.Fatal("inbox not closed")
	}
	// Name is free for reuse after close.
	if _, err := h.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	want := Message{Kind: KindPair, Subject: 7, Y: 0.25, G: 0.75, Count: 2}
	if err := a.Send(b.Addr(), want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Inbox():
		if got.From != a.Addr() || got.Y != want.Y || got.G != want.G || got.Count != want.Count || got.Subject != 7 {
			t.Fatalf("received %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for TCP message")
	}
}

func TestTCPMultipleMessagesOneConnection(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), Message{Kind: KindPair, Subject: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case got := <-b.Inbox():
			if got.Subject != i {
				t.Fatalf("message %d arrived with subject %d (order broken)", i, got.Subject)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at message %d", i)
		}
	}
}

func TestTCPSendToDeadPeerFails(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("127.0.0.1:1", Message{}); err == nil {
		t.Fatal("send to dead address succeeded")
	}
}

func TestTCPCloseIdempotentAndRejectsSend(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := a.Send("127.0.0.1:1", Message{}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox not closed after Close")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baddr := b.Addr()
	if err := a.Send(baddr, Message{Subject: 1}); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	b.Close()
	// Restart a listener on the same port.
	b2, err := ListenTCP(baddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", baddr, err)
	}
	defer b2.Close()
	// The first sends after the restart may be buffered into the dead
	// socket before TCP reports the reset — gossip tolerates that loss.
	// Keep sending until one message arrives on the new listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = a.Send(baddr, Message{Subject: 2})
		select {
		case got := <-b2.Inbox():
			if got.Subject != 2 {
				t.Fatalf("got %+v", got)
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no message delivered after reconnect")
		}
	}
}
