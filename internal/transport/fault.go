package transport

import (
	"errors"
	"sync"

	"diffgossip/internal/rng"
)

// ErrDropped is returned by a Fault in report mode when a send is dropped
// by probability or partition — the transport-level analogue of the gossip
// engines' missing-ack signal, letting a protocol re-absorb the lost share.
var ErrDropped = errors.New("transport: dropped by fault injection")

// Fault wraps any Transport and injects deterministic link-level faults on
// the send path: probabilistic packet drop, partitions (cross-cell sends
// fail silently, like a timed-out link), and probabilistic delivery delay
// (messages are held until the next Tick, modelling reordering across round
// boundaries). All randomness comes from one seeded rng.Source, so a test
// or scenario that performs the same sends in the same order observes the
// same faults on every run.
//
// Drops and partitions are silent — Send returns nil, as a real datagram
// push would — because the gossip protocol's loss recovery is driven by the
// *absence* of acks, not by transport errors. The tallies expose what was
// injected.
type Fault struct {
	inner Transport

	mu      sync.Mutex
	src     *rng.Source
	drop    float64
	delay   float64
	report  bool               // drops return ErrDropped instead of nil
	faulty  func(Message) bool // nil = every message is subject to faults
	cells   map[string]int     // partition cell per address; missing = cell 0
	link    func(from, to string) bool
	delayed []heldSend

	dropped     int
	partitioned int
	held        int
}

type heldSend struct {
	addr string
	msg  Message
}

// NewFault wraps inner with a fault injector drawing from seed. With all
// fault knobs at zero it is a transparent proxy.
func NewFault(inner Transport, seed uint64) *Fault {
	return &Fault{inner: inner, src: rng.New(seed)}
}

// SetDropProb sets the probability that any single Send is silently dropped.
func (f *Fault) SetDropProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop = p
}

// SetDelayProb sets the probability that a surviving Send is held back until
// the next Tick instead of being delivered immediately.
func (f *Fault) SetDelayProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = p
}

// ReportDrops switches drop and partition faults from silent loss (datagram
// semantics: Send returns nil and the mass is gone) to reported loss (ack
// semantics: Send returns ErrDropped, so a push-sum sender re-absorbs the
// share and mass is conserved — the model the paper's §5.3 recovery and the
// engines' loss handling assume). Delayed sends are unaffected; they are
// delivered eventually.
func (f *Fault) ReportDrops(report bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.report = report
}

// SetFilter restricts fault injection to messages for which faulty returns
// true; others pass through untouched (nil, the default, faults all). The
// paper's loss model applies to gossip pushes but assumes a reliable
// control plane (degree exchange, convergence announcements), so protocol
// tests typically filter on KindPair.
func (f *Fault) SetFilter(faulty func(Message) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faulty = faulty
}

// SetPartition installs a partition: each address maps to a cell, missing
// addresses are cell 0, and sends between different cells are silently
// dropped. Passing nil heals the partition.
func (f *Fault) SetPartition(cells map[string]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cells = cells
}

// SetLinkFault installs an arbitrary pairwise fault: sends from this
// endpoint to addr are dropped while down(self, addr) returns true. It
// composes with SetPartition (either dropping suffices) and generalises it —
// asymmetric faults (A reaches B but not vice versa) need a Fault wrapper on
// each side with its own predicate. Passing nil heals the fault.
func (f *Fault) SetLinkFault(down func(from, to string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.link = down
}

// Tick releases every held (delayed) message to the inner transport in the
// order it was sent, returning the first delivery error. Call it at round
// boundaries.
func (f *Fault) Tick() error {
	f.mu.Lock()
	batch := f.delayed
	f.delayed = nil
	f.mu.Unlock()
	for _, h := range batch {
		if err := f.inner.Send(h.addr, h.msg); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the running injection tallies: sends dropped by probability,
// sends dropped by partition, and sends delayed.
func (f *Fault) Stats() (dropped, partitioned, delayed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.partitioned, f.held
}

// Addr returns the wrapped endpoint's address.
func (f *Fault) Addr() string { return f.inner.Addr() }

// Inbox returns the wrapped endpoint's receive stream. Incoming messages are
// not faulted — model a lossy link by wrapping the sender side.
func (f *Fault) Inbox() <-chan Message { return f.inner.Inbox() }

// Close closes the wrapped transport, discarding any held messages.
func (f *Fault) Close() error {
	f.mu.Lock()
	f.delayed = nil
	f.mu.Unlock()
	return f.inner.Close()
}

// Send applies the fault schedule to one message. Dropped and partitioned
// sends return nil (silent loss) or ErrDropped in report mode; delayed
// sends are queued for Tick.
func (f *Fault) Send(addr string, msg Message) error {
	f.mu.Lock()
	if f.faulty != nil && !f.faulty(msg) {
		f.mu.Unlock()
		return f.inner.Send(addr, msg)
	}
	if f.drop > 0 && f.src.Bool(f.drop) {
		f.dropped++
		report := f.report
		f.mu.Unlock()
		if report {
			return ErrDropped
		}
		return nil
	}
	cut := f.cells != nil && f.cells[f.inner.Addr()] != f.cells[addr]
	if !cut && f.link != nil && f.link(f.inner.Addr(), addr) {
		cut = true
	}
	if cut {
		f.partitioned++
		report := f.report
		f.mu.Unlock()
		if report {
			return ErrDropped
		}
		return nil
	}
	if f.delay > 0 && f.src.Bool(f.delay) {
		f.held++
		f.delayed = append(f.delayed, heldSend{addr: addr, msg: msg})
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	return f.inner.Send(addr, msg)
}
