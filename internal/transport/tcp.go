package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"diffgossip/internal/obs"
)

// dialTimeout bounds every outbound connection attempt so a blackholed peer
// (SYN dropped, no RST) fails the Send instead of wedging the sender — and,
// through it, everything serialised behind that peer's outConn mutex.
const dialTimeout = 5 * time.Second

// Reconnect dials back off exponentially from dialBackoffBase to
// dialBackoffCap with multiplicative jitter, so a dead peer is not re-dialled
// at full rate by every exchange tick and restarted clusters do not dial in
// lockstep.
const (
	dialBackoffBase = 250 * time.Millisecond
	dialBackoffCap  = 30 * time.Second
)

// ErrBackoff is returned by Send while a peer is inside its reconnect
// backoff window: the send fails fast without burning a dial on a peer that
// just refused one. Callers treat it like any other send failure.
var ErrBackoff = errors.New("transport: peer in dial backoff")

// TCPTransport implements Transport over TCP with gob framing. Each outbound
// peer gets one persistent connection, dialled lazily and redialled once on
// send failure. Inbound connections are served until the transport closes.
type TCPTransport struct {
	listener net.Listener
	inbox    chan Message

	mu      sync.Mutex
	conns   map[string]*outConn
	inbound map[net.Conn]struct{}
	closed  bool

	m tcpMetrics

	wg sync.WaitGroup
}

// tcpMetrics are the transport's observability counters — maintained
// unconditionally (atomic increments), exposed by Instrument.
type tcpMetrics struct {
	sends        obs.Counter // Send calls
	sendFailures obs.Counter // Send calls that returned an error
	dials        obs.Counter // dial attempts actually issued
	dialFailures obs.Counter // dial attempts that failed
	backoffRejds obs.Counter // sends rejected inside a backoff window
}

type outConn struct {
	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	failures int       // consecutive dial failures since the last success
	retryAt  time.Time // no dial before this instant (zero = dial freely)
	m        *tcpMetrics
}

// Instrument registers the transport's send/dial/backoff counters with reg.
// Call once per registry, before serving.
func (t *TCPTransport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("diffgossip_transport_sends_total", "",
		"Messages handed to the TCP transport for delivery.", &t.m.sends)
	reg.Counter("diffgossip_transport_send_failures_total", "",
		"Sends that failed (dial errors, broken connections, backoff rejections).", &t.m.sendFailures)
	reg.Counter("diffgossip_transport_dials_total", "",
		"Outbound TCP dial attempts issued.", &t.m.dials)
	reg.Counter("diffgossip_transport_dial_failures_total", "",
		"Outbound TCP dial attempts that failed.", &t.m.dialFailures)
	reg.Counter("diffgossip_transport_backoff_rejections_total", "",
		"Sends rejected fast because the peer was inside its dial-backoff window.", &t.m.backoffRejds)
}

// ListenTCP starts a transport bound to addr ("127.0.0.1:0" picks a free
// port; read the actual address back with Addr).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		listener: ln,
		inbox:    make(chan Message, 1024),
		conns:    make(map[string]*outConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// Inbox returns the receive stream.
func (t *TCPTransport) Inbox() <-chan Message { return t.inbox }

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCPTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- msg:
		default:
			// Inbox full: drop rather than block the network; gossip
			// tolerates loss by design (the sender's mass share is
			// gone, but the agent layer sends copies of state, not
			// mass — see agent package).
		}
	}
}

// Send gobs msg to the peer at addr, dialling (or redialling once) as needed.
func (t *TCPTransport) Send(addr string, msg Message) error {
	t.m.sends.Inc()
	err := t.send(addr, msg)
	if err != nil {
		t.m.sendFailures.Inc()
	}
	return err
}

func (t *TCPTransport) send(addr string, msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	oc, ok := t.conns[addr]
	if !ok {
		oc = &outConn{m: &t.m}
		t.conns[addr] = oc
	}
	t.mu.Unlock()

	msg.From = t.Addr()
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.conn == nil {
		if err := oc.dial(addr); err != nil {
			return err
		}
	}
	if err := oc.enc.Encode(msg); err != nil {
		// One reconnect attempt: the peer may have restarted.
		if derr := oc.dial(addr); derr != nil {
			return fmt.Errorf("transport: send to %s: %w (redial: %v)", addr, err, derr)
		}
		return oc.enc.Encode(msg)
	}
	return nil
}

// ConsecutiveFailures reports, per peer address, how many dial attempts have
// failed in a row since the last successful connection. Healthy or untried
// peers are omitted.
func (t *TCPTransport) ConsecutiveFailures() map[string]int {
	t.mu.Lock()
	conns := make(map[string]*outConn, len(t.conns))
	for addr, oc := range t.conns {
		conns[addr] = oc
	}
	t.mu.Unlock()
	out := make(map[string]int)
	for addr, oc := range conns {
		oc.mu.Lock()
		if oc.failures > 0 {
			out[addr] = oc.failures
		}
		oc.mu.Unlock()
	}
	return out
}

// dial (re)connects to addr under the backoff schedule: inside the window it
// fails fast with ErrBackoff; a failed attempt doubles the window (with
// jitter, capped); a success resets it.
func (oc *outConn) dial(addr string) error {
	if oc.conn != nil {
		oc.conn.Close()
		oc.conn, oc.enc = nil, nil
	}
	if !oc.retryAt.IsZero() && time.Now().Before(oc.retryAt) {
		oc.m.backoffRejds.Inc()
		return fmt.Errorf("transport: dial %s: %w", addr, ErrBackoff)
	}
	oc.m.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		oc.m.dialFailures.Inc()
		oc.failures++
		backoff := dialBackoffBase << min(oc.failures-1, 62)
		if backoff <= 0 || backoff > dialBackoffCap {
			backoff = dialBackoffCap
		}
		// Jitter into [backoff/2, backoff) so peers don't redial in step.
		backoff = backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		oc.retryAt = time.Now().Add(backoff)
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	oc.failures, oc.retryAt = 0, time.Time{}
	oc.conn = conn
	oc.enc = gob.NewEncoder(conn)
	return nil
}

// Close shuts the listener, all connections and the inbox.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*outConn{}
	for conn := range t.inbound {
		conn.Close() // unblocks the serveConn decoder
	}
	t.mu.Unlock()

	t.listener.Close()
	for _, oc := range conns {
		oc.mu.Lock()
		if oc.conn != nil {
			oc.conn.Close()
		}
		oc.mu.Unlock()
	}
	t.wg.Wait()
	close(t.inbox)
	return nil
}
