package transport

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recvOne pulls the next message off t's inbox or fails after the deadline.
func recvOne(t *testing.T, tr *TCPTransport, within time.Duration) (Message, bool) {
	t.Helper()
	select {
	case msg, ok := <-tr.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return msg, true
	case <-time.After(within):
		return Message{}, false
	}
}

// TestTCPPeerRestartResumes is the reconnection contract: a peer that dies
// and comes back on the same address resumes receiving frames — the sender's
// cached connection fails its next encode, the one-shot redial replaces it,
// and no goroutine wedges in between.
func TestTCPPeerRestartResumes(t *testing.T) {
	sender, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := peer.Addr() // fixed for the whole test: the restart reuses it

	if err := sender.Send(addr, Message{Kind: KindPair, Subject: 1, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recvOne(t, peer, 2*time.Second); !ok || msg.Subject != 1 {
		t.Fatalf("first frame: ok=%v msg=%+v", ok, msg)
	}

	// The peer dies. Its sockets close; the sender still holds a cached
	// connection to it.
	if err := peer.Close(); err != nil {
		t.Fatal(err)
	}
	// …and restarts on the same address. The OS may need a moment to
	// release the port even with the listener closed; retry briefly.
	var reborn *TCPTransport
	for i := 0; i < 100; i++ {
		if reborn, err = ListenTCP(addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer reborn.Close()

	// Sends during/after the outage may fail while the kernel discovers the
	// dead connection (the first post-restart encode can even succeed into
	// a doomed socket buffer) — but within a bounded number of attempts the
	// redial path must land frames on the reborn peer.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for seq := 100; ; seq++ {
			if time.Now().After(deadline) {
				return
			}
			sender.Send(addr, Message{Kind: KindPair, Subject: seq, Y: 1})
			if _, ok := recvOne(t, reborn, 50*time.Millisecond); ok {
				return // the reborn peer is receiving again
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("sender never reached the restarted peer (deadlocked or redial broken)")
	}

	// Steady state after the restart: frames flow reliably again.
	if err := sender.Send(addr, Message{Kind: KindConverged, Converged: true}); err != nil {
		t.Fatalf("post-restart send: %v", err)
	}
	if msg, ok := recvOne(t, reborn, 2*time.Second); !ok || msg.Kind != KindConverged {
		t.Fatalf("post-restart frame: ok=%v msg=%+v", ok, msg)
	}
}

// TestTCPDeadPeerDoesNotDeadlockSenders drives many goroutines at a peer
// that is down the whole time: every Send must return an error promptly (no
// unbounded blocking on the per-peer connection mutex) and the transport
// must shut down cleanly afterwards.
func TestTCPDeadPeerDoesNotDeadlockSenders(t *testing.T) {
	sender, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	// Reserve an address and close it so nothing listens there.
	ghost, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ghost.Addr()
	ghost.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				errs[w] = sender.Send(addr, Message{Kind: KindPair, Subject: w})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("senders to a dead peer never returned")
	}
	for w, err := range errs {
		if err == nil {
			t.Fatalf("worker %d: send to dead peer reported success", w)
		}
		if !strings.Contains(err.Error(), addr) {
			t.Fatalf("worker %d: unhelpful error %v", w, err)
		}
	}
}
