// Package service turns the one-shot aggregation library into a long-running
// reputation service. It owns three moving parts:
//
//   - the feedback ledger (internal/store.Ledger): the ingest path, cheap
//     appends that never touch epoch state;
//   - the epoch scheduler: a background loop (or explicit RunEpoch calls)
//     that folds the pending feedback batch into the master trust matrix,
//     runs a differential-gossip epoch over it with the existing
//     gossip.VectorEngine kernels (via core.GlobalAll), and publishes the
//     outcome as a new immutable store.Snapshot;
//   - the published snapshot: an atomic.Pointer readers load lock-free, so
//     query latency is independent of epoch compute.
//
// # Consistency model
//
// Reads are snapshot-consistent: every query answered between two epoch
// publications sees exactly the state of the last published epoch — the
// global value for subject j and the personalised GCLR view both derive from
// the same frozen trust matrix, so a reader can never observe a torn mix of
// epochs. Feedback becomes visible only at the next epoch boundary
// (eventual, bounded by Config.EpochInterval); Submit returns the ledger
// sequence number so callers can watch Snapshot.Seq to learn when their
// write has been folded.
//
// With Config.Dir set, feedback is write-ahead logged as JSON lines
// (flushed per append; fsynced at each epoch boundary) and each snapshot is
// persisted by fsync + atomic rename, so a restarted service resumes from
// the last published epoch and replays only the not-yet-folded tail of the
// ledger. A process crash loses no accepted feedback; a power loss can lose
// at most the entries accepted since the last epoch.
package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/store"
	"diffgossip/internal/trust"
)

// Config parameterises a Service.
type Config struct {
	// Graph is the gossip overlay the epochs run on. Required; the service
	// never mutates it.
	Graph *graph.Graph
	// Params configures the per-epoch aggregation (epsilon, protocol,
	// workers, ...). Params.Seed seeds epoch randomness: epoch e runs with a
	// seed derived from (Seed, e), so a given feedback history is fully
	// reproducible. The zero value gets the core defaults.
	Params core.Params
	// EpochInterval is the scheduler period. Zero disables the background
	// scheduler; epochs then run only via RunEpoch.
	EpochInterval time.Duration
	// Dir enables persistence: the feedback ledger and latest snapshot live
	// under this directory. Empty runs fully in memory.
	Dir string
}

// Service is a long-running reputation service over one overlay. Submit and
// the read methods are safe for arbitrary concurrent use; epochs are
// serialised internally.
type Service struct {
	cfg    Config
	n      int
	ledger *store.Ledger

	// epochMu serialises epochs and guards master, the only mutable trust
	// state. Readers never take it.
	epochMu sync.Mutex
	master  *trust.Matrix
	epochs  atomic.Uint64 // epochs actually computed (== published snapshot's Epoch)

	snap    atomic.Pointer[store.Snapshot]
	lastErr atomic.Pointer[epochError]

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

type epochError struct{ err error }

const (
	ledgerFile   = "ledger.jsonl"
	snapshotFile = "snapshot.gob"
)

// New builds a Service, loading persisted state from cfg.Dir when set, and
// starts the epoch scheduler if cfg.EpochInterval > 0. Close releases it.
func New(cfg Config) (*Service, error) {
	if cfg.Graph == nil || cfg.Graph.N() == 0 {
		return nil, fmt.Errorf("service: empty graph")
	}
	if cfg.EpochInterval < 0 {
		return nil, fmt.Errorf("service: negative epoch interval %v", cfg.EpochInterval)
	}
	n := cfg.Graph.N()
	s := &Service{cfg: cfg, n: n, stop: make(chan struct{})}

	var snap *store.Snapshot
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: data dir: %w", err)
		}
		var err error
		snap, err = store.LoadSnapshotFile(snapshotPath(cfg.Dir))
		if err != nil {
			return nil, err
		}
		if snap != nil && snap.N != n {
			return nil, fmt.Errorf("service: persisted snapshot is for N=%d, graph has N=%d", snap.N, n)
		}
		ledger, replayed, err := store.OpenLedger(ledgerPath(cfg.Dir), n)
		if err != nil {
			return nil, err
		}
		s.ledger = ledger
		// A snapshot claiming more folded entries than the ledger ever
		// assigned means the ledger file was truncated or swapped out from
		// under the snapshot — refuse to serve silently-corrupt state.
		if snap != nil && ledger.Seq() < snap.Seq {
			ledger.Close()
			return nil, fmt.Errorf("service: ledger ends at seq %d but snapshot has folded seq %d — ledger truncated or mismatched",
				ledger.Seq(), snap.Seq)
		}
		// Entries already folded into the persisted snapshot are dropped;
		// the tail past Snapshot.Seq waits for the next epoch.
		var tail []store.Feedback
		for _, fb := range replayed {
			if snap == nil || fb.Seq > snap.Seq {
				tail = append(tail, fb)
			}
		}
		ledger.Restore(tail)
	} else {
		s.ledger = store.NewLedger(n)
	}
	if snap == nil {
		snap = store.NewBootSnapshot(n, time.Now().UnixNano())
	}
	s.master = snap.Trust.Clone()
	s.epochs.Store(snap.Epoch)
	s.snap.Store(snap)

	if cfg.EpochInterval > 0 {
		s.wg.Add(1)
		go s.loop()
	}
	return s, nil
}

func ledgerPath(dir string) string   { return filepath.Join(dir, ledgerFile) }
func snapshotPath(dir string) string { return filepath.Join(dir, snapshotFile) }

// Submit records one feedback entry ("rater now places trust value in
// subject") and returns its ledger sequence number. The entry takes effect
// at the next epoch; until then reads serve the current snapshot.
func (s *Service) Submit(rater, subject int, value float64) (uint64, error) {
	return s.ledger.Append(rater, subject, value, time.Now().UnixNano())
}

// Snapshot returns the currently published snapshot. The load is a single
// atomic pointer read — it never blocks, regardless of concurrent ingest or
// a running epoch — and the returned snapshot is immutable.
func (s *Service) Snapshot() *store.Snapshot {
	return s.snap.Load()
}

// Reputation returns subject's global reputation under the current snapshot,
// along with the snapshot it came from.
func (s *Service) Reputation(subject int) (float64, *store.Snapshot, error) {
	snap := s.Snapshot()
	v, err := snap.Reputation(subject)
	return v, snap, err
}

// PersonalReputation returns the globally calibrated local (GCLR) view of
// subject as seen by rater, under the current snapshot.
func (s *Service) PersonalReputation(rater, subject int) (float64, *store.Snapshot, error) {
	snap := s.Snapshot()
	p := s.cfg.Params.Weights
	if p == (trust.WeightParams{}) {
		p = trust.DefaultWeightParams
	}
	v, err := snap.Personal(rater, subject, p)
	return v, snap, err
}

// Pending returns the number of feedback entries awaiting the next epoch.
func (s *Service) Pending() int { return s.ledger.PendingCount() }

// N returns the network size.
func (s *Service) N() int { return s.n }

// Err returns the last epoch error observed by the background scheduler, or
// nil. A successful epoch clears it.
func (s *Service) Err() error {
	if e := s.lastErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// RunEpoch folds all pending feedback into the trust state, runs one
// differential-gossip epoch over the frozen copy, and atomically publishes
// the resulting snapshot. It reports whether an epoch actually ran: with no
// pending feedback the current snapshot is already up to date and is
// returned unchanged. Epochs are serialised; concurrent callers queue.
//
// The epoch runs entirely off the read path — readers keep serving the old
// snapshot until the new one is published in a single atomic store.
func (s *Service) RunEpoch() (*store.Snapshot, bool, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()

	batch := s.ledger.TakePending()
	cur := s.snap.Load()
	if len(batch) == 0 {
		return cur, false, nil
	}
	// On ANY failure below, the batch goes back to the front of the pending
	// window so no feedback is ever dropped: the next epoch retries it.
	// (The fold into master is not undone — refolding the same entries in
	// the same order is idempotent under Set's last-wins semantics.)
	restore := func(err error) (*store.Snapshot, bool, error) {
		s.ledger.Restore(batch)
		return cur, false, err
	}
	seq := cur.Seq
	for _, fb := range batch {
		// Ledger entries were validated at append time; Set only fails on
		// values outside [0,1], which therefore cannot happen here.
		if err := s.master.Set(fb.Rater, fb.Subject, fb.Value); err != nil {
			return restore(fmt.Errorf("service: fold seq %d: %w", fb.Seq, err))
		}
		seq = fb.Seq
	}
	frozen := s.master.Clone()

	p := s.cfg.Params
	epoch := s.epochs.Load() + 1
	p.Seed = epochSeed(p.Seed, epoch)
	start := time.Now()
	res, err := core.GlobalAll(s.cfg.Graph, frozen, p)
	if err != nil {
		return restore(fmt.Errorf("service: epoch %d gossip: %w", epoch, err))
	}
	elapsed := time.Since(start)

	root := p.Root // zero value = node 0, matching core's default
	global := make([]float64, s.n)
	copy(global, res.Reputation[root])
	raters := make([]int, s.n)
	for j := 0; j < s.n; j++ {
		_, raters[j] = frozen.ColumnSum(j)
	}
	snap := &store.Snapshot{
		Epoch:           epoch,
		Seq:             seq,
		N:               s.n,
		Trust:           frozen,
		Global:          global,
		Raters:          raters,
		Steps:           res.Steps,
		Converged:       res.Converged,
		ElapsedNs:       elapsed.Nanoseconds(),
		CreatedUnixNano: time.Now().UnixNano(),
	}
	if s.cfg.Dir != "" {
		// The ledger is fsynced before the snapshot is persisted, so after
		// any crash the on-disk ledger covers everything the on-disk
		// snapshot claims to have folded (the boot guard's invariant).
		if err := s.ledger.Sync(); err != nil {
			return restore(err)
		}
		if err := snap.SaveFile(snapshotPath(s.cfg.Dir)); err != nil {
			return restore(err)
		}
	}
	s.epochs.Store(epoch)
	s.snap.Store(snap)
	return snap, true, nil
}

// epochSeed mixes the base seed with the epoch number (SplitMix64-style
// finaliser) so every epoch draws an independent, reproducible stream.
func epochSeed(base, epoch uint64) uint64 {
	z := base + epoch*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// loop is the background epoch scheduler.
func (s *Service) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if _, _, err := s.RunEpoch(); err != nil {
				s.lastErr.Store(&epochError{err})
			} else {
				s.lastErr.Store(nil)
			}
		}
	}
}

// Close stops the scheduler and closes the ledger. It does not run a final
// epoch; pending feedback stays in the write-ahead log (when persistence is
// on) and is replayed on the next start.
func (s *Service) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return s.ledger.Close()
}
