// Package service turns the one-shot aggregation library into a long-running
// reputation service built as a subject-sharded, incremental epoch pipeline:
//
//   - the feedback ledger (internal/store.Ledger): the ingest path, cheap
//     appends that never touch epoch state, tracking which subject shards
//     the pending batch has dirtied;
//   - the shard scheduler: RunEpoch (or the background loop) folds the
//     pending batch into the master trust matrix and recomputes only the
//     dirty shards — each shard an independent set of per-subject push-sum
//     campaigns (core.GlobalSubjects) on the flat gossip kernels, dispatched
//     to a bounded worker pool; clean shards cost zero compute;
//   - the published shard snapshots: one atomic.Pointer per shard, stored as
//     its fold completes. Readers stitch the current pointers into a
//     composite View — lock-free, snapshot-consistent per shard.
//
// # Consistency model
//
// Every subject's state (global value, rater count, frozen trust column,
// fold point) comes from one immutable shard publication; different shards
// may sit at different fold points, which is what makes an epoch with k of
// S shards dirty cost O(k/S) of a full recompute. Because every subject's
// campaign draws its own randomness stream split by subject id, a fold of
// any dirty subset reproduces exactly what a full recompute would have
// produced for those subjects — sharding changes the work, never the
// answers. Submit returns the ledger sequence number; the write is visible
// once View.SubjectSeq(subject) reaches it (bounded by Config.EpochInterval
// when the background scheduler runs).
//
// With Config.Dir set, feedback is write-ahead logged as JSON lines and
// each dirty shard's snapshot segment is persisted by fsync + atomic rename
// after the epoch publishes, outside the epoch critical section — a slow
// disk delays durability, never ingest, reads or the next epoch's compute.
// The ledger is fsynced before any segment, so after a crash the on-disk
// WAL always covers everything the on-disk segments claim to have folded;
// a restarted service replays only the per-shard unfolded tails. Data
// directories written by the pre-shard format (a single snapshot.gob) are
// migrated to the manifest + segment layout on first boot, preserving the
// served reputations exactly.
package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/obs"
	"diffgossip/internal/store"
	"diffgossip/internal/trust"
)

// Config parameterises a Service.
type Config struct {
	// Graph is the gossip overlay the epochs run on. Required; the service
	// never mutates it.
	Graph *graph.Graph
	// Params configures the per-epoch aggregation (epsilon, protocol,
	// workers, ...). Params.Seed seeds epoch randomness: epoch e runs with a
	// seed derived from (Seed, e) and each subject's campaign splits its own
	// stream from that by subject id, so a given feedback history is fully
	// reproducible for any shard and worker count. The zero value gets the
	// core defaults. Params.Workers parallelises each shard fold across its
	// subjects.
	Params core.Params
	// EpochInterval is the scheduler period. Zero disables the background
	// scheduler; epochs then run only via RunEpoch.
	EpochInterval time.Duration
	// Dir enables persistence: the feedback ledger, manifest and per-shard
	// snapshot segments live under this directory. Empty runs fully in
	// memory.
	Dir string
	// Shards is the subject-shard count S: subject j belongs to shard
	// j mod S, and an epoch recomputes only dirty shards. 0 defaults to 1
	// (the monolithic layout); values above N are rejected.
	Shards int
	// FoldWorkers bounds how many dirty shards fold concurrently within one
	// epoch. 0 or 1 folds one shard at a time (each fold still parallelises
	// across its subjects via Params.Workers); negative selects GOMAXPROCS.
	// Results are bit-identical for any value.
	FoldWorkers int
	// CompactEvery, when > 0 and persistence is on, rewrites the write-ahead
	// log every CompactEvery-th epoch, keeping only the latest entry per
	// (rater, subject) cell among durably folded entries plus the unfolded
	// tail — bounding WAL size by live state instead of lifetime traffic.
	// 0 disables scheduled compaction (CompactWAL can still be called
	// directly).
	CompactEvery int
	// Replicate switches the ledger into cluster mode: accepted entries are
	// retained per origin and replicated entries apply idempotently, so an
	// internal/cluster node can run anti-entropy over this service. The
	// standalone service leaves it off and pays nothing.
	Replicate bool
	// FixedEpochSeed makes epoch randomness depend only on Params.Seed and
	// the subject id, not the epoch counter. Successive epochs then reuse
	// the same gossip streams, which costs statistical freshness but buys
	// the property cluster replication needs: any node that has folded the
	// same trust state serves bit-identical reputations, regardless of how
	// many epochs it took to get there. Cluster deployments set it; the
	// standalone default (off) draws an independent stream per epoch.
	FixedEpochSeed bool
	// NoWarmStart disables warm-started campaigns: every fold then reseeds
	// its campaigns from the trust columns alone, as if no previous epoch
	// had run. Replicated services (Config.Replicate) force this regardless
	// — warm results match cold ones within ξ but not bit for bit, and
	// cluster convergence pins bit-equality.
	//
	// Params.SparseRaterFrac is related but distinct: the service default is
	// 0.25 when left zero (a negative value disables sparse campaigns).
	// Sparse campaigns are deterministic functions of (seed, column), so
	// they stay on in cluster mode.
	NoWarmStart bool
	// TraceDepth sizes the epoch trace ring (how many recent non-empty
	// epochs Trace returns). 0 defaults to DefaultTraceDepth; negative
	// disables tracing.
	TraceDepth int
	// Origin is this node's cluster identity, used as the tie-break in the
	// last-writer-wins order for locally accepted entries (replicated
	// entries carry their own origin). It must equal the cluster transport
	// address, so the tag a peer computes for a replicated copy matches the
	// tag this node computes for the original — internal/cluster.New
	// enforces the match. Standalone services leave it empty.
	Origin string
}

// cellTag is the last-writer-wins coordinate of one (rater, subject) cell
// write: entries to the same cell are ordered lexicographically by
// (UnixNano, origin, origin seq) — a total order every replica computes
// identically, so folds converge regardless of arrival order.
type cellTag struct {
	ts     int64
	origin string
	seq    uint64
}

// before reports whether t is strictly older than o in the LWW total order.
func (t cellTag) before(o cellTag) bool {
	if t.ts != o.ts {
		return t.ts < o.ts
	}
	if t.origin != o.origin {
		return t.origin < o.origin
	}
	return t.seq < o.seq
}

// Replicator is the cluster-side hook the epoch scheduler drives: one
// anti-entropy exchange (digest broadcast to peers) before each scheduled
// epoch, keeping replication at least on the scheduler's cadence. The
// exchange only *initiates* pulls — the replies arrive asynchronously on
// the cluster node's receive loop, so entries it triggers are typically
// folded by the NEXT epoch, not the one about to run. internal/cluster.Node
// implements it.
type Replicator interface {
	// Exchange sends one round of anti-entropy digests to the peers. It
	// does not wait for the resulting entry batches.
	Exchange()
}

// Service is a long-running reputation service over one overlay. Submit and
// the read methods are safe for arbitrary concurrent use; epochs are
// serialised internally.
type Service struct {
	cfg    Config
	n      int
	shards int
	ledger *store.Ledger

	// graphFP fingerprints cfg.Graph; persisted warm state from a different
	// graph is dropped at boot. warmOK caches whether warm starts are on
	// (not disabled, not replicating).
	graphFP uint64
	warmOK  bool

	// epochMu serialises epoch compute and guards master and lww, the only
	// mutable trust state. Readers never take it; neither does the
	// persistence phase.
	epochMu sync.Mutex
	master  *trust.Matrix
	// lww maps cell id (rater*n + subject) to the winning write's tag; the
	// fold skips any entry older than its cell's winner, making the folded
	// state independent of arrival order. Rebuilt from the WAL on boot.
	lww    map[uint64]cellTag
	epochs atomic.Uint64 // fold rounds completed (== newest published shard epoch)

	// lastEpoch is the wall-clock nanosecond of the last completed RunEpoch
	// (including no-op epochs with nothing pending) — the readiness probe's
	// scheduler-stall signal.
	lastEpoch atomic.Int64

	// states[s] is shard s's current publication; worker goroutines store
	// into their own shard's pointer as each fold completes.
	states []atomic.Pointer[store.ShardSnapshot]

	// foldedSubjects counts the per-subject campaigns actually run across
	// all epochs; foldedShards counts shard folds. Together they are the
	// incrementality meter: an epoch with k of S shards dirty advances them
	// by ~k/S of a full recompute's amount.
	foldedSubjects atomic.Uint64
	foldedShards   atomic.Uint64

	lastErr atomic.Pointer[epochError]

	// Observability. The counters are plain atomics RunEpoch maintains
	// unconditionally; the histograms exist only after Instrument and hide
	// behind nil-safe atomic pointers, so an uninstrumented service records
	// nothing extra. preExchange is set by the scheduler when it poked the
	// replicator right before an epoch, and consumed into that epoch's
	// trace row. trace is the bounded per-epoch trace ring behind
	// GET /v1/trace.
	campaignSteps   atomic.Uint64
	warmStarts      atomic.Uint64
	coldStarts      atomic.Uint64
	convergedEpochs atomic.Uint64
	epochErrs       atomic.Uint64
	epochHist       atomic.Pointer[obs.Histogram]
	foldHist        atomic.Pointer[obs.Histogram]
	stepsHist       atomic.Pointer[obs.Histogram]
	preExchange     atomic.Bool
	trace           traceRing

	// replicator, when set, is poked for an anti-entropy exchange before
	// each scheduled epoch (never by manual RunEpoch calls).
	replicator atomic.Pointer[Replicator]

	// persistMu serialises the off-critical-section persistence phase;
	// persistedEpoch[s] (guarded by it) keeps late writers from clobbering
	// a newer segment, and persistedSeq[s] is the highest ledger seq whose
	// fold into shard s is durable on disk — the bound below which WAL
	// compaction may drop superseded entries. persistHook, when set by
	// tests, runs inside the phase to stand in for a slow disk.
	persistMu      sync.Mutex
	persistedEpoch []uint64
	persistedSeq   []uint64
	persistHook    func()

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

type epochError struct{ err error }

const (
	ledgerFile         = "ledger.jsonl"
	legacySnapshotFile = "snapshot.gob"
	manifestFile       = "manifest.json"
)

func ledgerPath(dir string) string   { return filepath.Join(dir, ledgerFile) }
func legacyPath(dir string) string   { return filepath.Join(dir, legacySnapshotFile) }
func manifestPath(dir string) string { return filepath.Join(dir, manifestFile) }
func shardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.gob", shard))
}

// New builds a Service, loading (and if needed migrating) persisted state
// from cfg.Dir when set, and starts the epoch scheduler if cfg.EpochInterval
// > 0. Close releases it.
func New(cfg Config) (*Service, error) {
	if cfg.Graph == nil || cfg.Graph.N() == 0 {
		return nil, fmt.Errorf("service: empty graph")
	}
	if cfg.EpochInterval < 0 {
		return nil, fmt.Errorf("service: negative epoch interval %v", cfg.EpochInterval)
	}
	n := cfg.Graph.N()
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("service: shard count %d out of range [1,%d]", cfg.Shards, n)
	}
	s := &Service{
		cfg:            cfg,
		n:              n,
		shards:         shards,
		graphFP:        graphFingerprint(cfg.Graph),
		warmOK:         !cfg.NoWarmStart && !cfg.Replicate,
		lww:            make(map[uint64]cellTag),
		states:         make([]atomic.Pointer[store.ShardSnapshot], shards),
		persistedEpoch: make([]uint64, shards),
		persistedSeq:   make([]uint64, shards),
		stop:           make(chan struct{}),
	}
	// Resolve the sparse-campaign threshold: the service defaults it ON (the
	// core default is off, for the paper-experiment paths' bit-stability);
	// negative means explicitly off.
	switch {
	case s.cfg.Params.SparseRaterFrac == 0:
		s.cfg.Params.SparseRaterFrac = 0.25
	case s.cfg.Params.SparseRaterFrac < 0:
		s.cfg.Params.SparseRaterFrac = 0
	}
	switch {
	case cfg.TraceDepth > 0:
		s.trace.depth = cfg.TraceDepth
	case cfg.TraceDepth == 0:
		s.trace.depth = DefaultTraceDepth
	}

	var segs []*store.ShardSnapshot
	if cfg.Dir != "" {
		var err error
		segs, err = s.loadDir()
		if err != nil {
			return nil, err
		}
	} else {
		s.ledger = store.NewLedger(n)
		if err := s.ledger.SetShards(shards); err != nil {
			return nil, err
		}
		if cfg.Replicate {
			if err := s.ledger.EnableReplication(nil); err != nil {
				return nil, err
			}
		}
	}
	if segs == nil {
		segs = make([]*store.ShardSnapshot, shards)
		now := time.Now().UnixNano()
		for sh := range segs {
			segs[sh] = store.NewBootShardSnapshot(n, sh, shards, now)
		}
		s.master = trust.NewMatrix(n)
	}
	var maxEpoch uint64
	for sh, seg := range segs {
		if seg.Warm != nil && (!s.warmOK || seg.GraphFP != s.graphFP) {
			// Persisted warm state is only a valid seed against the exact
			// graph that shaped it (and only when warm starts are on at
			// all); dropping it costs one cold epoch, nothing else.
			seg.Warm = nil
		}
		s.states[sh].Store(seg)
		s.persistedEpoch[sh] = seg.Epoch
		if cfg.Dir != "" {
			// Loaded segments are durable by definition; boot segments for a
			// fresh dir carry Seq 0, so nothing is compactable until a real
			// fold persists.
			s.persistedSeq[sh] = seg.Seq
		}
		if seg.Epoch > maxEpoch {
			maxEpoch = seg.Epoch
		}
	}
	s.epochs.Store(maxEpoch)

	if cfg.EpochInterval > 0 {
		s.wg.Add(1)
		go s.loop()
	}
	return s, nil
}

// loadDir opens (creating, migrating or resharding as needed) a persistent
// data directory: it returns the shard segments to publish, sets s.master
// to the stitched trust state, and leaves s.ledger open with the unfolded
// tail pending.
func (s *Service) loadDir() ([]*store.ShardSnapshot, error) {
	dir := s.cfg.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: data dir: %w", err)
	}
	manifest, err := store.LoadManifestFile(manifestPath(dir))
	if err != nil {
		return nil, err
	}

	var segs []*store.ShardSnapshot
	freshLayout := false // segments/manifest need (re)writing before use
	switch {
	case manifest == nil:
		// No manifest: either a fresh directory or the pre-shard format.
		legacy, err := store.LoadSnapshotFile(legacyPath(dir))
		if err != nil {
			return nil, err
		}
		if legacy == nil {
			break // fresh directory; boot segments, manifest written below
		}
		if legacy.N != s.n {
			return nil, fmt.Errorf("service: persisted snapshot is for N=%d, graph has N=%d", legacy.N, s.n)
		}
		segs, err = store.SplitSnapshot(legacy, s.shards)
		if err != nil {
			return nil, err
		}
		freshLayout = true
	default:
		if manifest.N != s.n {
			return nil, fmt.Errorf("service: data dir is for N=%d, graph has N=%d", manifest.N, s.n)
		}
		segs = make([]*store.ShardSnapshot, manifest.Shards)
		now := time.Now().UnixNano()
		for sh := range segs {
			seg, err := store.LoadShardFile(shardPath(dir, sh))
			if err != nil {
				return nil, err
			}
			if seg != nil && (seg.Shard != sh || seg.Shards != manifest.Shards || seg.N != s.n) {
				// A valid segment whose layout disagrees with the manifest
				// is the artifact of a crash mid-reshard (new-layout
				// segments written, manifest not yet flipped). The WAL is
				// the full feedback history, so the safe recovery is to
				// treat the shard as never folded: its entire tail
				// re-pends below and the next epoch refolds it.
				seg = nil
			}
			if seg == nil {
				// A shard that never folded has no (usable) segment yet.
				seg = store.NewBootShardSnapshot(s.n, sh, manifest.Shards, now)
			}
			segs[sh] = seg
		}
		if manifest.Shards != s.shards {
			// Reshard: stitch the old layout and split along the new one.
			// The stitched Seq is the conservative minimum, so any entries
			// some old shards had already folded simply replay (folds are
			// idempotent).
			full, err := store.StitchSnapshot(segs)
			if err != nil {
				return nil, err
			}
			segs, err = store.SplitSnapshot(full, s.shards)
			if err != nil {
				return nil, err
			}
			freshLayout = true
		}
	}

	if segs != nil {
		full, err := store.StitchSnapshot(segs)
		if err != nil {
			return nil, err
		}
		s.master = full.Trust // stitched fresh, owned by the service
	} else {
		s.master = trust.NewMatrix(s.n)
	}

	// Validate before mutating: the ledger-truncation guard must run before
	// any migration or reshard write, so a directory that should be refused
	// is refused untouched (and the operator diagnoses exactly what the
	// last process left behind).
	ledger, replayed, err := store.OpenLedger(ledgerPath(dir), s.n)
	if err != nil {
		return nil, err
	}
	s.ledger = ledger
	if err := s.ledger.SetShards(s.shards); err != nil {
		ledger.Close()
		return nil, err
	}
	if s.cfg.Replicate {
		// Seed the per-origin history and watermarks from the full replay,
		// so anti-entropy pulls and duplicate detection survive restarts.
		if err := s.ledger.EnableReplication(replayed); err != nil {
			ledger.Close()
			return nil, err
		}
	}
	// A segment claiming more folded entries than the ledger ever assigned
	// means the ledger file was truncated or swapped out from under the
	// snapshots — refuse to serve silently-corrupt state.
	var maxSeq uint64
	for _, seg := range segs {
		if seg != nil && seg.Seq > maxSeq {
			maxSeq = seg.Seq
		}
	}
	if ledger.Seq() < maxSeq {
		ledger.Close()
		return nil, fmt.Errorf("service: ledger ends at seq %d but a segment has folded seq %d — ledger truncated or mismatched",
			ledger.Seq(), maxSeq)
	}

	// Persist the (validated) layout before serving it: segments first,
	// manifest last, so a crash mid-migration leaves the directory readable
	// by the old path. (The legacy snapshot.gob is kept but ignored once a
	// manifest exists.)
	persistLayout := func() error {
		if freshLayout {
			for _, seg := range segs {
				if err := seg.SaveFile(shardPath(dir, seg.Shard)); err != nil {
					return err
				}
			}
		}
		if freshLayout || manifest == nil {
			m := store.Manifest{N: s.n, Shards: s.shards, CreatedUnixNano: time.Now().UnixNano()}
			if err := store.SaveManifestFile(m, manifestPath(dir)); err != nil {
				return err
			}
		}
		if manifest != nil && manifest.Shards > s.shards {
			// Downsharding leaves old high-index segment files behind;
			// remove them (best effort) so the directory lists only the
			// live layout.
			for sh := s.shards; sh < manifest.Shards; sh++ {
				os.Remove(shardPath(dir, sh))
			}
		}
		return nil
	}
	if err := persistLayout(); err != nil {
		ledger.Close()
		return nil, err
	}
	// Entries already folded into their subject's shard are dropped; the
	// per-shard tails past each segment's Seq wait for the next epoch. The
	// LWW tags rebuild from the FULL replay — folded entries' winners must
	// be on record before any late replicated entry tries to beat them.
	var tail []store.Feedback
	for _, fb := range replayed {
		s.recordTag(fb)
		var folded uint64
		if segs != nil {
			folded = segs[store.ShardOf(fb.Subject, s.shards)].Seq
		}
		if fb.Seq > folded {
			tail = append(tail, fb)
		}
	}
	s.ledger.Restore(tail)
	return segs, nil
}

// tagOf computes an entry's LWW tag. Locally accepted entries (empty Origin
// in the ledger) are stamped with this node's identity and their local
// sequence number — exactly the (origin, seq) pair they replicate under, so
// every replica orders the write identically.
func (s *Service) tagOf(fb store.Feedback) cellTag {
	if fb.Origin == "" {
		return cellTag{ts: fb.UnixNano, origin: s.cfg.Origin, seq: fb.Seq}
	}
	return cellTag{ts: fb.UnixNano, origin: fb.Origin, seq: fb.OriginSeq}
}

// recordTag advances fb's cell to fb's tag if it is not older than the
// current winner, reporting whether fb won (and should be folded). Caller
// holds epochMu (or is single-threaded boot).
func (s *Service) recordTag(fb store.Feedback) bool {
	cell := uint64(fb.Rater)*uint64(s.n) + uint64(fb.Subject)
	tag := s.tagOf(fb)
	if cur, ok := s.lww[cell]; ok && tag.before(cur) {
		return false
	}
	s.lww[cell] = tag
	return true
}

// Submit records one feedback entry ("rater now places trust value in
// subject") and returns its ledger sequence number. The entry takes effect
// when its subject's shard next folds; until then reads serve the current
// shard snapshots.
func (s *Service) Submit(rater, subject int, value float64) (uint64, error) {
	return s.ledger.Append(rater, subject, value, time.Now().UnixNano())
}

// SubmitAt is Submit with a caller-supplied timestamp — the LWW coordinate
// of the write. Deterministic drivers (scenario tests, replayed workloads)
// use it to pin conflict resolution; live traffic uses Submit.
func (s *Service) SubmitAt(rater, subject int, value float64, unixNano int64) (uint64, error) {
	return s.ledger.Append(rater, subject, value, unixNano)
}

// SubmitCtx is Submit with request-scoped cancellation: a context already
// canceled (or past its deadline) returns its error before the ledger is
// touched, so an abandoned HTTP request can never leave a WAL line behind.
// The check is deliberately before the append, not during it — once the
// write-ahead line starts, it completes; half-written entries are a crash
// concern (handled by replay truncation), not a cancellation one. unixNano
// is the LWW coordinate of the write; 0 means "stamp now".
func (s *Service) SubmitCtx(ctx context.Context, rater, subject int, value float64, unixNano int64) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if unixNano == 0 {
		unixNano = time.Now().UnixNano()
	}
	return s.ledger.Append(rater, subject, value, unixNano)
}

// SubmitBatch records a batch of feedback entries atomically — one WAL flush,
// one fsync for the whole batch (store.Ledger.AppendBatch) — and returns the
// first and last assigned sequence numbers. Entries carrying UnixNano 0 are
// stamped with the current wall clock, so every entry keeps its own LWW
// coordinate and cluster convergence is indistinguishable from the same
// ratings submitted singly; deterministic drivers pre-stamp their own. A
// canceled context returns before anything is written.
func (s *Service) SubmitBatch(ctx context.Context, entries []store.Feedback) (first, last uint64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	now := time.Now().UnixNano()
	for i := range entries {
		if entries[i].UnixNano == 0 {
			entries[i].UnixNano = now
		}
	}
	return s.ledger.AppendBatch(entries)
}

// Origin returns this node's cluster identity (Config.Origin; empty for
// standalone services).
func (s *Service) Origin() string { return s.cfg.Origin }

// LastEpochUnixNano returns the wall-clock nanosecond at which the last
// RunEpoch completed (0 if none has yet) — no-op epochs count, so a healthy
// idle scheduler keeps advancing it. Readiness probes compare it against the
// epoch interval to detect a stalled scheduler.
func (s *Service) LastEpochUnixNano() int64 { return s.lastEpoch.Load() }

// View captures the current composite read state: S atomic pointer loads,
// no locks, immutable afterwards. See View's consistency notes.
func (s *Service) View() *View {
	segs := make([]*store.ShardSnapshot, s.shards)
	for i := range segs {
		segs[i] = s.states[i].Load()
	}
	return &View{n: s.n, segs: segs}
}

// Reputation returns subject's global reputation under the current view,
// along with the view it came from.
func (s *Service) Reputation(subject int) (float64, *View, error) {
	v := s.View()
	r, err := v.Reputation(subject)
	return r, v, err
}

// SubjectRead returns the shard snapshot owning subject — everything a
// single-subject global read needs (value, rater count, fold point) behind
// ONE atomic pointer load with no allocation. The HTTP reputation endpoint
// uses it; cross-shard reads (GCLR views, epoch metadata) capture a full
// View instead.
func (s *Service) SubjectRead(subject int) (*store.ShardSnapshot, error) {
	if subject < 0 || subject >= s.n {
		return nil, fmt.Errorf("service: subject %d out of range [0,%d)", subject, s.n)
	}
	return s.states[store.ShardOf(subject, s.shards)].Load(), nil
}

// PersonalReputation returns the globally calibrated local (GCLR) view of
// subject as seen by rater, under the current view.
func (s *Service) PersonalReputation(rater, subject int) (float64, *View, error) {
	v := s.View()
	p := s.cfg.Params.Weights
	if p == (trust.WeightParams{}) {
		p = trust.DefaultWeightParams
	}
	r, err := v.Personal(rater, subject, p)
	return r, v, err
}

// SetReplicator installs (or, with nil, removes) the cluster replicator the
// background scheduler pokes before each scheduled epoch. Safe to call at any
// time; cmd/dgserve wires it right after building the cluster node.
func (s *Service) SetReplicator(r Replicator) {
	if r == nil {
		s.replicator.Store(nil)
		return
	}
	s.replicator.Store(&r)
}

// ReplicatedSubmit applies one feedback entry pulled from a peer's ledger
// stream, idempotently: an entry at or below the origin's watermark reports
// applied=false and changes nothing. Requires Config.Replicate. The entry
// takes effect like a local Submit — when its subject's shard next folds.
func (s *Service) ReplicatedSubmit(origin string, originSeq uint64, rater, subject int, value float64, unixNano int64) (bool, error) {
	_, applied, err := s.ledger.AppendReplicated(store.Feedback{
		Origin: origin, OriginSeq: originSeq,
		Rater: rater, Subject: subject, Value: value, UnixNano: unixNano,
	})
	return applied, err
}

// ReplicationMarks returns a copy of the per-remote-origin watermarks
// (highest OriginSeq applied). Nil unless Config.Replicate. For a single
// origin's watermark use ReplicationMark — it is O(1) and allocation-free.
func (s *Service) ReplicationMarks() map[string]uint64 { return s.ledger.OriginMarks() }

// ReplicationMark returns one origin stream's watermark ("" = the local
// stream) without copying the whole mark map.
func (s *Service) ReplicationMark(origin string) uint64 { return s.ledger.OriginMark(origin) }

// ReplicationEntriesSince returns up to limit retained entries of one origin
// stream ("" = locally accepted) past the given watermark, for answering an
// anti-entropy pull. Nil unless Config.Replicate.
func (s *Service) ReplicationEntriesSince(origin string, after uint64, limit int) []store.Feedback {
	return s.ledger.EntriesSince(origin, after, limit)
}

// LedgerSeq returns the last locally assigned ledger sequence number (local
// submissions and replicated appends alike).
func (s *Service) LedgerSeq() uint64 { return s.ledger.Seq() }

// LocalStreamMark returns the watermark of this node's own origin stream —
// the Seq of the last locally-submitted entry, which is what a cluster
// digest advertises for this node (replicated appends consume ledger seqs
// too, so this is ≤ LedgerSeq).
func (s *Service) LocalStreamMark() uint64 { return s.ledger.OriginMark("") }

// Pending returns the number of feedback entries awaiting the next epoch
// (lock-free).
func (s *Service) Pending() int { return s.ledger.PendingCount() }

// N returns the network size.
func (s *Service) N() int { return s.n }

// Shards returns the subject-shard count.
func (s *Service) Shards() int { return s.shards }

// Epochs returns the number of fold rounds completed.
func (s *Service) Epochs() uint64 { return s.epochs.Load() }

// FoldedSubjects returns the cumulative number of per-subject gossip
// campaigns the service has run — the incrementality meter: clean shards
// (and unrated subjects) never advance it.
func (s *Service) FoldedSubjects() uint64 { return s.foldedSubjects.Load() }

// FoldedShards returns the cumulative number of shard folds.
func (s *Service) FoldedShards() uint64 { return s.foldedShards.Load() }

// WarmStarts returns the cumulative number of campaigns seeded from a
// previous epoch's recorded state; ColdStarts the rest. Together they equal
// FoldedSubjects.
func (s *Service) WarmStarts() uint64 { return s.warmStarts.Load() }

// ColdStarts returns the cumulative number of campaigns seeded from their
// trust column alone (see WarmStarts).
func (s *Service) ColdStarts() uint64 { return s.coldStarts.Load() }

// Err returns the last epoch error observed by the background scheduler, or
// nil. A successful epoch clears it.
func (s *Service) Err() error {
	if e := s.lastErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// RunEpoch folds all pending feedback into the trust state, recomputes every
// dirty shard (per-subject gossip campaigns on a bounded worker pool),
// publishes each shard snapshot as its fold completes, and finally — outside
// the epoch critical section — persists the ledger and the dirty segments.
// It reports whether an epoch actually ran: with no pending feedback every
// shard is clean and the current view is returned unchanged. Epochs are
// serialised; concurrent callers queue for the compute phase but never for
// disk.
//
// Compute runs entirely off the read path — readers keep serving the old
// shard snapshots until each new one is published in a single atomic store.
// An epoch with k of S shards dirty does only those k shards' work.
func (s *Service) RunEpoch() (*View, bool, error) {
	s.epochMu.Lock()
	epochStart := time.Now()
	// Consume the scheduler's exchange marker even on a no-op epoch, so a
	// later non-empty epoch can't claim an exchange that preceded an empty
	// one.
	exchanged := s.preExchange.Swap(false)

	batch := s.ledger.TakePending()
	if len(batch) == 0 {
		s.epochMu.Unlock()
		s.lastEpoch.Store(time.Now().UnixNano())
		return s.View(), false, nil
	}
	// On any compute failure the batch goes back to the front of the
	// pending window so no feedback is ever dropped: the next epoch retries
	// it. (The fold into master is not undone — refolding the same entries
	// in the same order is idempotent under Set's last-wins semantics, and
	// any shards already republished stay correct: they reflect the folded
	// values.)
	restore := func(err error) (*View, bool, error) {
		s.epochErrs.Add(1)
		s.ledger.Restore(batch)
		s.epochMu.Unlock()
		return s.View(), false, err
	}

	dirty := make(map[int]bool)
	seq := uint64(0)
	for _, fb := range batch {
		// Last-writer-wins: an entry older than its cell's recorded winner
		// is skipped, so the folded state depends only on the set of entries
		// seen, never on their arrival order. (Its shard still counts as
		// dirty — the cheap refold keeps the skip logic out of the dirtiness
		// accounting.)
		if s.recordTag(fb) {
			// Ledger entries were validated at append time; Set only fails
			// on values outside [0,1], which therefore cannot happen here.
			if err := s.master.Set(fb.Rater, fb.Subject, fb.Value); err != nil {
				return restore(fmt.Errorf("service: fold seq %d: %w", fb.Seq, err))
			}
		}
		dirty[fb.Shard] = true
		seq = fb.Seq
	}
	dirtyList := make([]int, 0, len(dirty))
	for sh := range dirty {
		dirtyList = append(dirtyList, sh)
	}
	sort.Ints(dirtyList)

	epoch := s.epochs.Load() + 1
	p := s.cfg.Params
	if !s.cfg.FixedEpochSeed {
		p.Seed = epochSeed(p.Seed, epoch)
	}

	// Fold the dirty shards on a bounded worker pool. Each fold freezes its
	// shard's columns from master (stable under epochMu), runs one
	// independent campaign per rated subject, and publishes through its own
	// atomic pointer the moment it completes — results are bit-identical
	// for any FoldWorkers and Params.Workers.
	results := make([]*store.ShardSnapshot, len(dirtyList))
	errs := make([]error, len(dirtyList))
	starts := make([]int64, len(dirtyList)) // fold start offsets, for the trace row
	foldWorkers := s.cfg.FoldWorkers
	if foldWorkers < 0 {
		foldWorkers = runtime.GOMAXPROCS(0)
	}
	if foldWorkers < 1 {
		foldWorkers = 1
	}
	if foldWorkers > len(dirtyList) {
		foldWorkers = len(dirtyList)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < foldWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(dirtyList) {
					return
				}
				starts[idx] = time.Since(epochStart).Nanoseconds()
				seg, err := s.foldShard(dirtyList[idx], epoch, seq, p)
				if err != nil {
					errs[idx] = err
					continue
				}
				results[idx] = seg
				s.states[seg.Shard].Store(seg)
				s.foldedShards.Add(1)
				s.foldedSubjects.Add(uint64(seg.Computed))
				s.campaignSteps.Add(uint64(seg.Steps))
				s.warmStarts.Add(uint64(seg.WarmStarts))
				s.coldStarts.Add(uint64(seg.ColdStarts))
				s.foldHist.Load().Observe(float64(seg.ElapsedNs) / 1e9)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return restore(err)
		}
	}
	computeNs := time.Since(epochStart).Nanoseconds()
	s.epochs.Store(epoch)
	s.epochMu.Unlock()
	s.lastEpoch.Store(time.Now().UnixNano())

	s.epochHist.Load().Observe(float64(computeNs) / 1e9)
	shardTraces := make([]ShardTrace, len(results))
	allConverged := true
	for i, seg := range results {
		shardTraces[i] = ShardTrace{
			Shard: seg.Shard, StartOffsetNs: starts[i], DurationNs: seg.ElapsedNs,
			Steps: seg.Steps, Converged: seg.Converged, Computed: seg.Computed,
			WarmStarts: seg.WarmStarts, ColdStarts: seg.ColdStarts,
		}
		if !seg.Converged {
			allConverged = false
		}
	}
	if allConverged {
		s.convergedEpochs.Add(1)
	}
	s.trace.record(EpochTrace{
		Epoch: epoch, StartUnixNano: epochStart.UnixNano(), DurationNs: computeNs,
		Entries: len(batch), Seq: seq, DirtyShards: len(dirtyList),
		ExchangeBefore: exchanged, Shards: shardTraces,
	})

	// Persistence phase: after the critical section, so a slow disk delays
	// durability, never ingest or the next epoch's compute. A persist error
	// is I/O-side only — the published state is correct and the WAL still
	// holds everything, so on restart the affected shards simply refold
	// from their last durable segments.
	if s.cfg.Dir != "" {
		if err := s.persist(results); err != nil {
			return s.View(), true, err
		}
		// Scheduled WAL compaction rides the persistence phase: the segments
		// this epoch folded are durable now, so everything they supersede is
		// droppable. An error is I/O-side only, like a persist error — the
		// old WAL keeps working.
		if ce := s.cfg.CompactEvery; ce > 0 && epoch%uint64(ce) == 0 {
			if _, err := s.CompactWAL(); err != nil {
				return s.View(), true, err
			}
		}
	}
	return s.View(), true, nil
}

// foldShard recomputes one dirty shard at the given epoch: freeze its trust
// columns, run the per-subject campaigns — warm-seeded from the shard's
// previous publication where the recorded states still fit — and assemble
// the shard snapshot, carrying the new campaign states forward as the next
// fold's warm seeds.
func (s *Service) foldShard(shard int, epoch, seq uint64, p core.Params) (*store.ShardSnapshot, error) {
	subjects := store.ShardSubjects(s.n, shard, s.shards)
	cols, err := trust.ColumnsOf(s.master, subjects)
	if err != nil {
		return nil, fmt.Errorf("service: freeze shard %d: %w", shard, err)
	}
	if s.warmOK {
		p.KeepStates = true
		prev := s.states[shard].Load()
		if prev != nil && prev.Warm != nil && len(prev.Warm) == len(subjects) &&
			prev.Shards == s.shards && prev.N == s.n && prev.GraphFP == s.graphFP {
			warm := prev.Warm
			shards := s.shards
			p.Warm = func(j int) *gossip.CampaignState {
				return warm[store.SlotOf(j, shards)]
			}
		}
	}
	start := time.Now()
	res, err := core.GlobalSubjects(s.cfg.Graph, cols, subjects, p)
	if err != nil {
		return nil, fmt.Errorf("service: epoch %d shard %d gossip: %w", epoch, shard, err)
	}
	elapsed := time.Since(start)
	if h := s.stepsHist.Load(); h != nil {
		for _, st := range res.StepsBySubject {
			if st >= 0 {
				h.Observe(float64(st))
			}
		}
	}

	root := p.Root // zero value = node 0, matching core's default
	global := make([]float64, len(subjects))
	for k := range subjects {
		global[k] = res.Columns[k][root]
	}
	return &store.ShardSnapshot{
		Shard:           shard,
		Shards:          s.shards,
		N:               s.n,
		Epoch:           epoch,
		Seq:             seq,
		Global:          global,
		Raters:          res.Raters,
		Steps:           res.Steps,
		Converged:       res.Converged,
		Computed:        res.Computed,
		TotalSteps:      res.TotalSteps,
		WarmStarts:      res.WarmStarts,
		ColdStarts:      res.ColdStarts,
		ElapsedNs:       elapsed.Nanoseconds(),
		CreatedUnixNano: time.Now().UnixNano(),
		GraphFP:         s.graphFP,
		Cols:            cols,
		Warm:            res.States,
	}, nil
}

// persist makes one epoch's outcome durable: ledger fsync first (the boot
// guard's invariant), then each refolded segment by atomic rename. It runs
// outside epochMu; the per-shard epoch watermark keeps a late writer from
// clobbering a newer segment when epochs overlap their persistence.
func (s *Service) persist(segs []*store.ShardSnapshot) error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persistHook != nil {
		s.persistHook()
	}
	if err := s.ledger.Sync(); err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.Epoch <= s.persistedEpoch[seg.Shard] {
			continue // a newer fold already persisted this shard
		}
		if err := seg.SaveFile(shardPath(s.cfg.Dir, seg.Shard)); err != nil {
			return err
		}
		s.persistedEpoch[seg.Shard] = seg.Epoch
		s.persistedSeq[seg.Shard] = seg.Seq
	}
	return nil
}

// CompactWAL rewrites the write-ahead log keeping only the latest entry per
// (rater, subject) cell among durably folded entries — plus, per origin
// stream, its highest folded entry (so replication watermarks replay
// unchanged) and the whole unfolded tail. Sequence numbers are preserved, so
// a compacted file replays with gaps and a min seq > 1, which boot accepts.
// The scheduler calls it every Config.CompactEvery epochs; operators and
// tests may call it directly. Requires persistence (Config.Dir).
func (s *Service) CompactWAL() (store.CompactStats, error) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	seqs := make([]uint64, len(s.persistedSeq))
	copy(seqs, s.persistedSeq)
	return s.ledger.Compact(store.CompactConfig{
		Origin: s.cfg.Origin,
		FoldedSeq: func(subject int) uint64 {
			return seqs[store.ShardOf(subject, s.shards)]
		},
	})
}

// TrimReplicationHistory drops superseded entries from the in-memory
// per-origin replication history, given per-stream floors: for each origin
// id (this node's own stream under its Config.Origin id), the highest origin
// sequence number every known peer's watermark has passed. The cluster layer
// computes the floors from its acknowledgement table and calls this
// periodically; entries above a stream's floor — or in streams with no floor
// — are never dropped, so any peer can still pull everything it might be
// missing. Returns the number of entries dropped.
func (s *Service) TrimReplicationHistory(floors map[string]uint64) int {
	if len(floors) == 0 {
		return 0
	}
	// The ledger keys the local stream as ""; the cluster speaks origin ids.
	translated := make(map[string]uint64, len(floors))
	for o, f := range floors {
		if o == s.cfg.Origin {
			o = ""
		}
		translated[o] = f
	}
	return s.ledger.TrimHistory(store.CompactConfig{Origin: s.cfg.Origin}, translated)
}

// epochSeed mixes the base seed with the epoch number (SplitMix64-style
// finaliser) so every epoch draws an independent, reproducible stream.
func epochSeed(base, epoch uint64) uint64 {
	z := base + epoch*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// graphFingerprint hashes the gossip overlay's node count and edge set, for
// stamping shard snapshots: warm campaign state is only a valid seed against
// the graph whose topology shaped it. Per-edge hashes combine by addition,
// so the fingerprint is independent of adjacency construction order.
func graphFingerprint(g *graph.Graph) uint64 {
	n := g.N()
	fp := epochSeed(0x67726170682d6670, uint64(n)) // "graph-fp"
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				fp += epochSeed(uint64(u)<<32|uint64(v), 0x65646765)
			}
		}
	}
	return fp
}

// loop is the background epoch scheduler.
func (s *Service) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if r := s.replicator.Load(); r != nil {
				(*r).Exchange()
				s.preExchange.Store(true)
			}
			if _, _, err := s.RunEpoch(); err != nil {
				s.lastErr.Store(&epochError{err})
			} else {
				s.lastErr.Store(nil)
			}
		}
	}
}

// Close stops the scheduler, fsyncs and closes the ledger. It does not run
// a final epoch; pending feedback is durable in the write-ahead log (when
// persistence is on) and is replayed on the next start.
func (s *Service) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	// Serialise with any in-flight persistence before closing the WAL.
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	// Make the tail durable: Close flushes, but only Sync fsyncs — without
	// it a clean SIGTERM could still lose the last writes to a power cut.
	if err := s.ledger.Sync(); err != nil {
		s.ledger.Close()
		return err
	}
	return s.ledger.Close()
}
