package service

// ShardStat is one shard's slice of the service statistics: its last fold's
// metadata plus whether pending feedback has re-dirtied it.
type ShardStat struct {
	Shard int `json:"shard"`
	// Epoch and Seq are the shard's current fold point (0/0 = never folded).
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// Steps, Converged, ElapsedNs and Computed describe the last fold: the
	// slowest campaign's steps, whether all campaigns converged, the fold's
	// wall-clock duration, and how many per-subject campaigns actually ran.
	Steps     int   `json:"steps"`
	Converged bool  `json:"converged"`
	ElapsedNs int64 `json:"elapsed_ns"`
	Computed  int   `json:"computed_subjects"`
	// WarmStarts and ColdStarts split Computed by campaign seeding;
	// TotalSteps sums the last fold's campaign step counts.
	WarmStarts int `json:"warm_starts"`
	ColdStarts int `json:"cold_starts"`
	TotalSteps int `json:"total_steps"`
	// Dirty reports pending feedback awaiting this shard's next fold.
	Dirty bool `json:"dirty"`
}

// Stats is a point-in-time observation of the pipeline, assembled entirely
// from atomic loads — no locks anywhere on this path, so the stats endpoint
// can be polled at any rate without perturbing ingest or epochs.
type Stats struct {
	N      int `json:"n"`
	Shards int `json:"shards"`
	// Epochs counts fold rounds completed; Pending and DirtyShards size the
	// backlog awaiting the next round.
	Epochs      uint64 `json:"epochs"`
	Pending     int    `json:"pending"`
	DirtyShards int    `json:"dirty_shards"`
	// FoldedShards and FoldedSubjects are the cumulative incrementality
	// meters (see Service.FoldedSubjects); WarmStarts and ColdStarts split
	// FoldedSubjects by campaign seeding.
	FoldedShards   uint64 `json:"folded_shards"`
	FoldedSubjects uint64 `json:"folded_subjects"`
	WarmStarts     uint64 `json:"warm_starts"`
	ColdStarts     uint64 `json:"cold_starts"`
	// LastEpochNs sums the newest epoch's shard fold durations.
	LastEpochNs int64 `json:"last_epoch_ns"`
	// PerShard has one entry per shard, in shard order.
	PerShard []ShardStat `json:"per_shard"`
}

// Stats assembles the current statistics lock-free: per-shard snapshot
// pointer loads plus the ledger's and service's atomic counters.
func (s *Service) Stats() Stats {
	st := Stats{
		N:              s.n,
		Shards:         s.shards,
		Epochs:         s.epochs.Load(),
		Pending:        s.ledger.PendingCount(),
		DirtyShards:    s.ledger.DirtyCount(),
		FoldedShards:   s.foldedShards.Load(),
		FoldedSubjects: s.foldedSubjects.Load(),
		WarmStarts:     s.warmStarts.Load(),
		ColdStarts:     s.coldStarts.Load(),
		PerShard:       make([]ShardStat, s.shards),
	}
	var newest uint64
	for sh := range st.PerShard {
		seg := s.states[sh].Load()
		st.PerShard[sh] = ShardStat{
			Shard:      sh,
			Epoch:      seg.Epoch,
			Seq:        seg.Seq,
			Steps:      seg.Steps,
			Converged:  seg.Converged,
			ElapsedNs:  seg.ElapsedNs,
			Computed:   seg.Computed,
			WarmStarts: seg.WarmStarts,
			ColdStarts: seg.ColdStarts,
			TotalSteps: seg.TotalSteps,
			Dirty:      s.ledger.ShardDirty(sh),
		}
		if seg.Epoch > newest {
			newest = seg.Epoch
		}
	}
	for _, ps := range st.PerShard {
		if ps.Epoch == newest && newest > 0 {
			st.LastEpochNs += ps.ElapsedNs
		}
	}
	return st
}
