package service

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// TestConcurrentIngestQueryEpochs hammers Submit and the read path from many
// goroutines while the background scheduler recomputes epochs, then checks:
//
//   - every observed snapshot is internally consistent — the published
//     global values match the exact fixed point (GlobalRef) of the *same*
//     snapshot's frozen trust matrix, so a torn snapshot (globals from one
//     epoch paired with trust state from another) would be caught;
//   - epochs only move forward under concurrency;
//   - after ingest stops and a final epoch folds everything, reputations
//     match GlobalReference for the full feedback history within ε tolerance.
//
// Run under -race (the CI race job does) this is the service's concurrency
// contract test.
func TestConcurrentIngestQueryEpochs(t *testing.T) {
	const (
		n        = 50
		writers  = 4
		readers  = 4
		perWrite = 300
	)
	s := newTestService(t, n, Config{
		Graph:         testGraph(t, n, 17),
		Params:        core.Params{Epsilon: 1e-6, Seed: 23},
		EpochInterval: 2 * time.Millisecond,
	})

	var stopReads atomic.Bool
	var wg sync.WaitGroup

	// Writers: each submits perWrite random (but valid) feedback entries.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(1000 + w))
			for i := 0; i < perWrite; i++ {
				if _, err := s.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Readers: load snapshots and verify internal consistency while epochs
	// publish underneath them.
	var reads atomic.Int64
	var readWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWg.Add(1)
		go func(r int) {
			defer readWg.Done()
			src := rng.New(uint64(2000 + r))
			var lastEpoch uint64
			for !stopReads.Load() {
				snap := s.Snapshot()
				if snap.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				j := src.Intn(n)
				got, err := snap.Reputation(j)
				if err != nil {
					t.Error(err)
					return
				}
				want := core.GlobalRef(snap.Trust, j)
				if math.Abs(got-want) > epsTol {
					t.Errorf("torn snapshot: epoch %d subject %d global %v but frozen-matrix reference %v",
						snap.Epoch, j, got, want)
					return
				}
				if _, err := snap.Personal(src.Intn(n), j, trust.DefaultWeightParams); err != nil {
					t.Error(err)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	wg.Wait() // all feedback submitted
	// Let the scheduler fold the tail, then stop readers.
	deadline := time.Now().Add(10 * time.Second)
	for s.Pending() > 0 && time.Now().After(deadline) == false {
		time.Sleep(time.Millisecond)
	}
	stopReads.Store(true)
	readWg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers observed no snapshots")
	}

	// Final epoch: everything folded, estimates match the exact references.
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Seq != writers*perWrite {
		t.Fatalf("final snapshot folded seq %d, want %d", snap.Seq, writers*perWrite)
	}
	if !snap.Converged {
		t.Fatal("final epoch did not converge")
	}
	for j := 0; j < n; j++ {
		want := core.GlobalRef(snap.Trust, j)
		if math.Abs(snap.Global[j]-want) > epsTol {
			t.Errorf("subject %d: final global %v, GlobalReference %v", j, snap.Global[j], want)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}
