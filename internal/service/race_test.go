package service

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// TestConcurrentIngestQueryEpochs hammers Submit and the read path from many
// goroutines while the background scheduler recomputes epochs, then checks:
//
//   - every observed snapshot is internally consistent — the published
//     global values match the exact fixed point (GlobalRef) of the *same*
//     snapshot's frozen trust matrix, so a torn snapshot (globals from one
//     epoch paired with trust state from another) would be caught;
//   - epochs only move forward under concurrency;
//   - after ingest stops and a final epoch folds everything, reputations
//     match GlobalReference for the full feedback history within ε tolerance.
//
// Run under -race (the CI race job does) this is the service's concurrency
// contract test.
func TestConcurrentIngestQueryEpochs(t *testing.T) {
	const (
		n        = 50
		writers  = 4
		readers  = 4
		perWrite = 300
	)
	s := newTestService(t, n, Config{
		Graph:         testGraph(t, n, 17),
		Params:        core.Params{Epsilon: 1e-6, Seed: 23},
		EpochInterval: 2 * time.Millisecond,
		Shards:        5,
		FoldWorkers:   2,
	})

	var stopReads atomic.Bool
	var wg sync.WaitGroup

	// Writers: each submits perWrite random (but valid) feedback entries.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(1000 + w))
			for i := 0; i < perWrite; i++ {
				if _, err := s.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Readers: capture composite views and verify per-shard internal
	// consistency while shard folds publish underneath them.
	var reads atomic.Int64
	var readWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWg.Add(1)
		go func(r int) {
			defer readWg.Done()
			src := rng.New(uint64(2000 + r))
			var lastEpoch uint64
			for !stopReads.Load() {
				v := s.View()
				if v.Epoch() < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", v.Epoch(), lastEpoch)
					return
				}
				lastEpoch = v.Epoch()
				j := src.Intn(n)
				got, err := v.Reputation(j)
				if err != nil {
					t.Error(err)
					return
				}
				// The reference evaluates over the same captured shard
				// snapshot the value came from, so a torn publication
				// (globals from one fold paired with columns from another)
				// would be caught.
				want := core.GlobalRef(v, j)
				if math.Abs(got-want) > epsTol {
					t.Errorf("torn shard snapshot: epoch %d subject %d global %v but frozen-column reference %v",
						v.SubjectEpoch(j), j, got, want)
					return
				}
				if _, err := v.Personal(src.Intn(n), j, trust.DefaultWeightParams); err != nil {
					t.Error(err)
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	wg.Wait() // all feedback submitted
	// Let the scheduler fold the tail, then stop readers.
	deadline := time.Now().Add(10 * time.Second)
	for s.Pending() > 0 && time.Now().After(deadline) == false {
		time.Sleep(time.Millisecond)
	}
	stopReads.Store(true)
	readWg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers observed no snapshots")
	}

	// Final epoch: everything folded, estimates match the exact references.
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.Seq() != writers*perWrite {
		t.Fatalf("final view folded seq %d, want %d", v.Seq(), writers*perWrite)
	}
	if !v.Converged() {
		t.Fatal("final epoch did not converge")
	}
	for j := 0; j < n; j++ {
		got, err := v.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		want := core.GlobalRef(v, j)
		if math.Abs(got-want) > epsTol {
			t.Errorf("subject %d: final global %v, GlobalReference %v", j, got, want)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}
