package service

import (
	"fmt"
	"sort"

	"diffgossip/internal/store"
	"diffgossip/internal/trust"
)

// View is the composite read surface of the sharded service: the per-shard
// snapshots current at construction, stitched into one queryable whole.
// Building one costs S atomic pointer loads and one small allocation — no
// locks — and the captured segments are immutable, so a View can be held
// and queried for as long as the caller likes while epochs keep publishing
// underneath.
//
// # Consistency
//
// A View is snapshot-consistent per shard: everything about subject j — its
// global reputation, rater count, frozen trust column, fold epoch and fold
// sequence number — comes from one immutable publication of shard
// ShardOf(j). Different shards may sit at different fold points (that is
// the price of never recomputing clean shards); cross-shard reads such as
// the personalised GCLR view therefore combine columns from possibly
// different epochs, each internally consistent, all within the gossip error
// envelope of their own fold. With a single shard this degrades to exactly
// the old globally-snapshot-consistent model.
type View struct {
	n    int
	segs []*store.ShardSnapshot
}

var _ trust.Reader = (*View)(nil)

// N returns the network size.
func (v *View) N() int { return v.n }

// Shards returns the subject-shard count.
func (v *View) Shards() int { return len(v.segs) }

// Shard returns the captured snapshot of one shard.
func (v *View) Shard(s int) *store.ShardSnapshot { return v.segs[s] }

// seg returns the shard snapshot owning subject j.
func (v *View) seg(j int) (*store.ShardSnapshot, error) {
	if j < 0 || j >= v.n {
		return nil, fmt.Errorf("service: subject %d out of range [0,%d)", j, v.n)
	}
	return v.segs[store.ShardOf(j, len(v.segs))], nil
}

// Epoch returns the newest fold epoch any shard has published — the
// service-wide epoch counter as of this View. A subject's own fold point is
// SubjectEpoch.
func (v *View) Epoch() uint64 {
	var max uint64
	for _, seg := range v.segs {
		if seg.Epoch > max {
			max = seg.Epoch
		}
	}
	return max
}

// Seq returns the newest folded ledger sequence number across shards.
// Feedback for subject j is visible once SubjectSeq(j) reaches the number
// Submit returned for it.
func (v *View) Seq() uint64 {
	var max uint64
	for _, seg := range v.segs {
		if seg.Seq > max {
			max = seg.Seq
		}
	}
	return max
}

// Converged reports whether every shard's last fold converged (vacuously
// true for shards that never folded).
func (v *View) Converged() bool {
	for _, seg := range v.segs {
		if !seg.Converged {
			return false
		}
	}
	return true
}

// Steps returns the slowest campaign step count among the newest epoch's
// folds (matching ElapsedNs — per-shard step counts from older folds are in
// each shard's own snapshot).
func (v *View) Steps() int {
	epoch := v.Epoch()
	max := 0
	for _, seg := range v.segs {
		if seg.Epoch == epoch && seg.Steps > max {
			max = seg.Steps
		}
	}
	return max
}

// TotalSteps returns the summed campaign step counts of the newest epoch's
// folds — the epoch's compute-cost meter (warm-started epochs spend far
// fewer than cold ones for the same dirty set).
func (v *View) TotalSteps() int {
	epoch := v.Epoch()
	if epoch == 0 {
		return 0
	}
	total := 0
	for _, seg := range v.segs {
		if seg.Epoch == epoch {
			total += seg.TotalSteps
		}
	}
	return total
}

// ElapsedNs returns the total compute time of the newest epoch: the sum of
// fold durations over the shards published at Epoch().
func (v *View) ElapsedNs() int64 {
	epoch := v.Epoch()
	if epoch == 0 {
		return 0
	}
	var total int64
	for _, seg := range v.segs {
		if seg.Epoch == epoch {
			total += seg.ElapsedNs
		}
	}
	return total
}

// Reputation returns subject j's global reputation.
func (v *View) Reputation(j int) (float64, error) {
	seg, err := v.seg(j)
	if err != nil {
		return 0, err
	}
	return seg.Reputation(j)
}

// Raters returns subject j's distinct-rater count (0 on out-of-range, which
// Reputation reports as the error).
func (v *View) Raters(j int) int {
	seg, err := v.seg(j)
	if err != nil {
		return 0
	}
	return seg.RaterCount(j)
}

// SubjectEpoch returns subject j's own fold point epoch — the epoch of its
// shard's captured snapshot.
func (v *View) SubjectEpoch(j int) uint64 {
	if seg, err := v.seg(j); err == nil {
		return seg.Epoch
	}
	return 0
}

// SubjectSeq returns the ledger sequence number through which subject j's
// shard is folded; a Submit is visible once this reaches its returned seq.
func (v *View) SubjectSeq(j int) uint64 {
	if seg, err := v.seg(j); err == nil {
		return seg.Seq
	}
	return 0
}

// Personal returns the globally calibrated local (GCLR) view of subject as
// seen by rater, evaluated over the stitched frozen columns (paper eq. (6)
// with the rater-count denominator).
func (v *View) Personal(rater, subject int, p trust.WeightParams) (float64, error) {
	if rater < 0 || rater >= v.n || subject < 0 || subject >= v.n {
		return 0, fmt.Errorf("service: pair (%d,%d) out of range [0,%d)", rater, subject, v.n)
	}
	return trust.WeightedColumn(v, rater, subject, v.InteractedWith(rater), p, true), nil
}

// --- trust.Reader over the stitched columns ---

// Get returns t_ij from the frozen column of j's shard.
func (v *View) Get(i, j int) (float64, bool) {
	if i < 0 || i >= v.n || j < 0 || j >= v.n {
		return 0, false
	}
	return v.segs[store.ShardOf(j, len(v.segs))].Cols.Get(i, j)
}

// Value returns t_ij, or 0 when absent.
func (v *View) Value(i, j int) float64 {
	t, _ := v.Get(i, j)
	return t
}

// ColumnSum returns (Σ_i t_ij, raterCount) for column j.
func (v *View) ColumnSum(j int) (float64, int) {
	if j < 0 || j >= v.n {
		return 0, 0
	}
	return v.segs[store.ShardOf(j, len(v.segs))].Cols.ColumnSum(j)
}

// InteractedWith returns the sorted ids of every node rater i holds direct
// trust about, unioned across the shards' frozen columns.
func (v *View) InteractedWith(i int) []int {
	if i < 0 || i >= v.n {
		return nil
	}
	var out []int
	for _, seg := range v.segs {
		for j := range seg.Cols.RowOf(i) {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}
