package service

import (
	"path/filepath"
	"testing"
)

// lwwPair builds two replicating services over the same graph and params,
// differing only in their origin identity — the two replicas of a cluster,
// minus the wire.
func lwwPair(t *testing.T, n int) (*Service, *Service) {
	t.Helper()
	mk := func(origin string) *Service {
		return newTestService(t, n, Config{
			Graph:          testGraph(t, n, 7),
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         origin,
		})
	}
	return mk("node-a"), mk("node-b")
}

// reputationsEqual asserts two services serve bit-identical reputations for
// every subject.
func reputationsEqual(t *testing.T, a, b *Service) {
	t.Helper()
	for subject := 0; subject < a.N(); subject++ {
		ra, _, err := a.Reputation(subject)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.Reputation(subject)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("subject %d: a=%v b=%v (not bit-identical)", subject, ra, rb)
		}
	}
}

// TestLWWOppositeArrivalOrders is the convergence keystone: two replicas
// receive conflicting writes to the same (rater, subject) cell in opposite
// orders — each accepts one locally and the other's via replication — and
// must fold to identical state, because conflicts resolve by the
// (timestamp, origin, origin seq) total order, not arrival order.
func TestLWWOppositeArrivalOrders(t *testing.T) {
	a, b := lwwPair(t, 16)

	// a accepts the older write locally, b the newer one.
	seqA, err := a.SubmitAt(1, 2, 0.25, 100)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := b.SubmitAt(1, 2, 0.75, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-replicate: a sees the newer write second (applies), b sees the
	// older write second (must lose the fold despite arriving last).
	if _, err := a.ReplicatedSubmit("node-b", seqB, 1, 2, 0.75, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReplicatedSubmit("node-a", seqA, 1, 2, 0.25, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	reputationsEqual(t, a, b)
}

// TestLWWTimestampTieBreaksOnOrigin pins the tie-break: identical
// timestamps resolve by origin id (then origin seq), so even pathological
// clock collisions converge.
func TestLWWTimestampTieBreaksOnOrigin(t *testing.T) {
	a, b := lwwPair(t, 16)

	seqA, err := a.SubmitAt(3, 5, 0.1, 500)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := b.SubmitAt(3, 5, 0.9, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReplicatedSubmit("node-b", seqB, 3, 5, 0.9, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReplicatedSubmit("node-a", seqA, 3, 5, 0.1, 500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	reputationsEqual(t, a, b)

	// "node-b" > "node-a" in the total order, so 0.9 must be the winner on
	// both: compare against a third service that only ever saw the winner.
	c := newTestService(t, 16, Config{
		Graph:          testGraph(t, 16, 7),
		Replicate:      true,
		FixedEpochSeed: true,
		Origin:         "node-c",
	})
	if _, err := c.ReplicatedSubmit("node-b", seqB, 3, 5, 0.9, 500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	reputationsEqual(t, a, c)
}

// TestLWWTagsSurviveRestart proves the tags rebuild from the WAL: a write
// folded before a restart still beats an older conflicting write that
// arrives after it.
func TestLWWTagsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Service {
		s, err := New(Config{
			Graph:          testGraph(t, 16, 7),
			Dir:            filepath.Join(dir, "data"),
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         "node-a",
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk()
	if _, err := s.SubmitAt(4, 6, 0.8, 900); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	want, _, err := s.Reputation(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mk()
	defer s.Close()
	// An older conflicting write straggles in after the restart; without
	// the rebuilt tags it would clobber the folded winner.
	if _, err := s.ReplicatedSubmit("node-b", 1, 4, 6, 0.2, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Reputation(6)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reputation after restart + stale write = %v, want %v", got, want)
	}
}
