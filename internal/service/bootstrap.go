package service

import (
	"fmt"

	"diffgossip/internal/store"
)

// Snapshot-shipped bootstrap: a fresh (or deeply lagging) replica fetches a
// peer's folded shard segments plus the compacted ledger suffix instead of
// replaying whole origin streams entry by entry. The transfer is O(current
// state + unfolded tail), not O(lifetime traffic) — the property that makes
// replica placement free once WAL compaction and history trimming bound the
// sender's retained suffix. The cluster layer frames a StateTransfer on the
// wire (transport.KindStateRequest / KindState); this file is the
// service-side assembly and installation.

// StateTransfer is the materialised payload of a snapshot-shipped bootstrap.
type StateTransfer struct {
	// Segments are the sender's published shard snapshots, captured before
	// the entry lists so every shipped entry is classifiable against their
	// fold points.
	Segments []*store.ShardSnapshot
	// Folded are retained ledger entries whose folds Segments already
	// reflect: the receiver records them — WAL, watermarks, history, LWW
	// tags — without re-queueing them for a fold. Every entry carries its
	// origin id (the sender stamps its own id on locally accepted ones).
	Folded []store.Feedback
	// Tail are retained entries past the segments' fold points, which the
	// receiver enqueues for its next epoch like any replicated entry.
	Tail []store.Feedback
	// Marks are the sender's per-origin watermarks, captured before the
	// entry lists were read so the lists always cover them. Keyed by origin
	// id — the sender's own stream appears under its id, never "".
	Marks map[string]uint64
}

// BootstrapState assembles a state transfer for a peer whose per-origin
// watermarks are reqMarks (keyed by origin id; nil or empty for a fresh
// replica). Entries a requester already holds — at or below its own marks —
// are not shipped. Requires Config.Replicate and a configured Origin.
//
// Capture order is load-bearing: segments first, then watermarks, then the
// entry lists. Entries accepted between captures classify against the
// captured fold points (landing in Tail at worst, a harmless refold), and
// marks captured before the lists can never claim coverage of an entry that
// was not shipped.
func (s *Service) BootstrapState(reqMarks map[string]uint64) (*StateTransfer, error) {
	if !s.cfg.Replicate || s.cfg.Origin == "" {
		return nil, fmt.Errorf("service: bootstrap requires replication mode with an origin id")
	}
	view := s.View()
	marks := s.ledger.OriginMarks()
	out := &StateTransfer{
		Segments: view.segs,
		Marks:    make(map[string]uint64, len(marks)+1),
	}
	if m := s.LocalStreamMark(); m > 0 {
		out.Marks[s.cfg.Origin] = m
	}
	streams := []string{""}
	for o, m := range marks {
		out.Marks[o] = m
		streams = append(streams, o)
	}
	for _, stream := range streams {
		wireOrigin := stream
		if stream == "" {
			wireOrigin = s.cfg.Origin
		}
		for _, fb := range s.ledger.EntriesSince(stream, reqMarks[wireOrigin], 0) {
			if fb.Origin == "" {
				fb.Origin, fb.OriginSeq = s.cfg.Origin, fb.Seq
			}
			if fb.Seq <= view.segs[store.ShardOf(fb.Subject, s.shards)].Seq {
				out.Folded = append(out.Folded, fb)
			} else {
				out.Tail = append(out.Tail, fb)
			}
		}
	}
	return out, nil
}

// InstallBootstrap applies a peer's state transfer: folded entries are
// recorded (WAL, watermarks, history, LWW tags) without re-queueing them,
// the shipped segments are rebased into the local sequence space and
// published, tail entries are enqueued like ordinary replicated entries, and
// any locally retained entries the sender's transfer did not cover are
// re-queued so their folds are not lost. With persistence on, the ledger is
// fsynced before the installed segments are saved — the same
// WAL-covers-segments invariant the boot guard checks.
//
// A transfer containing entries of this node's own origin is refused:
// re-ingesting our own stream would re-number it and change its LWW tags.
// (That only arises when a node loses its data directory but keeps its
// identity; such a node must rejoin under a fresh identity.)
func (s *Service) InstallBootstrap(st *StateTransfer) error {
	if !s.cfg.Replicate || s.cfg.Origin == "" {
		return fmt.Errorf("service: bootstrap requires replication mode with an origin id")
	}
	if st == nil || len(st.Segments) == 0 {
		return fmt.Errorf("service: bootstrap transfer has no segments")
	}
	for i, seg := range st.Segments {
		if seg == nil {
			return fmt.Errorf("service: bootstrap transfer segment %d missing", i)
		}
		if seg.N != s.n {
			return fmt.Errorf("service: bootstrap transfer is for N=%d, this service has N=%d", seg.N, s.n)
		}
	}
	for _, fb := range st.Folded {
		if fb.Origin == "" || fb.Origin == s.cfg.Origin {
			return fmt.Errorf("service: bootstrap transfer contains this node's own stream (origin %q) — rejoin with a fresh identity", fb.Origin)
		}
	}
	for _, fb := range st.Tail {
		if fb.Origin == "" || fb.Origin == s.cfg.Origin {
			return fmt.Errorf("service: bootstrap transfer contains this node's own stream (origin %q) — rejoin with a fresh identity", fb.Origin)
		}
	}
	segs := st.Segments
	if len(segs) != s.shards {
		// The sender runs a different shard layout; restitch along ours.
		full, err := store.StitchSnapshot(segs)
		if err != nil {
			return fmt.Errorf("service: bootstrap: %w", err)
		}
		if segs, err = store.SplitSnapshot(full, s.shards); err != nil {
			return fmt.Errorf("service: bootstrap: %w", err)
		}
	}

	s.epochMu.Lock()
	defer s.epochMu.Unlock()

	// 1. Record the folded entries. Their folds arrive with the segments, so
	// they bypass the pending window entirely — the step that makes
	// bootstrap O(state) instead of O(replay).
	for _, fb := range st.Folded {
		_, applied, err := s.ledger.AppendReplicatedStored(fb)
		if err != nil {
			return fmt.Errorf("service: bootstrap: %w", err)
		}
		if applied {
			s.recordTag(fb)
		}
	}
	// rebased is the local fold point the installed segments may claim:
	// every local ledger entry at or below it is either recorded above or
	// handled by the re-pend list computed next.
	rebased := s.ledger.Seq()

	// 2. Anything we retain past the sender's shipped coverage — entries the
	// sender had never seen when it captured its marks — must refold, or
	// replacing the master state below would silently drop their writes.
	var repend []store.Feedback
	rependStreams := []string{""}
	for o := range s.ledger.OriginMarks() {
		rependStreams = append(rependStreams, o)
	}
	for _, stream := range rependStreams {
		wireOrigin := stream
		if stream == "" {
			wireOrigin = s.cfg.Origin
		}
		repend = append(repend, s.ledger.EntriesSince(stream, st.Marks[wireOrigin], 0)...)
	}

	// 3. Rebase and publish the segments. A shard's claimed fold point backs
	// off below its oldest re-pended entry, so a crash before the refold
	// persists still re-pends that entry at next boot.
	segSeq := make([]uint64, s.shards)
	for sh := range segSeq {
		segSeq[sh] = rebased
	}
	for _, fb := range repend {
		sh := store.ShardOf(fb.Subject, s.shards)
		if fb.Seq > 0 && fb.Seq-1 < segSeq[sh] {
			segSeq[sh] = fb.Seq - 1
		}
	}
	epoch := s.epochs.Load() + 1
	for sh, seg := range segs {
		seg.Epoch = epoch
		seg.Seq = segSeq[sh]
	}
	full, err := store.StitchSnapshot(segs)
	if err != nil {
		return fmt.Errorf("service: bootstrap: %w", err)
	}
	s.master = full.Trust
	for sh, seg := range segs {
		s.states[sh].Store(seg)
	}
	s.epochs.Store(epoch)

	// 4. Tail entries fold at the next epoch, like any replicated entry.
	for _, fb := range st.Tail {
		if _, _, err := s.ledger.AppendReplicated(fb); err != nil {
			return fmt.Errorf("service: bootstrap: %w", err)
		}
	}
	// 5. Re-pend ahead of the tail (Restore prepends): these entries are
	// older, and LWW folding makes any interleaving converge identically.
	s.ledger.Restore(repend)

	// 6. Durability, same invariant as the epoch persistence phase: ledger
	// first, then segments.
	if s.cfg.Dir != "" {
		s.persistMu.Lock()
		defer s.persistMu.Unlock()
		if err := s.ledger.Sync(); err != nil {
			return err
		}
		for sh, seg := range segs {
			if err := seg.SaveFile(shardPath(s.cfg.Dir, sh)); err != nil {
				return err
			}
			s.persistedEpoch[sh] = seg.Epoch
			s.persistedSeq[sh] = seg.Seq
		}
	}
	return nil
}
