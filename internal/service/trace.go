package service

import "sync"

// DefaultTraceDepth is how many recent epochs the trace ring keeps when
// Config.TraceDepth is left zero.
const DefaultTraceDepth = 64

// ShardTrace is one shard's fold inside an epoch trace: when the fold
// started relative to the epoch, how long the gossip campaigns ran, and
// their outcome.
type ShardTrace struct {
	// Shard is the subject shard that folded.
	Shard int `json:"shard"`
	// StartOffsetNs is when the fold started, relative to the epoch start.
	StartOffsetNs int64 `json:"start_offset_ns"`
	// DurationNs is the gossip campaign time for this shard.
	DurationNs int64 `json:"duration_ns"`
	// Steps is the slowest campaign's step count; Converged reports whether
	// every campaign hit the ξ tolerance; Computed counts the subjects the
	// fold actually recomputed.
	Steps     int  `json:"steps"`
	Converged bool `json:"converged"`
	Computed  int  `json:"computed_subjects"`
	// WarmStarts and ColdStarts split Computed by campaign seeding: from a
	// previous epoch's recorded state, or from the trust column alone.
	WarmStarts int `json:"warm_starts"`
	ColdStarts int `json:"cold_starts"`
}

// EpochTrace is one row of the scheduler's bounded trace ring: everything
// needed to postmortem a slow or stalled epoch after the fact — what was
// folded, which shards ran when and for how long, and whether an
// anti-entropy exchange preceded the fold.
type EpochTrace struct {
	// Epoch is the fold round this row describes.
	Epoch uint64 `json:"epoch"`
	// StartUnixNano is the epoch's wall-clock start.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNs is the compute phase — fold, campaigns, publish — not the
	// trailing persistence, which runs off the critical section.
	DurationNs int64 `json:"duration_ns"`
	// Entries is the pending batch size folded; Seq the last ledger
	// sequence it covered; DirtyShards how many shards it recomputed.
	Entries     int    `json:"entries"`
	Seq         uint64 `json:"seq"`
	DirtyShards int    `json:"dirty_shards"`
	// ExchangeBefore reports whether the scheduler poked the replicator for
	// an anti-entropy exchange immediately before this epoch (always false
	// for manual RunEpoch calls).
	ExchangeBefore bool `json:"exchange_before,omitempty"`
	// Shards carries the per-shard fold timeline, in fold-order.
	Shards []ShardTrace `json:"shards"`
}

// traceRing is the bounded epoch-trace buffer: record overwrites the oldest
// row past the depth, snapshot returns rows oldest-first. Recording happens
// once per non-empty epoch and takes a short mutex — nowhere near any hot
// path.
type traceRing struct {
	mu    sync.Mutex
	depth int
	rows  []EpochTrace
	next  int // write cursor once len(rows) == depth
}

func (r *traceRing) record(t EpochTrace) {
	if r.depth <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rows) < r.depth {
		r.rows = append(r.rows, t)
		return
	}
	r.rows[r.next] = t
	r.next = (r.next + 1) % r.depth
}

func (r *traceRing) snapshot() []EpochTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochTrace, 0, len(r.rows))
	out = append(out, r.rows[r.next:]...)
	out = append(out, r.rows[:r.next]...)
	return out
}

// Trace returns the last TraceDepth non-empty epochs, oldest first — the
// GET /v1/trace payload. Rows are copies; the caller may keep them.
func (s *Service) Trace() []EpochTrace { return s.trace.snapshot() }

// TraceDepth returns the ring's configured capacity.
func (s *Service) TraceDepth() int { return s.trace.depth }
