package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"diffgossip/internal/core"
	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// TestWarmEpochMatchesReference is the tentpole equivalence criterion at the
// service layer: a second epoch that warm-starts most of its campaigns from
// the first epoch's recorded states serves reputations that agree — within
// the reference tolerance — with a from-scratch core.GlobalAll over the same
// folded matrix, for S ∈ {1, 4, 17} and representative worker counts.
func TestWarmEpochMatchesReference(t *testing.T) {
	const n = 60
	const baseSeed = 23
	g := testGraph(t, n, 9)

	// Mirror both feedback batches into a reference matrix, in submission
	// order (ascending timestamps make last-write-wins equal last-Set-wins).
	ref := trust.NewMatrix(n)
	mirror := func(seed uint64, count int) [][3]float64 {
		src := rng.New(seed)
		out := make([][3]float64, count)
		for k := range out {
			out[k] = [3]float64{float64(src.Intn(n)), float64(src.Intn(n)), src.Float64()}
		}
		return out
	}
	batch1 := mirror(77, 500)
	batch2 := mirror(78, 120)
	for _, b := range append(append([][3]float64{}, batch1...), batch2...) {
		if err := ref.Set(int(b[0]), int(b[1]), b[2]); err != nil {
			t.Fatal(err)
		}
	}
	// The cold comparator runs at epoch 2's derived seed with the service's
	// sparse default; the exact column means anchor both runs.
	p := core.Params{Epsilon: 1e-6, Seed: epochSeed(baseSeed, 2), SparseRaterFrac: 0.25}
	all, err := core.GlobalAll(g, ref, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ shards, foldWorkers, workers int }{
		{1, 1, 0},
		{4, -1, 3},
		{17, 2, -1},
	} {
		s := newTestService(t, n, Config{
			Graph:       g,
			Params:      core.Params{Epsilon: 1e-6, Seed: baseSeed, Workers: tc.workers},
			Shards:      tc.shards,
			FoldWorkers: tc.foldWorkers,
		})
		submit := func(batch [][3]float64) {
			t.Helper()
			for _, b := range batch {
				if _, err := s.Submit(int(b[0]), int(b[1]), b[2]); err != nil {
					t.Fatal(err)
				}
			}
		}
		submit(batch1)
		if _, _, err := s.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		submit(batch2)
		v, ran, err := s.RunEpoch()
		if err != nil || !ran {
			t.Fatalf("S=%d: epoch 2 (ran=%v, err=%v)", tc.shards, ran, err)
		}
		if s.WarmStarts() == 0 {
			t.Fatalf("S=%d: epoch 2 warm-started no campaigns", tc.shards)
		}
		for j := 0; j < n; j++ {
			got, err := v.Reputation(j)
			if err != nil {
				t.Fatal(err)
			}
			if want := all.Reputation[0][j]; math.Abs(got-want) > epsTol {
				t.Fatalf("S=%d foldWorkers=%d workers=%d subject %d: warm-epoch %v vs cold GlobalAll %v",
					tc.shards, tc.foldWorkers, tc.workers, j, got, want)
			}
		}
	}
}

// TestWarmStartTraceMetricsAgree pins the three observability surfaces to
// one truth: the per-epoch trace rows' warm/cold splits sum to the service
// counters, which are exactly what the Prometheus registry scrapes, and the
// campaign-steps histogram has observed every computed campaign.
func TestWarmStartTraceMetricsAgree(t *testing.T) {
	const n = 40
	s := newTestService(t, n, Config{Shards: 5})
	reg := obs.NewRegistry()
	s.Instrument(reg)

	src := rng.New(3)
	for e := 0; e < 4; e++ {
		for k := 0; k < 80; k++ {
			if _, err := s.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if s.WarmStarts() == 0 || s.ColdStarts() == 0 {
		t.Fatalf("hammer produced warm=%d cold=%d — wanted both kinds", s.WarmStarts(), s.ColdStarts())
	}
	if s.WarmStarts()+s.ColdStarts() != s.FoldedSubjects() {
		t.Fatalf("warm %d + cold %d != folded subjects %d", s.WarmStarts(), s.ColdStarts(), s.FoldedSubjects())
	}

	var traceWarm, traceCold uint64
	for _, row := range s.Trace() {
		for _, sh := range row.Shards {
			traceWarm += uint64(sh.WarmStarts)
			traceCold += uint64(sh.ColdStarts)
		}
	}
	if traceWarm != s.WarmStarts() || traceCold != s.ColdStarts() {
		t.Fatalf("trace sums warm=%d cold=%d, counters %d/%d", traceWarm, traceCold, s.WarmStarts(), s.ColdStarts())
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scraped := func(name string) float64 {
		t.Helper()
		sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
				if err != nil {
					t.Fatalf("metric %s: %v", name, err)
				}
				return v
			}
		}
		t.Fatalf("metric %s not scraped", name)
		return 0
	}
	if got := scraped("diffgossip_service_warm_starts_total"); got != float64(s.WarmStarts()) {
		t.Fatalf("scraped warm starts %v, counter %d", got, s.WarmStarts())
	}
	if got := scraped("diffgossip_service_cold_starts_total"); got != float64(s.ColdStarts()) {
		t.Fatalf("scraped cold starts %v, counter %d", got, s.ColdStarts())
	}
	if got := scraped("diffgossip_service_campaign_steps_count"); got != float64(s.FoldedSubjects()) {
		t.Fatalf("steps histogram observed %v campaigns, folded %d", got, s.FoldedSubjects())
	}
	// Stats mirrors the same counters.
	st := s.Stats()
	if st.WarmStarts != s.WarmStarts() || st.ColdStarts != s.ColdStarts() {
		t.Fatalf("stats warm/cold %d/%d, counters %d/%d", st.WarmStarts, st.ColdStarts, s.WarmStarts(), s.ColdStarts())
	}
}

// TestWarmStateSurvivesRestart: recorded campaign states persist in the
// shard segments, so a restarted service's first epoch still warm-starts —
// unless the graph changed, in which case the fingerprint mismatch forces a
// (correct) cold epoch.
func TestWarmStateSurvivesRestart(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	cfg := Config{Graph: testGraph(t, n, 7), Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: 4}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitBatch(t, s, n, 200, 5)
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitBatch(t, s2, n, 50, 6)
	if _, _, err := s2.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if s2.WarmStarts() == 0 {
		t.Fatal("restart lost the persisted warm states")
	}
	s2.Close()

	// A different overlay invalidates the states: every campaign restarts
	// cold, and the results still match the exact references.
	cfg3 := cfg
	cfg3.Graph = testGraph(t, n, 8)
	s3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	submitBatch(t, s3, n, 50, 7)
	if _, _, err := s3.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if s3.WarmStarts() != 0 {
		t.Fatalf("graph changed but %d campaigns warm-started off the stale states", s3.WarmStarts())
	}
	v := s3.View()
	for j := 0; j < n; j++ {
		if seg, _ := s3.SubjectRead(j); seg.Epoch == 0 {
			continue
		}
		got, _ := v.Reputation(j)
		if want := core.GlobalRef(v, j); math.Abs(got-want) > epsTol {
			t.Fatalf("subject %d after graph change: %v, reference %v", j, got, want)
		}
	}
}

// TestWarmStartDisabled: NoWarmStart and Replicate both force every campaign
// cold — replicas pin bit-equality, which warm trajectories would break.
func TestWarmStartDisabled(t *testing.T) {
	const n = 30
	for name, cfg := range map[string]Config{
		"NoWarmStart": {Shards: 3, NoWarmStart: true},
		"Replicate":   {Shards: 3, Replicate: true},
	} {
		s := newTestService(t, n, cfg)
		for e := 0; e < 3; e++ {
			submitBatch(t, s, n, 60, uint64(40+e))
			if _, _, err := s.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		if s.WarmStarts() != 0 {
			t.Fatalf("%s: %d campaigns warm-started", name, s.WarmStarts())
		}
		if s.ColdStarts() != s.FoldedSubjects() {
			t.Fatalf("%s: cold %d != folded %d", name, s.ColdStarts(), s.FoldedSubjects())
		}
	}
}

// TestWarmColdEpochHammer alternates warm and cold epochs under concurrent
// ingest and reads — the race job runs this with -race to shake out
// publication hazards around the shared warm states and engine reuse.
func TestWarmColdEpochHammer(t *testing.T) {
	const n = 50
	s := newTestService(t, n, Config{Shards: 7, Params: core.Params{Epsilon: 1e-4, Seed: 13, Workers: -1}, FoldWorkers: -1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Submit(src.Intn(n), src.Intn(n), src.Float64())
				s.Reputation(src.Intn(n))
				s.Stats()
			}
		}(uint64(100 + w))
	}
	src := rng.New(99)
	for e := 0; e < 8; e++ {
		// A synchronous dribble guarantees every epoch has work even if the
		// submitter goroutines lag; the concurrent traffic rides on top.
		for k := 0; k < 20; k++ {
			if _, err := s.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if s.FoldedSubjects() == 0 {
		t.Fatal("hammer folded nothing")
	}
	v := s.View()
	for j := 0; j < n; j++ {
		if seg, _ := s.SubjectRead(j); seg.Seq == 0 {
			continue
		}
		got, _ := v.Reputation(j)
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Fatalf("subject %d served out-of-range reputation %v", j, got)
		}
	}
}

// prev8Config matches the parameters the pre-v8 fixture generator used.
func prev8Config(t *testing.T, dir string, shards int) Config {
	t.Helper()
	return Config{Graph: testGraph(t, 40, 7), Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: shards}
}

// copyPrev8Fixture clones the committed pre-v8 (wire v1, pre-warm/sparse)
// sharded data dir into a temp dir and returns it with the expected state.
func copyPrev8Fixture(t *testing.T) (string, prerefactorExpect) {
	t.Helper()
	src := filepath.Join("testdata", "prev8")
	dir := t.TempDir()
	names := []string{"ledger.jsonl", "manifest.json"}
	for sh := 0; sh < 4; sh++ {
		names = append(names, fmt.Sprintf("shard-%04d.gob", sh))
	}
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var expect prerefactorExpect
	b, err := os.ReadFile(filepath.Join(src, "expect.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &expect); err != nil {
		t.Fatal(err)
	}
	return dir, expect
}

// TestMigrationFromPreV8Dir is the wire-compat criterion for this change: a
// sharded data directory written BEFORE the warm/sparse work (shard wire v1,
// committed as a fixture) boots in place, serves bit-identical reputations,
// folds its WAL tail, and afterwards persists in the v2 format with warm
// state — all without rewriting anything at boot.
func TestMigrationFromPreV8Dir(t *testing.T) {
	// Native shard count: segments load as-is.
	dir, expect := copyPrev8Fixture(t)
	s, err := New(prev8Config(t, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.Epoch() != expect.Epoch || v.Seq() != expect.Seq {
		t.Fatalf("booted at epoch %d/seq %d, want %d/%d", v.Epoch(), v.Seq(), expect.Epoch, expect.Seq)
	}
	for j := 0; j < expect.N; j++ {
		got, err := v.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		if got != expect.Global[j] {
			t.Fatalf("subject %d: booted reputation %v != pre-v8 %v", j, got, expect.Global[j])
		}
		if v.Raters(j) != expect.Raters[j] {
			t.Fatalf("subject %d: raters %d != %d", j, v.Raters(j), expect.Raters[j])
		}
	}
	if s.Pending() != 2 {
		t.Fatalf("replayed %d pending entries, want the 2 unfolded tail entries", s.Pending())
	}

	// Folding the tail works on v1 segments (every campaign cold — v1 has no
	// warm state) and persists v2 segments with warm state for the next run.
	v2, ran, err := s.RunEpoch()
	if err != nil || !ran {
		t.Fatalf("post-boot epoch (ran=%v, err=%v)", ran, err)
	}
	if s.WarmStarts() != 0 {
		t.Fatalf("%d campaigns warm-started off a v1 directory", s.WarmStarts())
	}
	for j := 0; j < expect.N; j++ {
		got, _ := v2.Reputation(j)
		if want := core.GlobalRef(v2, j); math.Abs(got-want) > epsTol {
			t.Fatalf("subject %d post-fold: %v, reference %v", j, got, want)
		}
	}
	s.Close()

	// Second boot reads the refreshed segments and warm-starts.
	s2, err := New(prev8Config(t, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Submit(1, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if s2.WarmStarts() == 0 {
		t.Fatal("second boot found no usable warm states in the refolded segments")
	}
	s2.Close()

	// Resharding the v1 directory still works (warm state is dropped along
	// the way, by construction).
	dir, expect = copyPrev8Fixture(t)
	s3, err := New(prev8Config(t, dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	v3 := s3.View()
	for j := 0; j < expect.N; j++ {
		got, _ := v3.Reputation(j)
		if got != expect.Global[j] {
			t.Fatalf("subject %d: resharded v1 reputation %v != %v", j, got, expect.Global[j])
		}
	}
}
