package service

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// epsTol is the acceptance tolerance for gossip estimates vs the exact
// references: the engines converge each node to within a few ξ of the fixed
// point, and the core tests use the same order of magnitude.
const epsTol = 1e-2

func testGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestService(t *testing.T, n int, cfg Config) *Service {
	t.Helper()
	if cfg.Graph == nil {
		cfg.Graph = testGraph(t, n, 7)
	}
	if cfg.Params.Epsilon == 0 {
		cfg.Params = core.Params{Epsilon: 1e-6, Seed: 11}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Config{Graph: testGraph(t, 10, 1), EpochInterval: -time.Second}); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := New(Config{Graph: testGraph(t, 10, 1), Shards: 11}); err == nil {
		t.Error("shard count above N accepted")
	}
	if _, err := New(Config{Graph: testGraph(t, 10, 1), Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}

func TestBootViewAndEmptyEpoch(t *testing.T) {
	s := newTestService(t, 20, Config{})
	v := s.View()
	if v.Epoch() != 0 || v.Seq() != 0 || v.N() != 20 || v.Shards() != 1 {
		t.Fatalf("boot view: epoch %d seq %d n %d shards %d", v.Epoch(), v.Seq(), v.N(), v.Shards())
	}
	if r, _, err := s.Reputation(3); err != nil || r != 0 {
		t.Fatalf("boot reputation = (%v, %v)", r, err)
	}
	// No pending feedback: RunEpoch is a no-op leaving the shard states
	// untouched.
	got, ran, err := s.RunEpoch()
	if err != nil || ran {
		t.Fatalf("empty epoch = (ran=%v, err=%v), want (false, nil)", ran, err)
	}
	if got.Shard(0) != v.Shard(0) {
		t.Fatal("empty epoch republished a shard snapshot")
	}
}

func TestEpochMatchesGlobalReference(t *testing.T) {
	const n = 60
	s := newTestService(t, n, Config{Shards: 4})
	src := rng.New(99)
	for k := 0; k < 400; k++ {
		rater, subject := src.Intn(n), src.Intn(n)
		if _, err := s.Submit(rater, subject, src.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	v, ran, err := s.RunEpoch()
	if err != nil || !ran {
		t.Fatalf("epoch = (ran=%v, err=%v)", ran, err)
	}
	if v.Epoch() != 1 || v.Seq() != 400 || !v.Converged() {
		t.Fatalf("view: epoch %d seq %d converged %v", v.Epoch(), v.Seq(), v.Converged())
	}
	for j := 0; j < n; j++ {
		got, err := v.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		// The view doubles as a trust.Reader over its frozen shard columns,
		// so the reference evaluates against exactly the folded state.
		want := core.GlobalRef(v, j)
		if math.Abs(got-want) > epsTol {
			t.Errorf("subject %d: global %v, reference %v", j, got, want)
		}
	}
	// Personal views come from the same frozen columns.
	for _, pair := range [][2]int{{0, 5}, {7, 12}, {59, 0}} {
		got, pv, err := s.PersonalReputation(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if pv.SubjectEpoch(pair[1]) != v.SubjectEpoch(pair[1]) {
			t.Fatal("personal read served a different shard epoch")
		}
		want := core.GCLRRef(s.cfg.Graph, pv, pair[0], pair[1], s.cfg.Params)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("personal (%d,%d): got %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

func TestFeedbackVisibleOnlyAfterEpoch(t *testing.T) {
	s := newTestService(t, 30, Config{})
	if _, err := s.Submit(3, 9, 0.8); err != nil {
		t.Fatal(err)
	}
	if r, _, _ := s.Reputation(9); r != 0 {
		t.Fatalf("unfolded feedback visible: %v", r)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	v, ran, err := s.RunEpoch()
	if err != nil || !ran {
		t.Fatal(err)
	}
	if r, _, _ := s.Reputation(9); math.Abs(r-0.8) > epsTol {
		t.Fatalf("reputation after epoch = %v, want ≈0.8", r)
	}
	if v.Raters(9) != 1 {
		t.Fatalf("Raters(9) = %d, want 1", v.Raters(9))
	}
	if s.Pending() != 0 {
		t.Fatal("pending not drained by epoch")
	}
}

// TestLatestFeedbackWins: multiple entries for the same (rater, subject)
// within one epoch fold in ledger order, so the last one is the value used.
func TestLatestFeedbackWins(t *testing.T) {
	s := newTestService(t, 30, Config{})
	for _, v := range []float64{0.1, 0.9, 0.4} {
		if _, err := s.Submit(2, 6, v); err != nil {
			t.Fatal(err)
		}
	}
	view, _, err := s.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if got := view.Value(2, 6); got != 0.4 {
		t.Fatalf("folded value %v, want 0.4 (latest)", got)
	}
}

func TestEpochDeterministicGivenSeed(t *testing.T) {
	run := func(shards, foldWorkers, workers int) []float64 {
		s := newTestService(t, 40, Config{
			Shards:      shards,
			FoldWorkers: foldWorkers,
			Params:      core.Params{Epsilon: 1e-6, Seed: 11, Workers: workers},
		})
		src := rng.New(5)
		for k := 0; k < 200; k++ {
			s.Submit(src.Intn(40), src.Intn(40), src.Float64())
		}
		v, _, err := s.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 40)
		for j := range out {
			out[j], _ = v.Reputation(j)
		}
		return out
	}
	a, b := run(1, 1, 0), run(1, 1, 0)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("subject %d: %v vs %v — epochs not reproducible", j, a[j], b[j])
		}
	}
}

func TestSchedulerRunsEpochs(t *testing.T) {
	s := newTestService(t, 30, Config{
		Graph:         testGraph(t, 30, 7),
		Params:        core.Params{Epsilon: 1e-5, Seed: 3},
		EpochInterval: 5 * time.Millisecond,
		Shards:        3,
	})
	if _, err := s.Submit(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.View().Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never published an epoch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if r, _, _ := s.Reputation(2); math.Abs(r-0.5) > epsTol {
		t.Fatalf("reputation = %v, want ≈0.5", r)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		g := testGraph(t, 30, 7)
		cfg := Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: shards}

		s1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s1.Submit(1, 4, 0.9)
		s1.Submit(2, 4, 0.5)
		v1, _, err := s1.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		rep1, _ := v1.Reputation(4)
		s1.Submit(3, 4, 0.1) // pending, never folded before shutdown
		if err := s1.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := s2.View()
		if got.Epoch() != v1.Epoch() || got.Seq() != v1.Seq() {
			t.Fatalf("restart published epoch %d/seq %d, want %d/%d", got.Epoch(), got.Seq(), v1.Epoch(), v1.Seq())
		}
		if rep2, _ := got.Reputation(4); math.Abs(rep2-rep1) > 1e-12 {
			t.Fatal("restart lost the published reputation")
		}
		if s2.Pending() != 1 {
			t.Fatalf("restart replayed %d pending entries, want 1 (the unfolded tail)", s2.Pending())
		}
		v2, ran, err := s2.RunEpoch()
		if err != nil || !ran {
			t.Fatal(err)
		}
		if v2.Epoch() != v1.Epoch()+1 || v2.Seq() != 3 {
			t.Fatalf("post-restart epoch %d/seq %d", v2.Epoch(), v2.Seq())
		}
		// The tail entry and the pre-restart folds are all reflected.
		want := (0.9 + 0.5 + 0.1) / 3
		if rep, _ := v2.Reputation(4); math.Abs(rep-want) > epsTol {
			t.Fatalf("reputation after replayed epoch = %v, want ≈%v", rep, want)
		}
		// Sequence numbers keep increasing across the restart.
		if seq, err := s2.Submit(5, 6, 0.2); err != nil || seq != 4 {
			t.Fatalf("post-restart Submit = (%d, %v), want (4, nil)", seq, err)
		}
		s2.Close()
	}
}

// TestBootRejectsTruncatedLedger: a segment claiming folded entries the
// ledger never assigned (operator deleted/swapped ledger.jsonl) must fail
// loudly at boot instead of serving state that can never reconcile.
func TestBootRejectsTruncatedLedger(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 20, 7)
	cfg := Config{Graph: g, Params: core.Params{Epsilon: 1e-5, Seed: 1}, Dir: dir, Shards: 2}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Submit(1, 2, 0.5)
	if _, _, err := s1.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "ledger.jsonl")); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("truncated ledger accepted against a newer segment")
	}
}
