package service

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"diffgossip/internal/core"
	"diffgossip/internal/rng"
	"diffgossip/internal/store"
)

// submitChurn drives heavy supersession traffic: each rater re-rates the same
// small subject set many times, so almost every WAL line is dead weight once
// folded.
func submitChurn(t *testing.T, s *Service, rounds int) {
	t.Helper()
	src := rng.New(5)
	for k := 0; k < rounds; k++ {
		rater, subject := k%8, (k+1)%8
		if _, err := s.Submit(rater, subject, src.Float64()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServiceCompactWALRoundTrip is the compaction round-trip the CI race job
// also drives: churn, fold, compact, keep serving, restart — the rewritten
// WAL must boot cleanly and the restarted service must serve exactly the
// pre-restart reputations.
func TestServiceCompactWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 30, 7)
	cfg := Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: 3}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitChurn(t, s1, 300)
	if _, ran, err := s1.RunEpoch(); err != nil || !ran {
		t.Fatalf("epoch: ran=%v err=%v", ran, err)
	}
	s1.Submit(9, 10, 0.5) // unfolded tail rides through the compaction
	st, err := s1.CompactWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesBefore != 301 {
		t.Fatalf("compact saw %d entries, want 301", st.EntriesBefore)
	}
	// 8 distinct cells survive the fold, plus the one unfolded tail entry.
	if st.EntriesAfter != 9 {
		t.Fatalf("compact kept %d entries, want 9", st.EntriesAfter)
	}
	// The service keeps working on the rewritten file.
	if _, err := s1.Submit(11, 12, 0.25); err != nil {
		t.Fatal(err)
	}
	v1, _, err := s1.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	rep1, _ := v1.Reputation(1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("boot from compacted WAL: %v", err)
	}
	defer s2.Close()
	v2 := s2.View()
	if v2.Epoch() != v1.Epoch() || v2.Seq() != v1.Seq() {
		t.Fatalf("restart published epoch %d/seq %d, want %d/%d", v2.Epoch(), v2.Seq(), v1.Epoch(), v1.Seq())
	}
	if rep2, _ := v2.Reputation(1); math.Abs(rep2-rep1) > 1e-12 {
		t.Fatalf("restart from compacted WAL changed reputation: %v vs %v", rep2, rep1)
	}
	// Sequence numbers keep increasing past the compacted suffix.
	if seq, err := s2.Submit(5, 6, 0.2); err != nil || seq != v1.Seq()+1 {
		t.Fatalf("post-restart Submit = (%d, %v), want (%d, nil)", seq, err, v1.Seq()+1)
	}
}

// TestServiceCompactEverySchedules pins the RunEpoch wiring: with
// CompactEvery set, the WAL is rewritten on every N-th persisted epoch
// without any explicit CompactWAL call.
func TestServiceCompactEverySchedules(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 30, 7)
	cfg := Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, CompactEvery: 2}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wal := filepath.Join(dir, "ledger.jsonl")
	submitChurn(t, s, 200)
	if _, _, err := s.RunEpoch(); err != nil { // epoch 1: no compaction
		t.Fatal(err)
	}
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	grown := fi.Size()
	submitChurn(t, s, 1)
	if _, _, err := s.RunEpoch(); err != nil { // epoch 2: compaction fires
		t.Fatal(err)
	}
	fi, err = os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= grown {
		t.Fatalf("scheduled compaction did not shrink the WAL: %d -> %d bytes", grown, fi.Size())
	}
}

// TestServiceBootstrapInstall ships a snapshot bootstrap between two
// replicated services directly (the cluster layer adds only wire framing):
// the receiver must serve bit-identical reputations without folding the
// sender's history, and refuse transfers containing its own stream.
func TestServiceBootstrapInstall(t *testing.T) {
	g := testGraph(t, 30, 7)
	mk := func(origin string) *Service {
		s, err := New(Config{
			Graph:          g,
			Params:         core.Params{Epsilon: 1e-6, Seed: 11},
			Shards:         3,
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         origin,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	a := mk("node-a")
	submitChurn(t, a, 200)
	va, _, err := a.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	a.Submit(9, 10, 0.5) // tail entry, not yet folded on A

	st, err := a.BootstrapState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tail) != 1 || len(st.Folded) == 0 {
		t.Fatalf("transfer shape: %d folded, %d tail", len(st.Folded), len(st.Tail))
	}

	b := mk("node-b")
	if err := b.InstallBootstrap(st); err != nil {
		t.Fatal(err)
	}
	// Folded entries arrive pre-folded: no pending recompute for them, only
	// the tail awaits the next epoch.
	if got := b.Pending(); got != 1 {
		t.Fatalf("install left %d entries pending, want only the tail", got)
	}
	vb := b.View()
	for j := 0; j < 30; j++ {
		want, _ := va.Reputation(j)
		got, _ := vb.Reputation(j)
		if got != want {
			t.Fatalf("subject %d: bootstrap view %v, sender %v", j, got, want)
		}
	}
	// B's marks agree with the transfer, so anti-entropy has nothing to pull.
	if got := b.ReplicationMarks()["node-a"]; got != st.Marks["node-a"] {
		t.Fatalf("installed node-a mark %d, want %d", got, st.Marks["node-a"])
	}
	// After folding the tail, B matches a fresh epoch on A.
	if _, ran, err := b.RunEpoch(); err != nil || !ran {
		t.Fatalf("tail epoch: ran=%v err=%v", ran, err)
	}
	va2, _, err := a.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	vb2 := b.View()
	for j := 0; j < 30; j++ {
		want, _ := va2.Reputation(j)
		got, _ := vb2.Reputation(j)
		if got != want {
			t.Fatalf("subject %d after tail fold: %v vs %v", j, got, want)
		}
	}

	// A transfer carrying the receiver's own stream is refused outright.
	bad := &StateTransfer{
		Segments: st.Segments,
		Folded:   []store.Feedback{{Seq: 1, Rater: 1, Subject: 2, Value: 0.5, Origin: "node-b", OriginSeq: 1}},
		Marks:    st.Marks,
	}
	if err := b.InstallBootstrap(bad); err == nil {
		t.Fatal("transfer containing the receiver's own stream was accepted")
	}
}
