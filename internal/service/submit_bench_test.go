package service

import (
	"testing"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
)

// newBenchService builds a memory-backed sharded service for hot-path
// measurement.
func newBenchService(tb testing.TB) *Service {
	tb.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 1024, M: 2, Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := New(Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 11}, Shards: 8})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkSubmit is the service-side single-POST hot path: validate, assign
// a sequence number, admit to the pending window, mark the shard dirty. It
// must stay at 0 allocs/op — everything the HTTP layer adds per request
// (backpressure check, in-flight gate) is an atomic load on top of this.
// WAL-backed submits add exactly the line encoding; see the ledger.
func BenchmarkSubmit(b *testing.B) {
	s := newBenchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(i%1024, (i+1)%1024, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSubmitHotPathAllocs pins the memory-mode submit path at zero
// allocations per call. The pending window is pre-grown and the measured
// submits re-rate one cell, so neither slice growth nor LWW-tag map inserts
// can contribute — a nonzero count here means the hot path itself regressed
// (the historical culprit: boxing the Feedback into the WAL encoder's
// interface argument made every submit escape to the heap, WAL or not).
func TestSubmitHotPathAllocs(t *testing.T) {
	s := newBenchService(t)
	for i := 0; i < 4096; i++ {
		if _, err := s.Submit(i%1024, (i+1)%1024, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := s.Submit(3, 4, 0.7); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("single-submit hot path allocates %.1f times per call, want 0", avg)
	}
}
