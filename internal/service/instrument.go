package service

import (
	"diffgossip/internal/obs"
)

// Instrument registers the service's epoch-pipeline metrics with reg, plus
// its ledger's store-layer metrics. Counters and gauges read the atomics the
// service maintains anyway; the epoch- and fold-duration histograms are
// created here behind atomic pointers, so an uninstrumented service records
// nothing and RunEpoch's instrumentation stays atomic-only either way. Call
// once per registry, before serving.
func (s *Service) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	eh := obs.NewHistogram(obs.DefBuckets()...)
	fh := obs.NewHistogram(obs.DefBuckets()...)
	// Campaign step counts are small integers, not seconds — power-of-two
	// buckets cover everything from a warm restart's handful of steps to a
	// cold campaign's log²-shaped budget.
	sh := obs.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
	s.epochHist.Store(eh)
	s.foldHist.Store(fh)
	s.stepsHist.Store(sh)
	reg.CounterFunc("diffgossip_service_epochs_total", "",
		"Fold rounds completed (no-op epochs with nothing pending excluded).", s.epochs.Load)
	reg.CounterFunc("diffgossip_service_folded_shards_total", "",
		"Shard folds run across all epochs.", s.foldedShards.Load)
	reg.CounterFunc("diffgossip_service_folded_subjects_total", "",
		"Per-subject gossip campaigns run across all epochs.", s.foldedSubjects.Load)
	reg.CounterFunc("diffgossip_service_campaign_steps_total", "",
		"Gossip steps summed over shard folds (each fold contributes its slowest campaign's step count).", s.campaignSteps.Load)
	reg.CounterFunc("diffgossip_service_warm_starts_total", "",
		"Campaigns seeded from a previous epoch's recorded state instead of from scratch.", s.warmStarts.Load)
	reg.CounterFunc("diffgossip_service_cold_starts_total", "",
		"Campaigns seeded from their trust column alone (no usable recorded state).", s.coldStarts.Load)
	reg.CounterFunc("diffgossip_service_epochs_converged_total", "",
		"Epochs whose every shard fold hit the ξ convergence tolerance.", s.convergedEpochs.Load)
	reg.CounterFunc("diffgossip_service_epoch_errors_total", "",
		"Epochs that failed and restored their batch for retry.", s.epochErrs.Load)
	reg.GaugeFunc("diffgossip_service_pending_entries", "",
		"Feedback entries waiting for the next epoch fold.", func() float64 { return float64(s.Pending()) })
	reg.GaugeFunc("diffgossip_service_dirty_shards", "",
		"Shards with pending feedback the next epoch must refold.", func() float64 { return float64(s.ledger.DirtyCount()) })
	reg.GaugeFunc("diffgossip_service_last_epoch_unix_seconds", "",
		"Wall-clock time of the last completed epoch (0 before the first), in unix seconds.", func() float64 {
			return float64(s.lastEpoch.Load()) / 1e9
		})
	reg.Histogram("diffgossip_service_epoch_duration_seconds", "",
		"Epoch compute-phase duration (fold, campaigns, publish), in seconds.", eh)
	reg.Histogram("diffgossip_service_shard_fold_duration_seconds", "",
		"Per-shard gossip campaign duration, in seconds.", fh)
	reg.Histogram("diffgossip_service_campaign_steps", "",
		"Gossip steps per per-subject campaign (warm restarts land in the low buckets).", sh)
	s.ledger.Instrument(reg)
}
