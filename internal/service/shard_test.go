package service

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/store"
	"diffgossip/internal/trust"
)

// submitBatch feeds a deterministic feedback batch touching most subjects.
func submitBatch(t *testing.T, s *Service, n, count int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	for k := 0; k < count; k++ {
		if _, err := s.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedEpochMatchesGlobalAllBitwise is the acceptance criterion: a
// full-dirty sharded epoch reproduces core.GlobalAll's values bit for bit at
// the same seed, for S ∈ {1, 4, 17}, any per-shard worker count and any
// fold-worker count.
func TestShardedEpochMatchesGlobalAllBitwise(t *testing.T) {
	const n = 60
	const baseSeed = 23
	g := testGraph(t, n, 9)

	// The reference: fold the same batch into a matrix and run GlobalAll
	// with the seed epoch 1 will derive.
	ref := trust.NewMatrix(n)
	src := rng.New(77)
	for k := 0; k < 500; k++ {
		if err := ref.Set(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	// SparseRaterFrac matches the service default, so the reference runs the
	// same sparse campaigns the folds do. (Warm starts can't diverge here —
	// epoch 1 has no previous state, so every campaign is cold.)
	p := core.Params{Epsilon: 1e-6, Seed: epochSeed(baseSeed, 1), SparseRaterFrac: 0.25}
	all, err := core.GlobalAll(g, ref, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ shards, foldWorkers, workers int }{
		{1, 1, 0},
		{4, 1, 3},
		{4, -1, -1},
		{17, 2, 0},
		{17, -1, 4},
	} {
		s := newTestService(t, n, Config{
			Graph:       g,
			Params:      core.Params{Epsilon: 1e-6, Seed: baseSeed, Workers: tc.workers},
			Shards:      tc.shards,
			FoldWorkers: tc.foldWorkers,
		})
		submitBatch(t, s, n, 500, 77)
		v, ran, err := s.RunEpoch()
		if err != nil || !ran {
			t.Fatalf("S=%d: epoch (ran=%v, err=%v)", tc.shards, ran, err)
		}
		for j := 0; j < n; j++ {
			got, err := v.Reputation(j)
			if err != nil {
				t.Fatal(err)
			}
			if got != all.Reputation[0][j] {
				t.Fatalf("S=%d foldWorkers=%d workers=%d subject %d: sharded %v != GlobalAll %v",
					tc.shards, tc.foldWorkers, tc.workers, j, got, all.Reputation[0][j])
			}
		}
	}
}

// TestDirtyShardIncrementality is the O(k/S) criterion: an epoch with one of
// S shards dirty runs only that shard's campaigns (asserted via the fold
// counter) and republishes nothing else.
func TestDirtyShardIncrementality(t *testing.T) {
	const n = 60
	const shards = 6
	s := newTestService(t, n, Config{Shards: shards})

	// Epoch 1: every subject rated → all shards dirty, N campaigns.
	for j := 0; j < n; j++ {
		if _, err := s.Submit((j+1)%n, j, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if got := s.FoldedSubjects(); got != n {
		t.Fatalf("full epoch ran %d campaigns, want %d", got, n)
	}
	if got := s.FoldedShards(); got != shards {
		t.Fatalf("full epoch folded %d shards, want %d", got, shards)
	}
	before := s.View()

	// Epoch 2: feedback for a single subject of shard 2 → exactly one shard
	// folds, and only its rated subjects (all n/shards of them) recompute.
	if _, err := s.Submit(3, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DirtyShards != 1 {
		t.Fatalf("dirty shards = %d, want 1", s.Stats().DirtyShards)
	}
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	after := s.View()
	perShard := n / shards
	if got := s.FoldedSubjects(); got != uint64(n+perShard) {
		t.Fatalf("incremental epoch ran %d campaigns total, want %d (+%d)", got, n+perShard, perShard)
	}
	if got := s.FoldedShards(); got != shards+1 {
		t.Fatalf("incremental epoch folded %d shards total, want %d", got, shards+1)
	}
	for sh := 0; sh < shards; sh++ {
		if sh == 2 {
			if before.Shard(sh) == after.Shard(sh) {
				t.Fatalf("dirty shard %d was not republished", sh)
			}
			if after.Shard(sh).Epoch != 2 {
				t.Fatalf("dirty shard %d at epoch %d, want 2", sh, after.Shard(sh).Epoch)
			}
			continue
		}
		if before.Shard(sh) != after.Shard(sh) {
			t.Fatalf("clean shard %d was republished", sh)
		}
	}
	// The recomputed value reflects the new feedback; clean subjects keep
	// their exact previous bits.
	if got, _ := after.Reputation(2); math.Abs(got-0.9) > epsTol {
		t.Fatalf("subject 2 after incremental fold = %v, want ≈0.9", got)
	}
	for j := 0; j < n; j++ {
		if store.ShardOf(j, shards) == 2 {
			continue
		}
		b, _ := before.Reputation(j)
		a, _ := after.Reputation(j)
		if a != b {
			t.Fatalf("clean subject %d moved: %v -> %v", j, b, a)
		}
	}
}

// TestSlowDiskDoesNotStallIngestOrCompute is the satellite-1 regression: a
// slow disk (stubbed via the persist hook) delays durability only — Submit
// and the next epoch's compute proceed while the previous epoch's
// persistence is still blocked on "disk".
func TestSlowDiskDoesNotStallIngestOrCompute(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, 30, Config{Dir: dir, Shards: 3})

	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	s.persistHook = func() {
		if first {
			first = false
			close(entered)
			<-release
		}
	}

	if _, err := s.Submit(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	epoch1Done := make(chan error, 1)
	go func() {
		_, _, err := s.RunEpoch()
		epoch1Done <- err
	}()
	<-entered // epoch 1 is published and now stuck in its persistence phase

	// Ingest must be unaffected.
	start := time.Now()
	if _, err := s.Submit(4, 5, 0.7); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("Submit stalled %v behind a slow disk", d)
	}

	// The next epoch's compute must also proceed: its publication becomes
	// visible while epoch 1 is still "writing".
	epoch2Done := make(chan error, 1)
	go func() {
		_, _, err := s.RunEpoch()
		epoch2Done <- err
	}()
	deadline := time.After(5 * time.Second)
	for s.View().Epoch() < 2 {
		select {
		case <-deadline:
			t.Fatal("second epoch never published while the first was persisting")
		case err := <-epoch1Done:
			t.Fatalf("first persist finished early (err=%v) — hook broken", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	close(release)
	if err := <-epoch1Done; err != nil {
		t.Fatal(err)
	}
	if err := <-epoch2Done; err != nil {
		t.Fatal(err)
	}
	// Both epochs' segments are durable; a restart serves the newest state.
	s.Close()
	s2 := newTestService(t, 30, Config{Dir: dir, Shards: 3})
	if got := s2.View().Epoch(); got != 2 {
		t.Fatalf("restart sees epoch %d, want 2", got)
	}
}

// prerefactorExpect mirrors the expect.json committed with the fixture.
type prerefactorExpect struct {
	N      int       `json:"n"`
	Epoch  uint64    `json:"epoch"`
	Seq    uint64    `json:"seq"`
	Global []float64 `json:"global"`
	Raters []int     `json:"raters"`
}

// copyFixture clones the committed pre-refactor data dir into a temp dir
// (the service writes into its directory) and returns it with the expected
// state.
func copyFixture(t *testing.T) (string, prerefactorExpect) {
	t.Helper()
	src := filepath.Join("testdata", "prerefactor")
	dir := t.TempDir()
	for _, name := range []string{"ledger.jsonl", "snapshot.gob"} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var expect prerefactorExpect
	b, err := os.ReadFile(filepath.Join(src, "expect.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &expect); err != nil {
		t.Fatal(err)
	}
	return dir, expect
}

// fixtureConfig matches the parameters the fixture generator used.
func fixtureConfig(t *testing.T, dir string, shards int) Config {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 40, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: shards}
}

// TestMigrationFromPreRefactorDir is the migration acceptance criterion: a
// service started on a data dir written by the pre-shard format (single
// snapshot.gob + ledger.jsonl, committed as a fixture) loads, migrates to
// the manifest + segment layout, and serves the identical reputations; the
// unfolded WAL tail replays as pending.
func TestMigrationFromPreRefactorDir(t *testing.T) {
	for _, shards := range []int{1, 4} {
		dir, expect := copyFixture(t)
		s, err := New(fixtureConfig(t, dir, shards))
		if err != nil {
			t.Fatal(err)
		}
		v := s.View()
		if v.Epoch() != expect.Epoch || v.Seq() != expect.Seq {
			t.Fatalf("S=%d: migrated to epoch %d/seq %d, want %d/%d", shards, v.Epoch(), v.Seq(), expect.Epoch, expect.Seq)
		}
		for j := 0; j < expect.N; j++ {
			got, err := v.Reputation(j)
			if err != nil {
				t.Fatal(err)
			}
			if got != expect.Global[j] {
				t.Fatalf("S=%d subject %d: migrated reputation %v != pre-refactor %v", shards, j, got, expect.Global[j])
			}
			if v.Raters(j) != expect.Raters[j] {
				t.Fatalf("S=%d subject %d: raters %d != %d", shards, j, v.Raters(j), expect.Raters[j])
			}
		}
		if s.Pending() != 2 {
			t.Fatalf("S=%d: replayed %d pending entries, want the 2 unfolded tail entries", shards, s.Pending())
		}
		// The migrated layout is durable: manifest + segments exist now.
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			t.Fatalf("S=%d: no manifest written: %v", shards, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "shard-0000.gob")); err != nil {
			t.Fatalf("S=%d: no segment written: %v", shards, err)
		}

		// Folding the tail works on the migrated state.
		v2, ran, err := s.RunEpoch()
		if err != nil || !ran {
			t.Fatalf("S=%d: post-migration epoch (ran=%v, err=%v)", shards, ran, err)
		}
		if v2.Epoch() != expect.Epoch+1 {
			t.Fatalf("S=%d: post-migration epoch %d", shards, v2.Epoch())
		}
		for j := 0; j < expect.N; j++ {
			got, _ := v2.Reputation(j)
			if want := core.GlobalRef(v2, j); math.Abs(got-want) > epsTol {
				t.Fatalf("S=%d subject %d: post-migration %v, reference %v", shards, j, got, want)
			}
		}
		s.Close()

		// Second boot takes the manifest path (not the legacy one) and
		// serves the folded state.
		s2, err := New(fixtureConfig(t, dir, shards))
		if err != nil {
			t.Fatal(err)
		}
		if got := s2.View().Epoch(); got != expect.Epoch+1 {
			t.Fatalf("S=%d: second boot at epoch %d, want %d", shards, got, expect.Epoch+1)
		}
		s2.Close()
	}
}

// TestMigrationGuardLeavesDirUntouched: a legacy directory whose ledger was
// truncated below the snapshot's fold point must be refused BEFORE any
// migration write — the operator inspects exactly what the old process left.
func TestMigrationGuardLeavesDirUntouched(t *testing.T) {
	dir, _ := copyFixture(t)
	// Truncate the WAL to a stub that ends well before the snapshot's Seq.
	b, err := os.ReadFile(filepath.Join(dir, "ledger.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cut := 0
	for i, c := range b {
		if c == '\n' {
			lines++
			if lines == 3 {
				cut = i + 1
				break
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "ledger.jsonl"), b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(fixtureConfig(t, dir, 4)); err == nil {
		t.Fatal("truncated ledger accepted during migration")
	}
	for _, f := range []string{"manifest.json", "shard-0000.gob"} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("failed boot mutated the directory: %s exists", f)
		}
	}
}

// TestMidReshardCrashSelfHeals: a crash between writing new-layout segments
// and flipping the manifest leaves segment files whose layout disagrees with
// the manifest. Boot must not brick: the mismatched segments are discarded
// as never-folded, their subjects' full WAL history re-pends, and the next
// epoch refolds them to the exact references.
func TestMidReshardCrashSelfHeals(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Graph: testGraph(t, 30, 7), Params: core.Params{Epsilon: 1e-6, Seed: 11}, Dir: dir, Shards: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitBatch(t, s, 30, 120, 5)
	if _, _, err := s.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crash artifact: overwrite segment 1 with a valid segment
	// from a DIFFERENT layout (5 shards) while the manifest still says 3.
	legacy, err := store.StitchSnapshot(func() []*store.ShardSnapshot {
		var segs []*store.ShardSnapshot
		for sh := 0; sh < 3; sh++ {
			seg, err := store.LoadShardFile(filepath.Join(dir, "shard-000"+string(rune('0'+sh))+".gob"))
			if err != nil || seg == nil {
				t.Fatalf("segment %d: %v", sh, err)
			}
			segs = append(segs, seg)
		}
		return segs
	}())
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := store.SplitSnapshot(legacy, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong[1].SaveFile(filepath.Join(dir, "shard-0001.gob")); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("mid-reshard artifact bricked the boot: %v", err)
	}
	defer s2.Close()
	// Shard 1's history re-pends; refolding restores the references.
	if s2.Pending() == 0 {
		t.Fatal("discarded shard's history did not re-pend")
	}
	if _, _, err := s2.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	v := s2.View()
	for j := 0; j < 30; j++ {
		got, _ := v.Reputation(j)
		if want := core.GlobalRef(v, j); math.Abs(got-want) > epsTol {
			t.Fatalf("subject %d after self-heal: %v, reference %v", j, got, want)
		}
	}
}

// TestReshardOnBoot: booting an existing sharded directory with a different
// shard count stitches and resplits it, preserving the served reputations.
func TestReshardOnBoot(t *testing.T) {
	dir, expect := copyFixture(t)
	s, err := New(fixtureConfig(t, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := New(fixtureConfig(t, dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Shards(); got != 7 {
		t.Fatalf("resharded service reports %d shards", got)
	}
	v := s2.View()
	for j := 0; j < expect.N; j++ {
		got, err := v.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		if got != expect.Global[j] {
			t.Fatalf("subject %d: resharded reputation %v != %v", j, got, expect.Global[j])
		}
	}
	if s2.Pending() != 2 {
		t.Fatalf("reshard replayed %d pending entries, want 2", s2.Pending())
	}
}
