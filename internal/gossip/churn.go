package gossip

import (
	"fmt"

	"diffgossip/internal/rng"
)

// This file is the churn surface of the two gossip engines: the hooks the
// deterministic scenario engine (internal/scenario) uses to drive a run
// through node crashes, graceful leaves, whitewashing rejoins, overlay
// joins, mid-run loss changes and link-level faults. Every hook is
// deterministic: the only randomness it may consume comes from the engine's
// own seeded stream, so a scripted run replays bit-identically from its
// seed.
//
// Mass semantics under churn follow the push-sum invariant the paper's
// Proposition A.1 rests on:
//
//   - a crash destroys exactly the mass the node held at that instant
//     (recorded in the lost ledger);
//   - a graceful leave hands the node's entire mass to one random alive
//     neighbour first, so no mass is destroyed (a leave with no alive
//     neighbour degrades to a crash);
//   - a rejoin or join injects exactly the newcomer's initial mass
//     (recorded in the injected ledger);
//   - pushes addressed to departed nodes or across faulted links fail like
//     lost packets — the sender re-absorbs the share, conserving mass.
//
// Total mass therefore always satisfies  current = base + injected − lost
// up to floating-point accumulation error, which is the invariant the
// scenario engine checks every round.

// Down reports whether node i has crashed or left and not rejoined.
func (e *Engine) Down(i int) bool { return e.down[i] }

// Crash removes node i abruptly: the mass it holds at this instant is
// destroyed (tallied in the lost ledger) and the node stops participating
// until Rejoin.
func (e *Engine) Crash(i int) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: crash node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: crash node %d already down", i)
	}
	e.lost.add(e.cur[i])
	e.cur[i] = Pair{}
	if e.count != nil {
		e.lostCount += e.count[i]
		e.count[i] = 0
	}
	e.down[i] = true
	e.selfConv[i] = false
	e.stopped[i] = false
	e.u[i] = Sentinel
	return nil
}

// Leave removes node i gracefully: it hands its entire mass to one uniformly
// random alive neighbour (one gossip push) and then departs. With no alive
// neighbour the mass cannot be handed off and the leave degrades to a crash.
func (e *Engine) Leave(i int) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: leave node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: leave node %d already down", i)
	}
	h := e.pickAliveNeighbor(i)
	if h < 0 {
		return e.Crash(i)
	}
	e.msgs.Gossip++
	e.cur[h].add(e.cur[i])
	e.cur[i] = Pair{}
	if e.count != nil {
		e.count[h] += e.count[i]
		e.count[i] = 0
	}
	// The heir's held estimate just moved; its convergence flag is
	// re-evaluated from the new state on the next step (the announcement
	// protocol is revocable), but its last-seen ratio must reflect the
	// handover so the next delta is measured from the true current state.
	e.down[i] = true
	e.selfConv[i] = false
	e.stopped[i] = false
	e.u[i] = Sentinel
	return nil
}

// pickAliveNeighbor returns a uniformly random alive neighbour of i drawn
// from the engine's stream, or -1 if every neighbour is down. It consumes
// exactly one draw when at least one alive neighbour exists, scanning from a
// random starting offset so the choice stays uniform without allocating.
func (e *Engine) pickAliveNeighbor(i int) int {
	return pickAlive(e.cfg.Graph.Neighbors(i), e.down, e.src)
}

func pickAlive(nbrs []int, down []bool, src *rng.Source) int {
	alive := 0
	for _, v := range nbrs {
		if !down[v] {
			alive++
		}
	}
	if alive == 0 {
		return -1
	}
	pick := src.Intn(alive)
	for _, v := range nbrs {
		if !down[v] {
			if pick == 0 {
				return v
			}
			pick--
		}
	}
	return -1 // unreachable
}

// Rejoin brings a departed node back with fresh state (y, g) — a whitewash
// when g carries new weight. The injected mass is tallied in the ledger; any
// rater-count state starts at zero.
func (e *Engine) Rejoin(i int, y, g float64) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: rejoin node %d out of range [0,%d)", i, e.n)
	}
	if !e.down[i] {
		return fmt.Errorf("gossip: rejoin node %d is not down", i)
	}
	if g < 0 {
		return fmt.Errorf("gossip: rejoin node %d with negative weight %v", i, g)
	}
	e.down[i] = false
	e.cur[i] = Pair{y, g}
	e.injected.add(e.cur[i])
	e.u[i] = e.cur[i].ratio()
	e.selfConv[i] = false
	e.stopped[i] = false
	return nil
}

// AddNode grows the engine by one node carrying initial mass (y, g). The
// graph must already contain the new node (its id is the previous N); callers
// add it with its overlay edges first — typically graph.AttachPreferential —
// then call AddNode, then RefreshFanouts so the changed degrees take effect.
// The newcomer's degree exchange (one push per incident edge direction, both
// ways) is charged to Messages.Setup.
func (e *Engine) AddNode(y, g float64) (int, error) {
	if e.cfg.Graph.N() != e.n+1 {
		return 0, fmt.Errorf("gossip: AddNode needs the graph grown by exactly one node (graph N=%d, engine N=%d)", e.cfg.Graph.N(), e.n)
	}
	if g < 0 {
		return 0, fmt.Errorf("gossip: AddNode with negative weight %v", g)
	}
	i := e.n
	e.n++
	e.cur = append(e.cur, Pair{y, g})
	e.injected.add(Pair{y, g})
	e.u = append(e.u, Pair{y, g}.ratio())
	e.selfConv = append(e.selfConv, false)
	e.stopped = append(e.stopped, false)
	e.down = append(e.down, false)
	e.next = append(e.next, Pair{})
	e.extRecv = append(e.extRecv, 0)
	e.ks = append(e.ks, 1) // placeholder until RefreshFanouts
	if e.count != nil {
		e.count = append(e.count, 0)
		e.nextCount = append(e.nextCount, 0)
	}
	e.msgs.Setup += 2 * e.cfg.Graph.Degree(i)
	return i, nil
}

// RefreshFanouts recomputes every node's push fan-out from the current graph
// degrees — the degree re-exchange a real deployment runs after membership
// changes. Call it after the overlay gains nodes or edges.
func (e *Engine) RefreshFanouts() { e.ks = e.cfg.fanouts() }

// SetLossProb changes the per-push loss probability mid-run (a churn
// scenario's loss schedule).
func (e *Engine) SetLossProb(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("gossip: loss probability %v out of [0,1)", p)
	}
	e.cfg.LossProb = p
	return nil
}

// SetLinkFault installs (or, with nil, removes) a link-fault predicate:
// any push for which fault(from, to) returns true is dropped and the sender
// re-absorbs the share. The predicate must be deterministic — a pure
// function of the ids and scenario state — for runs to replay.
func (e *Engine) SetLinkFault(fault func(from, to int) bool) { e.linkFault = fault }

// Override replaces node i's held pair in place — the scenario engine's
// collusion event, where a liar swaps its true accumulated state for an
// inflated one mid-run. The mass delta is tallied against the ledgers so the
// conservation invariant stays checkable.
func (e *Engine) Override(i int, y, g float64) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: override node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: override node %d is down", i)
	}
	if g < 0 {
		return fmt.Errorf("gossip: override node %d with negative weight %v", i, g)
	}
	e.lost.add(e.cur[i])
	e.cur[i] = Pair{y, g}
	e.injected.add(e.cur[i])
	e.u[i] = e.cur[i].ratio()
	e.selfConv[i] = false
	// Wake the node even if its whole neighbourhood had converged: a liar
	// in a stopped region must push its fresh state so neighbours' deltas
	// can revoke convergence, exactly as a rejoining node does.
	e.stopped[i] = false
	return nil
}

// MassLedger returns the engine's churn mass accounting: base is the
// construction-time total, injected the mass added by Rejoin/AddNode/
// Override, lost the mass destroyed by crashes, heirless leaves and
// Override replacements. MassY() == base.Y + injected.Y − lost.Y (and the
// same for G) up to floating-point accumulation error.
func (e *Engine) MassLedger() (base, injected, lost Pair) {
	return e.base, e.injected, e.lost
}

// MassCount returns the total rater-count mass (0 when count gossip is off).
func (e *Engine) MassCount() float64 {
	total := 0.0
	for _, c := range e.count {
		total += c
	}
	return total
}

// CountLedger returns the count-mass accounting, mirroring MassLedger.
func (e *Engine) CountLedger() (base, injected, lost float64) {
	return e.baseCount, e.injectedCount, e.lostCount
}

// N returns the current node count (it grows as AddNode admits newcomers).
func (e *Engine) N() int { return e.n }

// Held returns the pair node i currently holds — the raw mass state behind
// Estimate, which churn events like Override build on.
func (e *Engine) Held(i int) Pair { return e.cur[i] }

// ---------------------------------------------------------------------------
// VectorEngine churn surface. Semantics mirror the scalar engine's, applied
// per subject slot; the mass ledgers are per-subject vectors.
// ---------------------------------------------------------------------------

// Down reports whether node i has crashed or left and not rejoined.
func (e *VectorEngine) Down(i int) bool { return e.down[i] }

// N returns the current node count.
func (e *VectorEngine) N() int { return e.n }

// Estimate returns node i's current estimate for subject j (0 while its
// weight slot is empty).
func (e *VectorEngine) Estimate(i, j int) float64 {
	if e.g[i][j] == 0 {
		return 0
	}
	return e.y[i][j] / e.g[i][j]
}

// HeldRow returns copies of the mass vectors node i currently holds.
func (e *VectorEngine) HeldRow(i int) (y, g []float64) {
	return append([]float64(nil), e.y[i]...), append([]float64(nil), e.g[i]...)
}

// mirrorInactive re-pins node i's inactive-subject slots into the next
// buffers after a direct mutation of its current row. Sparse-mode accumulate
// never rewrites inactive columns, so the two buffers must agree on them or
// a later view swap would resurrect stale mass.
func (e *VectorEngine) mirrorInactive(i int) {
	if e.denseActive {
		return
	}
	for j, a := range e.active {
		if !a {
			e.nextY[i][j] = e.y[i][j]
			if e.nextC != nil {
				e.nextC[i][j] = e.count[i][j]
			}
		}
	}
}

// Crash removes node i abruptly: every subject slot's mass is destroyed and
// tallied, and the node stops participating until Rejoin.
func (e *VectorEngine) Crash(i int) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: crash node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: crash node %d already down", i)
	}
	for j := 0; j < e.m; j++ {
		e.lostY[j] += e.y[i][j]
		e.lostG[j] += e.g[i][j]
		e.y[i][j] = 0
		e.g[i][j] = 0
		e.prevR[i][j] = Sentinel
		if e.count != nil {
			e.count[i][j] = 0
		}
	}
	e.mirrorInactive(i)
	e.hasWeight[i] = false
	e.down[i] = true
	e.selfConv[i] = false
	e.stopped[i] = false
	return nil
}

// Leave removes node i gracefully, handing its entire vector mass to one
// uniformly random alive neighbour (one vector push). With no alive
// neighbour it degrades to a crash.
func (e *VectorEngine) Leave(i int) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: leave node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: leave node %d already down", i)
	}
	h := pickAlive(e.cfg.Graph.Neighbors(i), e.down, e.src)
	if h < 0 {
		return e.Crash(i)
	}
	e.msgs.Gossip += e.perPushUnits
	for j := 0; j < e.m; j++ {
		e.y[h][j] += e.y[i][j]
		e.g[h][j] += e.g[i][j]
		e.y[i][j] = 0
		e.g[i][j] = 0
		e.prevR[i][j] = Sentinel
		if e.count != nil {
			e.count[h][j] += e.count[i][j]
			e.count[i][j] = 0
		}
	}
	e.mirrorInactive(i)
	e.mirrorInactive(h)
	e.refreshHasWeight(h)
	e.hasWeight[i] = false
	e.down[i] = true
	e.selfConv[i] = false
	e.stopped[i] = false
	return nil
}

// refreshHasWeight recomputes the cached all-active-slots-weighted flag for
// node i after a direct mutation of its row.
func (e *VectorEngine) refreshHasWeight(i int) {
	hw := true
	for _, j := range e.activeIdx {
		if e.g[i][j] == 0 {
			hw = false
			break
		}
	}
	e.hasWeight[i] = hw
}

// activateSubject marks subject j as carrying a campaign from now on —
// needed when a rejoining or joining node introduces weight for a subject
// nobody had rated. Inactive slots were pinned equal across both buffers, so
// activation is just index bookkeeping.
func (e *VectorEngine) activateSubject(j int) {
	if e.active[j] {
		return
	}
	e.active[j] = true
	// Insert keeping activeIdx ascending, as the kernels assume.
	at := len(e.activeIdx)
	for k, v := range e.activeIdx {
		if v > j {
			at = k
			break
		}
	}
	e.activeIdx = append(e.activeIdx, 0)
	copy(e.activeIdx[at+1:], e.activeIdx[at:])
	e.activeIdx[at] = j
	e.denseActive = len(e.activeIdx) == e.m
	// A newly active slot now takes part in every node's convergence scan;
	// cached hasWeight flags may be stale in the permissive direction.
	for i := 0; i < e.n; i++ {
		if e.hasWeight[i] && e.g[i][j] == 0 {
			e.hasWeight[i] = false
		}
	}
}

// Rejoin brings a departed node back with fresh per-subject state — a
// whitewash when the weights carry new mass. Subjects that gain their first
// weight anywhere are activated.
func (e *VectorEngine) Rejoin(i int, y, g []float64) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: rejoin node %d out of range [0,%d)", i, e.n)
	}
	if !e.down[i] {
		return fmt.Errorf("gossip: rejoin node %d is not down", i)
	}
	if len(y) != e.m || len(g) != e.m {
		return fmt.Errorf("gossip: rejoin vectors have length %d/%d, want %d", len(y), len(g), e.m)
	}
	for j, gv := range g {
		if gv < 0 {
			return fmt.Errorf("gossip: rejoin node %d with negative weight g[%d]=%v", i, j, gv)
		}
		if gv > 0 {
			e.activateSubject(j)
		}
	}
	for j := 0; j < e.m; j++ {
		e.y[i][j] = y[j]
		e.g[i][j] = g[j]
		e.injY[j] += y[j]
		e.injG[j] += g[j]
		e.prevR[i][j] = ratioOr(y[j], g[j])
		if e.count != nil {
			e.count[i][j] = 0
		}
	}
	e.mirrorInactive(i)
	e.refreshHasWeight(i)
	e.down[i] = false
	e.selfConv[i] = false
	e.stopped[i] = false
	return nil
}

// AddNode grows the engine by one node (and one subject slot). The graph
// must already contain the new node with its overlay edges; y and g are the
// newcomer's initial vectors over all N+1 subjects. The Θ(N²) state is
// rebuilt — joins are event-rate, not step-rate — and the run's counters,
// flags and ledgers carry over; fan-outs are refreshed as part of the
// rebuild. The newcomer's degree exchange is charged to Messages.Setup.
func (e *VectorEngine) AddNode(y, g []float64) (int, error) {
	if e.subs != nil {
		return 0, fmt.Errorf("gossip: AddNode on a restricted-subject engine")
	}
	n1 := e.n + 1
	if e.cfg.Graph.N() != n1 {
		return 0, fmt.Errorf("gossip: AddNode needs the graph grown by exactly one node (graph N=%d, engine N=%d)", e.cfg.Graph.N(), e.n)
	}
	if len(y) != n1 || len(g) != n1 {
		return 0, fmt.Errorf("gossip: AddNode vectors have length %d/%d, want %d", len(y), len(g), n1)
	}
	ny := make([][]float64, n1)
	ng := make([][]float64, n1)
	for i := 0; i < e.n; i++ {
		ry := make([]float64, n1)
		rg := make([]float64, n1)
		copy(ry, e.y[i])
		copy(rg, e.g[i])
		ny[i] = ry
		ng[i] = rg
	}
	ny[e.n] = y
	ng[e.n] = g

	cfg := e.cfg
	cfg.Seed = e.src.Uint64() // child stream: replayable from the run seed
	ne, err := NewVectorEngine(cfg, ny, ng)
	if err != nil {
		return 0, err
	}
	if e.count != nil {
		nc := make([][]float64, n1)
		for i := 0; i < e.n; i++ {
			rc := make([]float64, n1)
			copy(rc, e.count[i])
			nc[i] = rc
		}
		nc[e.n] = make([]float64, n1)
		if err := ne.EnableCountGossip(nc); err != nil {
			return 0, err
		}
	}
	// Carry the run state over: step/message counters, protocol flags and
	// the mass ledgers. The constructor's full degree-exchange charge is
	// replaced by the newcomer's localized exchange.
	ne.steps = e.steps
	ne.msgs = e.msgs
	ne.msgs.Setup += 2 * cfg.Graph.Degree(e.n)
	ne.perPushUnits = e.perPushUnits
	if ne.perPushUnits > 1 {
		ne.perPushUnits = n1 // vector pushes now carry one more slot
	}
	copy(ne.selfConv, e.selfConv)
	copy(ne.stopped, e.stopped)
	copy(ne.down, e.down)
	for j := 0; j < e.n; j++ {
		// The constructor recomputed base from the current masses; restore
		// the original ledger and book the newcomer's row as injected.
		ne.baseY[j] = e.baseY[j]
		ne.baseG[j] = e.baseG[j]
		ne.injY[j] = e.injY[j] + y[j]
		ne.injG[j] = e.injG[j] + g[j]
		ne.lostY[j] = e.lostY[j]
		ne.lostG[j] = e.lostG[j]
	}
	// Down rows were rebuilt as all-zero (they hold no mass), but the
	// constructor seeded their prevR from ratios; pin them to the sentinel
	// so a rejoin measures deltas from fresh state.
	for i := 0; i < e.n; i++ {
		if ne.down[i] {
			for j := 0; j < n1; j++ {
				ne.prevR[i][j] = Sentinel
			}
			ne.hasWeight[i] = false
		}
	}
	ne.linkFault = e.linkFault
	*e = *ne
	return e.n - 1, nil
}

// RefreshFanouts recomputes every node's push fan-out from current degrees;
// call after the overlay gains edges (scalar AddNode path does not refresh
// automatically, and joins change existing nodes' degrees too).
func (e *VectorEngine) RefreshFanouts() { e.ks = e.cfg.fanouts() }

// SetLossProb changes the per-push loss probability mid-run.
func (e *VectorEngine) SetLossProb(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("gossip: loss probability %v out of [0,1)", p)
	}
	e.cfg.LossProb = p
	return nil
}

// SetLinkFault installs (or removes, with nil) a deterministic link-fault
// predicate; faulted pushes are re-absorbed by the sender.
func (e *VectorEngine) SetLinkFault(fault func(from, to int) bool) { e.linkFault = fault }

// Override replaces node i's held vector state in place (the collusion
// event); deltas are tallied against the ledgers.
func (e *VectorEngine) Override(i int, y, g []float64) error {
	if i < 0 || i >= e.n {
		return fmt.Errorf("gossip: override node %d out of range [0,%d)", i, e.n)
	}
	if e.down[i] {
		return fmt.Errorf("gossip: override node %d is down", i)
	}
	if len(y) != e.m || len(g) != e.m {
		return fmt.Errorf("gossip: override vectors have length %d/%d, want %d", len(y), len(g), e.m)
	}
	for j, gv := range g {
		if gv < 0 {
			return fmt.Errorf("gossip: override node %d with negative weight g[%d]=%v", i, j, gv)
		}
		if gv > 0 {
			e.activateSubject(j)
		}
	}
	for j := 0; j < e.m; j++ {
		e.lostY[j] += e.y[i][j]
		e.lostG[j] += e.g[i][j]
		e.y[i][j] = y[j]
		e.g[i][j] = g[j]
		e.injY[j] += y[j]
		e.injG[j] += g[j]
		e.prevR[i][j] = ratioOr(y[j], g[j])
	}
	e.mirrorInactive(i)
	e.refreshHasWeight(i)
	e.selfConv[i] = false
	// As in the scalar engine: a stopped liar must resume pushing so the
	// override can propagate and neighbours can revoke convergence.
	e.stopped[i] = false
	return nil
}

// MassLedger returns subject j's churn mass accounting (see the scalar
// engine's MassLedger): MassY(j) == baseY + injY − lostY up to float error,
// and likewise for G.
func (e *VectorEngine) MassLedger(j int) (base, injected, lost Pair) {
	return Pair{e.baseY[j], e.baseG[j]}, Pair{e.injY[j], e.injG[j]}, Pair{e.lostY[j], e.lostG[j]}
}
