// Package gossip implements the paper's diffusion layer: synchronous
// push-sum gossip over an arbitrary graph with either the classic one-push
// protocol or the paper's differential push (k_i pushes per step, k_i =
// round(deg_i / avgNeighbourDeg_i)), plus rumor-spreading simulators for the
// push / pull / push–pull comparison behind Theorem 5.1.
//
// The engine is the substrate for every reputation-aggregation variant in
// internal/core and for the Figure 3/4 and Table 1/2 experiments. It is
// deterministic given a seed, injects packet loss with the paper's
// mass-conserving self-push recovery, and accounts for every message so the
// Table 2 overhead numbers can be regenerated.
package gossip

import (
	"fmt"
	"math"

	"diffgossip/internal/graph"
)

// Protocol selects the fan-out rule of the averaging engine.
type Protocol int

const (
	// DifferentialPush is the paper's contribution: node i pushes to
	// k_i = max(1, round(deg_i / avgNbrDeg_i)) random neighbours per step,
	// keeping a 1/(k_i+1) share for itself.
	DifferentialPush Protocol = iota
	// NormalPush is classic push-sum (Kempe et al.): one push per step.
	NormalPush
	// FixedPush pushes to a constant fan-out K regardless of degree; used
	// by the ablation benchmarks.
	FixedPush
	// CeilPush is DifferentialPush with ceiling instead of round — an
	// ablation on the paper's rounding choice.
	CeilPush
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case DifferentialPush:
		return "differential-push"
	case NormalPush:
		return "normal-push"
	case FixedPush:
		return "fixed-push"
	case CeilPush:
		return "ceil-push"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Sentinel is the ratio placeholder the paper assigns to nodes whose gossip
// weight is still zero ("otherwise u <- 10"): an impossible ratio for values
// in [0,1], so such nodes can never satisfy the convergence test spuriously.
const Sentinel = 10.0

// Config parameterises a gossip run.
type Config struct {
	// Graph is the topology; it must be non-empty. The engine never
	// mutates it.
	Graph *graph.Graph
	// Protocol selects the push rule. Default DifferentialPush.
	Protocol Protocol
	// FixedK is the fan-out used by FixedPush (>= 1).
	FixedK int
	// Epsilon is the paper's ξ: a node considers itself converged when its
	// ratio moves by at most ξ between steps (and it heard from somebody).
	Epsilon float64
	// LossProb is the probability that any single push to a neighbour is
	// lost (churn model, Figure 4). The sender detects the missing ack and
	// pushes the share to itself, preserving mass.
	LossProb float64
	// MaxSteps bounds the run; 0 means a generous default of 64·(log2 N)²+64.
	MaxSteps int
	// Seed drives all randomness.
	Seed uint64
	// MinSteps forces at least this many steps before convergence is
	// honoured; 0 means no floor. (Useful when initial values make the
	// ratio trivially stable for a step or two.)
	MinSteps int
	// Workers parallelises the vector engine's per-step work across this
	// many goroutines (the accumulation is deterministic regardless).
	// 0 or 1 runs sequentially; negative selects GOMAXPROCS. Note the
	// convention differs from the sim sweep runners' Workers fields
	// (Fig3Config and friends), where 0 selects GOMAXPROCS and 1 is the
	// sequential setting.
	Workers int
}

func (c *Config) validate() error {
	if c.Graph == nil || c.Graph.N() == 0 {
		return fmt.Errorf("gossip: empty graph")
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("gossip: epsilon %v must be > 0", c.Epsilon)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("gossip: loss probability %v out of [0,1)", c.LossProb)
	}
	if c.Protocol == FixedPush && c.FixedK < 1 {
		return fmt.Errorf("gossip: FixedPush requires FixedK >= 1, got %d", c.FixedK)
	}
	if c.MaxSteps < 0 || c.MinSteps < 0 {
		return fmt.Errorf("gossip: negative step bounds")
	}
	return nil
}

func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	l := math.Log2(float64(c.Graph.N()) + 1)
	return 64*int(l*l) + 64
}

// fanouts precomputes each node's per-step push count under the configured
// protocol.
func (c *Config) fanouts() []int {
	n := c.Graph.N()
	ks := make([]int, n)
	for u := 0; u < n; u++ {
		switch c.Protocol {
		case NormalPush:
			ks[u] = 1
		case FixedPush:
			ks[u] = c.FixedK
		case CeilPush:
			avg := c.Graph.AvgNeighborDegree(u)
			if avg == 0 {
				ks[u] = 1
			} else if r := float64(c.Graph.Degree(u)) / avg; r <= 1 {
				ks[u] = 1
			} else {
				ks[u] = int(math.Ceil(r))
			}
		default: // DifferentialPush
			ks[u] = c.Graph.DifferentialK(u)
		}
		if d := c.Graph.Degree(u); ks[u] > d && d > 0 {
			ks[u] = d // cannot push to more distinct neighbours than exist
		}
	}
	return ks
}

// Pair is the paper's gossip pair: Y is the value mass, G the weight mass.
// The running estimate at a node is Y/G once G > 0.
type Pair struct {
	Y, G float64
}

// add accumulates q into p.
func (p *Pair) add(q Pair) {
	p.Y += q.Y
	p.G += q.G
}

// scale returns p scaled by f.
func (p Pair) scale(f float64) Pair {
	return Pair{p.Y * f, p.G * f}
}

// ratio returns Y/G, or Sentinel when G == 0.
func (p Pair) ratio() float64 {
	if p.G == 0 {
		return Sentinel
	}
	return p.Y / p.G
}

// Messages tallies every transmission class of a run, so network overhead
// (Table 2) can be reconstructed exactly.
type Messages struct {
	// Setup counts the pre-round pushes: each node sending its degree to
	// every neighbour, and (when the caller registers them) the direct
	// feedback pushes of Algorithm 2.
	Setup int
	// Gossip counts pushes of gossip pairs to other nodes, including ones
	// lost to churn (the transmission cost is paid either way). Self
	// deliveries are free and not counted.
	Gossip int
	// Announce counts convergence announcements to neighbours.
	Announce int
	// Lost counts gossip pushes dropped by the loss model (subset of
	// Gossip).
	Lost int
	// ActiveNodeSteps counts (node, step) pairs in which the node actually
	// pushed — nodes whose whole neighbourhood has converged pause and do
	// not transmit.
	ActiveNodeSteps int
}

// Total returns all paid transmissions.
func (m Messages) Total() int { return m.Setup + m.Gossip + m.Announce }

// PerNodePerStep is the Table 2 metric: the number of messages a gossiping
// node transmits per step, with the setup pushes (degree/feedback exchange)
// and convergence announcements amortised over all N·steps node-steps. The
// paper reports this settling at ≈1.1–1.2 for PA graphs with m=2 and drifting
// down as N and the step count grow.
func (m Messages) PerNodePerStep(n, steps int) float64 {
	if n == 0 || steps == 0 {
		return 0
	}
	overhead := float64(m.Setup+m.Announce) / (float64(n) * float64(steps))
	if m.ActiveNodeSteps == 0 {
		return overhead
	}
	return float64(m.Gossip)/float64(m.ActiveNodeSteps) + overhead
}
