package gossip

import (
	"math"
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// ledgerErr returns the relative deviation of got from want.
func ledgerErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if w := math.Abs(want); w > 1 {
		return d / w
	}
	return d
}

// checkScalarLedger asserts the engine's mass matches its churn ledger.
func checkScalarLedger(t *testing.T, e *Engine, ctx string) {
	t.Helper()
	base, inj, lost := e.MassLedger()
	if err := ledgerErr(e.MassY(), base.Y+inj.Y-lost.Y); err > 1e-9 {
		t.Fatalf("%s: Y mass drift %v", ctx, err)
	}
	if err := ledgerErr(e.MassG(), base.G+inj.G-lost.G); err > 1e-9 {
		t.Fatalf("%s: G mass drift %v", ctx, err)
	}
}

func newChurnEngine(t *testing.T, n int, seed uint64) (*Engine, *graph.Graph) {
	t.Helper()
	g := graph.MustPA(n, 2, seed)
	src := rng.New(seed + 1)
	y0 := make([]float64, n)
	g0 := make([]float64, n)
	for i := range y0 {
		y0[i] = src.Float64()
		g0[i] = 1
	}
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-4, Seed: seed + 2}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestEngineCrashLosesExactlyHeldMass(t *testing.T) {
	e, _ := newChurnEngine(t, 50, 1)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	held := e.Held(7)
	before := e.MassY()
	if err := e.Crash(7); err != nil {
		t.Fatal(err)
	}
	if !e.Down(7) {
		t.Fatal("crashed node not down")
	}
	if got := before - e.MassY(); math.Abs(got-held.Y) > 1e-12 {
		t.Fatalf("crash destroyed %v, node held %v", got, held.Y)
	}
	checkScalarLedger(t, e, "after crash")
	for i := 0; i < 20; i++ {
		e.Step()
		checkScalarLedger(t, e, "stepping after crash")
	}
	if e.Estimate(7) != 0 {
		t.Fatalf("down node has estimate %v", e.Estimate(7))
	}
	// Double crash is rejected.
	if err := e.Crash(7); err == nil {
		t.Fatal("double crash accepted")
	}
}

func TestEngineLeaveHandsMassOff(t *testing.T) {
	e, _ := newChurnEngine(t, 50, 2)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	before := e.MassY()
	if err := e.Leave(3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.MassY()-before) > 1e-12 {
		t.Fatalf("graceful leave changed total mass by %v", e.MassY()-before)
	}
	_, _, lost := e.MassLedger()
	if lost.Y != 0 || lost.G != 0 {
		t.Fatalf("graceful leave recorded loss %+v", lost)
	}
	for i := 0; i < 20; i++ {
		e.Step()
		checkScalarLedger(t, e, "stepping after leave")
	}
}

func TestEngineRejoinInjectsFreshMass(t *testing.T) {
	e, _ := newChurnEngine(t, 40, 3)
	e.Step()
	if err := e.Rejoin(4, 0.5, 1); err == nil {
		t.Fatal("rejoin of an alive node accepted")
	}
	if err := e.Crash(4); err != nil {
		t.Fatal(err)
	}
	if err := e.Rejoin(4, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if e.Down(4) {
		t.Fatal("rejoined node still down")
	}
	checkScalarLedger(t, e, "after rejoin")
	for i := 0; i < 30; i++ {
		e.Step()
		checkScalarLedger(t, e, "stepping after rejoin")
	}
	if e.Estimate(4) == 0 {
		t.Fatal("rejoined node never recovered an estimate")
	}
}

func TestEngineAddNodeGrowsRun(t *testing.T) {
	e, g := newChurnEngine(t, 30, 4)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	src := rng.New(99)
	id := graph.AttachPreferential(g, 2, src, nil)
	got, err := e.AddNode(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != id || got != 30 {
		t.Fatalf("AddNode id %d, graph id %d", got, id)
	}
	e.RefreshFanouts()
	checkScalarLedger(t, e, "after join")
	for i := 0; i < 40; i++ {
		e.Step()
		checkScalarLedger(t, e, "stepping after join")
	}
	if e.Estimate(30) == 0 {
		t.Fatal("joined node never got an estimate")
	}
	// AddNode without growing the graph first is rejected.
	if _, err := e.AddNode(1, 1); err == nil {
		t.Fatal("AddNode accepted without a grown graph")
	}
}

func TestEngineLinkFaultPartitionIsolates(t *testing.T) {
	// Two PA cells joined by a single bridge; faulting the bridge splits
	// the averages.
	g := graph.MustPA(40, 2, 5)
	src := rng.New(6)
	y0 := make([]float64, 40)
	g0 := make([]float64, 40)
	for i := range y0 {
		if i < 20 {
			y0[i] = 0
		} else {
			y0[i] = 1
		}
		g0[i] = 1
		_ = src
	}
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-5, Seed: 7}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(i int) int {
		if i < 20 {
			return 0
		}
		return 1
	}
	e.SetLinkFault(func(from, to int) bool { return cell(from) != cell(to) })
	for i := 0; i < 50; i++ {
		e.Step()
		checkScalarLedger(t, e, "partitioned step")
	}
	// Cross-cell flow is blocked: cell 0's mass ratio stays near 0, cell
	// 1's near 1 (each cell only mixes internally).
	for i := 0; i < 40; i++ {
		est := e.Estimate(i)
		if cell(i) == 0 && est > 0.4 {
			t.Fatalf("node %d in cell 0 drifted to %v under partition", i, est)
		}
		if cell(i) == 1 && est < 0.6 && est != 0 {
			t.Fatalf("node %d in cell 1 drifted to %v under partition", i, est)
		}
	}
	// Heal and converge: estimates meet in the middle.
	e.SetLinkFault(nil)
	for i := 0; i < 400; i++ {
		if !e.Step() {
			break
		}
	}
	mid := e.MassY() / e.MassG()
	for i := 0; i < 40; i++ {
		if d := math.Abs(e.Estimate(i) - mid); d > 0.05 {
			t.Fatalf("node %d stuck at %v after heal (reference %v)", i, e.Estimate(i), mid)
		}
	}
}

func TestEngineSetLossProbMidRun(t *testing.T) {
	e, _ := newChurnEngine(t, 30, 8)
	if err := e.SetLossProb(1.5); err == nil {
		t.Fatal("invalid loss probability accepted")
	}
	if err := e.SetLossProb(0.9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Step()
		checkScalarLedger(t, e, "lossy step")
	}
	if e.Messages().Lost == 0 {
		t.Fatal("no pushes lost at 90% loss")
	}
}

// checkVectorLedger asserts per-subject mass matches the churn ledgers.
func checkVectorLedger(t *testing.T, e *VectorEngine, ctx string) {
	t.Helper()
	for j := 0; j < e.N(); j++ {
		base, inj, lost := e.MassLedger(j)
		if err := ledgerErr(e.MassY(j), base.Y+inj.Y-lost.Y); err > 1e-9 {
			t.Fatalf("%s: subject %d Y mass drift %v", ctx, j, err)
		}
		if err := ledgerErr(e.MassG(j), base.G+inj.G-lost.G); err > 1e-9 {
			t.Fatalf("%s: subject %d G mass drift %v", ctx, j, err)
		}
	}
}

func newChurnVectorEngine(t *testing.T, n int, seed uint64, sparse bool) (*VectorEngine, *graph.Graph) {
	t.Helper()
	g := graph.MustPA(n, 2, seed)
	src := rng.New(seed + 1)
	y0 := make([][]float64, n)
	g0 := make([][]float64, n)
	for i := 0; i < n; i++ {
		y0[i] = make([]float64, n)
		g0[i] = make([]float64, n)
	}
	stride := 1
	if sparse {
		stride = 5
	}
	for j := 0; j < n; j += stride {
		for i := 0; i < n; i++ {
			y0[i][j] = src.Float64()
			g0[i][j] = 1
		}
	}
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-4, Seed: seed + 2}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestVectorEngineChurnRoundTrip(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse"
		}
		t.Run(name, func(t *testing.T) {
			e, g := newChurnVectorEngine(t, 30, 11, sparse)
			for i := 0; i < 3; i++ {
				e.Step()
			}
			if err := e.Crash(5); err != nil {
				t.Fatal(err)
			}
			checkVectorLedger(t, e, "after crash")
			if err := e.Leave(6); err != nil {
				t.Fatal(err)
			}
			checkVectorLedger(t, e, "after leave")
			for i := 0; i < 10; i++ {
				e.Step()
				checkVectorLedger(t, e, "stepping")
			}
			// Whitewash node 5 back in with fresh ratings.
			y := make([]float64, e.N())
			gw := make([]float64, e.N())
			for _, j := range g.Neighbors(5) {
				y[j] = 0.4
				gw[j] = 1
			}
			if err := e.Rejoin(5, y, gw); err != nil {
				t.Fatal(err)
			}
			checkVectorLedger(t, e, "after rejoin")
			// Join a new node.
			src := rng.New(77)
			id := graph.AttachPreferential(g, 2, src, func(v int) bool { return !e.Down(v) })
			yj := make([]float64, e.N()+1)
			gj := make([]float64, e.N()+1)
			for _, j := range g.Neighbors(id) {
				yj[j] = 0.8
				gj[j] = 1
			}
			got, err := e.AddNode(yj, gj)
			if err != nil {
				t.Fatal(err)
			}
			if got != id {
				t.Fatalf("engine id %d, graph id %d", got, id)
			}
			checkVectorLedger(t, e, "after join")
			for i := 0; i < 30; i++ {
				e.Step()
				checkVectorLedger(t, e, "stepping after join")
			}
			if e.N() != 31 {
				t.Fatalf("engine N=%d after join", e.N())
			}
		})
	}
}

func TestVectorEngineAddNodePreservesEstimates(t *testing.T) {
	// The rebuild on AddNode must not disturb held mass: estimates for old
	// subjects are bit-identical before and after the grow.
	e, g := newChurnVectorEngine(t, 25, 13, false)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	before := make([]float64, 25)
	for j := range before {
		before[j] = e.Estimate(3, j)
	}
	src := rng.New(5)
	graph.AttachPreferential(g, 2, src, nil)
	y := make([]float64, 26)
	gw := make([]float64, 26)
	if _, err := e.AddNode(y, gw); err != nil {
		t.Fatal(err)
	}
	for j := range before {
		if math.Float64bits(e.Estimate(3, j)) != math.Float64bits(before[j]) {
			t.Fatalf("estimate (3,%d) changed across AddNode: %v vs %v", j, e.Estimate(3, j), before[j])
		}
	}
}

func TestOverrideWakesConvergedRegion(t *testing.T) {
	// Regression: Override on a node whose whole neighbourhood had
	// converged used to leave it stopped, so a collusion lie injected into
	// a quiet region sat inert and never gossiped.
	e, _ := newChurnEngine(t, 40, 21)
	for i := 0; i < 4000; i++ {
		if !e.Step() {
			break
		}
	}
	if e.Step() {
		t.Fatal("network did not converge before the override")
	}
	before := e.Estimate(10)
	p := e.Held(3)
	if err := e.Override(3, 1*p.G, p.G); err != nil { // lie: estimate 1
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if !e.Step() {
			break
		}
	}
	after := e.Estimate(10)
	if math.Abs(after-before) < 1e-6 {
		t.Fatalf("override never propagated: estimate at node 10 stayed %v", before)
	}
	checkScalarLedger(t, e, "after override propagation")
}
