package gossip

import (
	"math"
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// buildVectorInputs sets up an all-subjects average: y0[i][j] random,
// g0[i][j] = 1 (every node rates every subject).
func buildVectorInputs(n int, seed uint64) (y0, g0 [][]float64) {
	src := rng.New(seed)
	y0, g0 = alloc(n), alloc(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			y0[i][j] = src.Float64()
			g0[i][j] = 1
		}
	}
	return y0, g0
}

func TestVectorEngineShapeChecks(t *testing.T) {
	g := graph.Ring(4)
	cfg := Config{Graph: g, Epsilon: 0.01}
	if _, err := NewVectorEngine(cfg, alloc(3), alloc(4)); err == nil {
		t.Fatal("short y0 accepted")
	}
	bad := alloc(4)
	bad[2][1] = -1
	if _, err := NewVectorEngine(cfg, alloc(4), bad); err == nil {
		t.Fatal("negative weight accepted")
	}
	ragged := alloc(4)
	ragged[1] = ragged[1][:2]
	if _, err := NewVectorEngine(cfg, ragged, alloc(4)); err == nil {
		t.Fatal("ragged y0 row accepted")
	}
	if _, err := NewVectorEngine(cfg, alloc(4), ragged); err == nil {
		t.Fatal("ragged g0 row accepted")
	}
	e, err := NewVectorEngine(cfg, alloc(4), alloc(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(ragged); err == nil {
		t.Fatal("ragged count row accepted")
	}
}

func TestVectorAverageAllSubjects(t *testing.T) {
	n := 60
	g := graph.MustPA(n, 2, 100)
	y0, g0 := buildVectorInputs(n, 101)
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-8, Seed: 102}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("vector gossip did not converge")
	}
	for j := 0; j < n; j++ {
		want := 0.0
		for i := 0; i < n; i++ {
			want += y0[i][j]
		}
		want /= float64(n)
		for i := 0; i < n; i++ {
			if math.Abs(res.Estimates[i][j]-want) > 1e-3 {
				t.Fatalf("estimate[%d][%d] = %v, want %v", i, j, res.Estimates[i][j], want)
			}
		}
	}
}

func TestVectorMassConservation(t *testing.T) {
	n := 40
	g := graph.MustPA(n, 2, 110)
	y0, g0 := buildVectorInputs(n, 111)
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-6, Seed: 112, LossProb: 0.2}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	wantY := make([]float64, n)
	wantG := make([]float64, n)
	for j := 0; j < n; j++ {
		wantY[j], wantG[j] = e.MassY(j), e.MassG(j)
	}
	for s := 0; s < 25; s++ {
		e.Step()
	}
	for j := 0; j < n; j++ {
		if math.Abs(e.MassY(j)-wantY[j]) > 1e-9*float64(n) {
			t.Fatalf("subject %d Y mass drifted", j)
		}
		if math.Abs(e.MassG(j)-wantG[j]) > 1e-9*float64(n) {
			t.Fatalf("subject %d G mass drifted", j)
		}
	}
}

func TestVectorSumModeWithCounts(t *testing.T) {
	// Variant-3 style: single root weight per subject; counts track rater
	// numbers per subject.
	n := 30
	g := graph.MustPA(n, 2, 120)
	src := rng.New(121)
	y0, g0 := alloc(n), alloc(n)
	c0 := alloc(n)
	ratersPerSubject := make([]int, n)
	for j := 0; j < n; j++ {
		g0[0][j] = 1 // node 0 is the root for every subject
		for i := 0; i < n; i++ {
			if i != j && src.Bool(0.3) {
				y0[i][j] = src.Float64()
				c0[i][j] = 1
				ratersPerSubject[j]++
			}
		}
	}
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-10, Seed: 122}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(c0); err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for j := 0; j < n; j++ {
		if ratersPerSubject[j] == 0 {
			continue
		}
		wantSum := 0.0
		for i := 0; i < n; i++ {
			wantSum += y0[i][j]
		}
		for i := 0; i < n; i++ {
			if math.Abs(res.Estimates[i][j]-wantSum) > 1e-2*math.Max(1, wantSum) {
				t.Fatalf("sum estimate[%d][%d] = %v, want %v", i, j, res.Estimates[i][j], wantSum)
			}
			if math.Abs(res.Counts[i][j]-float64(ratersPerSubject[j])) > 0.05*float64(ratersPerSubject[j])+0.01 {
				t.Fatalf("count estimate[%d][%d] = %v, want %d", i, j, res.Counts[i][j], ratersPerSubject[j])
			}
		}
	}
}

func TestVectorCountGossipErrors(t *testing.T) {
	g := graph.Ring(4)
	y0, g0 := buildVectorInputs(4, 1)
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 0.1, Seed: 1}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(alloc(3)); err == nil {
		t.Fatal("wrong-size count matrix accepted")
	}
	e.Step()
	if err := e.EnableCountGossip(alloc(4)); err == nil {
		t.Fatal("late EnableCountGossip accepted")
	}
}

func TestVectorMessageUnits(t *testing.T) {
	n := 10
	g := graph.Ring(n)
	y0, g0 := buildVectorInputs(n, 130)
	plain, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-6, Seed: 131}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	plain.Step()
	perPacket := plain.msgs.Gossip

	vec, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-6, Seed: 131}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	vec.CountVectorMessages()
	vec.Step()
	if vec.msgs.Gossip != perPacket*n {
		t.Fatalf("vector message units = %d, want %d", vec.msgs.Gossip, perPacket*n)
	}
}

func TestVectorMatchesScalarPerSubject(t *testing.T) {
	// Cross-check: a vector run and N scalar runs must agree on the
	// converged values (both converge to per-subject means; the paths
	// differ, the fixed point does not).
	n := 25
	g := graph.MustPA(n, 2, 140)
	y0, g0 := buildVectorInputs(n, 141)
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-9, Seed: 142}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	vres := e.Run()
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		gcol := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = y0[i][j]
			gcol[i] = g0[i][j]
		}
		se, err := NewEngine(Config{Graph: g, Epsilon: 1e-9, Seed: 143}, col, gcol)
		if err != nil {
			t.Fatal(err)
		}
		sres := se.Run()
		if math.Abs(vres.Estimates[0][j]-sres.Estimates[0]) > 1e-3 {
			t.Fatalf("subject %d: vector %v vs scalar %v", j, vres.Estimates[0][j], sres.Estimates[0])
		}
	}
}
