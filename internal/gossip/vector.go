package gossip

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"diffgossip/internal/rng"
)

// VectorEngine runs the paper's third/fourth algorithm variants: every node
// gossips a full vector of (Y, G) pairs — one slot per subject node — so the
// reputations of all N nodes aggregate simultaneously. A node id travels with
// each pair implicitly via the slot index. An optional Count vector carries
// Algorithm 2's rater-count mass.
//
// Convergence uses the paper's rule (7): node i announces convergence when
//
//	Σ_j |r_ij(n) − r_ij(n−1)| ≤ N·ξ
//
// after hearing from at least one other node, and stops once it and all its
// neighbours have announced.
//
// Memory is Θ(N²); the experiment harness uses it for the collusion figures
// at moderate N and falls back to the scalar engine for the large-N timing
// figures, whose per-subject dynamics are identical.
type VectorEngine struct {
	cfg   Config
	n     int
	ks    []int
	src   *rng.Source
	steps int

	y, g  [][]float64 // [node][subject] masses
	count [][]float64 // optional rater-count mass
	prevR [][]float64 // previous-step ratios

	selfConv []bool
	stopped  []bool
	// active[j] is true when some node started with weight mass for
	// subject j; only active subjects gate a node's convergence (a column
	// nobody rated carries no campaign and must not block termination).
	active []bool

	nextY, nextG, nextC [][]float64
	extRecv             []int
	incoming            [][]push
	l1                  []float64
	hasWeight           []bool

	msgs Messages
	// vectorCost scales the per-push message accounting: pushing an
	// N-slot vector costs N logical message units when
	// CountVectorMessages is set; 1 otherwise (one packet per push).
	perPushUnits int
}

// VectorResult is the outcome of a VectorEngine run. Estimates[i][j] is node
// i's estimate for subject j.
type VectorResult struct {
	Steps     int
	Converged bool
	Estimates [][]float64
	Counts    [][]float64
	Messages  Messages
}

// NewVectorEngine builds a vector gossip run from initial masses. y0 and g0
// must be N×N (row i = node i's initial vector).
func NewVectorEngine(cfg Config, y0, g0 [][]float64) (*VectorEngine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	if len(y0) != n || len(g0) != n {
		return nil, fmt.Errorf("gossip: initial matrices have %d/%d rows, want %d", len(y0), len(g0), n)
	}
	e := &VectorEngine{
		cfg:          cfg,
		n:            n,
		ks:           cfg.fanouts(),
		src:          rng.New(cfg.Seed),
		y:            deepCopy(y0, n),
		g:            deepCopy(g0, n),
		prevR:        alloc(n),
		selfConv:     make([]bool, n),
		stopped:      make([]bool, n),
		nextY:        alloc(n),
		nextG:        alloc(n),
		extRecv:      make([]int, n),
		perPushUnits: 1,
	}
	e.active = make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if e.g[i][j] < 0 {
				return nil, fmt.Errorf("gossip: negative initial weight g0[%d][%d]", i, j)
			}
			if e.g[i][j] > 0 {
				e.active[j] = true
			}
			e.prevR[i][j] = ratioOr(e.y[i][j], e.g[i][j])
		}
		e.msgs.Setup += cfg.Graph.Degree(i)
	}
	return e, nil
}

func deepCopy(m [][]float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		if len(m[i]) != n {
			panic(fmt.Sprintf("gossip: row %d has length %d, want %d", i, len(m[i]), n))
		}
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func alloc(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func ratioOr(y, g float64) float64 {
	if g == 0 {
		return Sentinel
	}
	return y / g
}

// EnableCountGossip attaches the rater-count component (N×N row per node).
func (e *VectorEngine) EnableCountGossip(count0 [][]float64) error {
	if len(count0) != e.n {
		return fmt.Errorf("gossip: count matrix has %d rows, want %d", len(count0), e.n)
	}
	if e.steps > 0 {
		return fmt.Errorf("gossip: EnableCountGossip after stepping")
	}
	e.count = deepCopy(count0, e.n)
	e.nextC = alloc(e.n)
	return nil
}

// CountVectorMessages makes the message tally charge N units per vector push
// instead of 1, reflecting the paper's note that communication complexity of
// the vector variants grows proportionally to the vector size.
func (e *VectorEngine) CountVectorMessages() { e.perPushUnits = e.n }

// ChargeSetup adds extra setup messages to the tally.
func (e *VectorEngine) ChargeSetup(n int) { e.msgs.Setup += n }

// MassY returns Σ_i y_i[j] for subject j (invariant across steps).
func (e *VectorEngine) MassY(j int) float64 {
	total := 0.0
	for i := 0; i < e.n; i++ {
		total += e.y[i][j]
	}
	return total
}

// MassG returns Σ_i g_i[j] for subject j (invariant across steps).
func (e *VectorEngine) MassG(j int) float64 {
	total := 0.0
	for i := 0; i < e.n; i++ {
		total += e.g[i][j]
	}
	return total
}

// push is one routed share: the destination accumulates f times the source's
// current vectors.
type push struct {
	src int
	f   float64
}

// Step executes one synchronous vector gossip step; it returns true while
// some node is still running.
//
// The step has three phases. Routing (sequential, so the random choices are
// identical regardless of parallelism) decides which shares go where.
// Accumulation — the Θ(N²) part — applies the routed shares per destination
// and is split across cfg.Workers goroutines; every destination sums its
// incoming list in routing order, so the result is bit-identical for any
// worker count. Flags (sequential) runs the convergence protocol.
func (e *VectorEngine) Step() bool {
	g := e.cfg.Graph

	// Phase 1: routing.
	if e.incoming == nil {
		e.incoming = make([][]push, e.n)
	}
	for i := range e.incoming {
		e.incoming[i] = e.incoming[i][:0]
		e.extRecv[i] = 0
	}
	for i := 0; i < e.n; i++ {
		if e.stopped[i] || g.Degree(i) == 0 {
			e.incoming[i] = append(e.incoming[i], push{src: i, f: 1})
			continue
		}
		e.msgs.ActiveNodeSteps++
		k := e.ks[i]
		f := 1 / float64(k+1)
		e.incoming[i] = append(e.incoming[i], push{src: i, f: f}) // self share
		for _, t := range g.RandomNeighbors(i, k, e.src) {
			e.msgs.Gossip += e.perPushUnits
			if e.cfg.LossProb > 0 && e.src.Bool(e.cfg.LossProb) {
				e.msgs.Lost += e.perPushUnits
				e.incoming[i] = append(e.incoming[i], push{src: i, f: f})
				continue
			}
			e.incoming[t] = append(e.incoming[t], push{src: i, f: f})
			e.extRecv[t]++
		}
	}

	// Phase 2: accumulation (parallel over destinations).
	e.steps++
	if e.l1 == nil {
		e.l1 = make([]float64, e.n)
		e.hasWeight = make([]bool, e.n)
	}
	e.parallelFor(func(i int) {
		zero(e.nextY[i])
		zero(e.nextG[i])
		if e.nextC != nil {
			zero(e.nextC[i])
		}
		for _, p := range e.incoming[i] {
			axpy(e.nextY[i], e.y[p.src], p.f)
			axpy(e.nextG[i], e.g[p.src], p.f)
			if e.nextC != nil {
				axpy(e.nextC[i], e.count[p.src], p.f)
			}
		}
		l1 := 0.0
		hasWeight := true
		for j := 0; j < e.n; j++ {
			r := ratioOr(e.nextY[i][j], e.nextG[i][j])
			l1 += math.Abs(r - e.prevR[i][j])
			e.prevR[i][j] = r
			if e.active[j] && e.nextG[i][j] == 0 {
				hasWeight = false
			}
		}
		e.l1[i] = l1
		e.hasWeight[i] = hasWeight
	})
	for i := 0; i < e.n; i++ {
		e.y[i], e.nextY[i] = e.nextY[i], e.y[i]
		e.g[i], e.nextG[i] = e.nextG[i], e.g[i]
		if e.nextC != nil {
			e.count[i], e.nextC[i] = e.nextC[i], e.count[i]
		}
	}

	// Phase 3: convergence flags (same revocable protocol as the scalar
	// engine; see Engine.Step).
	nxi := float64(e.n) * e.cfg.Epsilon
	for i := 0; i < e.n; i++ {
		heard := e.extRecv[i] >= 1 || e.selfConv[i] || e.stopped[i]
		conv := e.hasWeight[i] && heard && e.l1[i] <= nxi && e.steps >= e.cfg.MinSteps
		if conv != e.selfConv[i] {
			e.selfConv[i] = conv
			e.msgs.Announce += g.Degree(i)
		}
	}
	running := false
	for i := 0; i < e.n; i++ {
		e.stopped[i] = (e.selfConv[i] || g.Degree(i) == 0) && allConverged(e.selfConv, g.Neighbors(i))
		if !e.stopped[i] {
			running = true
		}
	}
	return running
}

// parallelFor runs fn(i) for every node index, fanning out across the
// configured worker count.
func (e *VectorEngine) parallelFor(fn func(i int)) {
	workers := e.cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || e.n < 2*workers {
		for i := 0; i < e.n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (e.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.n {
			hi = e.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// axpy adds f·src to dst element-wise.
func axpy(dst, src []float64, f float64) {
	for i := range dst {
		dst[i] += src[i] * f
	}
}

// Run drives Step to completion.
func (e *VectorEngine) Run() VectorResult {
	budget := e.cfg.maxSteps()
	running := true
	for running && e.steps < budget {
		running = e.Step()
	}
	res := VectorResult{
		Steps:     e.steps,
		Converged: !running,
		Estimates: alloc(e.n),
		Messages:  e.msgs,
	}
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.n; j++ {
			if e.g[i][j] > 0 {
				res.Estimates[i][j] = e.y[i][j] / e.g[i][j]
			}
		}
	}
	if e.count != nil {
		res.Counts = alloc(e.n)
		for i := 0; i < e.n; i++ {
			for j := 0; j < e.n; j++ {
				if e.g[i][j] > 0 {
					res.Counts[i][j] = e.count[i][j] / e.g[i][j]
				}
			}
		}
	}
	return res
}
