package gossip

import (
	"fmt"
	"runtime"
	"sync"

	"diffgossip/internal/rng"
)

// VectorEngine runs the paper's third/fourth algorithm variants: every node
// gossips a full vector of (Y, G) pairs — one slot per subject node — so the
// reputations of all N nodes aggregate simultaneously. A node id travels with
// each pair implicitly via the slot index. An optional Count vector carries
// Algorithm 2's rater-count mass.
//
// Convergence uses the paper's rule (7): node i announces convergence when
//
//	Σ_j |r_ij(n) − r_ij(n−1)| ≤ N·ξ
//
// after hearing from at least one other node, and stops once it and all its
// neighbours have announced.
//
// Memory layout: every N×N matrix (y, g, count, prevR and their double
// buffers) is backed by a single contiguous []float64 block; the [][]float64
// fields are row views buf[i*n:(i+1)*n] into it, so row traversals are
// unit-stride and the whole matrix is one allocation instead of N. Step
// performs zero heap allocations in steady state: fan-out targets are drawn
// into a reused scratch buffer (graph.AppendRandomNeighbors), routed shares
// into reused per-destination lists, and rows move between the current and
// next buffer by view swapping.
//
// Sparse trust workloads are handled by an active-subject index: a column
// nobody rated (no initial weight mass anywhere) carries no campaign, cannot
// influence any estimate, and is skipped by the accumulation and the
// convergence scan alike.
//
// The engine also runs in restricted-subject mode (NewVectorEngineSubjects):
// the column dimension m is then smaller than N and slot s stands for the
// global subject id Subjects()[s]. The sharded epoch pipeline uses m=1
// engines — one independent push-sum campaign per subject — so a subject's
// result depends only on its own seed and initial column, never on which
// other subjects happen to be computed alongside it.
//
// Memory is Θ(N·m) (Θ(N²) for the full-subject engines); the experiment
// harness uses it for the collusion figures at moderate N and falls back to
// the scalar engine for the large-N timing figures, whose per-subject
// dynamics are identical.
type VectorEngine struct {
	cfg   Config
	n     int
	m     int   // subject slots (== n unless restricted)
	subs  []int // slot -> global subject id; nil means identity
	ks    []int
	src   *rng.Source
	steps int

	y, g  [][]float64 // [node][subject] masses, rows into contiguous blocks
	count [][]float64 // optional rater-count mass
	prevR [][]float64 // previous-step ratios

	selfConv []bool
	stopped  []bool
	down     []bool // node crashed or left; holds no mass, drops pushes

	// Per-subject mass accounting for churn scenarios (see MassLedger):
	// baseY/baseG are the construction-time column totals, injY/injG
	// accumulate mass added by Rejoin/AddNode, lostY/lostG mass destroyed
	// by crashes and heirless leaves.
	baseY, baseG, injY, injG, lostY, lostG []float64

	// linkFault, when set, drops any push for which it returns true (the
	// sender re-absorbs the share); models partitions and lossy links.
	linkFault func(from, to int) bool
	// active[j] is true when some node started with weight mass for
	// subject j; only active subjects gate a node's convergence (a column
	// nobody rated carries no campaign and must not block termination).
	active []bool
	// activeIdx lists the active subjects in ascending order; the hot path
	// iterates it instead of all N columns when the workload is sparse.
	// denseActive short-circuits the indirection when every subject is
	// rated (the Fig3/Table2-class workloads).
	activeIdx   []int
	denseActive bool

	nextY, nextG, nextC [][]float64
	extRecv             []int
	incoming            [][]push
	l1                  []float64
	hasWeight           []bool
	// recomputed[i] marks rows rewritten this step; untouched rows (a
	// stopped node that heard nothing keeps its exact mass) skip the Θ(N)
	// accumulate-and-scan entirely and are not view-swapped.
	recomputed []bool
	nbrs       []int // scratch for fan-out target sampling
	// wg is held by pointer so AddNode can rebuild the engine with a plain
	// struct copy without copying a lock value.
	wg *sync.WaitGroup

	msgs Messages
	// vectorCost scales the per-push message accounting: pushing an
	// N-slot vector costs N logical message units when
	// CountVectorMessages is set; 1 otherwise (one packet per push).
	perPushUnits int
}

// VectorResult is the outcome of a VectorEngine run. Estimates[i][j] is node
// i's estimate for subject j.
type VectorResult struct {
	Steps     int
	Converged bool
	Estimates [][]float64
	Counts    [][]float64
	Messages  Messages
}

// NewVectorEngine builds a vector gossip run from initial masses. y0 and g0
// must be N×N (row i = node i's initial vector).
func NewVectorEngine(cfg Config, y0, g0 [][]float64) (*VectorEngine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	if len(y0) != n || len(g0) != n {
		return nil, fmt.Errorf("gossip: initial matrices have %d/%d rows, want %d", len(y0), len(g0), n)
	}
	y, err := deepCopy(y0, n)
	if err != nil {
		return nil, err
	}
	g, err := deepCopy(g0, n)
	if err != nil {
		return nil, err
	}
	e := newVectorEngineBuffers(cfg, nil)
	e.y, e.g = y, g
	if err := e.initState(); err != nil {
		return nil, err
	}
	// Construction-time degree exchange: every node announces its degree to
	// each neighbour before the first round.
	for i := 0; i < n; i++ {
		e.msgs.Setup += cfg.Graph.Degree(i)
	}
	return e, nil
}

// NewVectorEngineSubjects builds a restricted-subject engine: the column
// dimension is len(subjects) and slot s stands for the global subject id
// subjects[s]. y0 and g0 are flat row-major N×len(subjects) blocks (node i's
// slot s lives at i*len(subjects)+s). The sharded epoch pipeline runs one
// m=1 engine per subject, so each campaign's result depends only on its own
// seed and initial column.
//
// Restricted engines charge no automatic degree-exchange setup — concurrent
// campaigns share one exchange, which the caller books once via ChargeSetup
// — and reject count gossip and the churn operations that change N.
func NewVectorEngineSubjects(cfg Config, subjects []int, y0, g0 []float64) (*VectorEngine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	m := len(subjects)
	if m == 0 {
		return nil, fmt.Errorf("gossip: empty subject set")
	}
	seen := make(map[int]bool, m)
	for _, j := range subjects {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("gossip: subject %d out of range [0,%d)", j, n)
		}
		if seen[j] {
			return nil, fmt.Errorf("gossip: duplicate subject %d", j)
		}
		seen[j] = true
	}
	if len(y0) != n*m || len(g0) != n*m {
		return nil, fmt.Errorf("gossip: initial blocks have %d/%d values, want %d", len(y0), len(g0), n*m)
	}
	e := newVectorEngineBuffers(cfg, append([]int(nil), subjects...))
	e.y = allocRect(n, m)
	e.g = allocRect(n, m)
	copyFlat(e.y, y0, m)
	copyFlat(e.g, g0, m)
	if err := e.initState(); err != nil {
		return nil, err
	}
	return e, nil
}

// newVectorEngineBuffers allocates every fixed-shape buffer of an engine over
// cfg.Graph with the given slot mapping (nil = identity, m = N). The mass
// matrices y and g are left for the caller to attach.
func newVectorEngineBuffers(cfg Config, subjects []int) *VectorEngine {
	n := cfg.Graph.N()
	m := n
	if subjects != nil {
		m = len(subjects)
	}
	e := &VectorEngine{
		cfg:          cfg,
		n:            n,
		m:            m,
		subs:         subjects,
		ks:           cfg.fanouts(),
		prevR:        allocRect(n, m),
		selfConv:     make([]bool, n),
		stopped:      make([]bool, n),
		down:         make([]bool, n),
		baseY:        make([]float64, m),
		baseG:        make([]float64, m),
		injY:         make([]float64, m),
		injG:         make([]float64, m),
		lostY:        make([]float64, m),
		lostG:        make([]float64, m),
		nextY:        allocRect(n, m),
		nextG:        allocRect(n, m),
		extRecv:      make([]int, n),
		incoming:     make([][]push, n),
		l1:           make([]float64, n),
		hasWeight:    make([]bool, n),
		recomputed:   make([]bool, n),
		active:       make([]bool, m),
		wg:           new(sync.WaitGroup),
		perPushUnits: 1,
	}
	// A node can receive at most one share from each neighbour, one self
	// share, and k_i loss-returned shares per step, so per-destination push
	// lists can be sized once, up front — Step never grows them.
	for i := 0; i < n; i++ {
		e.incoming[i] = make([]push, 0, 1+e.ks[i]+cfg.Graph.Degree(i))
	}
	return e
}

// initState derives every run-state invariant from the current y/g masses
// and cfg.Seed: the randomness stream, active-subject index, churn mass
// ledgers, previous ratios, convergence flags and the sparse-mode buffer
// pinning. It is shared by the constructors and Reset, so a Reset engine is
// bit-for-bit indistinguishable from a freshly constructed one.
func (e *VectorEngine) initState() error {
	e.src = rng.New(e.cfg.Seed)
	e.steps = 0
	e.msgs = Messages{}
	e.linkFault = nil
	e.activeIdx = e.activeIdx[:0]
	for s := 0; s < e.m; s++ {
		e.active[s] = false
		e.baseY[s], e.baseG[s] = 0, 0
		e.injY[s], e.injG[s] = 0, 0
		e.lostY[s], e.lostG[s] = 0, 0
	}
	for i := 0; i < e.n; i++ {
		e.selfConv[i] = false
		e.stopped[i] = false
		e.down[i] = false
		e.recomputed[i] = false
		e.extRecv[i] = 0
		e.l1[i] = 0
		for s := 0; s < e.m; s++ {
			if e.g[i][s] < 0 {
				return fmt.Errorf("gossip: negative initial weight g0[%d][%d]", i, s)
			}
			if e.g[i][s] > 0 {
				e.active[s] = true
			}
			e.baseY[s] += e.y[i][s]
			e.baseG[s] += e.g[i][s]
			e.prevR[i][s] = ratioOr(e.y[i][s], e.g[i][s])
		}
	}
	for s, a := range e.active {
		if a {
			e.activeIdx = append(e.activeIdx, s)
		}
	}
	e.denseActive = len(e.activeIdx) == e.m
	// Sparse mode never rewrites inactive columns, so pin them to their
	// initial values in both buffers: rows then carry identical bits for
	// those subjects whichever buffer is current, and the MassY invariant
	// holds for unrated subjects too (their mass simply never moves). The
	// weight pin writes zeros by definition of "inactive", which also scrubs
	// any stale values a Reset inherits from the previous run.
	if !e.denseActive {
		for i := 0; i < e.n; i++ {
			for s, a := range e.active {
				if !a {
					e.nextY[i][s] = e.y[i][s]
					e.nextG[i][s] = e.g[i][s]
				}
			}
		}
	}
	// Seed hasWeight so rows that stay untouched from step one (isolated
	// nodes) report the same flag the full scan would compute.
	for i := 0; i < e.n; i++ {
		hw := true
		for _, s := range e.activeIdx {
			if e.g[i][s] == 0 {
				hw = false
				break
			}
		}
		e.hasWeight[i] = hw
	}
	return nil
}

// Reset rewinds the engine to the state a fresh construction over (seed, y0,
// g0) would produce, reusing every buffer: after Reset the engine is
// bit-for-bit indistinguishable from a new engine of the same shape. The
// shard fold path leans on this to run thousands of per-subject campaigns
// without re-allocating the Θ(N·k) routing scratch each time. y0 and g0 are
// flat row-major N×m blocks as in NewVectorEngineSubjects; engines with
// count gossip enabled cannot be Reset.
func (e *VectorEngine) Reset(seed uint64, y0, g0 []float64) error {
	if e.count != nil {
		return fmt.Errorf("gossip: Reset with count gossip enabled")
	}
	if len(y0) != e.n*e.m || len(g0) != e.n*e.m {
		return fmt.Errorf("gossip: reset blocks have %d/%d values, want %d", len(y0), len(g0), e.n*e.m)
	}
	e.cfg.Seed = seed
	e.perPushUnits = 1
	copyFlat(e.y, y0, e.m)
	copyFlat(e.g, g0, e.m)
	return e.initState()
}

// deepCopy copies an N×N matrix into a single contiguous backing block and
// returns its row views. Ragged input rows are reported as an error, matching
// the validation style of the rest of the constructor.
func deepCopy(m [][]float64, n int) ([][]float64, error) {
	out := alloc(n)
	for i := range out {
		if len(m[i]) != n {
			return nil, fmt.Errorf("gossip: row %d has length %d, want %d", i, len(m[i]), n)
		}
		copy(out[i], m[i])
	}
	return out, nil
}

// alloc returns an N×N zero matrix: one contiguous block, rows as views.
func alloc(n int) [][]float64 { return allocRect(n, n) }

// allocRect returns an n×m zero matrix: one contiguous block, rows as views.
func allocRect(n, m int) [][]float64 {
	buf := make([]float64, n*m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = buf[i*m : (i+1)*m : (i+1)*m]
	}
	return out
}

// copyFlat copies a flat row-major n×m block into per-row views.
func copyFlat(dst [][]float64, src []float64, m int) {
	for i, row := range dst {
		copy(row, src[i*m:(i+1)*m])
	}
}

func ratioOr(y, g float64) float64 {
	if g == 0 {
		return Sentinel
	}
	return y / g
}

// EnableCountGossip attaches the rater-count component (N×N row per node).
// It is a full-subject facility; restricted-subject engines reject it.
func (e *VectorEngine) EnableCountGossip(count0 [][]float64) error {
	if e.subs != nil {
		return fmt.Errorf("gossip: count gossip requires the full subject set")
	}
	if len(count0) != e.n {
		return fmt.Errorf("gossip: count matrix has %d rows, want %d", len(count0), e.n)
	}
	if e.steps > 0 {
		return fmt.Errorf("gossip: EnableCountGossip after stepping")
	}
	count, err := deepCopy(count0, e.n)
	if err != nil {
		return err
	}
	e.count = count
	e.nextC = alloc(e.n)
	if !e.denseActive {
		for i := 0; i < e.n; i++ {
			for j, a := range e.active {
				if !a {
					e.nextC[i][j] = e.count[i][j]
				}
			}
		}
	}
	return nil
}

// CountVectorMessages makes the message tally charge N units per vector push
// instead of 1, reflecting the paper's note that communication complexity of
// the vector variants grows proportionally to the vector size.
func (e *VectorEngine) CountVectorMessages() { e.perPushUnits = e.n }

// ChargeSetup adds extra setup messages to the tally.
func (e *VectorEngine) ChargeSetup(n int) { e.msgs.Setup += n }

// Messages returns the transmission tally accumulated so far.
func (e *VectorEngine) Messages() Messages { return e.msgs }

// MassY returns Σ_i y_i[j] for subject j (invariant across steps).
func (e *VectorEngine) MassY(j int) float64 {
	total := 0.0
	for i := 0; i < e.n; i++ {
		total += e.y[i][j]
	}
	return total
}

// MassG returns Σ_i g_i[j] for subject j (invariant across steps).
func (e *VectorEngine) MassG(j int) float64 {
	total := 0.0
	for i := 0; i < e.n; i++ {
		total += e.g[i][j]
	}
	return total
}

// push is one routed share: the destination accumulates f times the source's
// current vectors.
type push struct {
	src int
	f   float64
}

// Step executes one synchronous vector gossip step; it returns true while
// some node is still running.
//
// The step has three phases. Routing (sequential, so the random choices are
// identical regardless of parallelism) decides which shares go where.
// Accumulation — the Θ(N²) part — applies the routed shares per destination
// and is split across cfg.Workers goroutines; every destination sums its
// incoming list in routing order, so the result is bit-identical for any
// worker count. Flags (sequential) runs the convergence protocol.
func (e *VectorEngine) Step() bool {
	g := e.cfg.Graph

	// Phase 1: routing.
	for i := range e.incoming {
		e.incoming[i] = e.incoming[i][:0]
		e.extRecv[i] = 0
	}
	for i := 0; i < e.n; i++ {
		if e.down[i] || e.stopped[i] || g.Degree(i) == 0 {
			e.incoming[i] = append(e.incoming[i], push{src: i, f: 1})
			continue
		}
		e.msgs.ActiveNodeSteps++
		k := e.ks[i]
		f := 1 / float64(k+1)
		e.incoming[i] = append(e.incoming[i], push{src: i, f: f}) // self share
		e.nbrs = g.AppendRandomNeighbors(e.nbrs[:0], i, k, e.src)
		for _, t := range e.nbrs {
			e.msgs.Gossip += e.perPushUnits
			// Loss draw first, so churn-free runs consume the exact stream
			// the seed implies; pushes to departed nodes or across faulted
			// links fail like lost packets (no ack, sender re-absorbs).
			dropped := e.cfg.LossProb > 0 && e.src.Bool(e.cfg.LossProb)
			if !dropped && (e.down[t] || (e.linkFault != nil && e.linkFault(i, t))) {
				dropped = true
			}
			if dropped {
				e.msgs.Lost += e.perPushUnits
				e.incoming[i] = append(e.incoming[i], push{src: i, f: f})
				continue
			}
			e.incoming[t] = append(e.incoming[t], push{src: i, f: f})
			e.extRecv[t]++
		}
	}

	// Phase 2: accumulation (parallel over destinations).
	e.steps++
	e.parallelAccumulate()
	for i := 0; i < e.n; i++ {
		if !e.recomputed[i] {
			continue
		}
		e.y[i], e.nextY[i] = e.nextY[i], e.y[i]
		e.g[i], e.nextG[i] = e.nextG[i], e.g[i]
		if e.nextC != nil {
			e.count[i], e.nextC[i] = e.nextC[i], e.count[i]
		}
	}

	// Phase 3: convergence flags (same revocable protocol as the scalar
	// engine; see Engine.Step). The L1 budget scales with the slot count m —
	// the paper's rule (7) for full vectors, the scalar engine's per-subject
	// ξ for the m=1 campaigns of the sharded epoch path.
	nxi := float64(e.m) * e.cfg.Epsilon
	for i := 0; i < e.n; i++ {
		heard := e.extRecv[i] >= 1 || e.selfConv[i] || e.stopped[i]
		conv := !e.down[i] && e.hasWeight[i] && heard && e.l1[i] <= nxi && e.steps >= e.cfg.MinSteps
		if conv != e.selfConv[i] {
			e.selfConv[i] = conv
			e.msgs.Announce += g.Degree(i)
		}
	}
	running := false
	for i := 0; i < e.n; i++ {
		e.stopped[i] = (e.selfConv[i] || g.Degree(i) == 0 || e.down[i]) && allConverged(e.selfConv, e.down, g.Neighbors(i))
		if !e.stopped[i] {
			running = true
		}
	}
	return running
}

// accumulate rebuilds destination i's next-step row from its routed shares
// and runs the ratio/L1 convergence scan over the active subjects, all in one
// sweep: the first share initialises the row (no zeroing pass), middle shares
// accumulate, and the scan rides the final share. With counts enabled the
// three masses accumulate together per share and the scan runs as its own
// pass (counts take no part in convergence).
func (e *VectorEngine) accumulate(i int) {
	pushes := e.incoming[i]
	if len(pushes) == 1 && pushes[0].src == i && pushes[0].f == 1 {
		// Untouched row: the node kept its entire mass and received
		// nothing, so y/g/count are bit-identical to last step, every
		// ratio matches prevR exactly, and the L1 delta is exactly the
		// zero a full recompute would produce. hasWeight keeps its last
		// computed value for the same reason.
		e.l1[i] = 0
		e.recomputed[i] = false
		return
	}
	e.recomputed[i] = true
	yi, gi := e.nextY[i], e.nextG[i]
	pr := e.prevR[i]
	last := len(pushes) - 1
	if e.nextC != nil {
		ci := e.nextC[i]
		p := pushes[0]
		if e.denseActive {
			mulRow3(yi, gi, ci, e.y[p.src], e.g[p.src], e.count[p.src], p.f)
			for _, p := range pushes[1:] {
				mulAddRow3(yi, gi, ci, e.y[p.src], e.g[p.src], e.count[p.src], p.f)
			}
			e.l1[i], e.hasWeight[i] = scanRow(yi, gi, pr)
		} else {
			idx := e.activeIdx
			mulAt3(yi, gi, ci, e.y[p.src], e.g[p.src], e.count[p.src], p.f, idx)
			for _, p := range pushes[1:] {
				mulAddAt3(yi, gi, ci, e.y[p.src], e.g[p.src], e.count[p.src], p.f, idx)
			}
			e.l1[i], e.hasWeight[i] = scanAt(yi, gi, pr, idx)
		}
		return
	}
	if e.denseActive {
		p := pushes[0]
		switch last {
		case 0:
			e.l1[i], e.hasWeight[i] = mulScanRow(yi, gi, e.y[p.src], e.g[p.src], p.f, pr)
		case 1:
			// Self share plus exactly one received share — the most
			// common shape — collapses to a single sweep.
			q := pushes[1]
			e.l1[i], e.hasWeight[i] = mul2ScanRow(yi, gi,
				e.y[p.src], e.g[p.src], p.f, e.y[q.src], e.g[q.src], q.f, pr)
		default:
			mulRow2(yi, gi, e.y[p.src], e.g[p.src], p.f)
			for _, p := range pushes[1:last] {
				mulAddRow2(yi, gi, e.y[p.src], e.g[p.src], p.f)
			}
			p = pushes[last]
			e.l1[i], e.hasWeight[i] = mulAddScanRow(yi, gi, e.y[p.src], e.g[p.src], p.f, pr)
		}
		return
	}
	idx := e.activeIdx
	p := pushes[0]
	switch last {
	case 0:
		e.l1[i], e.hasWeight[i] = mulScanAt(yi, gi, e.y[p.src], e.g[p.src], p.f, pr, idx)
	case 1:
		q := pushes[1]
		e.l1[i], e.hasWeight[i] = mul2ScanAt(yi, gi,
			e.y[p.src], e.g[p.src], p.f, e.y[q.src], e.g[q.src], q.f, pr, idx)
	default:
		mulAt2(yi, gi, e.y[p.src], e.g[p.src], p.f, idx)
		for _, p := range pushes[1:last] {
			mulAddAt2(yi, gi, e.y[p.src], e.g[p.src], p.f, idx)
		}
		p = pushes[last]
		e.l1[i], e.hasWeight[i] = mulAddScanAt(yi, gi, e.y[p.src], e.g[p.src], p.f, pr, idx)
	}
}

// parallelAccumulate fans accumulate(i) out across the configured worker
// count. Ranges are spawned as plain method goroutines (no closures), so the
// parallel path stays allocation-free once the runtime has warmed its
// goroutine pool.
func (e *VectorEngine) parallelAccumulate() {
	workers := e.cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || e.n < 2*workers {
		e.accumulateRange(0, e.n)
		return
	}
	chunk := (e.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.n {
			hi = e.n
		}
		if lo >= hi {
			break
		}
		e.wg.Add(1)
		go e.accumulateRangeDone(lo, hi)
	}
	e.wg.Wait()
}

func (e *VectorEngine) accumulateRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.accumulate(i)
	}
}

func (e *VectorEngine) accumulateRangeDone(lo, hi int) {
	defer e.wg.Done()
	e.accumulateRange(lo, hi)
}

// RunInto drives Step to completion like Run but writes only slot s's final
// estimates into dst (length N), skipping Run's full result-matrix assembly;
// together with Reset this keeps a reused per-subject campaign engine free
// of steady-state allocations. It reports the step count and whether the
// run converged within the step budget.
func (e *VectorEngine) RunInto(dst []float64, s int) (steps int, converged bool) {
	budget := e.cfg.maxSteps()
	running := true
	for running && e.steps < budget {
		running = e.Step()
	}
	e.EstimateColumn(dst, s)
	return e.steps, !running
}

// Run drives Step to completion.
func (e *VectorEngine) Run() VectorResult {
	budget := e.cfg.maxSteps()
	running := true
	for running && e.steps < budget {
		running = e.Step()
	}
	res := VectorResult{
		Steps:     e.steps,
		Converged: !running,
		Estimates: allocRect(e.n, e.m),
		Messages:  e.msgs,
	}
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.m; j++ {
			if e.g[i][j] > 0 {
				res.Estimates[i][j] = e.y[i][j] / e.g[i][j]
			}
		}
	}
	if e.count != nil {
		res.Counts = allocRect(e.n, e.m)
		for i := 0; i < e.n; i++ {
			for j := 0; j < e.m; j++ {
				if e.g[i][j] > 0 {
					res.Counts[i][j] = e.count[i][j] / e.g[i][j]
				}
			}
		}
	}
	return res
}

// Steps returns the number of gossip steps executed so far.
func (e *VectorEngine) Steps() int { return e.steps }

// M returns the subject-slot count (== N unless restricted).
func (e *VectorEngine) M() int { return e.m }

// Subjects returns the slot→subject mapping of a restricted engine, or nil
// for full-subject engines (where slot s is subject s). The caller must not
// mutate it.
func (e *VectorEngine) Subjects() []int { return e.subs }

// EstimateColumn writes every node's current estimate for slot s into dst
// (length N), zero where the node's weight slot is empty. It is the
// allocation-free alternative to Run's full Estimates matrix for the
// per-subject campaigns of the shard fold path.
func (e *VectorEngine) EstimateColumn(dst []float64, s int) {
	for i := 0; i < e.n; i++ {
		if e.g[i][s] > 0 {
			dst[i] = e.y[i][s] / e.g[i][s]
		} else {
			dst[i] = 0
		}
	}
}
