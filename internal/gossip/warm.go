package gossip

// CampaignState is the portable end-of-run state of one per-subject push-sum
// campaign: everything a later epoch needs to restart the campaign from its
// converged point instead of from scratch. The shard snapshots persist one
// per computed subject, and core.GlobalSubjects seeds restarted campaigns
// from them (injecting the feedback deltas as mass corrections), falling
// back to a cold start whenever the recorded state no longer fits the
// subject's current rater set or campaign mode.
//
// The state is self-describing: Raters/PrevVals freeze the trust column the
// recording run folded, so a restart can both validate applicability (the
// rater set must still be compatible) and compute the exact per-rater mass
// delta without consulting any other source.
type CampaignState struct {
	// Sparse marks state recorded by a restricted-overlay campaign: Y and G
	// then hold one mass per overlay node (== per rater, in ascending rater
	// order). Dense state holds one mass per graph node.
	Sparse bool
	// Raters is the ascending rater-id set the recording run folded;
	// PrevVals holds the trust values it saw, aligned with Raters.
	Raters   []int
	PrevVals []float64
	// Y and G are the per-node value/weight masses at the end of the
	// recording run (length N for dense campaigns, len(Raters) for sparse).
	Y, G []float64
	// Steps is the recording run's step count — the scheduler's cost
	// estimate for campaigns that must restart cold.
	Steps int
	// Converged records whether the recording run actually converged. Only
	// converged state may answer an unchanged campaign without re-running the
	// engine — state frozen by a step-budget abort must keep recomputing.
	Converged bool
}

// ExportState copies slot s's current masses into ys and gs, one entry per
// node (so both must have length N — the overlay size for restricted-overlay
// engines). Together with CampaignState this is the warm-start capture path:
// the caller snapshots a converged campaign's masses without touching the
// engine's internals.
func (e *VectorEngine) ExportState(ys, gs []float64, s int) {
	for i := 0; i < e.n; i++ {
		ys[i] = e.y[i][s]
		gs[i] = e.g[i][s]
	}
}

// SetMinSteps adjusts the convergence floor between runs: the next run will
// not honour convergence before ms steps. Warm-started campaigns use a small
// floor so a freshly injected delta gets at least a few mixing rounds before
// any node may announce (the injected node's own ratio is invariant under
// pushing, so without a floor it could announce on step one); cold campaigns
// run with the configured default. Calling this mid-run would change the
// convergence rule under the protocol's feet — callers set it right after
// Reset, before the first Step.
func (e *VectorEngine) SetMinSteps(ms int) {
	if ms < 0 {
		ms = 0
	}
	e.cfg.MinSteps = ms
}
