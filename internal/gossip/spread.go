package gossip

import (
	"fmt"
	"math"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// SpreadProtocol selects a rumor-spreading rule for the Theorem 5.1
// experiments: how many rounds until a piece of information held by one node
// reaches everybody.
type SpreadProtocol int

const (
	// SpreadPush: every informed node pushes the rumor to one random
	// neighbour per round. On PA graphs this stalls at power nodes
	// (Chierichetti et al.), which motivates the paper's protocol.
	SpreadPush SpreadProtocol = iota
	// SpreadPull: every uninformed node pulls from one random neighbour.
	SpreadPull
	// SpreadPushPull: both in the same round — the O((log N)^2) classic.
	SpreadPushPull
	// SpreadDifferentialPush: informed node i pushes to k_i random
	// neighbours, k_i = round(deg_i / avgNbrDeg_i) — the paper's rule,
	// proved to match push–pull's bound without pulls.
	SpreadDifferentialPush
)

// String implements fmt.Stringer.
func (p SpreadProtocol) String() string {
	switch p {
	case SpreadPush:
		return "push"
	case SpreadPull:
		return "pull"
	case SpreadPushPull:
		return "push-pull"
	case SpreadDifferentialPush:
		return "differential-push"
	default:
		return fmt.Sprintf("spread(%d)", int(p))
	}
}

// SpreadResult reports a rumor-spreading run.
type SpreadResult struct {
	// Rounds until every node was informed (== RoundLimit+ if not all).
	Rounds int
	// Informed is the final number of informed nodes.
	Informed int
	// All reports whether the rumor reached every node.
	All bool
	// Messages is the number of transmissions (pushes + pull requests).
	Messages int
}

// Spread simulates rumor spreading from source under the given protocol.
// roundLimit bounds the simulation; 0 selects 16·(log2 N)²+16.
func Spread(g *graph.Graph, source int, p SpreadProtocol, seed uint64, roundLimit int) (SpreadResult, error) {
	n := g.N()
	if n == 0 {
		return SpreadResult{}, fmt.Errorf("gossip: empty graph")
	}
	if source < 0 || source >= n {
		return SpreadResult{}, fmt.Errorf("gossip: source %d out of range", source)
	}
	if roundLimit <= 0 {
		l := math.Log2(float64(n) + 1)
		roundLimit = 16*int(l*l) + 16
	}
	src := rng.New(seed)
	informed := make([]bool, n)
	informed[source] = true
	numInformed := 1
	var ks []int
	if p == SpreadDifferentialPush {
		ks = g.DifferentialKs()
	}

	res := SpreadResult{}
	newly := make([]int, 0, n)
	nbrs := make([]int, 0, 16) // reused fan-out scratch
	for round := 1; round <= roundLimit && numInformed < n; round++ {
		newly = newly[:0]
		switch p {
		case SpreadPush, SpreadDifferentialPush:
			for u := 0; u < n; u++ {
				if !informed[u] || g.Degree(u) == 0 {
					continue
				}
				k := 1
				if p == SpreadDifferentialPush {
					k = ks[u]
				}
				nbrs = g.AppendRandomNeighbors(nbrs[:0], u, k, src)
				for _, v := range nbrs {
					res.Messages++
					if !informed[v] {
						newly = append(newly, v)
					}
				}
			}
		case SpreadPull:
			for u := 0; u < n; u++ {
				if informed[u] || g.Degree(u) == 0 {
					continue
				}
				res.Messages++ // pull request
				if v := g.RandomNeighbor(u, src); informed[v] {
					newly = append(newly, u)
				}
			}
		case SpreadPushPull:
			for u := 0; u < n; u++ {
				if g.Degree(u) == 0 {
					continue
				}
				res.Messages++
				v := g.RandomNeighbor(u, src)
				if informed[u] && !informed[v] {
					newly = append(newly, v)
				} else if !informed[u] && informed[v] {
					newly = append(newly, u)
				}
			}
		default:
			return SpreadResult{}, fmt.Errorf("gossip: unknown spread protocol %v", p)
		}
		for _, v := range newly {
			if !informed[v] {
				informed[v] = true
				numInformed++
			}
		}
		res.Rounds = round
	}
	res.Informed = numInformed
	res.All = numInformed == n
	return res, nil
}
