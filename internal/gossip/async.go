package gossip

import (
	"fmt"
	"math"

	"diffgossip/internal/rng"
)

// AsyncResult reports an asynchronous gossip run.
type AsyncResult struct {
	// Rounds is the number of round-equivalents (N activations each)
	// until every estimate was within Epsilon of the true average.
	Rounds int
	// Activations is the total number of node activations.
	Activations int
	// Converged is false if the activation budget ran out first.
	Converged bool
	// Estimates holds the final per-node ratios.
	Estimates []float64
	// MaxError is the final max |estimate − true average|.
	MaxError float64
}

// AsyncAverage runs the asynchronous form of differential push-sum: instead
// of synchronous rounds, nodes activate one at a time in uniform random
// order, each activation performing that node's split-and-push. This is how
// the deployed agent (internal/agent) actually behaves — ticks are not
// synchronised across machines — so the ablation quantifies what the
// synchronous-round idealisation is worth.
//
// Because per-node convergence detection is what the *protocol* does, while
// this harness exists to measure convergence *speed*, the stopping rule here
// is the measurement oracle: the run ends when every node's ratio is within
// cfg.Epsilon of the true average (which the harness knows from mass
// conservation). One round-equivalent = N activations.
func AsyncAverage(cfg Config, xs []float64) (AsyncResult, error) {
	if err := cfg.validate(); err != nil {
		return AsyncResult{}, err
	}
	n := cfg.Graph.N()
	if len(xs) != n {
		return AsyncResult{}, fmt.Errorf("gossip: values length %d, want %d", len(xs), n)
	}
	src := rng.New(cfg.Seed)
	ks := cfg.fanouts()

	y := append([]float64(nil), xs...)
	g := make([]float64, n)
	truth := 0.0
	for i := range g {
		g[i] = 1
		truth += xs[i]
	}
	truth /= float64(n)

	maxRounds := cfg.maxSteps() * 4 // async needs more activations than sync steps
	res := AsyncResult{}
	nbrs := make([]int, 0, 16) // reused fan-out scratch
	for round := 1; round <= maxRounds; round++ {
		for a := 0; a < n; a++ {
			i := src.Intn(n)
			res.Activations++
			deg := cfg.Graph.Degree(i)
			if deg == 0 {
				continue
			}
			k := ks[i]
			f := 1 / float64(k+1)
			shareY, shareG := y[i]*f, g[i]*f
			y[i], g[i] = shareY, shareG
			nbrs = cfg.Graph.AppendRandomNeighbors(nbrs[:0], i, k, src)
			for _, t := range nbrs {
				if cfg.LossProb > 0 && src.Bool(cfg.LossProb) {
					y[i] += shareY
					g[i] += shareG
					continue
				}
				y[t] += shareY
				g[t] += shareG
			}
		}
		res.Rounds = round
		if maxErr := asyncMaxError(y, g, truth); maxErr <= cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Estimates = make([]float64, n)
	for i := range res.Estimates {
		if g[i] > 0 {
			res.Estimates[i] = y[i] / g[i]
		}
	}
	res.MaxError = asyncMaxError(y, g, truth)
	return res, nil
}

func asyncMaxError(y, g []float64, truth float64) float64 {
	worst := 0.0
	for i := range y {
		if g[i] == 0 {
			return math.Inf(1)
		}
		if d := math.Abs(y[i]/g[i] - truth); d > worst {
			worst = d
		}
	}
	return worst
}
