package gossip

import (
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// BenchmarkVectorStep measures the steady-state per-step cost of the vector
// engine on the dense all-subjects workload (every node rates every subject),
// the Fig3/Table2-class shape at sizes the paper's collusion figures use.
func BenchmarkVectorStep(b *testing.B) {
	for _, n := range []int{300, 1000, 2000} {
		b.Run(byN(n), func(b *testing.B) {
			g := graph.MustPA(n, 2, 170)
			y0, g0 := buildVectorInputs(n, 171)
			e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 172, MinSteps: 1 << 30}, y0, g0)
			if err != nil {
				b.Fatal(err)
			}
			e.Step() // warm scratch buffers before measuring steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkVectorStepSparse measures the sparse-trust shape: only a small
// fraction of subjects carry any weight mass, so an active-subject index can
// skip the unrated columns.
func BenchmarkVectorStepSparse(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		b.Run(byN(n), func(b *testing.B) {
			g := graph.MustPA(n, 2, 180)
			src := rng.New(181)
			y0, g0 := alloc(n), alloc(n)
			// ~5% of subjects rated, by everybody (dense columns, sparse
			// column set).
			for j := 0; j < n; j += 20 {
				for i := 0; i < n; i++ {
					y0[i][j] = src.Float64()
					g0[i][j] = 1
				}
			}
			e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 182, MinSteps: 1 << 30}, y0, g0)
			if err != nil {
				b.Fatal(err)
			}
			e.Step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkVectorStepCounts is the Algorithm-2 shape: the count component
// rides along with every push.
func BenchmarkVectorStepCounts(b *testing.B) {
	n := 1000
	g := graph.MustPA(n, 2, 190)
	y0, g0 := buildVectorInputs(n, 191)
	c0 := alloc(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c0[i][j] = 1
		}
	}
	e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 192, MinSteps: 1 << 30}, y0, g0)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.EnableCountGossip(c0); err != nil {
		b.Fatal(err)
	}
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkScalarStep isolates the scalar engine's per-step cost at the
// paper's large-N sweep sizes — the Fig3/Table2 hot path.
func BenchmarkScalarStep(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(byN(n), func(b *testing.B) {
			g := graph.MustPA(n, 2, 200)
			src := rng.New(201)
			xs := make([]float64, n)
			g0 := make([]float64, n)
			for i := range xs {
				xs[i] = src.Float64()
				g0[i] = 1
			}
			e, err := NewEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 202, MinSteps: 1 << 30}, xs, g0)
			if err != nil {
				b.Fatal(err)
			}
			e.Step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

func byN(n int) string {
	if n >= 1000 {
		return "N=" + itoa(n/1000) + "k"
	}
	return "N=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
