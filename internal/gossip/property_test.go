package gossip

import (
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// The property tests drive the engines through randomized op sequences —
// steps interleaved with crashes, graceful leaves, whitewashing rejoins,
// preferential-attachment joins, loss-probability changes and link-fault
// toggles — and check the push-sum conservation invariant after every
// single round: total mass equals base + injected − lost (the churn
// ledgers), for the value, weight and (when enabled) rater-count masses.
// Every trial derives from a logged seed, so a failure reproduces exactly.

// scalarOps applies one randomized churn op to e, returning false if the op
// was a no-op this round.
func scalarOps(t *testing.T, e *Engine, g *graph.Graph, src *rng.Source, seed uint64) {
	t.Helper()
	pickAliveNode := func() int {
		alive := make([]int, 0, e.N())
		for i := 0; i < e.N(); i++ {
			if !e.Down(i) {
				alive = append(alive, i)
			}
		}
		if len(alive) < 2 {
			return -1
		}
		return alive[src.Intn(len(alive))]
	}
	pickDownNode := func() int {
		downs := make([]int, 0, 8)
		for i := 0; i < e.N(); i++ {
			if e.Down(i) {
				downs = append(downs, i)
			}
		}
		if len(downs) == 0 {
			return -1
		}
		return downs[src.Intn(len(downs))]
	}
	switch src.Intn(8) {
	case 0: // crash
		if i := pickAliveNode(); i >= 0 {
			if err := e.Crash(i); err != nil {
				t.Fatalf("seed=%d crash(%d): %v", seed, i, err)
			}
		}
	case 1: // graceful leave
		if i := pickAliveNode(); i >= 0 {
			if err := e.Leave(i); err != nil {
				t.Fatalf("seed=%d leave(%d): %v", seed, i, err)
			}
		}
	case 2: // whitewash rejoin
		if i := pickDownNode(); i >= 0 {
			if err := e.Rejoin(i, src.Float64(), 1); err != nil {
				t.Fatalf("seed=%d rejoin(%d): %v", seed, i, err)
			}
		}
	case 3: // preferential-attachment join
		id := graph.AttachPreferential(g, 2, src, func(v int) bool { return !e.Down(v) })
		if _, err := e.AddNode(src.Float64(), 1); err != nil {
			t.Fatalf("seed=%d join(%d): %v", seed, id, err)
		}
		e.RefreshFanouts()
	case 4: // loss schedule change
		if err := e.SetLossProb(0.4 * src.Float64()); err != nil {
			t.Fatalf("seed=%d setloss: %v", seed, err)
		}
	case 5: // link-fault toggle (random even/odd partition)
		if src.Bool(0.5) {
			e.SetLinkFault(func(from, to int) bool { return from%2 != to%2 })
		} else {
			e.SetLinkFault(nil)
		}
	case 6: // collusion-style override
		if i := pickAliveNode(); i >= 0 {
			p := e.Held(i)
			if err := e.Override(i, p.G, p.G); err != nil {
				t.Fatalf("seed=%d override(%d): %v", seed, i, err)
			}
		}
	default: // plain round, no churn
	}
}

func TestEngineMassConservationProperty(t *testing.T) {
	trials := 25
	rounds := 60
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(0xA5A5 + 977*trial)
		src := rng.New(seed)
		n := 20 + src.Intn(60)
		g := graph.MustPA(n, 1+src.Intn(2), src.Uint64())
		y0 := make([]float64, n)
		g0 := make([]float64, n)
		count0 := make([]float64, n)
		for i := range y0 {
			y0[i] = src.Float64()
			g0[i] = 1
			if src.Bool(0.3) {
				count0[i] = 1
			}
		}
		e, err := NewEngine(Config{
			Graph:    g,
			Epsilon:  1e-4,
			Seed:     src.Uint64(),
			LossProb: 0.3 * src.Float64(),
		}, y0, g0)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		withCount := src.Bool(0.5)
		if withCount {
			if err := e.EnableCountGossip(count0); err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
		}
		for r := 0; r < rounds; r++ {
			scalarOps(t, e, g, src, seed)
			e.Step()
			base, inj, lost := e.MassLedger()
			if err := ledgerErr(e.MassY(), base.Y+inj.Y-lost.Y); err > 1e-9 {
				t.Fatalf("seed=%d round=%d: Y mass drift %v", seed, r, err)
			}
			if err := ledgerErr(e.MassG(), base.G+inj.G-lost.G); err > 1e-9 {
				t.Fatalf("seed=%d round=%d: G mass drift %v", seed, r, err)
			}
			if withCount {
				cb, ci, cl := e.CountLedger()
				if err := ledgerErr(e.MassCount(), cb+ci-cl); err > 1e-9 {
					t.Fatalf("seed=%d round=%d: count mass drift %v", seed, r, err)
				}
			}
		}
	}
}

func TestVectorEngineMassConservationProperty(t *testing.T) {
	trials := 12
	rounds := 30
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(0x5A5A + 1237*trial)
		src := rng.New(seed)
		n := 15 + src.Intn(20)
		g := graph.MustPA(n, 2, src.Uint64())
		y0 := make([][]float64, n)
		g0 := make([][]float64, n)
		stride := 1 + src.Intn(4) // exercises dense and sparse active sets
		for i := 0; i < n; i++ {
			y0[i] = make([]float64, n)
			g0[i] = make([]float64, n)
		}
		for j := 0; j < n; j += stride {
			for i := 0; i < n; i++ {
				y0[i][j] = src.Float64()
				g0[i][j] = 1
			}
		}
		e, err := NewVectorEngine(Config{
			Graph:    g,
			Epsilon:  1e-4,
			Seed:     src.Uint64(),
			LossProb: 0.3 * src.Float64(),
		}, y0, g0)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		check := func(r int) {
			for j := 0; j < e.N(); j++ {
				base, inj, lost := e.MassLedger(j)
				if err := ledgerErr(e.MassY(j), base.Y+inj.Y-lost.Y); err > 1e-9 {
					t.Fatalf("seed=%d round=%d subject=%d: Y mass drift %v", seed, r, j, err)
				}
				if err := ledgerErr(e.MassG(j), base.G+inj.G-lost.G); err > 1e-9 {
					t.Fatalf("seed=%d round=%d subject=%d: G mass drift %v", seed, r, j, err)
				}
			}
		}
		for r := 0; r < rounds; r++ {
			e.Step()
			check(r)
			switch src.Intn(6) {
			case 0:
				// crash a random alive node (keep at least two alive)
				alive := make([]int, 0, e.N())
				for i := 0; i < e.N(); i++ {
					if !e.Down(i) {
						alive = append(alive, i)
					}
				}
				if len(alive) > 2 {
					i := alive[src.Intn(len(alive))]
					if err := e.Crash(i); err != nil {
						t.Fatalf("seed=%d crash: %v", seed, err)
					}
				}
			case 1:
				alive := make([]int, 0, e.N())
				for i := 0; i < e.N(); i++ {
					if !e.Down(i) {
						alive = append(alive, i)
					}
				}
				if len(alive) > 2 {
					i := alive[src.Intn(len(alive))]
					if err := e.Leave(i); err != nil {
						t.Fatalf("seed=%d leave: %v", seed, err)
					}
				}
			case 2:
				for i := 0; i < e.N(); i++ {
					if e.Down(i) {
						y := make([]float64, e.N())
						gw := make([]float64, e.N())
						for _, nb := range g.Neighbors(i) {
							y[nb] = src.Float64()
							gw[nb] = 1
						}
						if err := e.Rejoin(i, y, gw); err != nil {
							t.Fatalf("seed=%d rejoin(%d): %v", seed, i, err)
						}
						break
					}
				}
			case 3:
				id := graph.AttachPreferential(g, 2, src, func(v int) bool { return !e.Down(v) })
				y := make([]float64, e.N()+1)
				gw := make([]float64, e.N()+1)
				for _, nb := range g.Neighbors(id) {
					y[nb] = src.Float64()
					gw[nb] = 1
				}
				if _, err := e.AddNode(y, gw); err != nil {
					t.Fatalf("seed=%d join: %v", seed, err)
				}
			case 4:
				if err := e.SetLossProb(0.4 * src.Float64()); err != nil {
					t.Fatalf("seed=%d setloss: %v", seed, err)
				}
			default:
			}
			check(r)
		}
	}
}
