package gossip

import (
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

func subjectsTestGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// column builds a single-subject initial column: k raters drawn from src.
func column(n int, src *rng.Source) (y0, g0 []float64) {
	y0 = make([]float64, n)
	g0 = make([]float64, n)
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			y0[i] = src.Float64()
			g0[i] = 1
		}
	}
	if g0[0] == 0 { // ensure at least one rater
		y0[0], g0[0] = 0.5, 1
	}
	return y0, g0
}

// TestResetMatchesFreshConstruction: an engine Reset to a new (seed, column)
// must replay bit-for-bit what a freshly constructed engine produces — the
// property that lets the shard fold path reuse one engine across thousands
// of per-subject campaigns.
func TestResetMatchesFreshConstruction(t *testing.T) {
	const n = 120
	g := subjectsTestGraph(t, n, 3)
	src := rng.New(17)
	cfg := Config{Graph: g, Epsilon: 1e-7, Seed: 1}

	// One long-lived engine, reused across campaigns via Reset.
	firstY, firstG := column(n, src)
	reused, err := NewVectorEngineSubjects(cfg, []int{0}, firstY, firstG)
	if err != nil {
		t.Fatal(err)
	}
	warm := make([]float64, n)
	reused.RunInto(warm, 0) // dirty every buffer before the comparison runs

	for campaign := 0; campaign < 5; campaign++ {
		seed := src.Uint64()
		y0, g0 := column(n, src)

		fresh, err := NewVectorEngineSubjects(Config{Graph: g, Epsilon: 1e-7, Seed: seed}, []int{campaign + 1}, y0, g0)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Reset(seed, y0, g0); err != nil {
			t.Fatal(err)
		}

		wantCol := make([]float64, n)
		gotCol := make([]float64, n)
		wantSteps, wantConv := fresh.RunInto(wantCol, 0)
		gotSteps, gotConv := reused.RunInto(gotCol, 0)
		if wantSteps != gotSteps || wantConv != gotConv {
			t.Fatalf("campaign %d: reset run (steps=%d conv=%v) != fresh (steps=%d conv=%v)",
				campaign, gotSteps, gotConv, wantSteps, wantConv)
		}
		if fresh.Messages() != reused.Messages() {
			t.Fatalf("campaign %d: message tallies diverged: %+v vs %+v", campaign, reused.Messages(), fresh.Messages())
		}
		for i := 0; i < n; i++ {
			if wantCol[i] != gotCol[i] {
				t.Fatalf("campaign %d node %d: reset %v != fresh %v", campaign, i, gotCol[i], wantCol[i])
			}
		}
	}
}

// TestSubjectsEngineRejects: the restricted-engine constructor validates its
// inputs and the full-subject facilities stay off limits.
func TestSubjectsEngineRejects(t *testing.T) {
	g := subjectsTestGraph(t, 10, 4)
	cfg := Config{Graph: g, Epsilon: 1e-4, Seed: 1}
	y0 := make([]float64, 10)
	g0 := make([]float64, 10)
	g0[2] = 1

	if _, err := NewVectorEngineSubjects(cfg, nil, nil, nil); err == nil {
		t.Error("empty subject set accepted")
	}
	if _, err := NewVectorEngineSubjects(cfg, []int{3, 3}, append(y0, y0...), append(g0, g0...)); err == nil {
		t.Error("duplicate subjects accepted")
	}
	if _, err := NewVectorEngineSubjects(cfg, []int{11}, y0, g0); err == nil {
		t.Error("out-of-range subject accepted")
	}
	if _, err := NewVectorEngineSubjects(cfg, []int{3}, y0[:4], g0[:4]); err == nil {
		t.Error("short init blocks accepted")
	}

	e, err := NewVectorEngineSubjects(cfg, []int{3}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(nil); err == nil {
		t.Error("count gossip on a restricted engine accepted")
	}
	if _, err := e.AddNode(nil, nil); err == nil {
		t.Error("AddNode on a restricted engine accepted")
	}
	if err := e.Reset(1, y0[:4], g0[:4]); err == nil {
		t.Error("short reset blocks accepted")
	}
	if e.M() != 1 || e.Subjects()[0] != 3 {
		t.Errorf("engine shape: m=%d subjects=%v", e.M(), e.Subjects())
	}
}

// TestRestrictedEngineSetupUncharged: restricted engines charge no automatic
// degree exchange (the caller books one shared exchange).
func TestRestrictedEngineSetupUncharged(t *testing.T) {
	g := subjectsTestGraph(t, 20, 5)
	y0 := make([]float64, 20)
	g0 := make([]float64, 20)
	y0[1], g0[1] = 0.4, 1
	e, err := NewVectorEngineSubjects(Config{Graph: g, Epsilon: 1e-4, Seed: 2}, []int{6}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Messages().Setup; s != 0 {
		t.Fatalf("restricted engine charged setup %d, want 0", s)
	}
}
