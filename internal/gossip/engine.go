package gossip

import (
	"fmt"

	"diffgossip/internal/rng"
)

// Engine runs synchronous scalar push-sum gossip: every node carries one
// (Y, G) pair about a single subject (e.g. the reputation of one node j), and
// optionally a Count mass used by Algorithm 2 to learn the number of raters.
//
// The step semantics follow the paper's Algorithm 1 exactly:
//
//  1. each active node splits its pair into k_i+1 equal shares, keeps one,
//     and pushes one to each of k_i random distinct neighbours;
//  2. every node sums the shares it received (its own share always arrives);
//  3. a node that heard from at least one other node and whose ratio moved
//     by at most ξ announces convergence to its neighbours (sticky);
//  4. a node stops pushing once it and all its neighbours have announced.
//
// The run ends when every node has stopped, or MaxSteps elapses.
type Engine struct {
	cfg   Config
	n     int
	ks    []int
	src   *rng.Source
	steps int

	cur   []Pair    // current pair per node
	count []float64 // optional third mass (rater count), nil if unused
	u     []float64 // previous-step ratio per node (Sentinel when G=0)

	selfConv []bool // node announced its own convergence
	stopped  []bool // node and all neighbours converged; no longer pushes
	down     []bool // node crashed or left; holds no mass, drops pushes

	// Mass accounting for churn scenarios (see MassLedger): base is the
	// construction-time total, injected accumulates mass added by
	// Rejoin/AddNode, lost accumulates mass destroyed by crashes and
	// heirless leaves. MassY() ≈ base.Y + injected.Y − lost.Y always.
	base, injected, lost                Pair
	baseCount, injectedCount, lostCount float64

	// linkFault, when set, drops any push for which it returns true (the
	// sender re-absorbs the share, as with probabilistic loss). It models
	// partitions and lossy links in churn scenarios.
	linkFault func(from, to int) bool

	// scratch buffers reused across steps; nbrs holds each node's sampled
	// fan-out targets so steady-state Step never touches the heap
	next      []Pair
	nextCount []float64
	extRecv   []int
	nbrs      []int

	msgs Messages
	// trace of the max per-node ratio change each step, for diagnostics
	lastDelta float64
}

// Result summarises a finished run.
type Result struct {
	// Steps is the number of gossip steps executed.
	Steps int
	// Converged reports whether every node stopped before MaxSteps.
	Converged bool
	// Estimates is each node's final ratio Y/G (0 where G is still 0).
	Estimates []float64
	// Counts is each node's Count/G estimate (nil when count gossip was
	// not enabled).
	Counts []float64
	// Messages is the full transmission tally.
	Messages Messages
}

// NewEngine validates cfg and initialises per-node state from the initial
// value and weight vectors: node i starts with pair (y0[i], g0[i]).
//
// The setup cost of the degree-exchange round (every node pushes its degree
// to all neighbours so that k_i can be computed) is charged to
// Messages.Setup.
func NewEngine(cfg Config, y0, g0 []float64) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	if len(y0) != n || len(g0) != n {
		return nil, fmt.Errorf("gossip: initial vectors have length %d/%d, want %d", len(y0), len(g0), n)
	}
	e := &Engine{
		cfg:      cfg,
		n:        n,
		ks:       cfg.fanouts(),
		src:      rng.New(cfg.Seed),
		cur:      make([]Pair, n),
		u:        make([]float64, n),
		selfConv: make([]bool, n),
		stopped:  make([]bool, n),
		down:     make([]bool, n),
		next:     make([]Pair, n),
		extRecv:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		if g0[i] < 0 {
			return nil, fmt.Errorf("gossip: negative initial weight g0[%d]=%v", i, g0[i])
		}
		e.cur[i] = Pair{y0[i], g0[i]}
		e.u[i] = e.cur[i].ratio()
		e.base.add(e.cur[i])
		// Degree exchange: one push per incident edge direction.
		e.msgs.Setup += cfg.Graph.Degree(i)
	}
	return e, nil
}

// EnableCountGossip attaches the third gossip component of Algorithm 2:
// count0[i] is 1 for raters of the subject and 0 otherwise. Must be called
// before Run.
func (e *Engine) EnableCountGossip(count0 []float64) error {
	if len(count0) != e.n {
		return fmt.Errorf("gossip: count vector length %d, want %d", len(count0), e.n)
	}
	if e.steps > 0 {
		return fmt.Errorf("gossip: EnableCountGossip after stepping")
	}
	e.count = append([]float64(nil), count0...)
	e.nextCount = make([]float64, e.n)
	for _, c := range count0 {
		e.baseCount += c
	}
	return nil
}

// ChargeSetup adds extra setup messages (e.g. Algorithm 2's direct-feedback
// pushes to neighbours) to the tally.
func (e *Engine) ChargeSetup(n int) { e.msgs.Setup += n }

// Steps returns the number of steps executed so far.
func (e *Engine) Steps() int { return e.steps }

// Messages returns the transmission tally accumulated so far.
func (e *Engine) Messages() Messages { return e.msgs }

// MassY returns the total Y mass in the network; it is invariant across
// steps (mass conservation, Proposition A.1).
func (e *Engine) MassY() float64 {
	total := 0.0
	for _, p := range e.cur {
		total += p.Y
	}
	return total
}

// MassG returns the total G mass; also invariant.
func (e *Engine) MassG() float64 {
	total := 0.0
	for _, p := range e.cur {
		total += p.G
	}
	return total
}

// Estimate returns node i's current ratio (0 while its G is 0).
func (e *Engine) Estimate(i int) float64 {
	if e.cur[i].G == 0 {
		return 0
	}
	return e.cur[i].Y / e.cur[i].G
}

// Estimates returns every node's current ratio.
func (e *Engine) Estimates() []float64 {
	out := make([]float64, e.n)
	for i := range out {
		out[i] = e.Estimate(i)
	}
	return out
}

// Step executes one synchronous gossip step and returns true while the
// protocol is still running (some node has not stopped).
func (e *Engine) Step() bool {
	g := e.cfg.Graph
	for i := range e.next {
		e.next[i] = Pair{}
		e.extRecv[i] = 0
	}
	if e.nextCount != nil {
		for i := range e.nextCount {
			e.nextCount[i] = 0
		}
	}

	// Push phase.
	for i := 0; i < e.n; i++ {
		if e.down[i] {
			// A departed node holds no mass and transmits nothing.
			continue
		}
		if e.stopped[i] || g.Degree(i) == 0 {
			// A stopped or isolated node retains its entire mass.
			e.next[i].add(e.cur[i])
			if e.nextCount != nil {
				e.nextCount[i] += e.count[i]
			}
			continue
		}
		e.msgs.ActiveNodeSteps++
		k := e.ks[i]
		f := 1 / float64(k+1)
		share := e.cur[i].scale(f)
		var countShare float64
		if e.nextCount != nil {
			countShare = e.count[i] * f
		}
		// Self delivery.
		e.next[i].add(share)
		if e.nextCount != nil {
			e.nextCount[i] += countShare
		}
		e.nbrs = g.AppendRandomNeighbors(e.nbrs[:0], i, k, e.src)
		for _, t := range e.nbrs {
			e.msgs.Gossip++
			// The loss draw is taken before the down/partition checks so a
			// churn-free run consumes exactly the stream the seed implies.
			dropped := e.cfg.LossProb > 0 && e.src.Bool(e.cfg.LossProb)
			if !dropped && (e.down[t] || (e.linkFault != nil && e.linkFault(i, t))) {
				// A push to a departed node, or across a faulted link,
				// fails like a lost packet: no ack arrives.
				dropped = true
			}
			if dropped {
				// Lost push: no ack, so the sender re-absorbs the
				// share (paper §5.3) and mass is conserved.
				e.msgs.Lost++
				e.next[i].add(share)
				if e.nextCount != nil {
					e.nextCount[i] += countShare
				}
				continue
			}
			e.next[t].add(share)
			if e.nextCount != nil {
				e.nextCount[t] += countShare
			}
			e.extRecv[t]++
		}
	}

	// Collect phase + convergence detection.
	e.steps++
	e.lastDelta = 0
	for i := 0; i < e.n; i++ {
		e.cur[i] = e.next[i]
		if e.nextCount != nil {
			e.count[i] = e.nextCount[i]
		}
		if e.down[i] {
			// Departed nodes carry no estimate and play no part in the
			// convergence protocol until they rejoin.
			e.u[i] = Sentinel
			continue
		}
		r := e.cur[i].ratio()
		delta := abs(r - e.u[i])
		if delta > e.lastDelta {
			e.lastDelta = delta
		}
		// A node with zero weight mass has no estimate yet (sentinel
		// ratio): it must not satisfy the convergence test, or sum-mode
		// gossip (weight at a single root) would stop instantly.
		//
		// The announcement is revocable: the ratio trajectory is not
		// monotone, so a one-step delta below ξ at a turning point must
		// not freeze the node forever. A node re-announces on every
		// converged/unconverged transition (each costing deg messages);
		// the run stops only when a whole closed neighbourhood holds the
		// flag simultaneously, which is exactly the paper's stop rule
		// evaluated on current rather than historical state.
		// Reception (|S| > 1 in the paper) gates only the *initial*
		// detection: a node that has heard nothing new keeps whatever
		// flag it holds as long as its ratio stays within ξ.
		heard := e.extRecv[i] >= 1 || e.selfConv[i] || e.stopped[i]
		conv := e.cur[i].G > 0 && heard && delta <= e.cfg.Epsilon && e.steps >= e.cfg.MinSteps
		if conv != e.selfConv[i] {
			e.selfConv[i] = conv
			e.msgs.Announce += g.Degree(i)
		}
		e.u[i] = r
	}

	// Stop rule: a node pauses while it and all its neighbours hold the
	// convergence flag; it resumes if any flag in its closed neighbourhood
	// is revoked. The run ends when every node pauses at once.
	running := false
	for i := 0; i < e.n; i++ {
		// Isolated and departed nodes cannot gossip and must not block
		// termination; a departed neighbour likewise never announces, so
		// the stop rule treats it as converged (ack-timeout semantics).
		e.stopped[i] = (e.selfConv[i] || g.Degree(i) == 0 || e.down[i]) && allConverged(e.selfConv, e.down, g.Neighbors(i))
		if !e.stopped[i] {
			running = true
		}
	}
	return running
}

// allConverged reports whether every listed neighbour either announced
// convergence or has departed (down may be nil when churn is impossible).
func allConverged(conv, down []bool, nbrs []int) bool {
	for _, v := range nbrs {
		if !conv[v] && (down == nil || !down[v]) {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// LastDelta returns the largest per-node ratio change in the most recent
// step — a convergence diagnostic.
func (e *Engine) LastDelta() float64 { return e.lastDelta }

// Run drives Step until every node stops or the step budget is exhausted.
func (e *Engine) Run() Result {
	budget := e.cfg.maxSteps()
	running := true
	for running && e.steps < budget {
		running = e.Step()
	}
	res := Result{
		Steps:     e.steps,
		Converged: !running,
		Estimates: e.Estimates(),
		Messages:  e.msgs,
	}
	if e.count != nil {
		res.Counts = make([]float64, e.n)
		for i := 0; i < e.n; i++ {
			if e.cur[i].G > 0 {
				res.Counts[i] = e.count[i] / e.cur[i].G
			}
		}
	}
	return res
}

// Average is a convenience wrapper: it gossips the values xs with unit
// weights everywhere and returns the per-node estimates of the global mean
// after convergence.
func Average(cfg Config, xs []float64) (Result, error) {
	g0 := make([]float64, len(xs))
	for i := range g0 {
		g0[i] = 1
	}
	e, err := NewEngine(cfg, xs, g0)
	if err != nil {
		return Result{}, err
	}
	return e.Run(), nil
}

// Sum gossips xs with weight 1 at exactly one node (root) and 0 elsewhere,
// so every estimate converges to the network-wide sum Σ xs.
func Sum(cfg Config, xs []float64, root int) (Result, error) {
	if root < 0 || root >= len(xs) {
		return Result{}, fmt.Errorf("gossip: root %d out of range", root)
	}
	g0 := make([]float64, len(xs))
	g0[root] = 1
	e, err := NewEngine(cfg, xs, g0)
	if err != nil {
		return Result{}, err
	}
	return e.Run(), nil
}
