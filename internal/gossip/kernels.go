package gossip

import "math"

// This file holds the flat-row kernels behind VectorEngine.accumulate. Each
// kernel is a single bounds-check-friendly sweep; the Row forms traverse whole
// contiguous rows (every subject active), the At forms gather only the active
// subject columns of a sparse workload. Arithmetic order matches the original
// three-pass axpy formulation exactly, so results are bit-identical to it.
//
// Every accumulate step wraps its product in an explicit float64 conversion:
// the Go spec permits an implementation to contract acc += a*b into a fused
// multiply-add (even across statements), which would change result bits on
// FMA platforms such as arm64; an explicit conversion is the spec's one
// guaranteed fusion barrier. With the products pinned to their individually
// rounded values, engine results are identical on every platform and to the
// unfused axpy baseline.

// mulRow2 initialises y[j] = ys[j]·f and g[j] = gs[j]·f in one sweep,
// replacing a zeroing pass followed by an accumulation pass.
func mulRow2(y, g, ys, gs []float64, f float64) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	gs = gs[:len(ys)]
	for j, v := range ys {
		y[j] = v * f
		g[j] = gs[j] * f
	}
}

// mulAddRow2 accumulates y[j] += ys[j]·f and g[j] += gs[j]·f in one sweep.
func mulAddRow2(y, g, ys, gs []float64, f float64) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	gs = gs[:len(ys)]
	for j, v := range ys {
		y[j] += float64(v * f)
		g[j] += float64(gs[j] * f)
	}
}

// mulRow3 / mulAddRow3 are the count-gossip forms: the third mass rides the
// same sweep.
func mulRow3(y, g, c, ys, gs, cs []float64, f float64) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	c = c[:len(ys)]
	gs = gs[:len(ys)]
	cs = cs[:len(ys)]
	for j, v := range ys {
		y[j] = v * f
		g[j] = gs[j] * f
		c[j] = cs[j] * f
	}
}

func mulAddRow3(y, g, c, ys, gs, cs []float64, f float64) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	c = c[:len(ys)]
	gs = gs[:len(ys)]
	cs = cs[:len(ys)]
	for j, v := range ys {
		y[j] += float64(v * f)
		g[j] += float64(gs[j] * f)
		c[j] += float64(cs[j] * f)
	}
}

// mulScanRow initialises the row from a lone share and runs the convergence
// scan in the same sweep: r = y/g per subject (Sentinel at zero weight), the
// L1 distance to the previous ratios, and the all-subjects-weighted flag.
func mulScanRow(y, g, ys, gs []float64, f float64, prevR []float64) (float64, bool) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	gs = gs[:len(ys)]
	prevR = prevR[:len(ys)]
	l1 := 0.0
	hasWeight := true
	for j, v := range ys {
		yv := v * f
		gv := gs[j] * f
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

// mulAddScanRow applies the final share and the convergence scan in one
// sweep.
func mulAddScanRow(y, g, ys, gs []float64, f float64, prevR []float64) (float64, bool) {
	y = y[:len(ys)]
	g = g[:len(ys)]
	gs = gs[:len(ys)]
	prevR = prevR[:len(ys)]
	l1 := 0.0
	hasWeight := true
	for j, v := range ys {
		yv := y[j] + float64(v*f)
		gv := g[j] + float64(gs[j]*f)
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

// mul2ScanRow fuses the common two-share case (self share + one received
// share) with the convergence scan into a single sweep, skipping the
// initialise-then-accumulate round trip through the destination row. The
// second share's product is pinned by an explicit conversion (see the file
// comment), so the result is bit-identical to the init-then-add formulation
// on every platform.
func mul2ScanRow(y, g, ys0, gs0 []float64, f0 float64, ys1, gs1 []float64, f1 float64, prevR []float64) (float64, bool) {
	y = y[:len(ys0)]
	g = g[:len(ys0)]
	gs0 = gs0[:len(ys0)]
	ys1 = ys1[:len(ys0)]
	gs1 = gs1[:len(ys0)]
	prevR = prevR[:len(ys0)]
	l1 := 0.0
	hasWeight := true
	for j, v := range ys0 {
		yv := v * f0
		yv += float64(ys1[j] * f1)
		gv := gs0[j] * f0
		gv += float64(gs1[j] * f1)
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

// scanRow is the standalone convergence scan (used when count gossip already
// accumulated the final share).
func scanRow(y, g, prevR []float64) (float64, bool) {
	g = g[:len(y)]
	prevR = prevR[:len(y)]
	l1 := 0.0
	hasWeight := true
	for j, yv := range y {
		r := Sentinel
		if gv := g[j]; gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

// The At forms mirror the Row forms over an explicit active-column index.

func mulAt2(y, g, ys, gs []float64, f float64, idx []int) {
	for _, j := range idx {
		y[j] = ys[j] * f
		g[j] = gs[j] * f
	}
}

func mulAddAt2(y, g, ys, gs []float64, f float64, idx []int) {
	for _, j := range idx {
		y[j] += float64(ys[j] * f)
		g[j] += float64(gs[j] * f)
	}
}

func mulAt3(y, g, c, ys, gs, cs []float64, f float64, idx []int) {
	for _, j := range idx {
		y[j] = ys[j] * f
		g[j] = gs[j] * f
		c[j] = cs[j] * f
	}
}

func mulAddAt3(y, g, c, ys, gs, cs []float64, f float64, idx []int) {
	for _, j := range idx {
		y[j] += float64(ys[j] * f)
		g[j] += float64(gs[j] * f)
		c[j] += float64(cs[j] * f)
	}
}

func mulScanAt(y, g, ys, gs []float64, f float64, prevR []float64, idx []int) (float64, bool) {
	l1 := 0.0
	hasWeight := true
	for _, j := range idx {
		yv := ys[j] * f
		gv := gs[j] * f
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

func mulAddScanAt(y, g, ys, gs []float64, f float64, prevR []float64, idx []int) (float64, bool) {
	l1 := 0.0
	hasWeight := true
	for _, j := range idx {
		yv := y[j] + float64(ys[j]*f)
		gv := g[j] + float64(gs[j]*f)
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

func mul2ScanAt(y, g, ys0, gs0 []float64, f0 float64, ys1, gs1 []float64, f1 float64, prevR []float64, idx []int) (float64, bool) {
	l1 := 0.0
	hasWeight := true
	for _, j := range idx {
		yv := ys0[j] * f0
		yv += float64(ys1[j] * f1)
		gv := gs0[j] * f0
		gv += float64(gs1[j] * f1)
		y[j] = yv
		g[j] = gv
		r := Sentinel
		if gv != 0 {
			r = yv / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}

func scanAt(y, g, prevR []float64, idx []int) (float64, bool) {
	l1 := 0.0
	hasWeight := true
	for _, j := range idx {
		r := Sentinel
		if gv := g[j]; gv != 0 {
			r = y[j] / gv
		} else {
			hasWeight = false
		}
		l1 += math.Abs(r - prevR[j])
		prevR[j] = r
	}
	return l1, hasWeight
}
