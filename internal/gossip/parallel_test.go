package gossip

import (
	"testing"

	"diffgossip/internal/graph"
)

// TestParallelVectorBitIdentical verifies the headline property of the
// three-phase step: the result is bit-identical for any worker count, because
// routing is sequential and each destination sums its shares in routing
// order.
func TestParallelVectorBitIdentical(t *testing.T) {
	n := 80
	g := graph.MustPA(n, 2, 150)
	y0, g0 := buildVectorInputs(n, 151)

	run := func(workers int) VectorResult {
		e, err := NewVectorEngine(Config{
			Graph: g, Epsilon: 1e-7, Seed: 152, Workers: workers, LossProb: 0.1,
		}, y0, g0)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	base := run(1)
	for _, workers := range []int{2, 4, -1} {
		got := run(workers)
		if got.Steps != base.Steps {
			t.Fatalf("workers=%d: steps %d vs %d", workers, got.Steps, base.Steps)
		}
		if got.Messages != base.Messages {
			t.Fatalf("workers=%d: messages differ", workers)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.Estimates[i][j] != base.Estimates[i][j] {
					t.Fatalf("workers=%d: estimate[%d][%d] differs: %v vs %v",
						workers, i, j, got.Estimates[i][j], base.Estimates[i][j])
				}
			}
		}
	}
}

func TestParallelVectorWithCounts(t *testing.T) {
	n := 40
	g := graph.MustPA(n, 2, 160)
	y0, g0 := alloc(n), alloc(n)
	c0 := alloc(n)
	for j := 0; j < n; j++ {
		g0[0][j] = 1
	}
	for i := 1; i < n; i++ {
		y0[i][0] = 0.5
		c0[i][0] = 1
	}
	run := func(workers int) VectorResult {
		e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-8, Seed: 161, Workers: workers}, y0, g0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableCountGossip(c0); err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	a, b := run(1), run(4)
	for i := 0; i < n; i++ {
		if a.Counts[i][0] != b.Counts[i][0] {
			t.Fatalf("counts differ at %d: %v vs %v", i, a.Counts[i][0], b.Counts[i][0])
		}
	}
}

func BenchmarkVectorStepWorkers(b *testing.B) {
	n := 600
	g := graph.MustPA(n, 2, 170)
	y0, g0 := buildVectorInputs(n, 171)
	for _, workers := range []int{1, 4, -1} {
		name := "workers=1"
		switch workers {
		case 4:
			name = "workers=4"
		case -1:
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			e, err := NewVectorEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 172, Workers: workers}, y0, g0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
