package gossip

import (
	"math"
	"testing"

	"diffgossip/internal/graph"
)

func TestSpreadValidation(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Spread(graph.New(0), 0, SpreadPush, 1, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Spread(g, -1, SpreadPush, 1, 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Spread(g, 0, SpreadProtocol(42), 1, 0); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSpreadReachesAllOnConnected(t *testing.T) {
	g := graph.MustPA(300, 2, 1)
	for _, p := range []SpreadProtocol{SpreadPush, SpreadPull, SpreadPushPull, SpreadDifferentialPush} {
		res, err := Spread(g, 0, p, 2, 0)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.All {
			t.Fatalf("%v informed only %d/300 nodes in %d rounds", p, res.Informed, res.Rounds)
		}
		if res.Messages == 0 {
			t.Fatalf("%v sent no messages", p)
		}
	}
}

func TestSpreadStaysInComponent(t *testing.T) {
	g := graph.New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4) // separate component, plus isolated node 5
	res, err := Spread(g, 0, SpreadPushPull, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.All {
		t.Fatal("rumor crossed disconnected components")
	}
	if res.Informed != 3 {
		t.Fatalf("informed = %d, want 3", res.Informed)
	}
}

func TestSpreadSingleNode(t *testing.T) {
	g := graph.New(1)
	res, err := Spread(g, 0, SpreadPush, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.All || res.Rounds != 0 {
		t.Fatalf("singleton spread = %+v", res)
	}
}

func TestDifferentialSpreadBeatsPushFromLeaf(t *testing.T) {
	// The motivating pathology: on a star, push from the hub takes ~n·ln n
	// rounds to reach all leaves (coupon collector, one push per round),
	// while differential push fans out and finishes immediately.
	g := graph.Star(200)
	push, err := Spread(g, 0, SpreadPush, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Spread(g, 0, SpreadDifferentialPush, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.All {
		t.Fatal("differential push failed on star")
	}
	if diff.Rounds >= push.Rounds {
		t.Fatalf("differential (%d rounds) not faster than push (%d rounds) on star", diff.Rounds, push.Rounds)
	}
	if diff.Rounds > 3 {
		t.Fatalf("differential took %d rounds on star, want <= 3", diff.Rounds)
	}
}

func TestSpreadScalesPolylog(t *testing.T) {
	// Theorem 5.1: differential push spreads in O((log2 N)^2) on PA
	// graphs. Check that rounds / (log2 N)^2 stays bounded by a small
	// constant across a decade of sizes.
	for _, n := range []int{200, 2000, 20000} {
		g := graph.MustPA(n, 2, 9)
		res, err := Spread(g, n-1, SpreadDifferentialPush, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.All {
			t.Fatalf("n=%d: spread incomplete", n)
		}
		bound := math.Log2(float64(n))
		if float64(res.Rounds) > bound*bound {
			t.Fatalf("n=%d: %d rounds exceeds (log2 n)^2 = %v", n, res.Rounds, bound*bound)
		}
	}
}

func TestSpreadRoundLimitHonoured(t *testing.T) {
	g := graph.Ring(1000) // diameter 500: cannot finish in 5 rounds
	res, err := Spread(g, 0, SpreadPush, 11, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.All {
		t.Fatal("ring spread finished impossibly fast")
	}
	if res.Rounds > 5 {
		t.Fatalf("round limit exceeded: %d", res.Rounds)
	}
}
