package gossip

import (
	"math"
	"testing"
	"testing/quick"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func randomValues(n int, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Float64()
	}
	return out
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func TestConfigValidation(t *testing.T) {
	g := graph.Ring(5)
	cases := []Config{
		{Graph: nil, Epsilon: 0.01},
		{Graph: g, Epsilon: 0},
		{Graph: g, Epsilon: -1},
		{Graph: g, Epsilon: 0.01, LossProb: 1},
		{Graph: g, Epsilon: 0.01, LossProb: -0.1},
		{Graph: g, Epsilon: 0.01, Protocol: FixedPush, FixedK: 0},
		{Graph: g, Epsilon: 0.01, MaxSteps: -1},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg, ones(5), ones(5)); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}

func TestNewEngineShapeChecks(t *testing.T) {
	g := graph.Ring(5)
	cfg := Config{Graph: g, Epsilon: 0.01}
	if _, err := NewEngine(cfg, ones(4), ones(5)); err == nil {
		t.Fatal("short y0 accepted")
	}
	if _, err := NewEngine(cfg, ones(5), []float64{1, 1, 1, 1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range []Protocol{DifferentialPush, NormalPush, FixedPush, CeilPush, Protocol(99)} {
		if p.String() == "" {
			t.Fatalf("empty string for protocol %d", int(p))
		}
	}
	for _, p := range []SpreadProtocol{SpreadPush, SpreadPull, SpreadPushPull, SpreadDifferentialPush, SpreadProtocol(99)} {
		if p.String() == "" {
			t.Fatalf("empty string for spread protocol %d", int(p))
		}
	}
}

func TestPairRatioSentinel(t *testing.T) {
	if r := (Pair{Y: 1, G: 0}).ratio(); r != Sentinel {
		t.Fatalf("zero-weight ratio = %v, want sentinel %v", r, Sentinel)
	}
	if r := (Pair{Y: 1, G: 2}).ratio(); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestAverageOnCompleteGraph(t *testing.T) {
	g := graph.Complete(32)
	xs := randomValues(32, 1)
	res, err := Average(Config{Graph: g, Epsilon: 1e-8, Seed: 2}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on K32")
	}
	want := mean(xs)
	for i, est := range res.Estimates {
		if math.Abs(est-want) > 1e-4 {
			t.Fatalf("node %d estimate %v, want %v", i, est, want)
		}
	}
}

func TestAverageOnPAGraphDifferential(t *testing.T) {
	g := graph.MustPA(400, 2, 3)
	xs := randomValues(400, 4)
	res, err := Average(Config{Graph: g, Epsilon: 1e-9, Seed: 5}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("differential push did not converge on PA(400,2)")
	}
	want := mean(xs)
	for i, est := range res.Estimates {
		if math.Abs(est-want) > 1e-3 {
			t.Fatalf("node %d estimate %v, want %v (err %v)", i, est, want, est-want)
		}
	}
}

func TestSumMode(t *testing.T) {
	g := graph.MustPA(100, 2, 6)
	xs := randomValues(100, 7)
	res, err := Sum(Config{Graph: g, Epsilon: 1e-10, Seed: 8}, xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("sum gossip did not converge")
	}
	want := 0.0
	for _, x := range xs {
		want += x
	}
	for i, est := range res.Estimates {
		if math.Abs(est-want)/want > 1e-3 {
			t.Fatalf("node %d sum estimate %v, want %v", i, est, want)
		}
	}
}

func TestSumRejectsBadRoot(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Sum(Config{Graph: g, Epsilon: 0.01}, ones(5), 9); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestMassConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%80)
		g := graph.MustPA(n, 2, seed)
		xs := randomValues(n, seed+1)
		e, err := NewEngine(Config{Graph: g, Epsilon: 1e-6, Seed: seed + 2, LossProb: 0.1}, xs, ones(n))
		if err != nil {
			return false
		}
		wantY, wantG := e.MassY(), e.MassG()
		for s := 0; s < 30; s++ {
			e.Step()
			if math.Abs(e.MassY()-wantY) > 1e-9*float64(n) {
				return false
			}
			if math.Abs(e.MassG()-wantG) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatesWithinValueRangeProperty(t *testing.T) {
	// Push-sum estimates are convex combinations of inputs: they must stay
	// within [min, max] of the initial values once G > 0.
	f := func(seed uint64) bool {
		n := 20 + int(seed%50)
		g := graph.MustPA(n, 2, seed)
		xs := randomValues(n, seed+9)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		e, err := NewEngine(Config{Graph: g, Epsilon: 1e-6, Seed: seed}, xs, ones(n))
		if err != nil {
			return false
		}
		for s := 0; s < 40; s++ {
			e.Step()
			for i := 0; i < n; i++ {
				est := e.Estimate(i)
				if est < lo-1e-9 || est > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.MustPA(200, 2, 10)
	xs := randomValues(200, 11)
	run := func() Result {
		res, err := Average(Config{Graph: g, Epsilon: 1e-6, Seed: 12}, xs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Messages != b.Messages {
		t.Fatalf("same seed, different runs: %+v vs %+v", a.Messages, b.Messages)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d differs", i)
		}
	}
}

func TestDifferentialBeatsNormalPushOnPA(t *testing.T) {
	// The headline claim (Figure 3): differential push needs fewer steps
	// than normal push on power-law graphs, and the gap widens with N.
	for _, n := range []int{500, 2000} {
		g := graph.MustPA(n, 2, 21)
		xs := randomValues(n, 22)
		diff, err := Average(Config{Graph: g, Epsilon: 1e-6, Seed: 23}, xs)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := Average(Config{Graph: g, Epsilon: 1e-6, Seed: 23, Protocol: NormalPush}, xs)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Converged {
			t.Fatalf("n=%d: differential did not converge", n)
		}
		if norm.Converged && norm.Steps < diff.Steps {
			t.Fatalf("n=%d: normal push (%d steps) beat differential (%d steps)", n, norm.Steps, diff.Steps)
		}
	}
}

func TestPacketLossSlowsButConverges(t *testing.T) {
	g := graph.MustPA(500, 2, 30)
	xs := randomValues(500, 31)
	base, err := Average(Config{Graph: g, Epsilon: 1e-6, Seed: 32}, xs)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Average(Config{Graph: g, Epsilon: 1e-6, Seed: 32, LossProb: 0.3}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !lossy.Converged {
		t.Fatal("30% loss prevented convergence")
	}
	if lossy.Messages.Lost == 0 {
		t.Fatal("loss model dropped nothing at p=0.3")
	}
	want := mean(xs)
	for i, est := range lossy.Estimates {
		if math.Abs(est-want) > 5e-3 {
			t.Fatalf("node %d estimate %v under loss, want %v", i, est, want)
		}
	}
	// Loss should not make convergence dramatically faster.
	if lossy.Steps < base.Steps/2 {
		t.Fatalf("lossy run (%d) much faster than lossless (%d)?", lossy.Steps, base.Steps)
	}
}

func TestCountGossip(t *testing.T) {
	// 40-node PA graph; 10 raters hold values. Sum mode: root weight at
	// node 0. Counts must converge to the number of raters.
	n := 40
	g := graph.MustPA(n, 2, 40)
	y0 := make([]float64, n)
	g0 := make([]float64, n)
	c0 := make([]float64, n)
	g0[0] = 1
	raters := 10
	for i := 0; i < raters; i++ {
		y0[i] = 0.5
		c0[i] = 1
	}
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-10, Seed: 41}, y0, g0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(c0); err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Converged {
		t.Fatal("count gossip did not converge")
	}
	for i, c := range res.Counts {
		if math.Abs(c-float64(raters))/float64(raters) > 1e-3 {
			t.Fatalf("node %d count estimate %v, want %d", i, c, raters)
		}
	}
	for i, y := range res.Estimates {
		if math.Abs(y-0.5*float64(raters)) > 1e-2 {
			t.Fatalf("node %d sum estimate %v, want %v", i, y, 0.5*float64(raters))
		}
	}
}

func TestEnableCountGossipErrors(t *testing.T) {
	g := graph.Ring(4)
	e, err := NewEngine(Config{Graph: g, Epsilon: 0.01, Seed: 1}, ones(4), ones(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableCountGossip(ones(3)); err == nil {
		t.Fatal("wrong-length count vector accepted")
	}
	e.Step()
	if err := e.EnableCountGossip(ones(4)); err == nil {
		t.Fatal("EnableCountGossip after stepping accepted")
	}
}

func TestMessageAccounting(t *testing.T) {
	g := graph.Ring(10) // all k=1
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-9, Seed: 50}, randomValues(10, 51), ones(10))
	if err != nil {
		t.Fatal(err)
	}
	// Setup: degree exchange = sum of degrees = 2M = 20.
	if e.msgs.Setup != 20 {
		t.Fatalf("setup messages = %d, want 20", e.msgs.Setup)
	}
	e.Step()
	// Each of 10 nodes pushes k=1 message.
	if e.msgs.Gossip != 10 {
		t.Fatalf("gossip messages after 1 step = %d, want 10", e.msgs.Gossip)
	}
	res := e.Run()
	if res.Messages.Total() != res.Messages.Setup+res.Messages.Gossip+res.Messages.Announce {
		t.Fatal("Total inconsistent")
	}
	ppns := res.Messages.PerNodePerStep(10, res.Steps)
	if ppns <= 0 {
		t.Fatalf("per-node-per-step = %v", ppns)
	}
	if got := (Messages{}).PerNodePerStep(0, 0); got != 0 {
		t.Fatalf("degenerate PerNodePerStep = %v", got)
	}
}

func TestStoppedNodesFreeze(t *testing.T) {
	// After full convergence, Run returns; calling Step again must keep
	// mass intact (stopped nodes push to themselves).
	g := graph.Complete(8)
	xs := randomValues(8, 60)
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-8, Seed: 61}, xs, ones(8))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	y, gm := e.MassY(), e.MassG()
	e.Step()
	if math.Abs(e.MassY()-y) > 1e-12 || math.Abs(e.MassG()-gm) > 1e-12 {
		t.Fatal("stopped engine leaked mass")
	}
}

func TestIsolatedNodeDoesNotBlockOthers(t *testing.T) {
	// A graph with an isolated node: the rest must still converge. The
	// isolated node keeps its own value (its neighbourhood is trivially
	// converged once it stops changing... it never receives, so it never
	// self-converges; the engine must still terminate via MaxSteps).
	g := graph.New(5)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			_ = g.AddEdge(u, v)
		}
	}
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.9}
	res, err := Average(Config{Graph: g, Epsilon: 1e-8, Seed: 70, MaxSteps: 200}, xs)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1 + 0.2 + 0.3 + 0.4) / 5 // connected component's mass / its G... see below
	_ = want
	// The 4-clique nodes converge among themselves to the mean of their
	// own values (their mass never mixes with the isolated node's).
	cliqueWant := (0.1 + 0.2 + 0.3 + 0.4) / 4
	for i := 0; i < 4; i++ {
		if math.Abs(res.Estimates[i]-cliqueWant) > 1e-4 {
			t.Fatalf("clique node %d estimate %v, want %v", i, res.Estimates[i], cliqueWant)
		}
	}
	if res.Estimates[4] != 0.9 {
		t.Fatalf("isolated node value changed: %v", res.Estimates[4])
	}
}

func TestMinStepsDelaysConvergence(t *testing.T) {
	g := graph.Complete(6)
	xs := ones(6) // identical values: ratio is stable from step 1
	fast, err := Average(Config{Graph: g, Epsilon: 1e-3, Seed: 80}, xs)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Average(Config{Graph: g, Epsilon: 1e-3, Seed: 80, MinSteps: 10}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Steps < 10 {
		t.Fatalf("MinSteps ignored: %d steps", slow.Steps)
	}
	if fast.Steps >= slow.Steps {
		t.Fatalf("MinSteps had no effect: fast=%d slow=%d", fast.Steps, slow.Steps)
	}
}

func TestFixedAndCeilProtocols(t *testing.T) {
	g := graph.MustPA(300, 2, 90)
	xs := randomValues(300, 91)
	for _, p := range []Protocol{FixedPush, CeilPush} {
		cfg := Config{Graph: g, Epsilon: 1e-6, Seed: 92, Protocol: p, FixedK: 2}
		res, err := Average(cfg, xs)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", p)
		}
		want := mean(xs)
		for i, est := range res.Estimates {
			if math.Abs(est-want) > 1e-2 {
				t.Fatalf("%v: node %d estimate %v, want %v", p, i, est, want)
			}
		}
	}
}

func TestFanoutCapAtDegree(t *testing.T) {
	// Star centre has k = n-1 ratio but also degree n-1; leaves have
	// degree 1 so k must cap at 1.
	g := graph.Star(6)
	cfg := Config{Graph: g, Epsilon: 0.01, Seed: 1}
	ks := cfg.fanouts()
	if ks[0] != 5 {
		t.Fatalf("star centre fanout = %d, want 5", ks[0])
	}
	for i := 1; i < 6; i++ {
		if ks[i] != 1 {
			t.Fatalf("leaf fanout = %d, want 1", ks[i])
		}
	}
	// FixedK larger than degree must also cap.
	cfg = Config{Graph: g, Epsilon: 0.01, Protocol: FixedPush, FixedK: 4}
	ks = cfg.fanouts()
	for i := 1; i < 6; i++ {
		if ks[i] != 1 {
			t.Fatalf("leaf fixed fanout = %d, want capped 1", ks[i])
		}
	}
}

func TestLastDeltaShrinks(t *testing.T) {
	g := graph.MustPA(200, 2, 95)
	xs := randomValues(200, 96)
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-9, Seed: 97}, xs, ones(200))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		e.Step()
	}
	early := e.LastDelta()
	for s := 0; s < 60; s++ {
		e.Step()
	}
	late := e.LastDelta()
	if late >= early {
		t.Fatalf("delta did not shrink: early=%v late=%v", early, late)
	}
}
