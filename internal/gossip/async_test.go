package gossip

import (
	"math"
	"testing"

	"diffgossip/internal/graph"
)

func TestAsyncAverageValidation(t *testing.T) {
	g := graph.Ring(5)
	if _, err := AsyncAverage(Config{Graph: g, Epsilon: 0}, ones(5)); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := AsyncAverage(Config{Graph: g, Epsilon: 0.01}, ones(4)); err == nil {
		t.Fatal("short values accepted")
	}
}

func TestAsyncAverageConverges(t *testing.T) {
	g := graph.MustPA(300, 2, 70)
	xs := randomValues(300, 71)
	want := mean(xs)
	res, err := AsyncAverage(Config{Graph: g, Epsilon: 1e-4, Seed: 72}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async gossip did not converge: max error %v", res.MaxError)
	}
	if res.MaxError > 1e-4 {
		t.Fatalf("max error %v above tolerance", res.MaxError)
	}
	for i, est := range res.Estimates {
		if math.Abs(est-want) > 1e-3 {
			t.Fatalf("node %d estimate %v, want %v", i, est, want)
		}
	}
	if res.Activations != res.Rounds*300 {
		t.Fatalf("activations %d inconsistent with rounds %d", res.Activations, res.Rounds)
	}
}

func TestAsyncWithLossStillConverges(t *testing.T) {
	g := graph.MustPA(200, 2, 73)
	xs := randomValues(200, 74)
	res, err := AsyncAverage(Config{Graph: g, Epsilon: 1e-3, Seed: 75, LossProb: 0.2}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async gossip under loss did not converge: %v", res.MaxError)
	}
}

func TestAsyncComparableToSync(t *testing.T) {
	// The async schedule should cost at most a small constant factor over
	// synchronous rounds (each round-equivalent touches every node once in
	// expectation, but misses some nodes and repeats others).
	g := graph.MustPA(500, 2, 76)
	xs := randomValues(500, 77)
	sync, err := Average(Config{Graph: g, Epsilon: 1e-4, Seed: 78}, xs)
	if err != nil {
		t.Fatal(err)
	}
	async, err := AsyncAverage(Config{Graph: g, Epsilon: 1e-4, Seed: 78}, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !async.Converged {
		t.Fatal("async did not converge")
	}
	if async.Rounds > 6*sync.Steps {
		t.Fatalf("async rounds %d ≫ sync steps %d", async.Rounds, sync.Steps)
	}
}
