package gossip

import (
	"math"
	"runtime"
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// refVectorEngine is a faithful copy of the pre-flat-memory implementation:
// per-row heap allocations, a zeroing pass, three separate axpy passes per
// routed share, and a standalone full-column convergence scan. It exists so
// tests can prove the flat, fused engine is bit-identical to the old layout.
type refVectorEngine struct {
	cfg      Config
	n        int
	ks       []int
	src      *rng.Source
	steps    int
	y, g     [][]float64
	count    [][]float64
	prevR    [][]float64
	selfConv []bool
	stopped  []bool
	active   []bool
	nextY    [][]float64
	nextG    [][]float64
	nextC    [][]float64
	extRecv  []int
	incoming [][]push
	l1       []float64
	hasW     []bool
}

func refAlloc(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func refCopy(m [][]float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func newRefVectorEngine(cfg Config, y0, g0, c0 [][]float64) *refVectorEngine {
	n := cfg.Graph.N()
	e := &refVectorEngine{
		cfg:      cfg,
		n:        n,
		ks:       cfg.fanouts(),
		src:      rng.New(cfg.Seed),
		y:        refCopy(y0, n),
		g:        refCopy(g0, n),
		prevR:    refAlloc(n),
		selfConv: make([]bool, n),
		stopped:  make([]bool, n),
		nextY:    refAlloc(n),
		nextG:    refAlloc(n),
		extRecv:  make([]int, n),
		active:   make([]bool, n),
		incoming: make([][]push, n),
		l1:       make([]float64, n),
		hasW:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if e.g[i][j] > 0 {
				e.active[j] = true
			}
			e.prevR[i][j] = ratioOr(e.y[i][j], e.g[i][j])
		}
	}
	if c0 != nil {
		e.count = refCopy(c0, n)
		e.nextC = refAlloc(n)
	}
	return e
}

func refZero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func refAxpy(dst, src []float64, f float64) {
	for i := range dst {
		// Pinned like the production kernels, so the reference is
		// FMA-contraction-proof on every platform too.
		dst[i] += float64(src[i] * f)
	}
}

func (e *refVectorEngine) step() bool {
	g := e.cfg.Graph
	for i := range e.incoming {
		e.incoming[i] = e.incoming[i][:0]
		e.extRecv[i] = 0
	}
	for i := 0; i < e.n; i++ {
		if e.stopped[i] || g.Degree(i) == 0 {
			e.incoming[i] = append(e.incoming[i], push{src: i, f: 1})
			continue
		}
		k := e.ks[i]
		f := 1 / float64(k+1)
		e.incoming[i] = append(e.incoming[i], push{src: i, f: f})
		for _, t := range g.RandomNeighbors(i, k, e.src) {
			if e.cfg.LossProb > 0 && e.src.Bool(e.cfg.LossProb) {
				e.incoming[i] = append(e.incoming[i], push{src: i, f: f})
				continue
			}
			e.incoming[t] = append(e.incoming[t], push{src: i, f: f})
			e.extRecv[t]++
		}
	}

	e.steps++
	for i := 0; i < e.n; i++ {
		refZero(e.nextY[i])
		refZero(e.nextG[i])
		if e.nextC != nil {
			refZero(e.nextC[i])
		}
		for _, p := range e.incoming[i] {
			refAxpy(e.nextY[i], e.y[p.src], p.f)
			refAxpy(e.nextG[i], e.g[p.src], p.f)
			if e.nextC != nil {
				refAxpy(e.nextC[i], e.count[p.src], p.f)
			}
		}
		l1 := 0.0
		hasWeight := true
		for j := 0; j < e.n; j++ {
			r := ratioOr(e.nextY[i][j], e.nextG[i][j])
			l1 += math.Abs(r - e.prevR[i][j])
			e.prevR[i][j] = r
			if e.active[j] && e.nextG[i][j] == 0 {
				hasWeight = false
			}
		}
		e.l1[i] = l1
		e.hasW[i] = hasWeight
	}
	for i := 0; i < e.n; i++ {
		e.y[i], e.nextY[i] = e.nextY[i], e.y[i]
		e.g[i], e.nextG[i] = e.nextG[i], e.g[i]
		if e.nextC != nil {
			e.count[i], e.nextC[i] = e.nextC[i], e.count[i]
		}
	}

	nxi := float64(e.n) * e.cfg.Epsilon
	for i := 0; i < e.n; i++ {
		heard := e.extRecv[i] >= 1 || e.selfConv[i] || e.stopped[i]
		conv := e.hasW[i] && heard && e.l1[i] <= nxi && e.steps >= e.cfg.MinSteps
		if conv != e.selfConv[i] {
			e.selfConv[i] = conv
		}
	}
	running := false
	for i := 0; i < e.n; i++ {
		e.stopped[i] = (e.selfConv[i] || g.Degree(i) == 0) && allConverged(e.selfConv, nil, g.Neighbors(i))
		if !e.stopped[i] {
			running = true
		}
	}
	return running
}

func (e *refVectorEngine) run() VectorResult {
	budget := e.cfg.maxSteps()
	running := true
	for running && e.steps < budget {
		running = e.step()
	}
	res := VectorResult{Steps: e.steps, Converged: !running, Estimates: refAlloc(e.n)}
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.n; j++ {
			if e.g[i][j] > 0 {
				res.Estimates[i][j] = e.y[i][j] / e.g[i][j]
			}
		}
	}
	if e.count != nil {
		res.Counts = refAlloc(e.n)
		for i := 0; i < e.n; i++ {
			for j := 0; j < e.n; j++ {
				if e.g[i][j] > 0 {
					res.Counts[i][j] = e.count[i][j] / e.g[i][j]
				}
			}
		}
	}
	return res
}

// buildSparseVectorInputs rates only every stride-th subject (by everybody),
// leaving the other columns with no weight mass anywhere.
func buildSparseVectorInputs(n, stride int, seed uint64) (y0, g0 [][]float64) {
	src := rng.New(seed)
	y0, g0 = alloc(n), alloc(n)
	for j := 0; j < n; j += stride {
		for i := 0; i < n; i++ {
			y0[i][j] = src.Float64()
			g0[i][j] = 1
		}
	}
	return y0, g0
}

// TestFlatLayoutMatchesOldLayout pins the headline refactor guarantee: the
// flat-memory, fused, active-indexed engine produces bit-identical results —
// same step count, same convergence, same estimate bits — as the old
// row-allocated three-pass layout, across dense, sparse, lossy and counted
// configurations.
func TestFlatLayoutMatchesOldLayout(t *testing.T) {
	type scenario struct {
		name   string
		n      int
		sparse bool
		loss   float64
		counts bool
	}
	for _, sc := range []scenario{
		{name: "dense", n: 60},
		{name: "dense-loss", n: 60, loss: 0.15},
		{name: "sparse", n: 80, sparse: true},
		{name: "sparse-loss", n: 80, sparse: true, loss: 0.1},
		{name: "dense-counts", n: 40, counts: true},
		{name: "sparse-counts", n: 50, sparse: true, counts: true},
	} {
		t.Run(sc.name, func(t *testing.T) {
			g := graph.MustPA(sc.n, 2, 500)
			var y0, g0 [][]float64
			if sc.sparse {
				y0, g0 = buildSparseVectorInputs(sc.n, 7, 501)
			} else {
				y0, g0 = buildVectorInputs(sc.n, 501)
			}
			var c0 [][]float64
			if sc.counts {
				c0 = alloc(sc.n)
				for i := 0; i < sc.n; i++ {
					for j := 0; j < sc.n; j++ {
						if g0[i][j] > 0 {
							c0[i][j] = 1
						}
					}
				}
			}
			cfg := Config{Graph: g, Epsilon: 1e-7, Seed: 502, LossProb: sc.loss}

			e, err := NewVectorEngine(cfg, y0, g0)
			if err != nil {
				t.Fatal(err)
			}
			if c0 != nil {
				if err := e.EnableCountGossip(c0); err != nil {
					t.Fatal(err)
				}
			}
			got := e.Run()
			want := newRefVectorEngine(cfg, y0, g0, c0).run()

			if got.Steps != want.Steps || got.Converged != want.Converged {
				t.Fatalf("run shape differs: steps %d/%v vs %d/%v",
					got.Steps, got.Converged, want.Steps, want.Converged)
			}
			for i := 0; i < sc.n; i++ {
				for j := 0; j < sc.n; j++ {
					if got.Estimates[i][j] != want.Estimates[i][j] {
						t.Fatalf("estimate[%d][%d]: %v (flat) vs %v (old layout)",
							i, j, got.Estimates[i][j], want.Estimates[i][j])
					}
					if c0 != nil && got.Counts[i][j] != want.Counts[i][j] {
						t.Fatalf("count[%d][%d]: %v (flat) vs %v (old layout)",
							i, j, got.Counts[i][j], want.Counts[i][j])
					}
				}
			}
		})
	}
}

// TestVectorWorkerSweepBitIdentical is the determinism contract stated in the
// engine docs: Workers ∈ {1, 4, GOMAXPROCS} (and the auto setting) all
// produce the same estimate bits, because routing is sequential and every
// destination folds its shares in routing order.
func TestVectorWorkerSweepBitIdentical(t *testing.T) {
	n := 90
	g := graph.MustPA(n, 2, 510)
	y0, g0 := buildVectorInputs(n, 511)
	run := func(workers int) VectorResult {
		e, err := NewVectorEngine(Config{
			Graph: g, Epsilon: 1e-7, Seed: 512, Workers: workers, LossProb: 0.05,
		}, y0, g0)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	base := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), -1} {
		got := run(workers)
		if got.Steps != base.Steps {
			t.Fatalf("workers=%d: steps %d vs %d", workers, got.Steps, base.Steps)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.Estimates[i][j] != base.Estimates[i][j] {
					t.Fatalf("workers=%d: estimate[%d][%d] differs", workers, i, j)
				}
			}
		}
	}
}

// TestEngineStepZeroAllocs pins the scalar engine's zero-allocation
// steady-state invariant.
func TestEngineStepZeroAllocs(t *testing.T) {
	n := 400
	g := graph.MustPA(n, 2, 520)
	src := rng.New(521)
	xs := make([]float64, n)
	g0 := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		g0[i] = 1
	}
	e, err := NewEngine(Config{Graph: g, Epsilon: 1e-12, Seed: 522, MinSteps: 1 << 30}, xs, g0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Step() // warm the fan-out scratch buffer
	}
	if allocs := testing.AllocsPerRun(30, func() { e.Step() }); allocs != 0 {
		t.Fatalf("Engine.Step allocated %v times per step in steady state", allocs)
	}
}

// TestVectorStepZeroAllocs pins the vector engine's zero-allocation
// steady-state invariant, with and without count gossip and under loss.
func TestVectorStepZeroAllocs(t *testing.T) {
	n := 120
	g := graph.MustPA(n, 2, 530)
	y0, g0 := buildVectorInputs(n, 531)
	c0 := alloc(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c0[i][j] = 1
		}
	}
	for _, tc := range []struct {
		name   string
		counts bool
		loss   float64
	}{
		{name: "plain"},
		{name: "loss", loss: 0.2},
		{name: "counts", counts: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewVectorEngine(Config{
				Graph: g, Epsilon: 1e-12, Seed: 532, MinSteps: 1 << 30, LossProb: tc.loss,
			}, y0, g0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.counts {
				if err := e.EnableCountGossip(c0); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				e.Step()
			}
			if allocs := testing.AllocsPerRun(20, func() { e.Step() }); allocs != 0 {
				t.Fatalf("VectorEngine.Step allocated %v times per step in steady state", allocs)
			}
		})
	}
}
