package obs

import (
	"fmt"
	"net/http"
	"time"
)

// HTTPMetrics instruments an HTTP surface: per-route request counters by
// status class, a per-route latency histogram, and a shared in-flight gauge.
// Build one per server with NewHTTPMetrics and wrap each route handler with
// Wrap. The per-request cost is two gauge ops, one histogram observation and
// one counter increment — all atomic, no allocations beyond the one wrapper
// struct per request.
type HTTPMetrics struct {
	reg      *Registry
	prefix   string
	inFlight Gauge
	routes   map[string]*routeMetrics
}

// routeMetrics are one route's instruments, shared by every handler wrapped
// under the same route label (GET and POST on one path, say).
type routeMetrics struct {
	hist    *Histogram
	classes [5]Counter
}

// NewHTTPMetrics registers the in-flight gauge under prefix (for example
// "dgserve_http") and returns the middleware factory. reg may be nil, in
// which case the metrics are maintained but exposed nowhere.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	m := &HTTPMetrics{reg: reg, prefix: prefix, routes: make(map[string]*routeMetrics)}
	reg.Gauge(prefix+"_in_flight_requests", "",
		"HTTP requests currently being served.", &m.inFlight)
	return m
}

// statusClasses are the per-route counter children, indexed by status/100-1.
// Registering all five up front keeps the scrape's sample set stable from
// the first request.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Wrap instruments one route. The route string becomes the route label on
// the request counter and latency histogram, so pass the registered pattern
// ("GET /v1/reputation/{subject}"), never the raw request path — label
// cardinality must stay bounded. Wrapping several handlers under one route
// label (GET and POST on the same path) shares that route's instruments.
// Wrap is for server setup; it is not safe for concurrent use.
func (m *HTTPMetrics) Wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{hist: NewHistogram(DefBuckets()...)}
		m.reg.Histogram(m.prefix+"_request_duration_seconds", fmt.Sprintf("route=%q", route),
			"HTTP request latency by route, in seconds.", rm.hist)
		for i, class := range statusClasses {
			m.reg.Counter(m.prefix+"_requests_total",
				fmt.Sprintf("code=%q,route=%q", class, route),
				"HTTP requests served, by route and status class.", &rm.classes[i])
		}
		m.routes[route] = rm
	}
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rm.hist.Observe(time.Since(start).Seconds())
		class := sw.code/100 - 1
		if class < 0 || class >= len(rm.classes) {
			class = len(rm.classes) - 1
		}
		rm.classes[class].Inc()
		m.inFlight.Dec()
	}
}

// statusWriter captures the response status code for the class counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
