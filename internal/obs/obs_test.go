package obs

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	// le=1 holds {0.5, 1}, le=2 holds {1.5}, le=4 holds {3}, +Inf holds {100}.
	var buf bytes.Buffer
	h.write(&buf, "x", "")
	out := buf.String()
	for _, want := range []string{
		`x_bucket{le="1"} 2`, `x_bucket{le="2"} 3`, `x_bucket{le="4"} 4`,
		`x_bucket{le="+Inf"} 5`, `x_sum 106`, `x_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	// The median rank (2.5 of 5) lands in the le=2 bucket; p100 clamps to
	// the highest finite bound because the max sits in +Inf.
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %v, want in (1, 2]", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want clamp to 4", q)
	}
	var nilHist *Histogram
	nilHist.Observe(1) // must not panic
	if nilHist.Quantile(0.5) != 0 || nilHist.Count() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: no panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.Counter("diffgossip_test_ops_total", `kind="write"`, "Test operations.", &c)
	var c2 Counter
	c2.Add(1)
	reg.Counter("diffgossip_test_ops_total", `kind="read"`, "Test operations.", &c2)
	var g Gauge
	g.Set(-2)
	reg.Gauge("diffgossip_test_depth", "", "Test depth.", &g)
	reg.GaugeFunc("diffgossip_test_temp", "", "Test temperature.", func() float64 { return 1.5 })
	reg.GaugeMapFunc("diffgossip_test_state", "peer", "Per-peer state.", func() map[string]float64 {
		return map[string]float64{"b": 2, "a": 1}
	})
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(5)
	reg.Histogram("diffgossip_test_latency_seconds", "", "Test latency.", h)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP diffgossip_test_ops_total Test operations.",
		"# TYPE diffgossip_test_ops_total counter",
		`diffgossip_test_ops_total{kind="read"} 1`,
		`diffgossip_test_ops_total{kind="write"} 3`,
		"diffgossip_test_depth -2",
		"diffgossip_test_temp 1.5",
		`diffgossip_test_state{peer="a"} 1`,
		`diffgossip_test_state{peer="b"} 2`,
		"# TYPE diffgossip_test_latency_seconds histogram",
		`diffgossip_test_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, body)
		}
	}
	// The exposition must round-trip through the repo's own parser.
	fams, err := ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, body)
	}
	if len(fams) != 5 {
		t.Fatalf("parsed %d families, want 5", len(fams))
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	for name, misuse := range map[string]func(r *Registry){
		"bad name": func(r *Registry) {
			r.GaugeFunc("Bad-Name", "", "x.", func() float64 { return 0 })
		},
		"empty help": func(r *Registry) {
			r.GaugeFunc("diffgossip_ok", "", "", func() float64 { return 0 })
		},
		"bad labels": func(r *Registry) {
			r.GaugeFunc("diffgossip_ok", `not labels`, "x.", func() float64 { return 0 })
		},
		"duplicate": func(r *Registry) {
			r.GaugeFunc("diffgossip_ok", "", "x.", func() float64 { return 0 })
			r.GaugeFunc("diffgossip_ok", "", "x.", func() float64 { return 0 })
		},
		"kind mismatch": func(r *Registry) {
			r.GaugeFunc("diffgossip_ok", "", "x.", func() float64 { return 0 })
			r.CounterFunc("diffgossip_ok", `a="b"`, "x.", func() uint64 { return 0 })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			misuse(NewRegistry())
		}()
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	var c Counter
	r.Counter("diffgossip_x_total", "", "x.", &c) // must not panic
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil handler status %d", rec.Code)
	}
}

// TestConcurrentObserveAndScrape races observations against scrapes (run
// under -race in CI) and checks every scrape parses with monotone buckets —
// the no-torn-reads half of the obs contract.
func TestConcurrentObserveAndScrape(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram(DefBuckets()...)
	reg.Histogram("diffgossip_test_lat_seconds", "", "Latency.", h)
	var c Counter
	reg.Counter("diffgossip_test_n_total", "", "Ops.", &c)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := 1e-4
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				c.Inc()
				v *= 1.1
				if v > 20 {
					v = 1e-4
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d torn: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"sample without HELP/TYPE": "foo 1\n",
		"TYPE without HELP":        "# TYPE foo counter\nfoo 1\n",
		"bad type":                 "# HELP foo x\n# TYPE foo widget\n",
		"bad value":                "# HELP foo x\n# TYPE foo gauge\nfoo abc\n",
		"bad name":                 "# HELP foo x\n# TYPE foo gauge\nFOO 1\n",
		"foreign sample":           "# HELP foo x\n# TYPE foo gauge\nbar 1\n",
		"duplicate family":         "# HELP foo x\n# TYPE foo gauge\nfoo 1\n# HELP foo x\n# TYPE foo gauge\n",
		"histogram no +Inf":        "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"histogram not monotone":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
		"histogram count mismatch": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 1\n",
	} {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseExpositionLabels(t *testing.T) {
	in := "# HELP foo x\n# TYPE foo gauge\nfoo{route=\"GET /v1/reputation/{subject}\",code=\"2xx\"} 4\n"
	fams, err := ParseExposition([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	s := fams[0].Samples[0]
	if s.Label("route") != "GET /v1/reputation/{subject}" || s.Label("code") != "2xx" {
		t.Fatalf("labels parsed as %q", s.Labels)
	}
	if s.Value != 4 {
		t.Fatalf("value = %v", s.Value)
	}
}

func TestSetupLogging(t *testing.T) {
	var buf bytes.Buffer
	if err := setupLogging(&buf, "info", "json"); err != nil {
		t.Fatal(err)
	}
	log := Logger("cluster")
	log.Debug("hidden")
	log.Info("peer up", "peer", "127.0.0.1:9080")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked through info level: %s", out)
	}
	if !strings.Contains(out, `"component":"cluster"`) || !strings.Contains(out, `"peer":"127.0.0.1:9080"`) {
		t.Fatalf("log record lacks component scope: %s", out)
	}
	if err := setupLogging(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := setupLogging(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestHTTPMetricsMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "dgserve_http")
	okHandler := m.Wrap("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	failHandler := m.Wrap("GET /fail", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(500)
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		okHandler(rec, httptest.NewRequest("GET", "/ok", nil))
	}
	rec := httptest.NewRecorder()
	failHandler(rec, httptest.NewRequest("GET", "/fail", nil))

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`dgserve_http_requests_total{code="2xx",route="GET /ok"} 3`,
		`dgserve_http_requests_total{code="5xx",route="GET /fail"} 1`,
		`dgserve_http_requests_total{code="4xx",route="GET /ok"} 0`,
		"dgserve_http_in_flight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("middleware exposition lacks %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("middleware exposition does not parse: %v", err)
	}
}
