package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// SetupLogging configures the process-wide slog default logger from the
// -log-level and -log-format flag values: level is one of debug, info, warn,
// error; format is text or json. Output goes to stderr, keeping stdout free
// for machine-readable output (the loadgen report). Call it once at startup;
// libraries then pick up the configuration through Logger.
func SetupLogging(level, format string) error {
	return setupLogging(os.Stderr, level, format)
}

func setupLogging(w io.Writer, level, format string) error {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// Logger returns the default logger scoped to one component — every record
// carries component=<name>, so a grep for component=cluster isolates the
// replication layer. Components that may run before SetupLogging (or in
// tests that never call it) still get a usable logger: slog's own default.
func Logger(component string) *slog.Logger {
	return slog.Default().With("component", component)
}
