// Package obs is the observability layer: zero-dependency metric primitives
// (Counter, Gauge, Histogram), a Registry with Prometheus text-format
// exposition, HTTP middleware, a minimal exposition parser (for tests and the
// doclint -scrape smoke), and component-scoped structured logging on
// log/slog.
//
// The hot-path contract: every instrument mutation is a single atomic
// operation (plus a short bounds scan for histograms) — no locks, no
// allocations — so instrumented code paths keep their 0 allocs/op profile and
// /metrics can be scraped at any rate without perturbing them. Scrapes derive
// histogram cumulative bucket counts and _count from one pass of atomic
// loads, so exposed histograms are always internally monotone even while
// observations race the scrape.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use;
// all methods are safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i]; one extra implicit +Inf bucket catches the
// rest. Buckets store per-bucket (not cumulative) counts; cumulative counts
// and the total are derived from one pass of atomic loads at scrape time, so
// a concurrent scrape always sees a monotone bucket series. Observe is
// lock-free and allocation-free. A nil *Histogram ignores observations, so
// optional instrumentation needs no guards.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum     atomic.Uint64   // float64 bits, advanced by CAS
}

// NewHistogram returns a histogram over the given strictly increasing upper
// bounds. It panics on empty or non-increasing bounds — histogram shapes are
// static configuration, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// DefBuckets is the default latency bucket layout (seconds): 100µs to 10s.
func DefBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous. It panics on start <= 0, factor <= 1, or count < 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Observe records one observation. Safe for concurrent use; no-op on a nil
// receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding that rank, the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp to the
// highest finite bound. It returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum >= rank && c > 0 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-prev)/float64(c)
		}
	}
	return h.bounds[len(h.bounds)-1]
}
