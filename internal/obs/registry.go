package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// collector is one registered child: it writes its sample line(s) given the
// family name and its own label string.
type collector interface {
	write(w io.Writer, name, labels string)
}

type family struct {
	name, help string
	kind       metricKind
	children   map[string]collector // keyed by label string ("" = unlabelled)
	order      []string             // label strings in sorted order
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration happens at component startup (it takes a
// lock and may panic on programmer error); scrapes take the same lock but
// only read atomics, so they never block instrument mutations. A nil
// *Registry ignores registrations and exposes nothing, so components can be
// instrumented unconditionally and wired to a registry only when one exists.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-global registry; package-level Handler exposes it.
// Long-lived processes (dgserve) register here via their Instrument hooks;
// tests build private registries so parallel servers never collide.
var Default = NewRegistry()

// Handler serves the Default registry in Prometheus text format.
func Handler() http.Handler { return Default.Handler() }

var (
	nameRe  = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*$`)
)

// register adds one child collector, creating its family on first use. It
// panics on invalid names or labels, empty help, kind/help mismatches with an
// existing family, and duplicate (name, labels) pairs — all programmer
// errors that must surface at startup, not scrape time.
func (r *Registry) register(name, labels, help string, kind metricKind, c collector) {
	if r == nil {
		return
	}
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if labels != "" && !labelRe.MatchString(labels) {
		panic(fmt.Sprintf("obs: invalid label string %q for %s", labels, name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %s registered without help text", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]collector)}
		r.fams[name] = f
	} else if f.kind != kind || f.help != help {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different type or help", name))
	}
	if _, dup := f.children[labels]; dup {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, labels))
	}
	f.children[labels] = c
	f.order = append(f.order, labels)
	sort.Strings(f.order)
}

// Counter registers a counter child under name with the given label string
// (e.g. `route="/v1/feedback"`, empty for none) and help text.
func (r *Registry) Counter(name, labels, help string, c *Counter) {
	r.register(name, labels, help, kindCounter, funcCollector(func() float64 { return float64(c.Value()) }))
}

// CounterFunc registers a counter whose value is read by f at scrape time —
// the bridge for components that already maintain their own counters (for
// example under a mutex). f must be safe to call concurrently.
func (r *Registry) CounterFunc(name, labels, help string, f func() uint64) {
	r.register(name, labels, help, kindCounter, funcCollector(func() float64 { return float64(f()) }))
}

// Gauge registers a gauge child.
func (r *Registry) Gauge(name, labels, help string, g *Gauge) {
	r.register(name, labels, help, kindGauge, funcCollector(func() float64 { return float64(g.Value()) }))
}

// GaugeFunc registers a gauge whose value is read by f at scrape time. f
// must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.register(name, labels, help, kindGauge, funcCollector(f))
}

// GaugeMapFunc registers a gauge family whose children are produced at
// scrape time: f returns labelValue -> gauge value, and each entry is
// exposed as name{labelKey="labelValue"}. This is the shape for
// dynamic-cardinality gauges — per-peer state, per-reason readiness — where
// the label set is not known at registration.
func (r *Registry) GaugeMapFunc(name, labelKey, help string, f func() map[string]float64) {
	if r != nil && !labelRe.MatchString(labelKey+`="x"`) {
		panic(fmt.Sprintf("obs: invalid label key %q for %s", labelKey, name))
	}
	r.register(name, "", help, kindGauge, mapCollector{key: labelKey, f: f})
}

// Histogram registers a histogram child.
func (r *Registry) Histogram(name, labels, help string, h *Histogram) {
	r.register(name, labels, help, kindHistogram, h)
}

// funcCollector writes one sample line from a float source.
type funcCollector func() float64

func (fc funcCollector) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, fc())
}

// mapCollector expands a labelValue->value map into one sample per entry.
type mapCollector struct {
	key string
	f   func() map[string]float64
}

func (mc mapCollector) write(w io.Writer, name, _ string) {
	m := mc.f()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeSample(w, name, mc.key+`="`+escapeLabelValue(k)+`"`, m[k])
	}
}

// write renders the histogram's bucket/sum/count triplet. All bucket counts
// come from one pass of atomic loads, and both the cumulative buckets and
// _count are derived from that same pass, so the series is monotone and
// internally consistent even while observations race the scrape.
func (h *Histogram) write(w io.Writer, name, labels string) {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		writeSample(w, name+"_bucket", mergeLabels(labels, `le="`+formatFloat(bound)+`"`), float64(cum))
	}
	writeSample(w, name+"_bucket", mergeLabels(labels, `le="+Inf"`), float64(total))
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, float64(total))
}

func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// WriteText renders every family — sorted by name, children sorted by label
// string — in the Prometheus text exposition format. A nil registry writes
// nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, labels := range f.order {
			f.children[labels].write(bw, f.name, labels)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// Handler serves the registry in Prometheus text format. A nil registry
// serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
