package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family from a text exposition.
type Family struct {
	// Name, Help and Type come from the # HELP / # TYPE comment pair.
	Name, Help, Type string
	// Samples are the family's sample lines in input order.
	Samples []Sample
}

// Sample is one exposition sample line.
type Sample struct {
	// Name is the full sample name (for histograms this includes the
	// _bucket/_sum/_count suffix).
	Name string
	// Labels is the raw label string without braces, empty when unlabelled.
	Labels string
	// Value is the parsed sample value.
	Value float64
}

// Label returns the value of the named label, or "" when absent.
func (s Sample) Label(key string) string {
	for _, p := range splitLabels(s.Labels) {
		if k, v, ok := strings.Cut(p, "="); ok && k == key {
			return unquoteLabel(v)
		}
	}
	return ""
}

// ParseExposition parses and validates a Prometheus text-format exposition:
// every sample must belong to a family announced by a preceding # HELP and
// # TYPE pair, metric names must match [a-z_:][a-z0-9_:]*, values must parse
// as floats, and histogram bucket series must be cumulative-monotone with a
// +Inf bucket equal to their _count. It is deliberately minimal — the
// validator behind the repo's exposition tests and the CI /metrics smoke,
// not a Prometheus client.
func ParseExposition(data []byte) ([]Family, error) {
	var (
		fams []Family
		cur  *Family
		seen = make(map[string]bool)
	)
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if seen[name] {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			seen[name] = true
			fams = append(fams, Family{Name: name, Help: help})
			cur = &fams[len(fams)-1]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.Name != name || cur.Type != "" {
				return nil, fmt.Errorf("line %d: TYPE line %q does not follow its HELP line", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
				cur.Type = typ
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || cur.Type == "" || !sampleBelongs(cur, s.Name) {
			return nil, fmt.Errorf("line %d: sample %s outside its HELP/TYPE-announced family", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	for i := range fams {
		f := &fams[i]
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name is valid inside family f.
func sampleBelongs(f *Family, name string) bool {
	if name == f.Name {
		return f.Type != "histogram" && f.Type != "summary"
	}
	switch f.Type {
	case "histogram":
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	case "summary":
		return name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

func parseSampleLine(line string) (Sample, error) {
	name := line
	labels := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return Sample{}, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels = line[:i], line[i+1:j]
		line = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		name, line, ok = strings.Cut(line, " ")
		if !ok {
			return Sample{}, fmt.Errorf("sample line %q has no value", name)
		}
	}
	if !nameRe.MatchString(name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", name)
	}
	val := strings.TrimSpace(line)
	if i := strings.IndexByte(val, ' '); i >= 0 {
		val = val[:i] // optional trailing timestamp
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("sample %s: bad value %q", name, val)
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

// splitLabels splits a raw label string on commas outside quoted values.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var (
		parts   []string
		start   int
		inQuote bool
	)
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, labels[start:])
}

func unquoteLabel(v string) string {
	v = strings.TrimPrefix(strings.TrimSuffix(v, `"`), `"`)
	v = strings.ReplaceAll(v, `\"`, `"`)
	v = strings.ReplaceAll(v, `\n`, "\n")
	return strings.ReplaceAll(v, `\\`, `\`)
}

// stripLabel removes one label pair from a raw label string, preserving the
// order of the rest — the series key for grouping histogram buckets.
func stripLabel(labels, key string) string {
	var rest []string
	for _, p := range splitLabels(labels) {
		if k, _, ok := strings.Cut(p, "="); !ok || k != key {
			rest = append(rest, p)
		}
	}
	return strings.Join(rest, ",")
}

// checkHistogram validates every bucket series in a histogram family:
// le values parse, cumulative counts are monotone in le order, a +Inf
// bucket exists, and it equals the series' _count sample when present.
func checkHistogram(f *Family) error {
	type bucket struct {
		le    float64
		count float64
	}
	series := make(map[string][]bucket)
	counts := make(map[string]float64)
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr := s.Label("le")
			le, err := parseLe(leStr)
			if err != nil {
				return fmt.Errorf("family %s: bad le=%q", f.Name, leStr)
			}
			key := stripLabel(s.Labels, "le")
			series[key] = append(series[key], bucket{le: le, count: s.Value})
		case f.Name + "_count":
			counts[s.Labels] = s.Value
		}
	}
	if len(series) == 0 {
		return fmt.Errorf("family %s: histogram with no buckets", f.Name)
	}
	for key, bs := range series {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("family %s{%s}: no +Inf bucket", f.Name, key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].count < bs[i-1].count {
				return fmt.Errorf("family %s{%s}: bucket counts not monotone at le=%g (%g < %g)",
					f.Name, key, bs[i].le, bs[i].count, bs[i-1].count)
			}
		}
		if c, ok := counts[key]; ok && c != last.count {
			return fmt.Errorf("family %s{%s}: _count %g != +Inf bucket %g", f.Name, key, c, last.count)
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
