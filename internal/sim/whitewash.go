package sim

import (
	"diffgossip/internal/core"
	"diffgossip/internal/p2p"
)

// WhitewashConfig parameterises the whitewashing experiment — the aspect the
// paper flags as open in §4.1.2 (initial trust is set to 0 to blunt
// whitewashing; a higher initial value would need dynamic adjustment). A
// fraction of free riders launders its identity every ResetEvery rounds;
// the experiment sweeps the stranger prior and reports how much service each
// class of peer extracts.
type WhitewashConfig struct {
	// N is the network size (default 150).
	N int
	// Priors is the stranger-prior sweep (default {0, 0.3, 0.6}).
	Priors []float64
	// Rounds is the total simulation length (default 40).
	Rounds int
	// ResetEvery is the whitewashing cadence in rounds (default 5).
	ResetEvery int
	// Seed drives everything.
	Seed uint64
}

// WhitewashRow reports one prior's outcome.
type WhitewashRow struct {
	Prior float64
	// Average delivered service quality per requester class.
	HonestQuality, WhitewasherQuality float64
	// Transfers per class (diagnostic).
	HonestTransfers, WhitewasherTransfers int
	// Advantage is WhitewasherQuality / HonestQuality (the whitewashing
	// payoff; < 1 means laundering does not pay).
	Advantage float64
}

// RunWhitewash measures the whitewashing payoff under each stranger prior.
// With prior 0 (the paper's default) fresh identities start unknown and are
// service-gated, so laundering buys nothing; as the prior rises, whitewashers
// increasingly outrun their record.
func RunWhitewash(cfg WhitewashConfig) ([]WhitewashRow, error) {
	if cfg.N == 0 {
		cfg.N = 150
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if len(cfg.Priors) == 0 {
		cfg.Priors = []float64{0, 0.3, 0.6}
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 40
	}
	if cfg.ResetEvery == 0 {
		cfg.ResetEvery = 5
	}

	var rows []WhitewashRow
	for _, prior := range cfg.Priors {
		g, err := buildPA(cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pcfg := p2p.DefaultConfig(g, cfg.Seed+1)
		pcfg.FreeRiderFrac = 0.25
		pcfg.QueriesPerRound = 0.7
		pcfg.StrangerPrior = prior
		net, err := p2p.NewNetwork(pcfg)
		if err != nil {
			return nil, err
		}

		// Whitewashers: every free rider launders its identity on the
		// cadence.
		var washers []int
		for i := 0; i < net.N(); i++ {
			if net.Peer(i).IsFreeRider() {
				washers = append(washers, i)
			}
		}

		var prev p2p.Stats
		row := WhitewashRow{Prior: prior}
		for round := 1; round <= cfg.Rounds; round++ {
			if err := net.Round(); err != nil {
				net.Close()
				return nil, err
			}
			if round%cfg.ResetEvery == 0 {
				// Refresh the aggregated reputations first (the network
				// keeps them reasonably current), then launder.
				tm := net.TrustSnapshot()
				all, err := core.GlobalAll(g, tm, core.Params{Epsilon: 1e-3, Seed: cfg.Seed + 2})
				if err != nil {
					net.Close()
					return nil, err
				}
				rep := make([]float64, net.N())
				for j := range rep {
					rep[j] = all.Reputation[0][j]
				}
				if err := net.SetGlobalReputation(rep); err != nil {
					net.Close()
					return nil, err
				}
				for _, w := range washers {
					if err := net.ResetIdentity(w); err != nil {
						net.Close()
						return nil, err
					}
				}
			}
			// Only measure the second half, after reputations are live.
			if round == cfg.Rounds/2 {
				prev = net.Stats()
			}
		}
		cur := net.Stats()
		net.Close()

		row.HonestTransfers = cur.TransfersHonest - prev.TransfersHonest
		row.WhitewasherTransfers = cur.TransfersFreeRider - prev.TransfersFreeRider
		if row.HonestTransfers > 0 {
			row.HonestQuality = (cur.QualitySumHonest - prev.QualitySumHonest) / float64(row.HonestTransfers)
		}
		if row.WhitewasherTransfers > 0 {
			row.WhitewasherQuality = (cur.QualitySumFreeRider - prev.QualitySumFreeRider) / float64(row.WhitewasherTransfers)
		}
		if row.HonestQuality > 0 {
			row.Advantage = row.WhitewasherQuality / row.HonestQuality
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WhitewashTable formats the whitewash sweep.
func WhitewashTable(rows []WhitewashRow) *Table {
	t := &Table{
		Title:   "Whitewashing payoff vs stranger prior (extension of §4.1.2)",
		Columns: []string{"prior", "honest_q", "whitewasher_q", "advantage"},
	}
	for _, r := range rows {
		t.Append(r.Prior, r.HonestQuality, r.WhitewasherQuality, r.Advantage)
	}
	return t
}
