package sim

import (
	"fmt"
	"math"

	"diffgossip/internal/baseline"
	"diffgossip/internal/collusion"
	"diffgossip/internal/core"
	"diffgossip/internal/rank"
)

// BaselineCollusionConfig parameterises the cross-scheme comparison: the same
// §5.2 attack thrown at Differential Gossip Trust and at the related-work
// baselines of §2, on identical trust data.
type BaselineCollusionConfig struct {
	// N is the network size (default 200).
	N int
	// Fraction is the colluding share (default 0.3).
	Fraction float64
	// GroupSize is G (default 5).
	GroupSize int
	// TopFrac defines the top set for the survival metric (default 0.2).
	TopFrac float64
	// Seed drives everything.
	Seed uint64
}

// BaselineRow reports one scheme's degradation under the attack.
type BaselineRow struct {
	Scheme string
	// RMSE between the honest and attacked reputation vectors (both
	// normalised to mean 1 so schemes with different scales compare).
	NormRMSE float64
	// TopOverlap is the fraction of the honest top set that survives in
	// the attacked top set (1 = ranking unharmed).
	TopOverlap float64
}

// RunBaselineCollusion measures how each aggregation scheme's output moves
// when the colluders start lying. DGT's confidence weighting should show the
// smallest movement; EigenTrust's pre-trusted peers help it; plain averaging
// (GossipTrust) takes the full hit.
func RunBaselineCollusion(cfg BaselineCollusionConfig) ([]BaselineRow, error) {
	if cfg.N == 0 {
		cfg.N = 200
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 0.3
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 5
	}
	if cfg.TopFrac == 0 {
		cfg.TopFrac = 0.2
	}
	g, err := buildPA(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	honest, err := experimentWorkload(g, 0.2, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	asg, err := collusion.Model{N: cfg.N, Fraction: cfg.Fraction, GroupSize: cfg.GroupSize, Seed: cfg.Seed + 2}.Assign()
	if err != nil {
		return nil, err
	}
	reported, err := asg.Reported(honest)
	if err != nil {
		return nil, err
	}

	k := int(cfg.TopFrac * float64(cfg.N))
	if k < 1 {
		k = 1
	}
	var rows []BaselineRow
	add := func(scheme string, ref, atk []float64) error {
		rmse, err := normalizedRMSE(ref, atk)
		if err != nil {
			return err
		}
		rows = append(rows, BaselineRow{
			Scheme:     scheme,
			NormRMSE:   rmse,
			TopOverlap: overlap(rank.TopK(ref, k), rank.TopK(atk, k)),
		})
		return nil
	}

	// Differential Gossip Trust (variant 4, observer 0's personalised
	// vector — other observers behave alike).
	params := core.Params{Epsilon: 1e-5, Seed: cfg.Seed + 3}
	dgtRef, err := core.GCLRAllFromReports(g, honest, honest, params)
	if err != nil {
		return nil, err
	}
	dgtAtk, err := core.GCLRAllFromReports(g, honest, reported, params)
	if err != nil {
		return nil, err
	}
	if err := add("differential-gossip-trust", dgtRef.Reputation[0], dgtAtk.Reputation[0]); err != nil {
		return nil, err
	}

	// GossipTrust: unweighted rater means of the gossiped values.
	if err := add("gossip-trust",
		baseline.GossipTrustFixedPoint(honest),
		baseline.GossipTrustFixedPoint(reported)); err != nil {
		return nil, err
	}

	// EigenTrust with a handful of honest pre-trusted peers.
	var pre []int
	for i := 0; i < cfg.N && len(pre) < 5; i++ {
		if !asg.Colluder[i] {
			pre = append(pre, i)
		}
	}
	etRef, err := baseline.EigenTrust(honest, baseline.EigenTrustConfig{Alpha: 0.15, PreTrusted: pre})
	if err != nil {
		return nil, err
	}
	etAtk, err := baseline.EigenTrust(reported, baseline.EigenTrustConfig{Alpha: 0.15, PreTrusted: pre})
	if err != nil {
		return nil, err
	}
	if err := add("eigen-trust", etRef.Reputation, etAtk.Reputation); err != nil {
		return nil, err
	}

	// PowerTrust.
	ptRef, err := baseline.PowerTrust(honest, 10)
	if err != nil {
		return nil, err
	}
	ptAtk, err := baseline.PowerTrust(reported, 10)
	if err != nil {
		return nil, err
	}
	if err := add("power-trust", ptRef, ptAtk); err != nil {
		return nil, err
	}
	return rows, nil
}

// normalizedRMSE scales both vectors to mean 1 before comparing, so schemes
// whose reputations live on different scales (EigenTrust sums to 1) compare
// fairly.
func normalizedRMSE(ref, atk []float64) (float64, error) {
	if len(ref) != len(atk) || len(ref) == 0 {
		return 0, fmt.Errorf("sim: vector shape mismatch")
	}
	normalize := func(xs []float64) []float64 {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		out := make([]float64, len(xs))
		if sum == 0 {
			return out
		}
		mean := sum / float64(len(xs))
		for i, x := range xs {
			out[i] = x / mean
		}
		return out
	}
	a, b := normalize(ref), normalize(atk)
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return math.Sqrt(total / float64(len(a))), nil
}

// overlap returns |a ∩ b| / |a| for id slices.
func overlap(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[int]bool, len(b))
	for _, id := range b {
		set[id] = true
	}
	hits := 0
	for _, id := range a {
		if set[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(a))
}

// BaselineTable formats the cross-scheme comparison.
func BaselineTable(rows []BaselineRow) *Table {
	t := &Table{
		Title:   "Collusion resilience across schemes (same attack, same data)",
		Columns: []string{"scheme", "norm_rmse", "top_overlap"},
	}
	for _, r := range rows {
		t.Append(r.Scheme, r.NormRMSE, r.TopOverlap)
	}
	return t
}
