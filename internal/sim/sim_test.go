package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"diffgossip/internal/gossip"
)

func TestRunFig3SmallSweep(t *testing.T) {
	rows, err := RunFig3(Fig3Config{
		Sizes:    []int{100, 500},
		Epsilons: []float64{1e-2, 1e-3},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes × 2 epsilons × 2 default protocols.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("row %+v did not converge", r)
		}
		if r.Steps <= 0 {
			t.Fatalf("row %+v has no steps", r)
		}
	}
	// Headline shape: differential <= normal push at the same (N, ξ).
	byKey := map[[2]float64]map[string]float64{}
	for _, r := range rows {
		k := [2]float64{float64(r.N), r.Epsilon}
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		byKey[k][r.Protocol] = r.Steps
	}
	for k, m := range byKey {
		if m["differential-push"] > m["normal-push"] {
			t.Fatalf("differential slower than normal push at %v: %v", k, m)
		}
	}
}

func TestRunFig3TightensWithEpsilon(t *testing.T) {
	rows, err := RunFig3(Fig3Config{
		Sizes:     []int{1000},
		Epsilons:  []float64{1e-2, 1e-5},
		Protocols: []gossip.Protocol{gossip.DifferentialPush},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Steps < rows[0].Steps {
		t.Fatalf("tighter ξ converged faster: %+v", rows)
	}
}

func TestRunFig3RejectsBadSize(t *testing.T) {
	if _, err := RunFig3(Fig3Config{Sizes: []int{0}}); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunFig4LossSweep(t *testing.T) {
	rows, err := RunFig4(Fig4Config{
		N:         500, // keep the test fast; the CLI uses 10000
		Epsilons:  []float64{1e-3},
		LossProbs: []float64{0, 0.3},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].LostFrac != 0 {
		t.Fatalf("lossless run lost packets: %+v", rows[0])
	}
	if rows[1].LostFrac < 0.2 {
		t.Fatalf("p=0.3 run lost only %v", rows[1].LostFrac)
	}
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("row %+v did not converge", r)
		}
	}
}

func TestRunTable1Structure(t *testing.T) {
	res, err := RunTable1(Table1Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := []int{4, 4, 7, 3, 3, 2, 2, 2, 3, 2}
	wantK := []int{1, 1, 3, 1, 1, 1, 1, 1, 1, 1}
	for i := range wantDeg {
		if res.Degrees[i] != wantDeg[i] {
			t.Fatalf("degree row %v", res.Degrees)
		}
		if res.Ks[i] != wantK[i] {
			t.Fatalf("k row %v", res.Ks)
		}
	}
	if len(res.Values) != 8 {
		t.Fatalf("iterations = %d, want 8", len(res.Values))
	}
	// Like the paper: by iteration 8 all nodes are near the common mean.
	final := res.Values[7]
	for i, v := range final {
		if math.Abs(v-res.TrueMean) > 0.08 {
			t.Fatalf("node %d at itr=8: %v, mean %v", i+1, v, res.TrueMean)
		}
	}
	// And spread shrinks monotonically-ish: last spread < first spread.
	spread := func(vals []float64) float64 {
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	if spread(res.Values[7]) >= spread(res.Values[0]) {
		t.Fatalf("no contraction: itr1 spread %v, itr8 spread %v",
			spread(res.Values[0]), spread(res.Values[7]))
	}
}

func TestRunTable2Shape(t *testing.T) {
	rows, err := RunTable2(Table2Config{
		Sizes:    []int{100, 1000},
		Epsilons: []float64{1e-2, 1e-4},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper reports ~1.1–1.2 messages/node/step; allow a broad
		// band but catch gross accounting bugs.
		if r.MessagesPerStep < 0.8 || r.MessagesPerStep > 3 {
			t.Fatalf("messages per node per step = %v at %+v", r.MessagesPerStep, r)
		}
	}
	// Tighter ξ means more steps, so the amortised overhead must not rise.
	if rows[1].MessagesPerStep > rows[0].MessagesPerStep+0.05 {
		t.Fatalf("overhead grew with tighter ξ: %+v", rows[:2])
	}
}

func TestRunScaling(t *testing.T) {
	rows, err := RunScaling([]int{100, 1000, 10000}, 1e-3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Theorem 5.2 shape: normalised steps should not blow up with N.
	if rows[2].Normalized > 4*rows[0].Normalized+1 {
		t.Fatalf("normalised steps growing: %+v", rows)
	}
}

func TestRunCollusionSmall(t *testing.T) {
	rows, err := RunCollusion(CollusionConfig{
		N:          120,
		Fractions:  []float64{0.2, 0.5},
		GroupSizes: []int{1, 5},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("row %+v did not converge", r)
		}
		if r.AvgRMSErr < 0 {
			t.Fatalf("negative error %+v", r)
		}
		wantLiars := int(math.Round(r.Fraction * 120))
		if r.NumLiars != wantLiars {
			t.Fatalf("liars = %d, want %d", r.NumLiars, wantLiars)
		}
	}
}

func TestCollusionWeightedBeatsUnweighted(t *testing.T) {
	// The paper's core robustness claim: confidence weights damp the
	// collusion error (eq. 17). Compare the same attack under both.
	base := CollusionConfig{
		N:          150,
		Fractions:  []float64{0.4},
		GroupSizes: []int{5},
		Seed:       8,
	}
	weighted, err := RunCollusion(base)
	if err != nil {
		t.Fatal(err)
	}
	unw := base
	unw.Unweighted = true
	unweighted, err := RunCollusion(unw)
	if err != nil {
		t.Fatal(err)
	}
	if weighted[0].AvgRMSErr > unweighted[0].AvgRMSErr {
		t.Fatalf("weighted error %v > unweighted %v",
			weighted[0].AvgRMSErr, unweighted[0].AvgRMSErr)
	}
}

func TestRunCollusionFactor(t *testing.T) {
	rows, err := RunCollusionFactor(150, 0.3, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AnalyticFactor <= 0 || r.AnalyticFactor > 1 {
			t.Fatalf("analytic factor %v out of (0,1]", r.AnalyticFactor)
		}
		if r.MeasuredOld > 0 && r.MeasuredFactor > 1.2 {
			t.Fatalf("weighted error not damped at observer %d: %+v", r.Observer, r)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tbl.Append(1, 2.5)
	tbl.Append("x", true)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "2.5", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n") {
		t.Fatalf("csv header wrong: %q", buf.String())
	}
}

func TestFormattersCoverAllExperiments(t *testing.T) {
	f3, err := RunFig3(Fig3Config{Sizes: []int{100}, Epsilons: []float64{1e-2}, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	f4, err := RunFig4(Fig4Config{N: 100, Epsilons: []float64{1e-2}, LossProbs: []float64{0.1}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	col, err := RunCollusion(CollusionConfig{N: 80, Fractions: []float64{0.2}, GroupSizes: []int{2}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunTable1(Table1Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTable2(Table2Config{Sizes: []int{100}, Epsilons: []float64{1e-2}, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RunScaling([]int{100, 200}, 1e-3, 15)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunCollusionFactor(100, 0.2, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	tables := []*Table{
		Fig3Table(f3), Fig4Table(f4), Fig5Table(col, "fig5"),
		Table1Table(t1), Table2Table(t2), ScalingTable(sc), FactorTable(fr),
	}
	for i, tbl := range tables {
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("table %d rendered empty", i)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("table %d has no rows", i)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.1234: "0.1234",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
