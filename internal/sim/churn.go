package sim

import (
	"fmt"

	"diffgossip/internal/scenario"
)

// ChurnConfig parameterises the churn sweep: a Figure-4-style grid of packet
// loss × membership churn, each cell one deterministic scenario run (10%
// churn means 10% of the initial nodes crash AND 10% join over the run,
// placed uniformly over the timeline). It extends the paper's robustness
// story — Fig. 4 varies loss on a static overlay — with the dynamic
// membership dimension the P2P setting implies.
type ChurnConfig struct {
	// N is the initial network size (default 1000).
	N int
	// Rounds is the scenario length (default 250).
	Rounds int
	// LossProbs is the packet-loss sweep; default {0, 0.1, 0.2, 0.3}.
	LossProbs []float64
	// ChurnFracs is the churn sweep; default {0, 0.05, 0.1, 0.2}.
	ChurnFracs []float64
	// Epsilon is the convergence bound ξ (default 1e-3).
	Epsilon float64
	// Trials averages over seeds (default 1).
	Trials int
	// Seed drives everything.
	Seed uint64
	// Workers spreads the grid across goroutines; 0 (or negative) selects
	// GOMAXPROCS, 1 runs sequentially. Results are identical either way.
	Workers int
}

// ChurnRow is one point of the loss × churn grid.
type ChurnRow struct {
	N          int
	LossProb   float64
	ChurnFrac  float64
	Rounds     float64 // mean rounds executed
	Converged  bool    // false if any trial was still running at the end
	FinalErr   float64 // mean worst deviation from the mass reference
	MaxMassErr float64 // worst mass-conservation drift across trials
	Violations int     // total invariant violations (0 on a healthy engine)
}

// RunChurn runs the churn grid. Each (loss, churn, trial) cell derives its
// own seeds by splitting the sweep seed in enumeration order, so rows are
// bit-identical for any worker count.
func RunChurn(cfg ChurnConfig) ([]ChurnRow, error) {
	if cfg.N == 0 {
		cfg.N = 1000
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 250
	}
	if len(cfg.LossProbs) == 0 {
		cfg.LossProbs = []float64{0, 0.1, 0.2, 0.3}
	}
	if len(cfg.ChurnFracs) == 0 {
		cfg.ChurnFracs = []float64{0, 0.05, 0.1, 0.2}
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}

	nc := len(cfg.ChurnFracs)
	cellCount := len(cfg.LossProbs) * nc * cfg.Trials
	seeds := splitSeeds(cfg.Seed, cellCount)
	partial := make([]*scenario.Result, cellCount)

	err := forEachCell(cfg.Workers, cellCount, func(cell int) error {
		churn := cfg.ChurnFracs[(cell/cfg.Trials)%nc]
		loss := cfg.LossProbs[cell/(cfg.Trials*nc)]
		res, err := scenario.Run(scenario.Config{
			Target:   scenario.TargetScalar,
			N:        cfg.N,
			Rounds:   cfg.Rounds,
			Epsilon:  cfg.Epsilon,
			LossProb: loss,
			Seed:     seeds[cell].gossip,
			Plan:     scenario.Plan{CrashFrac: churn, JoinFrac: churn},
		})
		if err != nil {
			return fmt.Errorf("churn cell loss=%g churn=%g: %w", loss, churn, err)
		}
		partial[cell] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []ChurnRow
	for li, loss := range cfg.LossProbs {
		for ci, churn := range cfg.ChurnFracs {
			row := ChurnRow{N: cfg.N, LossProb: loss, ChurnFrac: churn, Converged: true}
			for trial := 0; trial < cfg.Trials; trial++ {
				res := partial[(li*nc+ci)*cfg.Trials+trial]
				row.Rounds += float64(res.Rounds)
				row.FinalErr += res.FinalErr
				if res.MaxMassErr > row.MaxMassErr {
					row.MaxMassErr = res.MaxMassErr
				}
				row.Violations += len(res.Violations)
				if !res.Converged {
					row.Converged = false
				}
			}
			row.Rounds /= float64(cfg.Trials)
			row.FinalErr /= float64(cfg.Trials)
			rows = append(rows, row)
		}
	}
	return rows, nil
}
