package sim

import (
	"math"
	"testing"
)

func TestRunChurnGrid(t *testing.T) {
	cfg := ChurnConfig{
		N:          150,
		Rounds:     120,
		LossProbs:  []float64{0, 0.2},
		ChurnFracs: []float64{0, 0.1},
		Seed:       17,
	}
	rows, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Fatalf("cell loss=%g churn=%g reported %d invariant violations", r.LossProb, r.ChurnFrac, r.Violations)
		}
		if r.MaxMassErr > 1e-8 {
			t.Fatalf("cell loss=%g churn=%g mass drift %v", r.LossProb, r.ChurnFrac, r.MaxMassErr)
		}
	}
	// The churn-free, loss-free cell must converge close to the reference
	// (ξ=1e-3 stops on rate, so the absolute error is a few ξ-multiples).
	if !rows[0].Converged || rows[0].FinalErr > 0.05 {
		t.Fatalf("baseline cell did not converge cleanly: %+v", rows[0])
	}
}

func TestRunChurnDeterministicAcrossWorkers(t *testing.T) {
	cfg := ChurnConfig{
		N:          100,
		Rounds:     80,
		LossProbs:  []float64{0, 0.1},
		ChurnFracs: []float64{0.05, 0.1},
		Trials:     2,
		Seed:       23,
	}
	cfg.Workers = 1
	seq, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.N != b.N || a.LossProb != b.LossProb || a.ChurnFrac != b.ChurnFrac ||
			a.Rounds != b.Rounds || a.Converged != b.Converged || a.Violations != b.Violations ||
			math.Float64bits(a.FinalErr) != math.Float64bits(b.FinalErr) ||
			math.Float64bits(a.MaxMassErr) != math.Float64bits(b.MaxMassErr) {
			t.Fatalf("row %d differs across worker counts:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestRunChurnValidation(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
}
