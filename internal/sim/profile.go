package sim

import (
	"math"

	"diffgossip/internal/gossip"
)

// ProfileConfig parameterises the convergence-profile experiment: the
// per-step decay of the worst-node error, which makes the paper's
// O((log2 N)² + log2 1/ξ) argument visible — a spreading phase while mass
// reaches every node, then geometric decay.
type ProfileConfig struct {
	// N is the network size (default 10000).
	N int
	// Steps is how many steps to trace (default 120).
	Steps int
	// Protocols to trace (default differential and normal push).
	Protocols []gossip.Protocol
	// Seed drives everything.
	Seed uint64
}

// ProfilePoint is one step of one protocol's trace.
type ProfilePoint struct {
	Protocol string
	Step     int
	// MaxError is max_i |estimate_i − true mean| after the step.
	MaxError float64
}

// RunProfile traces the worst-node error per gossip step.
func RunProfile(cfg ProfileConfig) ([]ProfilePoint, error) {
	if cfg.N == 0 {
		cfg.N = 10000
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if cfg.Steps == 0 {
		cfg.Steps = 120
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []gossip.Protocol{gossip.DifferentialPush, gossip.NormalPush}
	}
	g, err := buildPA(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xs := uniformValues(cfg.N, cfg.Seed+1)
	truth := 0.0
	for _, x := range xs {
		truth += x
	}
	truth /= float64(cfg.N)

	g0 := make([]float64, cfg.N)
	for i := range g0 {
		g0[i] = 1
	}
	var out []ProfilePoint
	for _, proto := range cfg.Protocols {
		e, err := gossip.NewEngine(gossip.Config{
			Graph:    g,
			Protocol: proto,
			Epsilon:  1e-12, // effectively never stop: we drive Steps directly
			Seed:     cfg.Seed + 2,
		}, xs, g0)
		if err != nil {
			return nil, err
		}
		for s := 1; s <= cfg.Steps; s++ {
			e.Step()
			worst := 0.0
			for i := 0; i < cfg.N; i++ {
				if d := math.Abs(e.Estimate(i) - truth); d > worst {
					worst = d
				}
			}
			out = append(out, ProfilePoint{Protocol: proto.String(), Step: s, MaxError: worst})
		}
	}
	return out, nil
}

// ProfileTable formats the trace, thinning to every 5th step for readability.
func ProfileTable(points []ProfilePoint) *Table {
	t := &Table{
		Title:   "Convergence profile: worst-node error per gossip step",
		Columns: []string{"protocol", "step", "max_error"},
	}
	for _, p := range points {
		if p.Step%5 == 0 || p.Step == 1 {
			t.Append(p.Protocol, p.Step, p.MaxError)
		}
	}
	return t
}

// GeometricDecayRate fits the average per-step error contraction over the
// tail of a profile (last half), for the Theorem 5.2 check: differential
// push's rate should be at most normal push's.
func GeometricDecayRate(points []ProfilePoint, protocol string) float64 {
	var series []float64
	for _, p := range points {
		if p.Protocol == protocol {
			series = append(series, p.MaxError)
		}
	}
	if len(series) < 4 {
		return math.NaN()
	}
	half := series[len(series)/2:]
	// Mean of log ratios, ignoring zero/NaN plateaus.
	sum, n := 0.0, 0
	for i := 1; i < len(half); i++ {
		if half[i] > 0 && half[i-1] > 0 {
			sum += math.Log(half[i] / half[i-1])
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}
