package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic text table for CLI rendering.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Append adds one row; cells are stringified with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (no quoting needed: all cells are
// numbers, protocol names or booleans).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Fig3Table formats Figure 3 rows.
func Fig3Table(rows []Fig3Row) *Table {
	t := &Table{
		Title:   "Figure 3: gossip steps to convergence vs N and ξ",
		Columns: []string{"N", "epsilon", "protocol", "steps", "converged"},
	}
	for _, r := range rows {
		t.Append(r.N, fmt.Sprintf("%g", r.Epsilon), r.Protocol, r.Steps, r.Converged)
	}
	return t
}

// Fig4Table formats Figure 4 rows.
func Fig4Table(rows []Fig4Row) *Table {
	t := &Table{
		Title:   "Figure 4: gossip steps vs ξ under packet loss (N=10000)",
		Columns: []string{"loss", "epsilon", "steps", "lost_frac", "converged"},
	}
	for _, r := range rows {
		t.Append(r.LossProb, fmt.Sprintf("%g", r.Epsilon), r.Steps, r.LostFrac, r.Converged)
	}
	return t
}

// Fig5Table formats collusion rows (Figures 5 and 6).
func Fig5Table(rows []CollusionRow, title string) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"N", "colluding%", "group", "avg_rms_err", "liars", "groups"},
	}
	for _, r := range rows {
		t.Append(r.N, fmt.Sprintf("%.0f", r.Fraction*100), r.GroupSize, r.AvgRMSErr, r.NumLiars, r.NumGroups)
	}
	return t
}

// Table1Table formats the worked example like the paper's Table 1.
func Table1Table(res *Table1Result) *Table {
	n := len(res.Degrees)
	cols := make([]string, n+1)
	cols[0] = "node"
	for i := 0; i < n; i++ {
		cols[i+1] = fmt.Sprintf("%d", i+1)
	}
	t := &Table{
		Title:   fmt.Sprintf("Table 1: aggregated value per iteration (true mean %.4f)", res.TrueMean),
		Columns: cols,
	}
	degRow := make([]any, n+1)
	degRow[0] = "degree"
	kRow := make([]any, n+1)
	kRow[0] = "k"
	for i := 0; i < n; i++ {
		degRow[i+1] = res.Degrees[i]
		kRow[i+1] = res.Ks[i]
	}
	t.Append(degRow...)
	t.Append(kRow...)
	for it, vals := range res.Values {
		row := make([]any, n+1)
		row[0] = fmt.Sprintf("itr=%d", it+1)
		for i, v := range vals {
			row[i+1] = v
		}
		t.Append(row...)
	}
	return t
}

// Table2Table formats the overhead table like the paper's Table 2.
func Table2Table(rows []Table2Row) *Table {
	// Pivot: one row per N, one column per ξ.
	epsOrder := []float64{}
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.Epsilon] {
			seen[r.Epsilon] = true
			epsOrder = append(epsOrder, r.Epsilon)
		}
	}
	cols := []string{"N"}
	for _, e := range epsOrder {
		cols = append(cols, fmt.Sprintf("ξ=%g", e))
	}
	t := &Table{
		Title:   "Table 2: messages per node per gossip step",
		Columns: cols,
	}
	byN := map[int]map[float64]float64{}
	var nOrder []int
	for _, r := range rows {
		if _, ok := byN[r.N]; !ok {
			byN[r.N] = map[float64]float64{}
			nOrder = append(nOrder, r.N)
		}
		byN[r.N][r.Epsilon] = r.MessagesPerStep
	}
	for _, n := range nOrder {
		cells := []any{n}
		for _, e := range epsOrder {
			cells = append(cells, byN[n][e])
		}
		t.Append(cells...)
	}
	return t
}

// ChurnTable formats the loss × churn scenario grid.
func ChurnTable(rows []ChurnRow) *Table {
	t := &Table{
		Title:   "Churn: convergence under packet loss × membership churn",
		Columns: []string{"N", "loss", "churn%", "rounds", "converged", "final_err", "mass_drift", "violations"},
	}
	for _, r := range rows {
		t.Append(r.N, r.LossProb, fmt.Sprintf("%.0f", r.ChurnFrac*100), r.Rounds, r.Converged,
			fmt.Sprintf("%.2e", r.FinalErr), fmt.Sprintf("%.2e", r.MaxMassErr), r.Violations)
	}
	return t
}

// ScalingTable formats the Theorem 5.1 flatness check.
func ScalingTable(rows []ScalingRow) *Table {
	t := &Table{
		Title:   "Scaling: steps normalised by (log2 N)^2",
		Columns: []string{"N", "steps", "(log2N)^2", "steps/(log2N)^2"},
	}
	for _, r := range rows {
		t.Append(r.N, r.Steps, r.Log2NSq, r.Normalized)
	}
	return t
}

// FactorTable formats the eq. (17) check.
func FactorTable(rows []FactorRow) *Table {
	t := &Table{
		Title:   "Collusion damping: analytic (eq. 17) vs measured",
		Columns: []string{"observer", "analytic", "err_unweighted", "err_weighted", "measured"},
	}
	for _, r := range rows {
		t.Append(r.Observer, r.AnalyticFactor, r.MeasuredOld, r.MeasuredNew, r.MeasuredFactor)
	}
	return t
}
