package sim

import (
	"bytes"
	"math"
	"testing"
)

func TestRunProfile(t *testing.T) {
	points, err := RunProfile(ProfileConfig{N: 500, Steps: 60, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × 60 steps.
	if len(points) != 120 {
		t.Fatalf("points = %d", len(points))
	}
	// Differential push's error after 60 steps must be below its start and
	// at most normal push's.
	last := map[string]float64{}
	first := map[string]float64{}
	for _, p := range points {
		if p.Step == 1 {
			first[p.Protocol] = p.MaxError
		}
		if p.Step == 60 {
			last[p.Protocol] = p.MaxError
		}
	}
	for proto, l := range last {
		if l >= first[proto] {
			t.Fatalf("%s error did not decay: %v -> %v", proto, first[proto], l)
		}
	}
	if last["differential-push"] > last["normal-push"]*1.5 {
		t.Fatalf("differential error %v well above normal %v after 60 steps",
			last["differential-push"], last["normal-push"])
	}
}

func TestRunProfileValidation(t *testing.T) {
	if _, err := RunProfile(ProfileConfig{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestGeometricDecayRate(t *testing.T) {
	points, err := RunProfile(ProfileConfig{N: 500, Steps: 80, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	rate := GeometricDecayRate(points, "differential-push")
	if math.IsNaN(rate) {
		t.Fatal("no decay rate")
	}
	if rate >= 1 {
		t.Fatalf("tail not contracting: rate %v", rate)
	}
	if math.IsNaN(GeometricDecayRate(nil, "x")) == false {
		t.Fatal("empty series should give NaN")
	}
}

func TestProfileTable(t *testing.T) {
	points := []ProfilePoint{
		{Protocol: "p", Step: 1, MaxError: 0.5},
		{Protocol: "p", Step: 5, MaxError: 0.1},
		{Protocol: "p", Step: 7, MaxError: 0.05},
	}
	var buf bytes.Buffer
	if err := ProfileTable(points).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte("0.5")) {
		t.Fatalf("step 1 missing: %s", out)
	}
}
