// Package sim is the experiment harness: one runner per table and figure of
// the paper's evaluation (§5.3), each returning typed rows that cmd/dgsim and
// the root benchmark suite render. Every runner is deterministic given its
// seed.
//
// Experiment inventory (see DESIGN.md for the full index):
//
//	Table 1 — 10-node example network, per-iteration aggregated values
//	Table 2 — messages per node per gossip step across N × ξ
//	Fig. 3  — gossip steps to convergence vs N for several ξ
//	Fig. 4  — gossip steps vs ξ under packet loss (N = 10,000)
//	Fig. 5  — average RMS collusion error, group collusion
//	Fig. 6  — average RMS collusion error, individual collusion
//	Scaling — steps / (log2 N)² flatness check (Theorems 5.1/5.2)
//	Factor  — analytic vs measured collusion damping (eq. 17)
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// DefaultEpsilons is the ξ sweep the paper's Table 2 and Figures 3–4 use.
var DefaultEpsilons = []float64{1e-2, 1e-3, 1e-4, 1e-5}

// DefaultSizes is the network-size sweep of Figure 3 / Table 2.
var DefaultSizes = []int{100, 500, 1000, 10000, 50000}

// buildPA constructs the standard experiment topology: a preferential
// attachment graph with m = 2 (the paper's minimum for its theorems).
func buildPA(n int, seed uint64) (*graph.Graph, error) {
	return graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: seed})
}

// uniformValues draws one direct-trust value per node — the "every node has
// information to be averaged" setting of §5.1 used by the timing figures.
func uniformValues(n int, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Float64()
	}
	return out
}

// experimentWorkload builds the trust workload used by the collusion
// experiments: overlay neighbours always transact; distant pairs transact
// with the given density.
func experimentWorkload(g *graph.Graph, density float64, seed uint64) (*trust.Matrix, error) {
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N:               g.N(),
		Density:         density,
		NeighborDensity: 1,
		Adjacent:        g.HasEdge,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	return w.Matrix, nil
}

func checkPositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("sim: %s must be positive, got %d", name, v)
	}
	return nil
}

// cellSeeds is the per-configuration randomness of a parallel sweep: each
// independent unit of work (one graph + workload + gossip run family) gets
// its own seeds, derived by splitting a parent stream in enumeration order
// BEFORE any worker starts. Every cell is therefore a pure function of
// (sweep seed, cell index), and sweep results are bit-identical regardless
// of how many workers execute the cells or in what order they finish.
type cellSeeds struct {
	graph, values, gossip uint64
}

// splitSeeds derives count cellSeeds from one parent seed, in order.
func splitSeeds(seed uint64, count int) []cellSeeds {
	parent := rng.New(seed)
	out := make([]cellSeeds, count)
	for i := range out {
		child := parent.Split()
		out[i] = cellSeeds{
			graph:  child.Uint64(),
			values: child.Uint64(),
			gossip: child.Uint64(),
		}
	}
	return out
}

// forEachCell runs fn(cell) for every cell index across the given number of
// workers (0 or negative selects GOMAXPROCS). Each fn call must write only
// into its own pre-allocated result slot; forEachCell returns the error of
// the lowest-indexed failing cell, so error reporting is deterministic too.
func forEachCell(workers, count int, fn func(cell int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for c := 0; c < count; c++ {
			if err := fn(c); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, count)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= count {
					return
				}
				errs[c] = fn(c)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
