package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
)

// benchHTTPLatency is the schema-v6 row: per-request latency of the HTTP
// surface over a real TCP loopback socket. It serves the service through a
// minimal mux with the same route shapes as cmd/dgserve (feedback POST,
// reputation GET), hammers it with GOMAXPROCS concurrent clients — an ingest
// phase, one epoch fold, then a query phase — and reports p50/p95/p99 over
// every successful request, interpolated from a fixed-bucket histogram (the
// same estimator the /metrics histograms use). Where service/N measures the
// library, this row adds JSON codec, router and kernel socket cost.
func benchHTTPLatency(cfg BenchConfig) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+60)
	if err != nil {
		return BenchResult{}, err
	}
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 61, Workers: -1},
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Rater   int     `json:"rater"`
			Subject int     `json:"subject"`
			Value   float64 `json:"value"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seq, err := svc.Submit(req.Rater, req.Subject, req.Value)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"seq":%d}`, seq)
	})
	mux.HandleFunc("GET /v1/reputation/{subject}", func(w http.ResponseWriter, r *http.Request) {
		subject, err := strconv.Atoi(r.PathValue("subject"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		seg, err := svc.SubjectRead(subject)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		rep, err := seg.Reputation(subject)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"subject":%d,"reputation":%g,"epoch":%d}`, subject, rep, seg.Epoch)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	workers := runtime.GOMAXPROCS(0)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers,
		MaxIdleConnsPerHost: workers,
	}}
	hist := obs.NewHistogram(obs.ExponentialBuckets(50e-6, 1.5, 28)...)
	perWorker := 10 * n / workers
	if perWorker < 1 {
		perWorker = 1
	}

	run := func(op func(src *rng.Source) error) error {
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src := rng.New(cfg.Seed + 70 + uint64(w))
				for i := 0; i < perWorker; i++ {
					start := time.Now()
					if err := op(src); err != nil {
						errCh <- err
						return
					}
					hist.Observe(time.Since(start).Seconds())
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}
	drain := func(resp *http.Response, wantStatus int) error {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("bench: http status %d, want %d", resp.StatusCode, wantStatus)
		}
		return nil
	}

	if err := run(func(src *rng.Source) error {
		body := fmt.Sprintf(`{"rater":%d,"subject":%d,"value":%.6f}`,
			src.Intn(n), src.Intn(n), src.Float64())
		resp, err := client.Post(base+"/v1/feedback", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		return drain(resp, http.StatusAccepted)
	}); err != nil {
		return BenchResult{}, err
	}
	view, ran, err := svc.RunEpoch()
	if err != nil {
		return BenchResult{}, err
	}
	if !ran {
		return BenchResult{}, fmt.Errorf("bench: http-latency epoch had nothing to fold")
	}
	if err := run(func(src *rng.Source) error {
		resp, err := client.Get(fmt.Sprintf("%s/v1/reputation/%d", base, src.Intn(n)))
		if err != nil {
			return err
		}
		return drain(resp, http.StatusOK)
	}); err != nil {
		return BenchResult{}, err
	}

	res := BenchResult{
		Name:      fmt.Sprintf("http-latency/N=%d", n),
		N:         n,
		Steps:     view.Steps(),
		Converged: view.Converged(),
		EpochNs:   float64(view.ElapsedNs()),
		Requests:  int64(hist.Count()),
		P50Ns:     int64(hist.Quantile(0.50) * 1e9),
		P95Ns:     int64(hist.Quantile(0.95) * 1e9),
		P99Ns:     int64(hist.Quantile(0.99) * 1e9),
	}
	if view.Steps() > 0 {
		res.NsPerStep = float64(view.ElapsedNs()) / float64(view.Steps())
	}
	return res, nil
}
