package sim

import (
	"bytes"
	"testing"
)

func TestRunBaselineCollusion(t *testing.T) {
	rows, err := RunBaselineCollusion(BaselineCollusionConfig{N: 120, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 schemes", len(rows))
	}
	byScheme := map[string]BaselineRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.NormRMSE < 0 {
			t.Fatalf("negative RMSE %+v", r)
		}
		if r.TopOverlap < 0 || r.TopOverlap > 1 {
			t.Fatalf("overlap out of range %+v", r)
		}
	}
	dgt := byScheme["differential-gossip-trust"]
	gt := byScheme["gossip-trust"]
	// The paper's claim in head-to-head form: weighted DGT moves less than
	// plain averaging under the same attack.
	if dgt.NormRMSE >= gt.NormRMSE {
		t.Fatalf("DGT RMSE %v not below GossipTrust %v", dgt.NormRMSE, gt.NormRMSE)
	}
	if dgt.TopOverlap < gt.TopOverlap-1e-9 {
		t.Fatalf("DGT ranking survival %v below GossipTrust %v", dgt.TopOverlap, gt.TopOverlap)
	}
}

func TestRunBaselineCollusionValidation(t *testing.T) {
	if _, err := RunBaselineCollusion(BaselineCollusionConfig{N: -3}); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestBaselineTable(t *testing.T) {
	rows := []BaselineRow{{Scheme: "x", NormRMSE: 0.1, TopOverlap: 0.9}}
	var buf bytes.Buffer
	if err := BaselineTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestOverlapHelper(t *testing.T) {
	if o := overlap([]int{1, 2, 3}, []int{3, 4, 5}); o < 0.33 || o > 0.34 {
		t.Fatalf("overlap = %v", o)
	}
	if o := overlap(nil, []int{1}); o != 0 {
		t.Fatalf("empty overlap = %v", o)
	}
}

func TestNormalizedRMSE(t *testing.T) {
	// Scale invariance: multiplying one vector by a constant changes
	// nothing after normalisation.
	a := []float64{1, 2, 3}
	b := []float64{2, 4, 6}
	v, err := normalizedRMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-12 {
		t.Fatalf("scale-invariant RMSE = %v", v)
	}
	if _, err := normalizedRMSE(a, []float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
