package sim

import (
	"math"

	"diffgossip/internal/collusion"
	"diffgossip/internal/core"
	"diffgossip/internal/metrics"
	"diffgossip/internal/trust"
)

// CollusionConfig parameterises Figures 5 and 6: the average RMS error
// (eq. 18) that colluding reporters induce in the globally calibrated local
// reputations, across the colluding fraction and group size.
type CollusionConfig struct {
	// N is the network size. The paper does not state the size used for
	// these figures; the harness defaults to 500, where the full N×N
	// reputation matrices of variant 4 stay cheap. Raise it with -n.
	N int
	// Fractions is the colluding-share sweep (default 10%..70%).
	Fractions []float64
	// GroupSizes is the G sweep; {1} reproduces Figure 6.
	GroupSizes []int
	// Density is the non-neighbour transaction density of the workload.
	Density float64
	// Epsilon is the gossip tolerance.
	Epsilon float64
	// Weights are the confidence-weight parameters; zero value uses the
	// library default (a=10, b=1).
	Weights trust.WeightParams
	// Unweighted switches the aggregation to unit weights (a=1) — the
	// GossipTrust-style baseline of eq. (12), for the old-vs-new contrast.
	Unweighted bool
	// Seed drives everything.
	Seed uint64
}

// CollusionRow is one point of Figure 5 or 6.
type CollusionRow struct {
	N          int
	Fraction   float64
	GroupSize  int
	AvgRMSErr  float64
	Converged  bool
	NumGroups  int
	NumLiars   int
	StepsHon   int // gossip steps of the honest (reference) run
	StepsAtk   int // gossip steps of the attacked run
	analytical float64
}

// RunCollusion regenerates Figure 5 (group sizes > 1) or Figure 6
// (GroupSizes = {1}).
func RunCollusion(cfg CollusionConfig) ([]CollusionRow, error) {
	if cfg.N == 0 {
		cfg.N = 500
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if len(cfg.Fractions) == 0 {
		cfg.Fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	}
	if len(cfg.GroupSizes) == 0 {
		cfg.GroupSizes = []int{5, 10, 20}
	}
	if cfg.Density == 0 {
		cfg.Density = 0.2
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-5
	}
	weights := cfg.Weights
	if weights == (trust.WeightParams{}) {
		weights = trust.DefaultWeightParams
	}
	if cfg.Unweighted {
		weights = trust.WeightParams{A: 1, B: 1}
	}

	g, err := buildPA(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	honest, err := experimentWorkload(g, cfg.Density, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	params := core.Params{Epsilon: cfg.Epsilon, Weights: weights, Seed: cfg.Seed + 2, Workers: -1}

	// Reference run: reputations without colluders — shared by every
	// scenario since the honest matrix does not change.
	ref, err := core.GCLRAllFromReports(g, honest, honest, params)
	if err != nil {
		return nil, err
	}

	var rows []CollusionRow
	for _, gs := range cfg.GroupSizes {
		for _, frac := range cfg.Fractions {
			model := collusion.Model{
				N:         cfg.N,
				Fraction:  frac,
				GroupSize: gs,
				Seed:      cfg.Seed + 3 + uint64(gs)*131 + uint64(frac*1000),
			}
			asg, err := model.Assign()
			if err != nil {
				return nil, err
			}
			reported, err := asg.Reported(honest)
			if err != nil {
				return nil, err
			}
			attacked, err := core.GCLRAllFromReports(g, honest, reported, params)
			if err != nil {
				return nil, err
			}
			rms, err := metrics.AvgRMSRelError(attacked.Reputation, ref.Reputation)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CollusionRow{
				N:         cfg.N,
				Fraction:  frac,
				GroupSize: gs,
				AvgRMSErr: rms,
				Converged: ref.Converged && attacked.Converged,
				NumGroups: len(asg.Members),
				NumLiars:  asg.NumColluders(),
				StepsHon:  ref.Steps,
				StepsAtk:  attacked.Steps,
			})
		}
	}
	return rows, nil
}

// FactorRow compares the analytic collusion damping of eq. (17) with the
// measured ratio of weighted to unweighted estimation error at one observer.
type FactorRow struct {
	Observer       int
	AnalyticFactor float64
	MeasuredOld    float64 // mean |Δ| with unit weights
	MeasuredNew    float64 // mean |Δ| with confidence weights
	MeasuredFactor float64 // MeasuredNew / MeasuredOld
}

// RunCollusionFactor checks eq. (17) empirically: for a fixed attack, the
// error of the weighted aggregation should shrink relative to the unweighted
// one by roughly N / (N + Σ(w−1)) at each observer.
func RunCollusionFactor(n int, fraction float64, groupSize int, seed uint64) ([]FactorRow, error) {
	if n == 0 {
		n = 300
	}
	if err := checkPositive("network size", n); err != nil {
		return nil, err
	}
	g, err := buildPA(n, seed)
	if err != nil {
		return nil, err
	}
	honest, err := experimentWorkload(g, 0.2, seed+1)
	if err != nil {
		return nil, err
	}
	asg, err := collusion.Model{N: n, Fraction: fraction, GroupSize: groupSize, Seed: seed + 2}.Assign()
	if err != nil {
		return nil, err
	}
	reported, err := asg.Reported(honest)
	if err != nil {
		return nil, err
	}

	weighted := core.Params{Epsilon: 1e-5, Weights: trust.DefaultWeightParams, Seed: seed + 3}
	unweighted := core.Params{Epsilon: 1e-5, Weights: trust.WeightParams{A: 1, B: 1}, Seed: seed + 3}

	wRef, err := core.GCLRAllFromReports(g, honest, honest, weighted)
	if err != nil {
		return nil, err
	}
	wAtk, err := core.GCLRAllFromReports(g, honest, reported, weighted)
	if err != nil {
		return nil, err
	}
	uRef, err := core.GCLRAllFromReports(g, honest, honest, unweighted)
	if err != nil {
		return nil, err
	}
	uAtk, err := core.GCLRAllFromReports(g, honest, reported, unweighted)
	if err != nil {
		return nil, err
	}

	var rows []FactorRow
	for _, o := range []int{0, n / 4, n / 2, 3 * n / 4, n - 1} {
		var oldSum, newSum float64
		for j := 0; j < n; j++ {
			oldSum += math.Abs(uAtk.Reputation[o][j] - uRef.Reputation[o][j])
			newSum += math.Abs(wAtk.Reputation[o][j] - wRef.Reputation[o][j])
		}
		row := FactorRow{
			Observer:       o,
			AnalyticFactor: collusion.DampingFactor(honest, o, honest.InteractedWith(o), trust.DefaultWeightParams),
			MeasuredOld:    oldSum / float64(n),
			MeasuredNew:    newSum / float64(n),
		}
		if row.MeasuredOld > 0 {
			row.MeasuredFactor = row.MeasuredNew / row.MeasuredOld
		}
		rows = append(rows, row)
	}
	return rows, nil
}
