package sim

import (
	"diffgossip/internal/gossip"
)

// Fig3Config parameterises the Figure 3 experiment: gossip steps to
// convergence across network sizes and error bounds, differential push
// against the normal-push baseline.
type Fig3Config struct {
	// Sizes is the N sweep; default DefaultSizes.
	Sizes []int
	// Epsilons is the ξ sweep; default DefaultEpsilons.
	Epsilons []float64
	// Protocols to compare; default {DifferentialPush, NormalPush}.
	Protocols []gossip.Protocol
	// Trials averages step counts over this many seeds (default 1; the
	// paper reports single runs).
	Trials int
	// Seed drives graph construction, workloads and gossip.
	Seed uint64
}

// Fig3Row is one point of Figure 3.
type Fig3Row struct {
	N         int
	Epsilon   float64
	Protocol  string
	Steps     float64 // mean over trials
	Converged bool    // false if any trial hit the step budget
	Messages  float64 // mean total messages, for cross-checking Table 2
}

// RunFig3 regenerates Figure 3.
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []gossip.Protocol{gossip.DifferentialPush, gossip.NormalPush}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	var rows []Fig3Row
	for _, n := range cfg.Sizes {
		if err := checkPositive("network size", n); err != nil {
			return nil, err
		}
		for _, eps := range cfg.Epsilons {
			for _, proto := range cfg.Protocols {
				row := Fig3Row{N: n, Epsilon: eps, Protocol: proto.String(), Converged: true}
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + uint64(trial)*1000003
					g, err := buildPA(n, seed)
					if err != nil {
						return nil, err
					}
					xs := uniformValues(n, seed+1)
					res, err := gossip.Average(gossip.Config{
						Graph:    g,
						Protocol: proto,
						Epsilon:  eps,
						Seed:     seed + 2,
					}, xs)
					if err != nil {
						return nil, err
					}
					row.Steps += float64(res.Steps)
					row.Messages += float64(res.Messages.Total())
					if !res.Converged {
						row.Converged = false
					}
				}
				row.Steps /= float64(cfg.Trials)
				row.Messages /= float64(cfg.Trials)
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Fig4Config parameterises Figure 4: steps vs ξ under packet loss.
type Fig4Config struct {
	// N is the network size; the paper uses 10,000.
	N int
	// Epsilons is the ξ sweep; default DefaultEpsilons.
	Epsilons []float64
	// LossProbs is the packet-loss sweep; default {0, 0.1, 0.2, 0.3}.
	LossProbs []float64
	// Trials averages over seeds (default 1).
	Trials int
	// Seed drives everything.
	Seed uint64
}

// Fig4Row is one point of Figure 4.
type Fig4Row struct {
	N         int
	Epsilon   float64
	LossProb  float64
	Steps     float64
	Converged bool
	LostFrac  float64 // fraction of pushes dropped (diagnostic)
}

// RunFig4 regenerates Figure 4.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	if cfg.N == 0 {
		cfg.N = 10000
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons
	}
	if len(cfg.LossProbs) == 0 {
		cfg.LossProbs = []float64{0, 0.1, 0.2, 0.3}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	var rows []Fig4Row
	for _, loss := range cfg.LossProbs {
		for _, eps := range cfg.Epsilons {
			row := Fig4Row{N: cfg.N, Epsilon: eps, LossProb: loss, Converged: true}
			var gossipMsgs, lostMsgs float64
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := cfg.Seed + uint64(trial)*7919
				g, err := buildPA(cfg.N, seed)
				if err != nil {
					return nil, err
				}
				xs := uniformValues(cfg.N, seed+1)
				res, err := gossip.Average(gossip.Config{
					Graph:    g,
					Epsilon:  eps,
					LossProb: loss,
					Seed:     seed + 2,
				}, xs)
				if err != nil {
					return nil, err
				}
				row.Steps += float64(res.Steps)
				gossipMsgs += float64(res.Messages.Gossip)
				lostMsgs += float64(res.Messages.Lost)
				if !res.Converged {
					row.Converged = false
				}
			}
			row.Steps /= float64(cfg.Trials)
			if gossipMsgs > 0 {
				row.LostFrac = lostMsgs / gossipMsgs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ScalingRow supports the Theorem 5.1/5.2 empirical check: the ratio
// steps/(log2 N)² should stay bounded as N grows if convergence is
// O((log2 N)² + log2 1/ξ).
type ScalingRow struct {
	N          int
	Steps      int
	Log2NSq    float64
	Normalized float64 // Steps / (log2 N)²
}

// RunScaling measures convergence steps across sizes at fixed ξ.
func RunScaling(sizes []int, epsilon float64, seed uint64) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes
	}
	if epsilon <= 0 {
		epsilon = 1e-4
	}
	var rows []ScalingRow
	for _, n := range sizes {
		g, err := buildPA(n, seed)
		if err != nil {
			return nil, err
		}
		xs := uniformValues(n, seed+1)
		res, err := gossip.Average(gossip.Config{Graph: g, Epsilon: epsilon, Seed: seed + 2}, xs)
		if err != nil {
			return nil, err
		}
		l2 := log2(float64(n))
		rows = append(rows, ScalingRow{
			N:          n,
			Steps:      res.Steps,
			Log2NSq:    l2 * l2,
			Normalized: float64(res.Steps) / (l2 * l2),
		})
	}
	return rows, nil
}
