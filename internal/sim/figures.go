package sim

import (
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
)

// The sweep runners in this file fan their configuration grids out across
// worker goroutines. Determinism is preserved by construction: every cell's
// randomness comes from rng.Source.Split applied in enumeration order before
// the workers start (see splitSeeds), each cell writes only its own result
// slot, and cross-trial aggregation happens sequentially afterwards in trial
// order. Running with Workers=1 and Workers=GOMAXPROCS yields bit-identical
// rows.

// Fig3Config parameterises the Figure 3 experiment: gossip steps to
// convergence across network sizes and error bounds, differential push
// against the normal-push baseline.
type Fig3Config struct {
	// Sizes is the N sweep; default DefaultSizes.
	Sizes []int
	// Epsilons is the ξ sweep; default DefaultEpsilons.
	Epsilons []float64
	// Protocols to compare; default {DifferentialPush, NormalPush}.
	Protocols []gossip.Protocol
	// Trials averages step counts over this many seeds (default 1; the
	// paper reports single runs).
	Trials int
	// Seed drives graph construction, workloads and gossip.
	Seed uint64
	// Workers spreads the (size, trial) grid across goroutines; 0 (or
	// negative) selects GOMAXPROCS, 1 runs sequentially. Results are
	// identical either way. (Note: gossip.Config.Workers uses the opposite
	// convention — there 0 is sequential and negative is GOMAXPROCS.)
	Workers int
}

// Fig3Row is one point of Figure 3.
type Fig3Row struct {
	N         int
	Epsilon   float64
	Protocol  string
	Steps     float64 // mean over trials
	Converged bool    // false if any trial hit the step budget
	Messages  float64 // mean total messages, for cross-checking Table 2
}

// fig3Run is one engine run's contribution to a row, accumulated over trials.
type fig3Run struct {
	steps     float64
	messages  float64
	converged bool
}

// RunFig3 regenerates Figure 3. The unit of parallel work is one
// (size, trial) pair: the cell builds its graph and workload once and runs
// every (ξ, protocol) combination on them, preserving the paired-comparison
// design (both protocols see the same graph, values and gossip seed).
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []gossip.Protocol{gossip.DifferentialPush, gossip.NormalPush}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	for _, n := range cfg.Sizes {
		if err := checkPositive("network size", n); err != nil {
			return nil, err
		}
	}

	ne, np := len(cfg.Epsilons), len(cfg.Protocols)
	cellCount := len(cfg.Sizes) * cfg.Trials
	seeds := splitSeeds(cfg.Seed, cellCount)
	partial := make([][]fig3Run, cellCount) // [cell][eps*np+proto]

	err := forEachCell(cfg.Workers, cellCount, func(cell int) error {
		n := cfg.Sizes[cell/cfg.Trials]
		cs := seeds[cell]
		g, err := buildPA(n, cs.graph)
		if err != nil {
			return err
		}
		xs := uniformValues(n, cs.values)
		runs := make([]fig3Run, ne*np)
		for ei, eps := range cfg.Epsilons {
			for pi, proto := range cfg.Protocols {
				res, err := gossip.Average(gossip.Config{
					Graph:    g,
					Protocol: proto,
					Epsilon:  eps,
					Seed:     cs.gossip,
				}, xs)
				if err != nil {
					return err
				}
				runs[ei*np+pi] = fig3Run{
					steps:     float64(res.Steps),
					messages:  float64(res.Messages.Total()),
					converged: res.Converged,
				}
			}
		}
		partial[cell] = runs
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []Fig3Row
	for si, n := range cfg.Sizes {
		for ei, eps := range cfg.Epsilons {
			for pi, proto := range cfg.Protocols {
				row := Fig3Row{N: n, Epsilon: eps, Protocol: proto.String(), Converged: true}
				for trial := 0; trial < cfg.Trials; trial++ {
					run := partial[si*cfg.Trials+trial][ei*np+pi]
					row.Steps += run.steps
					row.Messages += run.messages
					if !run.converged {
						row.Converged = false
					}
				}
				row.Steps /= float64(cfg.Trials)
				row.Messages /= float64(cfg.Trials)
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Fig4Config parameterises Figure 4: steps vs ξ under packet loss.
type Fig4Config struct {
	// N is the network size; the paper uses 10,000.
	N int
	// Epsilons is the ξ sweep; default DefaultEpsilons.
	Epsilons []float64
	// LossProbs is the packet-loss sweep; default {0, 0.1, 0.2, 0.3}.
	LossProbs []float64
	// Trials averages over seeds (default 1).
	Trials int
	// Seed drives everything.
	Seed uint64
	// Workers spreads the (loss, ξ, trial) grid across goroutines; 0 (or
	// negative) selects GOMAXPROCS, 1 runs sequentially. Results are
	// identical for any worker count. (Note: gossip.Config.Workers uses
	// the opposite convention — there 0 is sequential.)
	Workers int
}

// Fig4Row is one point of Figure 4.
type Fig4Row struct {
	N         int
	Epsilon   float64
	LossProb  float64
	Steps     float64
	Converged bool
	LostFrac  float64 // fraction of pushes dropped (diagnostic)
}

// fig4Run is one engine run's contribution to a row.
type fig4Run struct {
	steps      float64
	gossipMsgs float64
	lostMsgs   float64
	converged  bool
}

// RunFig4 regenerates Figure 4. Seeds are split per trial, so every
// (loss, ξ) pair of the same trial sees the same graph, values and gossip
// stream — the sweep compares loss levels on paired runs, as the sequential
// version did.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	if cfg.N == 0 {
		cfg.N = 10000
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons
	}
	if len(cfg.LossProbs) == 0 {
		cfg.LossProbs = []float64{0, 0.1, 0.2, 0.3}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}

	ne := len(cfg.Epsilons)
	seeds := splitSeeds(cfg.Seed, cfg.Trials)
	// Build each trial's graph and workload once, up front; every
	// (loss, ξ) cell of the trial shares them read-only (the engine never
	// mutates its graph), so the parallel grain stays one cell per run
	// without rebuilding identical PA graphs per cell.
	graphs := make([]*graph.Graph, cfg.Trials)
	values := make([][]float64, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		g, err := buildPA(cfg.N, seeds[trial].graph)
		if err != nil {
			return nil, err
		}
		graphs[trial] = g
		values[trial] = uniformValues(cfg.N, seeds[trial].values)
	}
	cellCount := len(cfg.LossProbs) * ne * cfg.Trials
	partial := make([]fig4Run, cellCount)

	err := forEachCell(cfg.Workers, cellCount, func(cell int) error {
		trial := cell % cfg.Trials
		eps := cfg.Epsilons[(cell/cfg.Trials)%ne]
		loss := cfg.LossProbs[cell/(cfg.Trials*ne)]
		res, err := gossip.Average(gossip.Config{
			Graph:    graphs[trial],
			Epsilon:  eps,
			LossProb: loss,
			Seed:     seeds[trial].gossip,
		}, values[trial])
		if err != nil {
			return err
		}
		partial[cell] = fig4Run{
			steps:      float64(res.Steps),
			gossipMsgs: float64(res.Messages.Gossip),
			lostMsgs:   float64(res.Messages.Lost),
			converged:  res.Converged,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []Fig4Row
	for li, loss := range cfg.LossProbs {
		for ei, eps := range cfg.Epsilons {
			row := Fig4Row{N: cfg.N, Epsilon: eps, LossProb: loss, Converged: true}
			var gossipMsgs, lostMsgs float64
			for trial := 0; trial < cfg.Trials; trial++ {
				run := partial[(li*ne+ei)*cfg.Trials+trial]
				row.Steps += run.steps
				gossipMsgs += run.gossipMsgs
				lostMsgs += run.lostMsgs
				if !run.converged {
					row.Converged = false
				}
			}
			row.Steps /= float64(cfg.Trials)
			if gossipMsgs > 0 {
				row.LostFrac = lostMsgs / gossipMsgs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ScalingRow supports the Theorem 5.1/5.2 empirical check: the ratio
// steps/(log2 N)² should stay bounded as N grows if convergence is
// O((log2 N)² + log2 1/ξ).
type ScalingRow struct {
	N          int
	Steps      int
	Log2NSq    float64
	Normalized float64 // Steps / (log2 N)²
}

// RunScaling measures convergence steps across sizes at fixed ξ, one worker
// per size.
func RunScaling(sizes []int, epsilon float64, seed uint64) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes
	}
	if epsilon <= 0 {
		epsilon = 1e-4
	}
	for _, n := range sizes {
		if err := checkPositive("network size", n); err != nil {
			return nil, err
		}
	}
	seeds := splitSeeds(seed, len(sizes))
	rows := make([]ScalingRow, len(sizes))
	err := forEachCell(0, len(sizes), func(cell int) error {
		n := sizes[cell]
		cs := seeds[cell]
		g, err := buildPA(n, cs.graph)
		if err != nil {
			return err
		}
		xs := uniformValues(n, cs.values)
		res, err := gossip.Average(gossip.Config{Graph: g, Epsilon: epsilon, Seed: cs.gossip}, xs)
		if err != nil {
			return err
		}
		l2 := log2(float64(n))
		rows[cell] = ScalingRow{
			N:          n,
			Steps:      res.Steps,
			Log2NSq:    l2 * l2,
			Normalized: float64(res.Steps) / (l2 * l2),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
