package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// The schema-v9 http-front-door rows measure the production ingress path
// (internal/httpapi — the exact handler stack cmd/dgserve serves, not a
// bench-only mux) over a real loopback socket:
//
//   - ingest=single / ingest=batch: accepted ratings per second for the same
//     workload arriving as one-rating POSTs versus 256-rating batches, both
//     against a WAL-backed service under the production durability policy
//     (per-entry flush for singles, one amortized fsync per batch). The ratio
//     is the batch-ingest claim: one request and one disk barrier per few
//     hundred ratings beats per-rating HTTP round trips by well over 5×.
//   - overload=nobp / overload=bp: p99 read latency while batch writers
//     flood every core. The nobp run admits everything (MaxPending
//     unlimited), so reads queue behind JSON decode and fsync work; the bp
//     run sheds with 429 before the body is read once the pending window
//     fills, so the same reader workload sees a far shorter tail. The p99
//     ratio is the backpressure claim.
//   - reads=conditional: If-None-Match pollers against folded state —
//     requests, 304 ratio, and the latency of the ETag short-circuit path.
//   - cluster=3: three federated replicas behind three front doors, a mixed
//     single/batch workload with pinned LWW stamps split across them,
//     anti-entropy to watermark convergence, then an epoch forced through
//     each door and every replica's NDJSON dump compared bit-for-bit.
const frontDoorBatch = 256

// benchFrontDoor runs the four schema-v9 row families above.
func benchFrontDoor(cfg BenchConfig) ([]BenchResult, error) {
	var rows []BenchResult
	for _, batch := range []int{1, frontDoorBatch} {
		row, err := benchFrontDoorIngest(cfg, batch)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, bp := range []bool{false, true} {
		row, err := benchFrontDoorOverload(cfg, bp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	row, err := benchFrontDoorConditional(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	if row, err = benchFrontDoorCluster(cfg); err != nil {
		return nil, err
	}
	return append(rows, row), nil
}

// frontDoorServe binds srv to a loopback listener and returns the base URL
// plus a shutdown func.
func frontDoorServe(srv *httpapi.Server) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// frontDoorClient returns an HTTP client with enough idle connections that
// every bench worker keeps one alive.
func frontDoorClient(conns int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
	}}
}

// frontDoorWorkers is the bench's client concurrency: every hardware thread,
// but at least 4 so the overload rows saturate even a 1-CPU CI host.
func frontDoorWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return w
}

// drainStatus discards a response body and checks the status.
func drainStatus(resp *http.Response, wantStatus int) error {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("bench: http status %d, want %d", resp.StatusCode, wantStatus)
	}
	return nil
}

// appendRatingJSON appends one feedback object (without LWW stamp) to buf.
func appendRatingJSON(buf *bytes.Buffer, src *rng.Source, n int) {
	fmt.Fprintf(buf, `{"rater":%d,"subject":%d,"value":%.6f}`, src.Intn(n), src.Intn(n), src.Float64())
}

// benchFrontDoorIngest measures accepted ratings per second for one ingest
// shape — batch=1 single POSTs, batch>1 array bodies — against a WAL-backed
// service, so both rows pay the production durability policy and the ratio
// between them isolates the per-request overhead batching amortizes.
func benchFrontDoorIngest(cfg BenchConfig, batch int) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+90)
	if err != nil {
		return BenchResult{}, err
	}
	dir, err := os.MkdirTemp("", "dgbench-frontdoor-*")
	if err != nil {
		return BenchResult{}, err
	}
	defer os.RemoveAll(dir)
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 91, Workers: -1},
		Dir:    dir,
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	// MaxPending is lifted: this row measures accepted throughput, and the
	// whole workload fits far inside the default window anyway.
	base, stop, err := frontDoorServe(httpapi.New(httpapi.Config{Service: svc, MaxPending: -1}))
	if err != nil {
		return BenchResult{}, err
	}
	defer stop()

	workers := frontDoorWorkers()
	client := frontDoorClient(workers)
	total := 8 * n
	perWorker := total / workers
	if perWorker < batch {
		perWorker = batch
	}
	hist := obs.NewHistogram(obs.ExponentialBuckets(10e-6, 1.5, 32)...)
	var accepted, requests atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed + 92 + uint64(w))
			var body bytes.Buffer
			for sent := 0; sent < perWorker; sent += batch {
				body.Reset()
				url := base + "/v1/feedback"
				if batch > 1 {
					url = base + "/v1/feedback/batch"
					body.WriteByte('[')
					for i := 0; i < batch; i++ {
						if i > 0 {
							body.WriteByte(',')
						}
						appendRatingJSON(&body, src, n)
					}
					body.WriteByte(']')
				} else {
					appendRatingJSON(&body, src, n)
				}
				reqStart := time.Now()
				resp, err := client.Post(url, "application/json", &body)
				if err != nil {
					errCh <- err
					return
				}
				if err := drainStatus(resp, http.StatusAccepted); err != nil {
					errCh <- err
					return
				}
				hist.Observe(time.Since(reqStart).Seconds())
				requests.Add(1)
				accepted.Add(int64(batch))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return BenchResult{}, err
	default:
	}

	shape := "single"
	if batch > 1 {
		shape = "batch"
	}
	return BenchResult{
		Name:            "http-front-door/ingest=" + shape,
		N:               n,
		Converged:       true,
		IngestPerSec:    float64(accepted.Load()) / elapsed.Seconds(),
		AcceptedRatings: accepted.Load(),
		Requests:        requests.Load(),
		P50Ns:           int64(hist.Quantile(0.50) * 1e9),
		P95Ns:           int64(hist.Quantile(0.95) * 1e9),
		P99Ns:           int64(hist.Quantile(0.99) * 1e9),
	}, nil
}

// frontDoorOverloadPending is the bp row's pending-window cap: small enough
// that the flood fills it within its first few batches, so nearly every
// subsequent write is refused before its body is read.
const frontDoorOverloadPending = 2048

// benchFrontDoorOverload measures read tail latency while batch writers
// flood every worker slot. bp=false admits every batch (decode + WAL append
// + fsync on the server, with readers competing for the same cores); bp=true
// caps the pending window so the same flood is answered 429 from one atomic
// load. Identical reader workload, identical writer behavior — only the
// admission policy differs, so the p99 ratio isolates what shedding buys.
func benchFrontDoorOverload(cfg BenchConfig, bp bool) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+95)
	if err != nil {
		return BenchResult{}, err
	}
	dir, err := os.MkdirTemp("", "dgbench-overload-*")
	if err != nil {
		return BenchResult{}, err
	}
	defer os.RemoveAll(dir)
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 96, Workers: -1},
		Dir:    dir,
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	// Seed folded state so reads serve real reputations.
	src := rng.New(cfg.Seed + 97)
	for j := 0; j < n; j++ {
		if _, err := svc.Submit(src.Intn(n), j, src.Float64()); err != nil {
			return BenchResult{}, err
		}
	}
	if _, _, err := svc.RunEpoch(); err != nil {
		return BenchResult{}, err
	}
	maxPending := -1
	if bp {
		maxPending = frontDoorOverloadPending
	}
	base, stop, err := frontDoorServe(httpapi.New(httpapi.Config{
		Service: svc, MaxPending: maxPending, EpochEvery: time.Second,
	}))
	if err != nil {
		return BenchResult{}, err
	}
	defer stop()

	const writeBatch = 128
	const readers = 2
	writers := frontDoorWorkers()
	client := frontDoorClient(writers + readers)
	readsPerReader := 6 * n
	hist := obs.NewHistogram(obs.ExponentialBuckets(10e-6, 1.5, 32)...)
	var accepted, shed, reads atomic.Int64
	var stopFlood atomic.Bool
	errCh := make(chan error, writers+readers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed + 98 + uint64(w))
			var body bytes.Buffer
			for !stopFlood.Load() {
				body.Reset()
				body.WriteByte('[')
				for i := 0; i < writeBatch; i++ {
					if i > 0 {
						body.WriteByte(',')
					}
					appendRatingJSON(&body, src, n)
				}
				body.WriteByte(']')
				resp, err := client.Post(base+"/v1/feedback/batch", "application/json", &body)
				if err != nil {
					errCh <- err
					return
				}
				status := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case status == http.StatusAccepted:
					accepted.Add(writeBatch)
				case status == http.StatusTooManyRequests && bp:
					shed.Add(1)
				default:
					errCh <- fmt.Errorf("bench: overload write status %d (bp=%v)", status, bp)
					return
				}
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			src := rng.New(cfg.Seed + 99 + uint64(writers+r))
			for i := 0; i < readsPerReader; i++ {
				reqStart := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/v1/reputation/%d", base, src.Intn(n)))
				if err != nil {
					errCh <- err
					return
				}
				if err := drainStatus(resp, http.StatusOK); err != nil {
					errCh <- err
					return
				}
				hist.Observe(time.Since(reqStart).Seconds())
				reads.Add(1)
			}
		}(r)
	}
	rwg.Wait()
	stopFlood.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return BenchResult{}, err
	default:
	}
	if bp && shed.Load() == 0 {
		return BenchResult{}, fmt.Errorf("bench: backpressure run shed nothing — the flood never filled the window")
	}

	name := "http-front-door/overload=nobp"
	if bp {
		name = "http-front-door/overload=bp"
	}
	return BenchResult{
		Name:            name,
		N:               n,
		Converged:       true,
		IngestPerSec:    float64(accepted.Load()) / elapsed.Seconds(),
		AcceptedRatings: accepted.Load(),
		ShedRequests:    shed.Load(),
		Requests:        reads.Load(),
		P50Ns:           int64(hist.Quantile(0.50) * 1e9),
		P95Ns:           int64(hist.Quantile(0.95) * 1e9),
		P99Ns:           int64(hist.Quantile(0.99) * 1e9),
	}, nil
}

// benchFrontDoorConditional measures the conditional-read path: pollers that
// remember each subject's ETag and send If-None-Match. With no fold in
// between, every repeat poll of a subject is a 304 served from one atomic
// load and a string compare — the row records how much of the workload
// short-circuited and what the 304 path costs.
func benchFrontDoorConditional(cfg BenchConfig) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+100)
	if err != nil {
		return BenchResult{}, err
	}
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 101, Workers: -1},
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	src := rng.New(cfg.Seed + 102)
	for j := 0; j < n; j++ {
		if _, err := svc.Submit(src.Intn(n), j, src.Float64()); err != nil {
			return BenchResult{}, err
		}
	}
	if _, _, err := svc.RunEpoch(); err != nil {
		return BenchResult{}, err
	}
	base, stop, err := frontDoorServe(httpapi.New(httpapi.Config{Service: svc}))
	if err != nil {
		return BenchResult{}, err
	}
	defer stop()

	workers := frontDoorWorkers()
	client := frontDoorClient(workers)
	perWorker := 10 * n / workers
	if perWorker < 1 {
		perWorker = 1
	}
	hist := obs.NewHistogram(obs.ExponentialBuckets(10e-6, 1.5, 32)...)
	var requests, notModified atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed + 103 + uint64(w))
			etags := make(map[int]string)
			for i := 0; i < perWorker; i++ {
				subject := src.Intn(n)
				req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/reputation/%d", base, subject), nil)
				if err != nil {
					errCh <- err
					return
				}
				tag, cached := etags[subject]
				if cached {
					req.Header.Set("If-None-Match", tag)
				}
				reqStart := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errCh <- err
					return
				}
				status := resp.StatusCode
				etag := resp.Header.Get("ETag")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case status == http.StatusOK:
					etags[subject] = etag
				case status == http.StatusNotModified && cached:
					notModified.Add(1)
				default:
					errCh <- fmt.Errorf("bench: conditional read status %d (cached=%v)", status, cached)
					return
				}
				hist.Observe(time.Since(reqStart).Seconds())
				requests.Add(1)
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return BenchResult{}, err
	default:
	}
	if notModified.Load() == 0 {
		return BenchResult{}, fmt.Errorf("bench: conditional readers never hit a 304")
	}
	return BenchResult{
		Name:        "http-front-door/reads=conditional",
		N:           n,
		Converged:   true,
		Requests:    requests.Load(),
		NotModified: notModified.Load(),
		P50Ns:       int64(hist.Quantile(0.50) * 1e9),
		P95Ns:       int64(hist.Quantile(0.95) * 1e9),
		P99Ns:       int64(hist.Quantile(0.99) * 1e9),
	}, nil
}

// benchFrontDoorCluster drives the sustained mixed workload through three
// federated replicas, each behind its own front door: ratings with pinned
// LWW stamps arrive as a deterministic single/batch mix split across the
// doors, anti-entropy runs to watermark agreement (timed — the converge_ns
// of the row), an epoch is forced through each door's POST /v1/epoch, and
// every replica's full NDJSON reputation dump must agree bit-for-bit.
func benchFrontDoorCluster(cfg BenchConfig) (BenchResult, error) {
	const n = 256
	const replicas = 3
	const clusterBatch = 64
	g, err := buildPA(n, cfg.Seed+105)
	if err != nil {
		return BenchResult{}, err
	}
	hub := transport.NewHub()
	origins := [replicas]string{"fd-0", "fd-1", "fd-2"}
	var svcs [replicas]*service.Service
	var nodes [replicas]*cluster.Node
	var bases [replicas]string
	for i := 0; i < replicas; i++ {
		svc, err := service.New(service.Config{
			Graph:          g,
			Params:         core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 106, Workers: 1},
			Shards:         4,
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         origins[i],
		})
		if err != nil {
			return BenchResult{}, err
		}
		defer svc.Close()
		ep, err := hub.Endpoint(origins[i])
		if err != nil {
			return BenchResult{}, err
		}
		defer ep.Close()
		var peers []string
		for j := 0; j < replicas; j++ {
			if j != i {
				peers = append(peers, origins[j])
			}
		}
		node, err := cluster.New(cluster.Config{Service: svc, Transport: ep, Peers: peers})
		if err != nil {
			return BenchResult{}, err
		}
		defer node.Close()
		base, stop, err := frontDoorServe(httpapi.New(httpapi.Config{Service: svc, Node: node}))
		if err != nil {
			return BenchResult{}, err
		}
		defer stop()
		svcs[i], nodes[i], bases[i] = svc, node, base
	}

	// Mixed ingest: every fifth rating goes out as a single POST, the rest
	// buffer into per-door JSON-lines batches. Stamps are the rating index,
	// so LWW resolves identically on every replica regardless of arrival.
	client := frontDoorClient(replicas)
	src := rng.New(cfg.Seed + 107)
	total := 10 * n
	var requests, accepted int64
	var batchBufs [replicas]bytes.Buffer
	var batchLens [replicas]int
	flush := func(door int) error {
		if batchLens[door] == 0 {
			return nil
		}
		resp, err := client.Post(bases[door]+"/v1/feedback/batch", "application/json", &batchBufs[door])
		if err != nil {
			return err
		}
		if err := drainStatus(resp, http.StatusAccepted); err != nil {
			return err
		}
		requests++
		accepted += int64(batchLens[door])
		batchBufs[door].Reset()
		batchLens[door] = 0
		return nil
	}
	ingestStart := time.Now()
	for k := 0; k < total; k++ {
		door := k % replicas
		line := fmt.Sprintf(`{"rater":%d,"subject":%d,"value":%.6f,"unix_nano":%d}`,
			src.Intn(n), src.Intn(n), src.Float64(), k+1)
		if k%5 == 0 {
			resp, err := client.Post(bases[door]+"/v1/feedback", "application/json", bytes.NewReader([]byte(line)))
			if err != nil {
				return BenchResult{}, err
			}
			if err := drainStatus(resp, http.StatusAccepted); err != nil {
				return BenchResult{}, err
			}
			requests++
			accepted++
			continue
		}
		batchBufs[door].WriteString(line)
		batchBufs[door].WriteByte('\n')
		if batchLens[door]++; batchLens[door] == clusterBatch {
			if err := flush(door); err != nil {
				return BenchResult{}, err
			}
		}
	}
	for door := 0; door < replicas; door++ {
		if err := flush(door); err != nil {
			return BenchResult{}, err
		}
	}
	ingestElapsed := time.Since(ingestStart)

	// Anti-entropy to watermark agreement: every replica must reach every
	// other's last local sequence number (origin streams share the ledger's
	// global sequence space, so the target is the stream mark, not a count).
	var want [replicas]uint64
	for i := range svcs {
		want[i] = svcs[i].LocalStreamMark()
	}
	converged := func() bool {
		for i := range nodes {
			marks := nodes[i].Stats().Marks
			for j := range origins {
				if j != i && marks[origins[j]] < want[j] {
					return false
				}
			}
		}
		return true
	}
	rounds := 0
	convStart := time.Now()
	for !converged() {
		for i := range nodes {
			nodes[i].Exchange()
		}
		for pass := 0; pass < 2; pass++ {
			for i := range nodes {
				nodes[i].Drain()
			}
		}
		if rounds++; rounds > 128 {
			return BenchResult{}, fmt.Errorf("bench: 3-replica cluster never converged")
		}
	}
	convergeNs := time.Since(convStart).Nanoseconds()

	// Fold through each door, then demand bit-identical dumps: same pinned
	// stamps, same fixed epoch seed — any divergence is an ingress bug.
	var dumps [replicas][]float64
	for i := range bases {
		resp, err := client.Post(bases[i]+"/v1/epoch", "application/json", nil)
		if err != nil {
			return BenchResult{}, err
		}
		if err := drainStatus(resp, http.StatusOK); err != nil {
			return BenchResult{}, err
		}
		if dumps[i], err = frontDoorDump(client, bases[i], n); err != nil {
			return BenchResult{}, err
		}
	}
	for i := 1; i < replicas; i++ {
		for j := 0; j < n; j++ {
			if dumps[i][j] != dumps[0][j] {
				return BenchResult{}, fmt.Errorf("bench: replica %d disagrees on subject %d: %v vs %v",
					i, j, dumps[i][j], dumps[0][j])
			}
		}
	}
	return BenchResult{
		Name:            "http-front-door/cluster=3",
		N:               n,
		Steps:           rounds,
		Converged:       true,
		IngestPerSec:    float64(accepted) / ingestElapsed.Seconds(),
		AcceptedRatings: accepted,
		Requests:        requests,
		ConvergeNs:      float64(convergeNs),
		NsPerStep:       float64(convergeNs) / float64(rounds),
	}, nil
}

// frontDoorDump streams GET /v1/reputations and returns the per-subject
// reputations, verifying the dump covers exactly [0, n) in order.
func frontDoorDump(client *http.Client, base string, n int) ([]float64, error) {
	resp, err := client.Get(base + "/v1/reputations")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bench: dump status %d", resp.StatusCode)
	}
	reps := make([]float64, 0, n)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line httpapi.ReputationResponse
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("bench: bad dump line %q: %w", sc.Text(), err)
		}
		if line.Subject != len(reps) {
			return nil, fmt.Errorf("bench: dump out of order: subject %d at line %d", line.Subject, len(reps))
		}
		reps = append(reps, line.Reputation)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reps) != n {
		return nil, fmt.Errorf("bench: dump covered %d subjects, want %d", len(reps), n)
	}
	return reps, nil
}
