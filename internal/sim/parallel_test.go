package sim

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestSweepsBitIdenticalAcrossWorkers pins the parallel harness contract:
// because every cell's randomness is split off deterministically before
// dispatch, sweep results are bit-identical for any worker count.
func TestSweepsBitIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	t.Run("fig3", func(t *testing.T) {
		base := Fig3Config{
			Sizes:    []int{60, 120},
			Epsilons: []float64{1e-2, 1e-3},
			Trials:   2,
			Seed:     21,
		}
		var want []Fig3Row
		for i, w := range workerCounts {
			cfg := base
			cfg.Workers = w
			rows, err := RunFig3(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rows
			} else if !reflect.DeepEqual(rows, want) {
				t.Fatalf("workers=%d: rows differ from sequential run\n%+v\nvs\n%+v", w, rows, want)
			}
		}
	})

	t.Run("fig4", func(t *testing.T) {
		base := Fig4Config{
			N:         80,
			Epsilons:  []float64{1e-2, 1e-3},
			LossProbs: []float64{0, 0.2},
			Trials:    2,
			Seed:      22,
		}
		var want []Fig4Row
		for i, w := range workerCounts {
			cfg := base
			cfg.Workers = w
			rows, err := RunFig4(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rows
			} else if !reflect.DeepEqual(rows, want) {
				t.Fatalf("workers=%d: rows differ from sequential run", w)
			}
		}
	})

	t.Run("table2", func(t *testing.T) {
		base := Table2Config{
			Sizes:    []int{60, 120, 200},
			Epsilons: []float64{1e-2, 1e-3},
			Seed:     23,
		}
		var want []Table2Row
		for i, w := range workerCounts {
			cfg := base
			cfg.Workers = w
			rows, err := RunTable2(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rows
			} else if !reflect.DeepEqual(rows, want) {
				t.Fatalf("workers=%d: rows differ from sequential run", w)
			}
		}
	})
}

// TestFig3PairedProtocols checks that the parallel restructure kept the
// paired-comparison design: both protocols of a cell must see the same graph
// and workload, which the step-count ordering (differential ≤ normal on PA
// graphs) relies on.
func TestFig3PairedProtocols(t *testing.T) {
	rows, err := RunFig3(Fig3Config{
		Sizes:    []int{150},
		Epsilons: []float64{1e-3},
		Seed:     31,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Protocol != "differential-push" || rows[1].Protocol != "normal-push" {
		t.Fatalf("unexpected protocol order: %+v", rows)
	}
}

func TestForEachCellReportsLowestError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 3} {
		err := forEachCell(workers, 8, func(cell int) error {
			if cell >= 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachCellVisitsEveryCell(t *testing.T) {
	var visited atomic.Int64
	seen := make([]atomic.Bool, 37)
	if err := forEachCell(5, 37, func(cell int) error {
		if seen[cell].Swap(true) {
			t.Errorf("cell %d visited twice", cell)
		}
		visited.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 37 {
		t.Fatalf("visited %d cells, want 37", visited.Load())
	}
}
