package sim

import (
	"bytes"
	"testing"
)

func TestRunWhitewash(t *testing.T) {
	rows, err := RunWhitewash(WhitewashConfig{
		N:          100,
		Priors:     []float64{0, 0.6},
		Rounds:     24,
		ResetEvery: 4,
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HonestTransfers == 0 {
			t.Fatalf("no honest transfers measured at prior %v", r.Prior)
		}
		if r.HonestQuality <= 0 || r.HonestQuality > 1 {
			t.Fatalf("honest quality %v at prior %v", r.HonestQuality, r.Prior)
		}
	}
	// The headline: a higher stranger prior raises the whitewashing payoff
	// (the paper's reason for starting identities at zero).
	if rows[0].Advantage >= 1 {
		t.Fatalf("prior 0: whitewashing paid off (advantage %v)", rows[0].Advantage)
	}
	if rows[1].Advantage <= rows[0].Advantage {
		t.Fatalf("higher prior did not raise the payoff: %v vs %v",
			rows[1].Advantage, rows[0].Advantage)
	}
}

func TestRunWhitewashValidation(t *testing.T) {
	if _, err := RunWhitewash(WhitewashConfig{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
}

func TestWhitewashTable(t *testing.T) {
	rows := []WhitewashRow{{Prior: 0.3, HonestQuality: 0.5, WhitewasherQuality: 0.2, Advantage: 0.4}}
	var buf bytes.Buffer
	if err := WhitewashTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
