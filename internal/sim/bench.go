package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"diffgossip/internal/gossip"
	"diffgossip/internal/rng"
)

// BenchConfig parameterises the perf-trajectory benchmark that cmd/dgsim's
// -bench-json flag runs: one Fig3/Table2-class scalar workload at large N and
// two vector workloads (dense and sparse) at moderate N, each driven to
// convergence while measuring wall time, message overhead and heap
// allocations.
type BenchConfig struct {
	// N is the scalar workload size (default 10,000; Figure 3's upper
	// midrange).
	N int
	// VectorN is the vector workload size (default 1,000).
	VectorN int
	// Epsilon is the convergence bound (default 1e-3).
	Epsilon float64
	// Seed drives everything.
	Seed uint64
}

// BenchResult is one benchmark row of the perf report.
type BenchResult struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Steps is the gossip steps the run took to converge.
	Steps int `json:"steps"`
	// NsPerStep is wall time divided by steps.
	NsPerStep float64 `json:"ns_per_step"`
	// MsgsPerNodePerStep is the paper's Table 2 overhead metric.
	MsgsPerNodePerStep float64 `json:"msgs_per_node_per_step"`
	// AllocsPerStep is heap allocations per steady-state gossip step:
	// engine construction, the first (scratch-warming) step and final
	// result assembly are all excluded, so the engines' zero-allocation
	// Step contract shows up as an exact 0 here.
	AllocsPerStep float64 `json:"allocs_per_step"`
	// Converged is false if the run hit its step budget instead.
	Converged bool `json:"converged"`
}

// BenchReport is the JSON document -bench-json emits (BENCH_1.json starts
// the trajectory; later PRs append BENCH_2.json and so on for comparison).
type BenchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       uint64        `json:"seed"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchStepBudget bounds a benchmark run that fails to converge.
const benchStepBudget = 1 << 17

// measureEngine drives step (one engine's Step method) to convergence and
// converts the observations into a BenchResult. The first step runs outside
// the timed window so one-time scratch growth is not charged to the
// steady-state numbers, and the engine's Run-time result assembly never runs
// at all — the window contains gossip steps and nothing else.
func measureEngine(name string, n int, step func() bool, msgs func() gossip.Messages) BenchResult {
	steps := 1
	running := step()
	var m0, m1 runtime.MemStats
	var elapsed time.Duration
	measured := 0
	if running {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for running && steps < benchStepBudget {
			running = step()
			steps++
			measured++
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&m1)
	}
	res := BenchResult{Name: name, N: n, Steps: steps, Converged: !running}
	res.MsgsPerNodePerStep = msgs().PerNodePerStep(n, steps)
	if measured > 0 {
		res.NsPerStep = float64(elapsed.Nanoseconds()) / float64(measured)
		res.AllocsPerStep = float64(m1.Mallocs-m0.Mallocs) / float64(measured)
	}
	return res
}

// RunBench runs the benchmark suite and assembles the report.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	if cfg.N == 0 {
		cfg.N = 10000
	}
	if cfg.VectorN == 0 {
		cfg.VectorN = 1000
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if err := checkPositive("vector network size", cfg.VectorN); err != nil {
		return nil, err
	}
	report := &BenchReport{
		Schema:     "diffgossip-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}

	// Scalar engine, Fig3/Table2-class workload: average a value per node
	// over the PA overlay at large N.
	{
		g, err := buildPA(cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xs := uniformValues(cfg.N, cfg.Seed+1)
		g0 := make([]float64, cfg.N)
		for i := range g0 {
			g0[i] = 1
		}
		e, err := gossip.NewEngine(gossip.Config{
			Graph: g, Epsilon: cfg.Epsilon, Seed: cfg.Seed + 2,
		}, xs, g0)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks,
			measureEngine(fmt.Sprintf("scalar-engine/N=%d", cfg.N), cfg.N, e.Step, e.Messages))
	}

	// Vector engine, dense: every node rates every subject.
	{
		res, err := benchVector(cfg, false)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Vector engine, sparse: 5% of subjects rated, exercising the
	// active-subject index.
	{
		res, err := benchVector(cfg, true)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}
	return report, nil
}

func benchVector(cfg BenchConfig, sparse bool) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+10)
	if err != nil {
		return BenchResult{}, err
	}
	src := rng.New(cfg.Seed + 11)
	y0 := make([][]float64, n)
	g0 := make([][]float64, n)
	buf := make([]float64, 2*n*n)
	for i := 0; i < n; i++ {
		y0[i] = buf[2*i*n : (2*i+1)*n]
		g0[i] = buf[(2*i+1)*n : (2*i+2)*n]
	}
	stride := 1
	name := fmt.Sprintf("vector-engine/N=%d", n)
	if sparse {
		stride = 20
		name = fmt.Sprintf("vector-engine-sparse/N=%d", n)
	}
	for j := 0; j < n; j += stride {
		for i := 0; i < n; i++ {
			y0[i][j] = src.Float64()
			g0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(gossip.Config{
		Graph: g, Epsilon: cfg.Epsilon, Seed: cfg.Seed + 12,
	}, y0, g0)
	if err != nil {
		return BenchResult{}, err
	}
	return measureEngine(name, n, e.Step, e.Messages), nil
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
